// Tests for sysid::StreamingEstimator and the core streaming entry point:
// per-window agreement with the batch estimator, NaN-gap handling, drift
// detection, re-anchoring, and thread-count bitwise pins.

#include "auditherm/sysid/streaming.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include "auditherm/core/parallel.hpp"
#include "auditherm/core/pipeline.hpp"
#include "auditherm/sysid/estimator.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace core = auditherm::core;
namespace linalg = auditherm::linalg;
namespace sysid = auditherm::sysid;
namespace timeseries = auditherm::timeseries;

namespace {

const std::vector<timeseries::ChannelId> kStates{40, 41};
const std::vector<timeseries::ChannelId> kInputs{101, 110};

/// A stable second-order plant; `hot` doubles the input coupling and
/// shifts the dynamics (the regime-switch scenario).
struct Plant {
  double a11 = 0.70, a12 = 0.12, a21 = 0.08, a22 = 0.75;
  double d1 = 0.10, d2 = 0.08;
  double b11 = 0.020, b12 = 0.40, b21 = 0.015, b22 = 0.30;

  static Plant nominal() { return {}; }
  static Plant shifted() {
    Plant p;
    p.a11 = 0.55;
    p.a22 = 0.60;
    p.b11 = 0.060;
    p.b21 = 0.050;
    p.b12 = 0.90;
    p.b22 = 0.70;
    return p;
  }
};

/// Simulate `rows` samples: states T1,T2 on channels 40/41, inputs (VAV
/// flow, occupancy) on 101/110. `switch_at` swaps the plant mid-stream;
/// 0 = never.
timeseries::MultiTrace make_trace(std::size_t rows, std::uint64_t seed,
                                  std::size_t switch_at = 0) {
  std::vector<timeseries::ChannelId> channels{40, 41, 101, 110};
  timeseries::MultiTrace trace(timeseries::TimeGrid(0, 30, rows), channels);
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.05);
  double t1 = 21.0, t2 = 22.0, p1 = 21.0, p2 = 22.0;
  for (std::size_t k = 0; k < rows; ++k) {
    const Plant plant = (switch_at != 0 && k >= switch_at) ? Plant::shifted()
                                                           : Plant::nominal();
    const double flow = 1.5 + std::sin(0.13 * static_cast<double>(k)) +
                        0.2 * noise(rng);
    const double occ = (k % 48) < 30 ? 60.0 + 5.0 * noise(rng) : 2.0;
    trace.set(k, 0, t1);
    trace.set(k, 1, t2);
    trace.set(k, 2, flow);
    trace.set(k, 3, occ);
    const double d1 = t1 - p1, d2 = t2 - p2;
    const double n1 = plant.a11 * t1 + plant.a12 * t2 + plant.d1 * d1 +
                      plant.b11 * occ + plant.b12 * flow + 3.0 + noise(rng);
    const double n2 = plant.a21 * t1 + plant.a22 * t2 + plant.d2 * d2 +
                      plant.b21 * occ + plant.b22 * flow + 3.5 + noise(rng);
    p1 = t1;
    p2 = t2;
    t1 = n1;
    t2 = n2;
  }
  return trace;
}

/// Push rows [0, upto) of `trace` into a fresh estimator.
sysid::StreamingEstimator stream_prefix(const timeseries::TraceView& view,
                                        std::size_t upto,
                                        const sysid::StreamingOptions& opts,
                                        sysid::ModelOrder order) {
  sysid::StreamingEstimator est(kStates, kInputs, order, opts);
  est.push_trace(view.slice_rows(0, upto));
  return est;
}

double max_model_diff(const sysid::ThermalModel& x,
                      const sysid::ThermalModel& y) {
  double diff = 0.0;
  const auto acc = [&](const linalg::Matrix& a, const linalg::Matrix& b) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t j = 0; j < a.cols(); ++j) {
        diff = std::max(diff, std::abs(a(i, j) - b(i, j)));
      }
    }
  };
  acc(x.a(), y.a());
  acc(x.b(), y.b());
  if (x.order() == sysid::ModelOrder::kSecond) acc(x.a2(), y.a2());
  return diff;
}

}  // namespace

TEST(Streaming, SlidingWindowMatchesBatchOnEveryWindow) {
  const auto trace = make_trace(600, 11);
  const timeseries::TraceView view(trace);
  const std::size_t window = 120;
  sysid::StreamingOptions opts;
  opts.window_rows = window;
  opts.drift.enabled = false;

  for (const auto order :
       {sysid::ModelOrder::kFirst, sysid::ModelOrder::kSecond}) {
    sysid::StreamingEstimator est(kStates, kInputs, order, opts);
    const sysid::ModelEstimator batch(kStates, kInputs, order);
    linalg::Vector states(2), inputs(2);
    std::size_t compared = 0;
    for (std::size_t k = 0; k < view.size(); ++k) {
      states[0] = view.value(k, 0);
      states[1] = view.value(k, 1);
      inputs[0] = view.value(k, 2);
      inputs[1] = view.value(k, 3);
      est.push(states, inputs);
      if (k >= window && k % 10 == 0) {
        ASSERT_TRUE(est.has_model()) << "row " << k;
        const auto batch_model =
            batch.fit(view.slice_rows(k + 1 - window, k + 1));
        EXPECT_LT(max_model_diff(est.model(), batch_model), 1e-8)
            << "row " << k;
        ++compared;
      }
    }
    EXPECT_GE(compared, 40u);
  }
}

TEST(Streaming, GrowingWindowMatchesFullBatchFit) {
  const auto trace = make_trace(400, 12);
  const timeseries::TraceView view(trace);
  sysid::StreamingOptions opts;  // window_rows = 0: growing
  opts.drift.enabled = false;
  const auto est = stream_prefix(view, 400, opts, sysid::ModelOrder::kSecond);
  EXPECT_EQ(est.stats().downdates, 0u);
  const sysid::ModelEstimator batch(kStates, kInputs,
                                    sysid::ModelOrder::kSecond);
  EXPECT_LT(max_model_diff(est.model(), batch.fit(view)), 1e-8);
}

TEST(Streaming, NanGapsMatchBatchSegmentMask) {
  auto trace = make_trace(500, 13);
  // Three gaps: a state dropout, an input dropout, and a full outage.
  for (std::size_t k = 120; k < 131; ++k) trace.clear(k, 0);
  for (std::size_t k = 260; k < 265; ++k) trace.clear(k, 3);
  for (std::size_t k = 350; k < 370; ++k) {
    for (std::size_t c = 0; c < 4; ++c) trace.clear(k, c);
  }
  const timeseries::TraceView view(trace);
  const std::size_t window = 150;
  sysid::StreamingOptions opts;
  opts.window_rows = window;
  opts.drift.enabled = false;
  const sysid::ModelEstimator batch(kStates, kInputs,
                                    sysid::ModelOrder::kSecond);
  for (const std::size_t upto : {200u, 300u, 380u, 500u}) {
    const auto est =
        stream_prefix(view, upto, opts, sysid::ModelOrder::kSecond);
    const auto batch_view = view.slice_rows(upto - window, upto);
    const auto summary = batch.summarize(batch_view);
    EXPECT_EQ(est.window_transitions(), summary.transitions)
        << "upto " << upto;
    EXPECT_LT(max_model_diff(est.model(), batch.fit(batch_view)), 1e-8)
        << "upto " << upto;
  }
}

TEST(Streaming, RowFilterActsAsGap) {
  const auto trace = make_trace(300, 14);
  const timeseries::TraceView view(trace);
  std::vector<bool> filter(view.size(), true);
  for (std::size_t k = 100; k < 140; ++k) filter[k] = false;
  sysid::StreamingOptions opts;
  opts.drift.enabled = false;
  sysid::StreamingEstimator est(kStates, kInputs, sysid::ModelOrder::kSecond,
                                opts);
  est.push_trace(view, filter);
  const sysid::ModelEstimator batch(kStates, kInputs,
                                    sysid::ModelOrder::kSecond);
  EXPECT_LT(max_model_diff(est.model(), batch.fit(view, filter)), 1e-8);
}

TEST(Streaming, ReanchoringPreservesBatchAgreement) {
  const auto trace = make_trace(600, 15);
  const timeseries::TraceView view(trace);
  const std::size_t window = 96;
  sysid::StreamingOptions opts;
  opts.window_rows = window;
  opts.reanchor_interval = 64;  // force frequent refactorizations
  opts.drift.enabled = false;
  const auto est = stream_prefix(view, 600, opts, sysid::ModelOrder::kSecond);
  EXPECT_GE(est.stats().reanchors, 5u);
  const sysid::ModelEstimator batch(kStates, kInputs,
                                    sysid::ModelOrder::kSecond);
  EXPECT_LT(max_model_diff(est.model(),
                           batch.fit(view.slice_rows(600 - window, 600))),
            1e-8);
}

TEST(Streaming, BitwiseDeterministicAtAnyThreadCount) {
  const auto trace = make_trace(800, 16, 500);
  const timeseries::TraceView view(trace);
  sysid::StreamingOptions opts;
  opts.window_rows = 192;
  opts.reanchor_interval = 128;

  std::vector<std::vector<double>> params_by_threads;
  std::vector<std::vector<std::size_t>> drift_rows_by_threads;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::ThreadCountScope scope(threads);
    sysid::StreamingEstimator est(kStates, kInputs,
                                  sysid::ModelOrder::kSecond, opts);
    est.push_trace(view);
    std::vector<double> params;
    const auto& m = est.model();
    const auto flatten = [&](const linalg::Matrix& a) {
      for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) params.push_back(a(i, j));
      }
    };
    flatten(m.a());
    flatten(m.a2());
    flatten(m.b());
    params.push_back(est.cusum_statistic());
    params_by_threads.push_back(std::move(params));
    std::vector<std::size_t> rows;
    for (const auto& e : est.drift_events()) rows.push_back(e.row);
    drift_rows_by_threads.push_back(std::move(rows));
  }
  for (std::size_t i = 1; i < params_by_threads.size(); ++i) {
    // Bitwise: exact double equality, not approximate.
    EXPECT_EQ(params_by_threads[i], params_by_threads[0]);
    EXPECT_EQ(drift_rows_by_threads[i], drift_rows_by_threads[0]);
  }
}

TEST(Streaming, DriftDetectorFiresOnRegimeSwitchOnly) {
  const std::size_t switch_at = 1000;
  const auto switched = make_trace(2000, 17, switch_at);
  sysid::StreamingOptions opts;
  opts.window_rows = 240;
  sysid::StreamingEstimator est(kStates, kInputs, sysid::ModelOrder::kSecond,
                                opts);
  est.push_trace(timeseries::TraceView(switched));
  ASSERT_FALSE(est.drift_events().empty());
  for (const auto& event : est.drift_events()) {
    EXPECT_GT(event.row, switch_at);
  }
  // Detection latency: flagged within ~5 days of transitions.
  EXPECT_LT(est.drift_events().front().row, switch_at + 240);

  // The stationary twin stays silent.
  const auto stationary = make_trace(2000, 17);
  sysid::StreamingEstimator quiet(kStates, kInputs,
                                  sysid::ModelOrder::kSecond, opts);
  quiet.push_trace(timeseries::TraceView(stationary));
  EXPECT_TRUE(quiet.drift_events().empty());
}

TEST(Streaming, StatsCountersAddUp) {
  const auto trace = make_trace(400, 18);
  sysid::StreamingOptions opts;
  opts.window_rows = 100;
  opts.drift.enabled = false;
  sysid::StreamingEstimator est(kStates, kInputs, sysid::ModelOrder::kSecond,
                                opts);
  est.push_trace(timeseries::TraceView(trace));
  const auto& s = est.stats();
  EXPECT_EQ(s.rows_pushed, 400u);
  // Every appended transition is either still in the window or left it
  // through a downdate or a (guard-forced) refactorization.
  EXPECT_GE(s.transitions, est.window_transitions());
  EXPECT_GT(s.downdates, 0u);
  EXPECT_EQ(s.downdate_refactors, 0u);
  // With no guard-forced refactorizations every aged-out transition left
  // through a downdate.
  EXPECT_EQ(s.transitions - est.window_transitions(), s.downdates);
}

TEST(Streaming, AicPrefersTrueOrder) {
  // Second-order data: the second-order window fit must win the AIC
  // comparison (the online order-selection use case).
  const auto trace = make_trace(500, 19);
  const timeseries::TraceView view(trace);
  sysid::StreamingOptions opts;
  opts.drift.enabled = false;
  const auto first =
      stream_prefix(view, 500, opts, sysid::ModelOrder::kFirst);
  const auto second =
      stream_prefix(view, 500, opts, sysid::ModelOrder::kSecond);
  EXPECT_LT(second.aic(), first.aic());
}

TEST(Streaming, ArgumentChecks) {
  EXPECT_THROW(sysid::StreamingEstimator({}, kInputs,
                                         sysid::ModelOrder::kFirst),
               std::invalid_argument);
  EXPECT_THROW(sysid::StreamingEstimator(kStates, {},
                                         sysid::ModelOrder::kFirst),
               std::invalid_argument);
  sysid::StreamingOptions tiny;
  tiny.window_rows = 3;  // second order needs history 2 + target + 1 more
  EXPECT_THROW(sysid::StreamingEstimator(kStates, kInputs,
                                         sysid::ModelOrder::kSecond, tiny),
               std::invalid_argument);
  sysid::StreamingEstimator est(kStates, kInputs, sysid::ModelOrder::kSecond);
  EXPECT_THROW(est.push(linalg::Vector{1.0}, linalg::Vector{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW((void)est.model(), std::runtime_error);
  EXPECT_THROW((void)est.aic(), std::runtime_error);
}

TEST(Streaming, CoreEntryPointRuns) {
  const auto trace = make_trace(700, 20, 400);
  core::StreamingRunConfig config;
  config.streaming.window_rows = 192;
  const auto result = core::run_streaming_identification(
      timeseries::TraceView(trace), kStates, kInputs, config);
  EXPECT_EQ(result.stats.rows_pushed, 700u);
  EXPECT_TRUE(result.has_model);
  EXPECT_GT(result.window_transitions, 0u);
  EXPECT_TRUE(std::isfinite(result.aic));
  // The regime switch at row 400 must be flagged.
  ASSERT_FALSE(result.drift_events.empty());
  EXPECT_GT(result.drift_events.front().row, 400u);
}
