
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dataset.cpp" "src/sim/CMakeFiles/auditherm_sim.dir/dataset.cpp.o" "gcc" "src/sim/CMakeFiles/auditherm_sim.dir/dataset.cpp.o.d"
  "/root/repo/src/sim/floorplan.cpp" "src/sim/CMakeFiles/auditherm_sim.dir/floorplan.cpp.o" "gcc" "src/sim/CMakeFiles/auditherm_sim.dir/floorplan.cpp.o.d"
  "/root/repo/src/sim/occupancy.cpp" "src/sim/CMakeFiles/auditherm_sim.dir/occupancy.cpp.o" "gcc" "src/sim/CMakeFiles/auditherm_sim.dir/occupancy.cpp.o.d"
  "/root/repo/src/sim/plant.cpp" "src/sim/CMakeFiles/auditherm_sim.dir/plant.cpp.o" "gcc" "src/sim/CMakeFiles/auditherm_sim.dir/plant.cpp.o.d"
  "/root/repo/src/sim/sensor_model.cpp" "src/sim/CMakeFiles/auditherm_sim.dir/sensor_model.cpp.o" "gcc" "src/sim/CMakeFiles/auditherm_sim.dir/sensor_model.cpp.o.d"
  "/root/repo/src/sim/weather.cpp" "src/sim/CMakeFiles/auditherm_sim.dir/weather.cpp.o" "gcc" "src/sim/CMakeFiles/auditherm_sim.dir/weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/auditherm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/hvac/CMakeFiles/auditherm_hvac.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/auditherm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
