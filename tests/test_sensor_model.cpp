// Tests for the report-on-change wireless sensor measurement model.

#include "auditherm/sim/sensor_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace sim = auditherm::sim;

namespace {

sim::SensorNoiseConfig noiseless() {
  sim::SensorNoiseConfig config;
  config.noise_std_c = 0.0;
  return config;
}

}  // namespace

TEST(SensorModel, FirstObservationAlwaysReports) {
  sim::SensorChannel ch(noiseless());
  std::mt19937_64 rng(1);
  EXPECT_TRUE(std::isnan(ch.last_report()));
  const double r = ch.observe(20.53, rng);
  EXPECT_FALSE(std::isnan(r));
  EXPECT_DOUBLE_EQ(r, ch.last_report());
}

TEST(SensorModel, QuantizesToTenthDegree) {
  sim::SensorChannel ch(noiseless());
  std::mt19937_64 rng(1);
  EXPECT_NEAR(ch.observe(20.533, rng), 20.5, 1e-12);
  sim::SensorChannel ch2(noiseless());
  EXPECT_NEAR(ch2.observe(20.57, rng), 20.6, 1e-12);
}

TEST(SensorModel, HoldsBelowReportThreshold) {
  sim::SensorChannel ch(noiseless());
  std::mt19937_64 rng(1);
  const double first = ch.observe(20.50, rng);
  // A change of exactly one quantum does NOT exceed the 0.1 threshold.
  const double second = ch.observe(20.58, rng);  // quantizes to 20.6
  EXPECT_DOUBLE_EQ(second, first);
  // A 0.2 move does.
  const double third = ch.observe(20.72, rng);
  EXPECT_NEAR(third, 20.7, 1e-12);
}

TEST(SensorModel, TracksLargeChanges) {
  sim::SensorChannel ch(noiseless());
  std::mt19937_64 rng(1);
  (void)ch.observe(20.0, rng);
  EXPECT_NEAR(ch.observe(22.0, rng), 22.0, 1e-12);
  EXPECT_NEAR(ch.observe(18.5, rng), 18.5, 1e-12);
}

TEST(SensorModel, ResetForgetsHold) {
  sim::SensorChannel ch(noiseless());
  std::mt19937_64 rng(1);
  (void)ch.observe(20.0, rng);
  ch.reset();
  EXPECT_TRUE(std::isnan(ch.last_report()));
  EXPECT_NEAR(ch.observe(20.05, rng), 20.1, 1e-12);  // reports after reset
}

TEST(SensorModel, NoiseIsSeedDeterministic) {
  sim::SensorNoiseConfig config;  // default noise
  sim::SensorChannel a(config), b(config);
  std::mt19937_64 rng_a(99), rng_b(99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.observe(20.0 + 0.03 * i, rng_a),
                     b.observe(20.0 + 0.03 * i, rng_b));
  }
}

TEST(SensorModel, NoiseStaysWithinAccuracySpec) {
  // The paper's sensors are accurate to +/-0.5 degC; with our noise std
  // the report should rarely stray further than that from the truth.
  sim::SensorNoiseConfig config;
  sim::SensorChannel ch(config);
  std::mt19937_64 rng(7);
  int outliers = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double truth = 20.0 + 0.5 * std::sin(i * 0.05);
    const double report = ch.observe(truth, rng);
    if (std::abs(report - truth) > 0.5) ++outliers;
  }
  EXPECT_LT(outliers, n / 50);  // < 2%
}

TEST(SensorModel, ZeroQuantumDisablesQuantization) {
  sim::SensorNoiseConfig config = noiseless();
  config.quantum_c = 0.0;
  config.report_threshold_c = 0.0;
  sim::SensorChannel ch(config);
  std::mt19937_64 rng(1);
  EXPECT_DOUBLE_EQ(ch.observe(20.537, rng), 20.537);
}

TEST(SensorModel, ConfigValidation) {
  sim::SensorNoiseConfig bad;
  bad.noise_std_c = -0.1;
  EXPECT_THROW(sim::SensorChannel{bad}, std::invalid_argument);
  bad = {};
  bad.quantum_c = -0.1;
  EXPECT_THROW(sim::SensorChannel{bad}, std::invalid_argument);
  bad = {};
  bad.report_threshold_c = -0.1;
  EXPECT_THROW(sim::SensorChannel{bad}, std::invalid_argument);
}
