file(REMOVE_RECURSE
  "libauditherm_clustering.a"
)
