// Fig. 4: one-day trace of sensor 1 — measured temperature vs the
// open-loop predictions of the first- and second-order models.
//
// Paper: over Feb 28 / Mar 25 2013 the second-order curve hugs the
// measurement through the morning warm-up and afternoon events; the
// first-order curve lags and overshoots.

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace auditherm;

int main() {
  const bench::ObsSession obs_session;
  bench::print_header(
      "Fig. 4: measured vs predicted day trace for sensor 1 (occupied)");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);

  const auto fit = [&](sysid::ModelOrder order) {
    sysid::ModelEstimator estimator(dataset.sensor_ids(), dataset.input_ids(),
                                    order);
    return estimator.fit(dataset.trace,
                         core::and_masks(split.train_mask, mode_mask));
  };
  const auto first = fit(sysid::ModelOrder::kFirst);
  const auto second = fit(sysid::ModelOrder::kSecond);

  const auto windows = bench::evaluation_windows(dataset,
                                                 split.validation_mask,
                                                 hvac::Mode::kOccupied);
  if (windows.empty()) {
    std::printf("no evaluation windows available\n");
    return 1;
  }
  // Pick a *typical* day: rank the full-length windows by how much the
  // second-order model improves on the first-order one (all-sensor day
  // RMS) and take the median. The paper's figure is likewise one
  // representative day, not a best case.
  sysid::EvaluationOptions rank_opts;
  std::vector<std::pair<double, timeseries::Segment>> ranked;
  for (const auto& w : windows) {
    if (w.length() + 4 < 30) continue;  // want near-full days
    const auto e1 =
        sysid::evaluate_prediction(first, dataset.trace, {w}, rank_opts);
    const auto e2 =
        sysid::evaluate_prediction(second, dataset.trace, {w}, rank_opts);
    if (e1.window_count == 0 || e2.window_count == 0) continue;
    ranked.emplace_back(e1.pooled_rms - e2.pooled_rms, w);
  }
  if (ranked.empty()) {
    std::printf("no full-day windows available\n");
    return 1;
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const auto window = ranked[ranked.size() / 2].second;

  sysid::EvaluationOptions opts;
  const auto wp1 = sysid::predict_window(first, dataset.trace, window, opts);
  const auto wp2 = sysid::predict_window(second, dataset.trace, window, opts);
  if (!wp1 || !wp2) {
    std::printf("window prediction failed\n");
    return 1;
  }

  const std::size_t col = dataset.trace.require_channel(1);
  const std::size_t state1 = 0;  // sensor 1 is not necessarily state 0
  std::size_t s1 = state1;
  for (std::size_t i = 0; i < first.state_channels().size(); ++i) {
    if (first.state_channels()[i] == 1) s1 = i;
  }

  std::printf("%-10s %-10s %-12s %-12s\n", "time", "measured", "first-order",
              "second-order");
  double sq1 = 0.0, sq2 = 0.0;
  std::size_t n = 0;
  const std::size_t steps =
      std::min(wp1->predicted.rows(), wp2->predicted.rows());
  for (std::size_t k = 0; k < steps; ++k) {
    const std::size_t row = wp1->first_row + k;
    const double measured = dataset.trace.value(row, col);
    const double p1 = wp1->predicted(k, s1);
    const double p2 = wp2->predicted(std::min(k, wp2->predicted.rows() - 1), s1);
    std::printf("%-10s %-10.2f %-12.2f %-12.2f\n",
                timeseries::format_time(dataset.trace.grid()[row]).c_str(),
                measured, p1, p2);
    if (!std::isnan(measured)) {
      sq1 += (p1 - measured) * (p1 - measured);
      sq2 += (p2 - measured) * (p2 - measured);
      ++n;
    }
  }
  const double rms1 = std::sqrt(sq1 / static_cast<double>(n));
  const double rms2 = std::sqrt(sq2 / static_cast<double>(n));
  std::printf("\nday RMS for sensor 1: first %.3f, second %.3f degC\n", rms1,
              rms2);
  std::printf("shape check: second-order tracks the day better: %s\n",
              rms2 < rms1 ? "yes" : "NO");
  return 0;
}
