#pragma once

/// \file vector_ops.hpp
/// Free-function helpers on linalg::Vector used across the library.

#include "auditherm/linalg/matrix.hpp"

namespace auditherm::linalg {

/// Dot product; throws std::invalid_argument on size mismatch.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Euclidean (L2) norm.
[[nodiscard]] double norm2(const Vector& a) noexcept;

/// L-infinity norm (max |a_i|), 0 for the empty vector.
[[nodiscard]] double norm_inf(const Vector& a) noexcept;

/// y += alpha * x; throws std::invalid_argument on size mismatch.
void axpy(double alpha, const Vector& x, Vector& y);

/// Elementwise a + b.
[[nodiscard]] Vector add(const Vector& a, const Vector& b);

/// Elementwise a - b.
[[nodiscard]] Vector subtract(const Vector& a, const Vector& b);

/// alpha * a.
[[nodiscard]] Vector scale(double alpha, Vector a) noexcept;

/// Concatenate a and b.
[[nodiscard]] Vector concat(const Vector& a, const Vector& b);

/// Euclidean distance ||a - b||.
[[nodiscard]] double distance(const Vector& a, const Vector& b);

}  // namespace auditherm::linalg
