// Tests for the maximum-variance greedy selection baseline.

#include "auditherm/selection/variance_placement.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <stdexcept>

namespace selection = auditherm::selection;
namespace ts = auditherm::timeseries;
using ts::MultiTrace;
using ts::TimeGrid;

namespace {

/// Channel variances: 1 tiny, 2 medium, 3 large, 4 = copy of 3 (redundant).
MultiTrace make_trace(std::uint64_t seed = 1) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> n01(0.0, 1.0);
  MultiTrace trace(TimeGrid(0, 30, 200), {1, 2, 3, 4});
  for (std::size_t k = 0; k < 200; ++k) {
    const double big = n01(rng);
    trace.set(k, 0, 20.0 + 0.01 * n01(rng));
    trace.set(k, 1, 20.0 + 0.3 * n01(rng));
    trace.set(k, 2, 20.0 + big);
    trace.set(k, 3, 20.0 + big + 0.001 * n01(rng));  // ~duplicate of 3
  }
  return trace;
}

}  // namespace

TEST(VariancePlacement, PicksHighestVarianceFirst) {
  const auto trace = make_trace();
  const auto chosen =
      selection::max_variance_selection(trace, {1, 2, 3, 4}, 1);
  EXPECT_TRUE(chosen[0] == 3 || chosen[0] == 4);
}

TEST(VariancePlacement, RedundancyCapSkipsDuplicates) {
  const auto trace = make_trace();
  const auto chosen =
      selection::max_variance_selection(trace, {1, 2, 3, 4}, 2, 0.95);
  // Second pick must NOT be the near-duplicate of the first.
  const std::set<int> pair(chosen.begin(), chosen.end());
  EXPECT_FALSE(pair.count(3) && pair.count(4));
  EXPECT_TRUE(pair.count(2));
}

TEST(VariancePlacement, CapDisabledKeepsDuplicates) {
  const auto trace = make_trace();
  const auto chosen =
      selection::max_variance_selection(trace, {1, 2, 3, 4}, 2, 1.0);
  const std::set<int> pair(chosen.begin(), chosen.end());
  EXPECT_TRUE(pair.count(3) && pair.count(4));
}

TEST(VariancePlacement, TopsUpWhenCapTooStrict) {
  const auto trace = make_trace();
  // Cap 0 rejects everything after the first pick; the top-up pass must
  // still return the requested count.
  const auto chosen =
      selection::max_variance_selection(trace, {1, 2, 3, 4}, 3, 0.0);
  std::set<int> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(VariancePlacement, Validation) {
  const auto trace = make_trace();
  EXPECT_THROW(
      (void)selection::max_variance_selection(trace, {1, 2}, 0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)selection::max_variance_selection(trace, {1, 2}, 3),
      std::invalid_argument);
}
