// Tests for the Vector helper operations.

#include "auditherm/linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace linalg = auditherm::linalg;
using linalg::Vector;

TEST(VectorOps, DotAndNorms) {
  EXPECT_DOUBLE_EQ(linalg::dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_DOUBLE_EQ(linalg::norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(linalg::norm_inf({-7.0, 2.0}), 7.0);
  EXPECT_DOUBLE_EQ(linalg::norm_inf({}), 0.0);
}

TEST(VectorOps, Axpy) {
  Vector y{1.0, 1.0};
  linalg::axpy(2.0, {1.0, -1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(VectorOps, AddSubtractScale) {
  EXPECT_EQ(linalg::add({1.0, 2.0}, {3.0, 4.0}), (Vector{4.0, 6.0}));
  EXPECT_EQ(linalg::subtract({3.0, 4.0}, {1.0, 2.0}), (Vector{2.0, 2.0}));
  EXPECT_EQ(linalg::scale(2.0, Vector{1.0, -1.0}), (Vector{2.0, -2.0}));
}

TEST(VectorOps, Concat) {
  EXPECT_EQ(linalg::concat({1.0}, {2.0, 3.0}), (Vector{1.0, 2.0, 3.0}));
  EXPECT_EQ(linalg::concat({}, {}), Vector{});
}

TEST(VectorOps, Distance) {
  EXPECT_DOUBLE_EQ(linalg::distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
}

TEST(VectorOps, SizeMismatchesThrow) {
  Vector y{1.0};
  EXPECT_THROW((void)linalg::dot({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(linalg::axpy(1.0, {1.0, 2.0}, y), std::invalid_argument);
  EXPECT_THROW((void)linalg::add({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)linalg::subtract({1.0}, {}), std::invalid_argument);
  EXPECT_THROW((void)linalg::distance({1.0}, {}), std::invalid_argument);
}
