// Extension experiment E2 (beyond the paper's evaluation): virtual
// sensing. After the pilot, the building keeps only the SMS-selected
// sensors — can a Kalman filter on the DENSE identified model reconstruct
// the removed sensors' readings from the kept ones?
//
//   * open-loop: simulate the dense model with measured inputs only
//     (no kept sensors) — the floor,
//   * KF + k kept sensors (SMS, k = cluster count .. more),
//   * KF + the same number of randomly kept sensors.
//
// Expected shape: filtering beats open-loop; SMS-kept sensors beat random
// ones; error falls as more sensors are kept.

#include <algorithm>
#include <random>

#include "bench_common.hpp"

#include "auditherm/sysid/kalman.hpp"

using namespace auditherm;

namespace {

/// RMS reconstruction error over the NON-kept wireless sensors across the
/// validation windows.
double reconstruction_rms(const sim::AuditoriumDataset& dataset,
                          const sysid::ThermalModel& model,
                          const std::vector<timeseries::Segment>& windows,
                          const std::vector<timeseries::ChannelId>& kept) {
  const auto& trace = dataset.trace;
  const auto& states = model.state_channels();
  std::vector<std::size_t> state_cols(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    state_cols[i] = trace.require_channel(states[i]);
  }
  std::vector<std::size_t> input_cols(model.input_count());
  for (std::size_t i = 0; i < model.input_count(); ++i) {
    input_cols[i] = trace.require_channel(model.input_channels()[i]);
  }
  std::vector<std::size_t> kept_idx;
  for (auto id : kept) {
    const auto it = std::find(states.begin(), states.end(), id);
    if (it != states.end()) {
      kept_idx.push_back(static_cast<std::size_t>(it - states.begin()));
    }
  }

  double sq = 0.0;
  std::size_t n = 0;
  sysid::KalmanFilter kf(model);
  for (const auto& window : windows) {
    // Initialize at the first row where all states are measured (the
    // hand-over moment right before de-instrumentation).
    std::size_t start = window.first;
    bool ok = true;
    for (std::size_t c : state_cols) ok = ok && trace.valid(start, c);
    if (!ok) continue;
    linalg::Vector init(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
      init[i] = trace.value(start, state_cols[i]);
    }
    kf.reset(init);

    for (std::size_t k = start; k + 1 < window.last; ++k) {
      linalg::Vector u(model.input_count());
      bool inputs_ok = true;
      for (std::size_t i = 0; i < u.size(); ++i) {
        u[i] = trace.value(k, input_cols[i]);
        inputs_ok = inputs_ok && !std::isnan(u[i]);
      }
      if (!inputs_ok) break;
      kf.predict(u);
      // Feed the kept sensors' measurements where available.
      std::vector<std::size_t> measured;
      linalg::Vector readings;
      for (std::size_t idx : kept_idx) {
        if (trace.valid(k + 1, state_cols[idx])) {
          measured.push_back(idx);
          readings.push_back(trace.value(k + 1, state_cols[idx]));
        }
      }
      kf.update(measured, readings);
      // Score reconstruction of the sensors NOT kept.
      const auto est = kf.temperatures();
      for (std::size_t i = 0; i < states.size(); ++i) {
        if (std::find(kept_idx.begin(), kept_idx.end(), i) != kept_idx.end())
          continue;
        if (!trace.valid(k + 1, state_cols[i])) continue;
        const double err = est[i] - trace.value(k + 1, state_cols[i]);
        sq += err * err;
        ++n;
      }
    }
  }
  return n > 0 ? std::sqrt(sq / static_cast<double>(n)) : -1.0;
}

}  // namespace

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Extension E2: virtual sensing with a Kalman filter");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto training = dataset.trace.filter_rows(
      core::and_masks(split.train_mask, mode_mask));

  // Dense second-order model over all wireless sensors.
  sysid::ModelEstimator estimator(dataset.wireless_ids(), dataset.input_ids(),
                                  sysid::ModelOrder::kSecond);
  const auto model = estimator.fit(
      dataset.trace, core::and_masks(split.train_mask, mode_mask));
  const auto windows = bench::evaluation_windows(dataset,
                                                 split.validation_mask,
                                                 hvac::Mode::kOccupied);

  // Clusters for SMS keeps.
  const auto graph = clustering::build_similarity_graph(
      training, dataset.wireless_ids(), {});
  const auto clusters = clustering::spectral_cluster(graph).clusters();

  const double open_loop =
      reconstruction_rms(dataset, model, windows, {});
  std::printf("open-loop model (no kept sensors): RMS %.3f degC\n\n",
              open_loop);

  std::printf("%-18s %-18s %-18s\n", "kept per cluster", "SMS keeps",
              "random keeps (mean of 10)");
  linalg::Vector sms_curve;
  for (std::size_t per = 1; per <= 3; ++per) {
    const auto sms =
        selection::stratified_near_mean(training, clusters, per).flattened();
    const double sms_rms = reconstruction_rms(dataset, model, windows, sms);
    double random_rms = 0.0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      auto pool = dataset.wireless_ids();
      std::mt19937_64 rng(seed);
      std::shuffle(pool.begin(), pool.end(), rng);
      pool.resize(sms.size());
      random_rms += reconstruction_rms(dataset, model, windows, pool);
    }
    random_rms /= 10.0;
    std::printf("%-18zu %-18.3f %-18.3f\n", per, sms_rms, random_rms);
    sms_curve.push_back(sms_rms);
  }

  std::printf("\nshape checks: filtering with SMS keeps beats open-loop: %s "
              "| error falls with more keeps: %s\n",
              sms_curve[0] < open_loop ? "yes" : "NO",
              sms_curve.back() < sms_curve.front() ? "yes" : "NO");
  return 0;
}
