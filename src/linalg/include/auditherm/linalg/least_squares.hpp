#pragma once

/// \file least_squares.hpp
/// Linear least-squares solvers.
///
/// The paper solves its model-identification objective (eq. 3/4) with
/// CVX + SeDuMi; since the objective is an ordinary linear least squares,
/// a direct solver reaches the same global optimum. We provide a QR path
/// (numerically safest) and a ridge-regularized normal-equations path
/// (fast, and robust to the near-collinear regressors real traces produce).

#include "auditherm/linalg/matrix.hpp"

namespace auditherm::linalg {

/// Options for solve_least_squares.
struct LeastSquaresOptions {
  /// Tikhonov/ridge penalty lambda >= 0 added as lambda * I to the normal
  /// equations. 0 selects plain least squares.
  double ridge = 0.0;

  /// When true, `ridge` is interpreted relative to the mean diagonal of
  /// A^T A (lambda_eff = ridge * trace(A^T A) / n). This keeps one ridge
  /// setting meaningful across regressors of very different scales, which
  /// matters for thermal regressors dominated by a ~20 degC DC component.
  bool relative_ridge = false;

  /// Take the QR path. With ridge == 0 this is a plain Householder solve;
  /// with ridge > 0 the factorization runs on the augmented system
  /// [A; sqrt(lambda) I], which reaches the same minimizer as the
  /// regularized normal equations without squaring the condition number.
  /// When false, ridge > 0 uses the Cholesky normal-equations path (the
  /// historical solver; the paper-pipeline golden pins are tied to its
  /// bits).
  bool prefer_qr = true;
};

/// Solve argmin_X ||A X - B||_F^2 (+ ridge * ||X||_F^2).
///
/// A is m x n with m >= n, B is m x k; the result is n x k. With
/// prefer_qr, uses Householder QR (on the ridge-augmented system when
/// ridge > 0); otherwise solves the (regularized) normal equations by
/// Cholesky. Throws std::invalid_argument on shape mismatch and
/// std::domain_error when the system is singular and unregularized.
[[nodiscard]] Matrix solve_least_squares(const Matrix& a, const Matrix& b,
                                         const LeastSquaresOptions& opts = {});

/// Vector right-hand-side convenience overload.
[[nodiscard]] Vector solve_least_squares(const Matrix& a, const Vector& b,
                                         const LeastSquaresOptions& opts = {});

/// Residual norm ||A x - b||_2; useful for optimality checks in tests.
[[nodiscard]] double residual_norm(const Matrix& a, const Vector& x,
                                   const Vector& b);

}  // namespace auditherm::linalg
