// Property tests for the parallelized math kernels: randomized matrices
// and traces must produce results that (a) exactly match a naive serial
// reference with the same per-element summation order, and (b) are
// bitwise identical at 1, 2, and 8 threads. Also checks the similarity
// graph's structural invariants survive parallel construction.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "auditherm/clustering/similarity.hpp"
#include "auditherm/core/parallel.hpp"
#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/linalg/matrix.hpp"
#include "auditherm/timeseries/multi_trace.hpp"
#include "auditherm/timeseries/trace_stats.hpp"

namespace core = auditherm::core;
namespace linalg = auditherm::linalg;
namespace timeseries = auditherm::timeseries;
namespace clustering = auditherm::clustering;

namespace {

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = dist(gen);
  return m;
}

/// Reference product with the library's summation order: for each element,
/// ascending k with the zero-skip.
linalg::Matrix reference_multiply(const linalg::Matrix& a,
                                  const linalg::Matrix& b) {
  linalg::Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j)
      for (std::size_t k = 0; k < a.cols(); ++k)
        if (a(i, k) != 0.0) c(i, j) += a(i, k) * b(k, j);
  return c;
}

linalg::Matrix reference_gram(const linalg::Matrix& a,
                              const linalg::Matrix& b) {
  linalg::Matrix c(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.cols(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j)
      for (std::size_t k = 0; k < a.rows(); ++k)
        if (a(k, i) != 0.0) c(i, j) += a(k, i) * b(k, j);
  return c;
}

/// Random gappy trace: `p` channels correlated through a shared driver so
/// the similarity graph is non-trivial, with ~`gap_fraction` NaN holes.
timeseries::MultiTrace random_trace(std::size_t rows, std::size_t p,
                                    double gap_fraction, std::uint32_t seed) {
  std::vector<timeseries::ChannelId> ids(p);
  for (std::size_t c = 0; c < p; ++c) ids[c] = static_cast<int>(c + 1);
  timeseries::MultiTrace trace(timeseries::TimeGrid(0, 30, rows), ids);
  std::mt19937 gen(seed);
  std::normal_distribution<double> noise(0.0, 0.3);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (std::size_t k = 0; k < rows; ++k) {
    const double driver = std::sin(0.05 * static_cast<double>(k));
    for (std::size_t c = 0; c < p; ++c) {
      if (unit(gen) < gap_fraction) continue;  // leave the NaN gap
      const double weight = 0.3 + 0.7 * static_cast<double>(c) /
                                      static_cast<double>(p);
      trace.set(k, c, 20.0 + weight * driver + noise(gen));
    }
  }
  return trace;
}

template <typename Fn>
auto at_threads(std::size_t n, Fn&& body) {
  core::ThreadCountScope scope(n);
  return body();
}

}  // namespace

TEST(ParallelKernels, MultiplyMatchesReferenceExactly) {
  // Sized so the row grain actually splits the work across chunks.
  const auto a = random_matrix(211, 97, 1);
  const auto b = random_matrix(97, 83, 2);
  const auto expected = reference_multiply(a, b);
  for (std::size_t threads : {1u, 2u, 8u}) {
    const auto c = at_threads(threads, [&] { return a * b; });
    EXPECT_EQ(c, expected) << "threads=" << threads;
  }
}

TEST(ParallelKernels, GramMatchesReferenceExactly) {
  const auto a = random_matrix(500, 61, 3);
  const auto b = random_matrix(500, 47, 4);
  const auto expected = reference_gram(a, b);
  for (std::size_t threads : {1u, 2u, 8u}) {
    const auto c = at_threads(threads, [&] { return linalg::gram(a, b); });
    EXPECT_EQ(c, expected) << "threads=" << threads;
  }
}

TEST(ParallelKernels, OuterProductBitwiseStableAcrossThreads) {
  const auto a = random_matrix(150, 90, 5);
  const auto b = random_matrix(120, 90, 6);
  const auto serial = at_threads(1, [&] { return linalg::outer_product(a, b); });
  for (std::size_t threads : {2u, 8u}) {
    EXPECT_EQ(at_threads(threads, [&] { return linalg::outer_product(a, b); }),
              serial)
        << "threads=" << threads;
  }
}

TEST(ParallelKernels, RmsDistanceMatrixMatchesPairReference) {
  const auto trace = random_trace(800, 12, 0.15, 7);
  const auto serial = at_threads(1, [&] {
    return timeseries::rms_distance_matrix(trace);
  });
  // Reference per pair: shared-valid samples, ascending rows.
  for (std::size_t i = 0; i < trace.channel_count(); ++i) {
    EXPECT_EQ(serial(i, i), 0.0);
    for (std::size_t j = i + 1; j < trace.channel_count(); ++j) {
      double d2 = 0.0;
      std::size_t n = 0;
      for (std::size_t k = 0; k < trace.size(); ++k) {
        if (trace.valid(k, i) && trace.valid(k, j)) {
          const double d = trace.value(k, i) - trace.value(k, j);
          d2 += d * d;
          ++n;
        }
      }
      ASSERT_GT(n, 0u);
      EXPECT_EQ(serial(i, j), std::sqrt(d2 / static_cast<double>(n)));
      EXPECT_EQ(serial(j, i), serial(i, j));
    }
  }
  for (std::size_t threads : {2u, 8u}) {
    EXPECT_EQ(at_threads(threads,
                         [&] { return timeseries::rms_distance_matrix(trace); }),
              serial)
        << "threads=" << threads;
  }
}

TEST(ParallelKernels, CorrelationMatrixBitwiseStableAcrossThreads) {
  const auto trace = random_trace(900, 10, 0.1, 8);
  const auto serial = at_threads(1, [&] {
    return timeseries::correlation_matrix(trace);
  });
  for (std::size_t i = 0; i < trace.channel_count(); ++i) {
    EXPECT_EQ(serial(i, i), 1.0);
    for (std::size_t j = 0; j < trace.channel_count(); ++j) {
      EXPECT_EQ(serial(i, j), serial(j, i));
      EXPECT_LE(std::abs(serial(i, j)), 1.0 + 1e-12);
    }
  }
  for (std::size_t threads : {2u, 8u}) {
    EXPECT_EQ(at_threads(threads,
                         [&] { return timeseries::correlation_matrix(trace); }),
              serial)
        << "threads=" << threads;
  }
}

TEST(ParallelKernels, CovarianceAndMeansBitwiseStableAcrossThreads) {
  const auto trace = random_trace(700, 9, 0.2, 9);
  const auto cov1 = at_threads(1, [&] {
    return timeseries::covariance_matrix(trace);
  });
  const auto mean1 = at_threads(1, [&] {
    return timeseries::channel_means(trace);
  });
  for (std::size_t threads : {2u, 8u}) {
    EXPECT_EQ(at_threads(threads,
                         [&] { return timeseries::covariance_matrix(trace); }),
              cov1);
    EXPECT_EQ(at_threads(threads,
                         [&] { return timeseries::channel_means(trace); }),
              mean1);
  }
}

TEST(ParallelKernels, EigenSymmetricBitwiseStableAcrossThreads) {
  // Symmetric PSD-ish matrix big enough to engage the reduction chunking.
  const auto g = random_matrix(600, 40, 10);
  const auto s = linalg::gram(g, g);
  const auto serial = at_threads(1, [&] { return linalg::eigen_symmetric(s); });
  for (std::size_t threads : {2u, 8u}) {
    const auto eig = at_threads(threads, [&] {
      return linalg::eigen_symmetric(s);
    });
    EXPECT_EQ(eig.eigenvalues, serial.eigenvalues) << "threads=" << threads;
    EXPECT_EQ(eig.eigenvectors, serial.eigenvectors) << "threads=" << threads;
  }
}

TEST(ParallelKernels, SimilarityGraphInvariantsAcrossThreads) {
  const auto trace = random_trace(600, 14, 0.1, 11);
  for (auto metric : {clustering::SimilarityMetric::kCorrelation,
                      clustering::SimilarityMetric::kEuclidean}) {
    clustering::SimilarityOptions opts;
    opts.metric = metric;
    const auto serial = at_threads(1, [&] {
      return clustering::build_similarity_graph(trace, trace.channels(), opts);
    });
    const std::size_t p = serial.weights.rows();
    for (std::size_t i = 0; i < p; ++i) {
      // Documented invariant: symmetric, zero diagonal (self-similarity is
      // implicit), entries in [0, 1].
      EXPECT_EQ(serial.weights(i, i), 0.0);
      for (std::size_t j = 0; j < p; ++j) {
        EXPECT_EQ(serial.weights(i, j), serial.weights(j, i));
        EXPECT_GE(serial.weights(i, j), 0.0);
        EXPECT_LE(serial.weights(i, j), 1.0);
      }
    }
    for (std::size_t threads : {2u, 8u}) {
      const auto graph = at_threads(threads, [&] {
        return clustering::build_similarity_graph(trace, trace.channels(),
                                                  opts);
      });
      EXPECT_EQ(graph.weights, serial.weights)
          << "threads=" << threads << " metric=" << static_cast<int>(metric);
      EXPECT_EQ(graph.sigma_used, serial.sigma_used);
    }
  }
}
