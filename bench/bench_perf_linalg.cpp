// Performance microbenchmarks for the numeric kernels (google-benchmark):
// matrix products, the three factorizations, least squares and the
// symmetric eigensolvers at the sizes the pipeline actually uses (27
// sensors -> 27-61 column regressions, 27x27 Laplacians, 54x54 augmented
// systems) plus the scaled-up 128/256/512-sensor halls where the
// tridiagonal partial-spectrum path takes over from Jacobi. After the
// google benchmarks, main() runs a single-thread Jacobi-vs-partial
// scaling report on synthetic-grid Laplacians and writes the per-PR
// BENCH_perf_linalg.json artifact (CI's perf-smoke gate).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <vector>

#include "auditherm/clustering/spectral.hpp"
#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/linalg/least_squares.hpp"
#include "auditherm/linalg/sparse.hpp"
#include "auditherm/sim/floorplan.hpp"
#include "bench_common.hpp"

namespace linalg = auditherm::linalg;
using linalg::Matrix;

namespace {

/// Eigenpairs the pipeline asks the partial solver for on big halls:
/// cluster_count/k_max sweeps top out at k_max = 8, so k_max + 1.
constexpr std::size_t kPartialPairs = 9;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = dist(rng);
  return m;
}

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  const auto a = random_matrix(n + 4, n, seed);
  auto spd = linalg::gram(a, a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  return spd;
}

/// The normalized Laplacian of a synthetic `sensor_count`-sensor hall:
/// Gaussian similarity over the grid geometry, exactly the matrix the
/// spectral stage hands the eigensolver for a scaled-up auditorium.
Matrix synthetic_hall_laplacian(std::size_t sensor_count) {
  const auto plan = auditherm::sim::FloorPlan::synthetic_grid(sensor_count);
  std::vector<auditherm::sim::Position> sites;
  for (const auto& s : plan.sensors()) {
    if (!s.is_thermostat) sites.push_back(s.position);
  }
  const std::size_t n = sites.size();
  constexpr double kSigma = 4.0;  // meters; a few grid pitches
  Matrix weights(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double d = auditherm::sim::distance(sites[i], sites[j]);
      weights(i, j) = std::exp(-(d * d) / (2.0 * kSigma * kSigma));
    }
  }
  return auditherm::clustering::normalized_laplacian(weights);
}

void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 1);
  const auto b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatrixMultiply)->Arg(8)->Arg(16)->Arg(27)->Arg(54)->Complexity();

void BM_Gram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(1000, n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::gram(a, a));
  }
}
BENCHMARK(BM_Gram)->Arg(16)->Arg(34)->Arg(61);

void BM_QrFactorize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(1000, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::QrDecomposition(a));
  }
}
BENCHMARK(BM_QrFactorize)->Arg(16)->Arg(34)->Arg(61);

void BM_CholeskySolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_spd(n, 5);
  const auto b = random_matrix(n, 27, 6);
  for (auto _ : state) {
    linalg::CholeskyDecomposition chol(a);
    benchmark::DoNotOptimize(chol.solve(b));
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(16)->Arg(34)->Arg(61);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 7);
  const auto b = random_matrix(n, 1, 8);
  for (auto _ : state) {
    linalg::LuDecomposition lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(16)->Arg(27)->Arg(54);

void BM_EigenSymmetric(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_spd(n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigen_symmetric(a));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EigenSymmetric)
    ->Arg(8)
    ->Arg(16)
    ->Arg(27)
    ->Arg(54)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Complexity();

void BM_EigenTridiagonal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_spd(n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigen_symmetric_tridiagonal(a));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EigenTridiagonal)
    ->Arg(8)
    ->Arg(16)
    ->Arg(27)
    ->Arg(54)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Complexity();

void BM_EigenSmallest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_spd(n, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eigen_symmetric_smallest(a, kPartialPairs));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EigenSmallest)
    ->Arg(27)
    ->Arg(54)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Complexity();

void BM_LeastSquaresRidge(benchmark::State& state) {
  // The exact shape of the paper's second-order occupied-mode regression:
  // ~1800 transitions x 61 parameters, 27 outputs.
  const auto z = random_matrix(1800, 61, 10);
  const auto y = random_matrix(1800, 27, 11);
  linalg::LeastSquaresOptions opts;
  opts.ridge = 1e-7;
  opts.relative_ridge = true;
  opts.prefer_qr = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::solve_least_squares(z, y, opts));
  }
}
BENCHMARK(BM_LeastSquaresRidge);

/// Best-of-`reps` wall time of `fn` in milliseconds.
template <typename Fn>
double best_of_ms(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

/// Gaussian grid weights of a synthetic hall, k-NN sparsified (union of
/// each sensor's `k` strongest neighbors, symmetrized) — the graph shape
/// the clustering layer produces with GraphSparsification::kKnn on a
/// campus-scale deployment.
Matrix sparsified_hall_weights(std::size_t sensor_count, std::size_t k) {
  const auto plan = auditherm::sim::FloorPlan::synthetic_grid(sensor_count);
  std::vector<auditherm::sim::Position> sites;
  for (const auto& s : plan.sensors()) {
    if (!s.is_thermostat) sites.push_back(s.position);
  }
  const std::size_t n = sites.size();
  constexpr double kSigma = 4.0;
  Matrix weights(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double d = auditherm::sim::distance(sites[i], sites[j]);
      weights(i, j) = std::exp(-(d * d) / (2.0 * kSigma * kSigma));
    }
  }
  // Union-symmetrized k-NN keep mask over the strongest weights.
  std::vector<char> keep(n * n, 0);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) order[j] = j;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (weights(i, a) != weights(i, b)) return weights(i, a) > weights(i, b);
      return a < b;
    });
    std::size_t kept = 0;
    for (const std::size_t j : order) {
      if (j == i || weights(i, j) <= 0.0) continue;
      keep[i * n + j] = 1;
      keep[j * n + i] = 1;
      if (++kept == k) break;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (!keep[i * n + j]) weights(i, j) = 0.0;
    }
  }
  return weights;
}

/// Single-thread dense-partial vs sparse-Lanczos comparison on k-NN
/// sparsified campus-scale Laplacians (n = 1024, 2048). Both solvers see
/// the SAME matrix — dense as the compressed CSR's dense twin — so the
/// eigenvalue agreement check is exact apples-to-apples. Appends the
/// `sparse` section that CI's perf-smoke job gates on
/// (sparse_speedup_2048 > 1 and sparse_eigenvalues_agree).
bool run_sparse_report(bench::JsonObject& out) {
  bench::print_header(
      "sparse Lanczos vs dense partial on k-NN Laplacians (1 thread)");
  constexpr std::size_t kNeighbors = 12;

  std::string points = "[";
  double speedup_2048 = 0.0;
  bool all_agree = true;
  for (const std::size_t sensors : {std::size_t{1024}, std::size_t{2048}}) {
    const auto weights = sparsified_hall_weights(sensors, kNeighbors);
    const auto l = auditherm::clustering::normalized_laplacian(weights);
    const auto csr = auditherm::clustering::laplacian_csr(
        weights, auditherm::clustering::LaplacianKind::kSymmetricNormalized);

    linalg::SymmetricEigen dense;
    const double dense_ms = best_of_ms(
        1, [&] { dense = linalg::eigen_symmetric_smallest(l, kPartialPairs); });
    linalg::SymmetricEigen sparse;
    const double sparse_ms = best_of_ms(1, [&] {
      sparse = linalg::eigen_symmetric_smallest_sparse(csr, kPartialPairs);
    });

    bool agree = true;
    for (std::size_t j = 0; j < kPartialPairs; ++j) {
      if (std::abs(sparse.eigenvalues[j] - dense.eigenvalues[j]) > 1e-8) {
        agree = false;
      }
    }
    all_agree = all_agree && agree;

    const double speedup = sparse_ms > 0.0 ? dense_ms / sparse_ms : 0.0;
    if (sensors == 2048) speedup_2048 = speedup;
    std::printf(
        "n=%4zu  nnz=%6zu  dense partial %9.2f ms  sparse lanczos %8.2f ms  "
        "speedup %6.1fx  eigenvalues %s\n",
        l.rows(), csr.nnz(), dense_ms, sparse_ms, speedup,
        agree ? "agree" : "DISAGREE");

    bench::JsonObject point;
    point.add("n", l.rows());
    point.add("nnz", csr.nnz());
    point.add("knn_k", kNeighbors);
    point.add("dense_partial_ms", dense_ms);
    point.add("sparse_lanczos_ms", sparse_ms);
    point.add("speedup_sparse_vs_dense", speedup);
    point.add("eigenvalues_agree", agree);
    std::string body = point.str();
    body.pop_back();  // trailing newline
    if (points.size() > 1) points += ", ";
    points += body;
  }
  points += "]";

  out.add("sparse_speedup_2048", speedup_2048);
  out.add("sparse_eigenvalues_agree", all_agree);
  out.add_raw("sparse", points);
  return all_agree && speedup_2048 > 1.0;
}

/// Single-thread Jacobi vs tridiagonal (full + partial) on the normalized
/// Laplacians of 128/256/512-sensor synthetic halls, with an eigenvalue
/// agreement check, written to BENCH_perf_linalg.json. CI's perf-smoke job
/// gates on the 256-sensor partial-vs-Jacobi speedup staying > 1.
int run_scaling_report() {
  bench::print_header(
      "eigensolver scaling: Jacobi vs tridiagonal partial (1 thread)");
  const auditherm::core::ThreadCountScope single_thread(1);

  std::string points = "[";
  double speedup_256 = 0.0;
  bool all_agree = true;
  for (const std::size_t sensors : {std::size_t{128}, std::size_t{256},
                                    std::size_t{512}}) {
    const auto l = synthetic_hall_laplacian(sensors);
    const std::size_t n = l.rows();
    const int reps = n >= 512 ? 1 : 3;

    linalg::SymmetricEigen jacobi;
    const double jacobi_ms =
        best_of_ms(reps, [&] { jacobi = linalg::eigen_symmetric(l); });
    const double tridiagonal_ms = best_of_ms(
        reps, [&] { benchmark::DoNotOptimize(linalg::eigen_symmetric_tridiagonal(l)); });
    linalg::SymmetricEigen partial;
    const double partial_ms = best_of_ms(
        reps, [&] { partial = linalg::eigen_symmetric_smallest(l, kPartialPairs); });

    // The partial spectrum must reproduce Jacobi's smallest eigenvalues
    // (normalized-Laplacian eigenvalues are O(1), so absolute tolerance).
    bool agree = true;
    for (std::size_t j = 0; j < kPartialPairs; ++j) {
      if (std::abs(partial.eigenvalues[j] - jacobi.eigenvalues[j]) > 1e-8) {
        agree = false;
      }
    }
    all_agree = all_agree && agree;

    const double speedup = partial_ms > 0.0 ? jacobi_ms / partial_ms : 0.0;
    if (n == 256) speedup_256 = speedup;
    std::printf(
        "n=%3zu  jacobi %9.2f ms  tridiagonal %8.2f ms  partial(m=%zu) "
        "%7.2f ms  speedup %6.1fx  eigenvalues %s\n",
        n, jacobi_ms, tridiagonal_ms, kPartialPairs, partial_ms, speedup,
        agree ? "agree" : "DISAGREE");

    bench::JsonObject point;
    point.add("n", n);
    point.add("jacobi_ms", jacobi_ms);
    point.add("tridiagonal_ms", tridiagonal_ms);
    point.add("partial_pairs", kPartialPairs);
    point.add("partial_ms", partial_ms);
    point.add("speedup_partial_vs_jacobi", speedup);
    point.add("eigenvalues_agree", agree);
    std::string body = point.str();
    body.pop_back();  // trailing newline
    if (points.size() > 1) points += ", ";
    points += body;
  }
  points += "]";

  bench::JsonObject out;
  out.add("bench", std::string("perf_linalg"));
  out.add("threads", std::size_t{1});
  out.add("partial_pairs", kPartialPairs);
  out.add("speedup_256", speedup_256);
  out.add("eigenvalues_agree", all_agree);
  out.add_raw("scaling", points);
  const bool sparse_ok = run_sparse_report(out);
  if (!out.write_file("BENCH_perf_linalg.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_perf_linalg.json\n");
    return 1;
  }
  std::printf("wrote BENCH_perf_linalg.json\n");
  return all_agree && sparse_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsSession obs_session;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_scaling_report();
}
