# Empty compiler generated dependencies file for auditherm_selection.
# This may be replaced when dependencies are built.
