// Tests for the shared CLI option parser: the declarative OptionSet,
// the duplicate/unknown/missing-flag error paths, and decoding of the
// common observability flags (--threads, --cache, --metrics-out,
// --trace).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "auditherm/core/cli.hpp"

namespace {

namespace cli = auditherm::core::cli;

cli::OptionSet test_set() {
  return cli::OptionSet(
      "frob",
      {
          {.name = "data", .takes_value = true, .required = true,
           .value_name = "FILE", .help = "input trace"},
          {.name = "clusters", .takes_value = true, .required = false,
           .value_name = "K", .help = "cluster count"},
          {.name = "trace", .takes_value = false, .required = false,
           .value_name = "", .help = "print span tree"},
      });
}

cli::ParsedOptions parse(const cli::OptionSet& set,
                         std::vector<std::string> args) {
  std::vector<const char*> argv{"auditherm", set.command().c_str()};
  for (const auto& a : args) argv.push_back(a.c_str());
  return set.parse(static_cast<int>(argv.size()), argv.data(), 2);
}

/// Expect `parse` to throw a UsageError whose message contains `needle`.
void expect_usage_error(const cli::OptionSet& set,
                        std::vector<std::string> args,
                        const std::string& needle) {
  try {
    (void)parse(set, std::move(args));
    FAIL() << "expected UsageError containing \"" << needle << "\"";
  } catch (const cli::UsageError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(CliOptionSet, ParsesValuesBooleansAndDefaults) {
  const auto set = test_set();
  const auto parsed =
      parse(set, {"--data", "trace.csv", "--clusters", "4", "--trace"});
  EXPECT_TRUE(parsed.has("data"));
  EXPECT_EQ(parsed.require("data"), "trace.csv");
  EXPECT_EQ(parsed.get_long("clusters", 2), 4);
  EXPECT_TRUE(parsed.has("trace"));
  EXPECT_FALSE(parsed.has("seed"));
  EXPECT_EQ(parsed.get("seed"), std::nullopt);
  EXPECT_EQ(parsed.get_long("seed", 7), 7);
}

TEST(CliOptionSet, RejectsDuplicateFlags) {
  const auto set = test_set();
  expect_usage_error(set, {"--data", "a.csv", "--data", "b.csv"},
                     "duplicate flag --data");
  // Boolean flags too — repetition is not idempotent, it is a typo.
  expect_usage_error(set, {"--data", "a.csv", "--trace", "--trace"},
                     "duplicate flag --trace");
}

TEST(CliOptionSet, RejectsUnknownFlagsNamingTheCommand) {
  const auto set = test_set();
  expect_usage_error(set, {"--data", "a.csv", "--bogus", "1"},
                     "unknown flag --bogus");
  expect_usage_error(set, {"--data", "a.csv", "--bogus", "1"}, "frob");
}

TEST(CliOptionSet, RejectsMissingRequiredAndMissingValue) {
  const auto set = test_set();
  expect_usage_error(set, {"--clusters", "4"}, "--data");
  expect_usage_error(set, {"--data"}, "--data expects a value");
}

TEST(CliOptionSet, RejectsFlagLikeValues) {
  const auto set = test_set();
  // `--data --trace` is a forgotten value, not a filename named
  // "--trace"; consuming it used to silently swallow the next flag.
  expect_usage_error(set, {"--data", "--trace"}, "--data expects a value");
  expect_usage_error(set, {"--data", "--clusters", "4"},
                     "--data expects a value");
  // Single-dash tokens are still ordinary values (negative numbers).
  const auto parsed = parse(set, {"--data", "a.csv", "--clusters", "-2"});
  EXPECT_EQ(parsed.require("clusters"), "-2");
}

TEST(CliOptionSet, ParsesEqualsSyntax) {
  const auto set = test_set();
  const auto parsed = parse(set, {"--data=trace.csv", "--clusters=4"});
  EXPECT_EQ(parsed.require("data"), "trace.csv");
  EXPECT_EQ(parsed.get_long("clusters", 2), 4);
}

TEST(CliOptionSet, EqualsSyntaxAllowsFlagLikeAndEmptyValues) {
  const auto set = test_set();
  // The explicit form is the escape hatch for values that *do* begin
  // with "--" (or are empty).
  const auto parsed = parse(set, {"--data=--weird.csv", "--clusters="});
  EXPECT_EQ(parsed.require("data"), "--weird.csv");
  EXPECT_EQ(parsed.require("clusters"), "");
}

TEST(CliOptionSet, EqualsSyntaxRejectedOnBooleanFlags) {
  const auto set = test_set();
  expect_usage_error(set, {"--data", "a.csv", "--trace=1"},
                     "--trace does not take a value");
}

TEST(CliOptionSet, EqualsSyntaxStillRejectsDuplicatesAndUnknowns) {
  const auto set = test_set();
  expect_usage_error(set, {"--data=a.csv", "--data", "b.csv"},
                     "duplicate flag --data");
  expect_usage_error(set, {"--data=a.csv", "--bogus=1"},
                     "unknown flag --bogus");
}

TEST(CliOptionSet, RejectsPositionalArguments) {
  const auto set = test_set();
  expect_usage_error(set, {"trace.csv"}, "trace.csv");
}

TEST(CliOptionSet, GetLongRejectsNonIntegers) {
  const auto set = test_set();
  const auto parsed = parse(set, {"--data", "a.csv", "--clusters", "4x"});
  EXPECT_THROW((void)parsed.get_long("clusters", 0), cli::UsageError);
}

TEST(CliOptionSet, RequireThrowsWhenAbsent) {
  const auto set = test_set();
  const auto parsed = parse(set, {"--data", "a.csv"});
  EXPECT_THROW((void)parsed.require("clusters"), cli::UsageError);
}

TEST(CliOptionSet, DuplicateSpecNamesAreAProgrammingError) {
  cli::OptionSpec x;
  x.name = "x";
  EXPECT_THROW(cli::OptionSet("bad", {x, x}), std::invalid_argument);
}

TEST(CliOptionSet, UsageListsEveryFlag) {
  const auto set = test_set();
  const auto usage = set.usage();
  EXPECT_NE(usage.find("frob"), std::string::npos);
  EXPECT_NE(usage.find("--data"), std::string::npos);
  EXPECT_NE(usage.find("--clusters"), std::string::npos);
  EXPECT_NE(usage.find("--trace"), std::string::npos);
  EXPECT_NE(usage.find("FILE"), std::string::npos);
}

// --- Common observability flags ------------------------------------------

cli::OptionSet common_set() {
  return cli::OptionSet("common", cli::common_options());
}

TEST(CliCommonOptions, DefaultsWhenNoFlagsGiven) {
  const auto common = cli::parse_common(parse(common_set(), {}));
  EXPECT_EQ(common.threads, 0u);
  EXPECT_TRUE(common.cache);
  EXPECT_TRUE(common.metrics_out.empty());
  EXPECT_FALSE(common.trace);
  EXPECT_FALSE(common.observability_enabled());
}

TEST(CliCommonOptions, DecodesAllFourFlags) {
  const auto common = cli::parse_common(
      parse(common_set(), {"--threads", "4", "--cache", "off",
                           "--metrics-out", "m.json", "--trace"}));
  EXPECT_EQ(common.threads, 4u);
  EXPECT_FALSE(common.cache);
  EXPECT_EQ(common.metrics_out, "m.json");
  EXPECT_TRUE(common.trace);
  EXPECT_TRUE(common.observability_enabled());
}

TEST(CliCommonOptions, MetricsOutAloneEnablesObservability) {
  const auto common = cli::parse_common(
      parse(common_set(), {"--metrics-out", "m.json"}));
  EXPECT_FALSE(common.trace);
  EXPECT_TRUE(common.observability_enabled());
}

TEST(CliCommonOptions, RejectsBadCacheAndNegativeThreads) {
  EXPECT_THROW(
      (void)cli::parse_common(parse(common_set(), {"--cache", "maybe"})),
      cli::UsageError);
  EXPECT_THROW(
      (void)cli::parse_common(parse(common_set(), {"--threads", "-2"})),
      cli::UsageError);
}

}  // namespace

TEST(CliOptionSet, GetDoubleParsesAndRejects) {
  const auto set = test_set();
  const auto parsed = parse(set, {"--data", "t.csv", "--clusters", "0.25"});
  EXPECT_DOUBLE_EQ(parsed.get_double("clusters", 1.0), 0.25);
  EXPECT_DOUBLE_EQ(parsed.get_double("missing", 0.5), 0.5);
  const auto bad = parse(set, {"--data", "t.csv", "--clusters", "0.2x"});
  EXPECT_THROW((void)bad.get_double("clusters", 0.0), cli::UsageError);
}
