#include "auditherm/timeseries/multi_trace.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "auditherm/obs/trace_span.hpp"

namespace auditherm::timeseries {

namespace {

constexpr double kGap = std::numeric_limits<double>::quiet_NaN();

/// Every materializing API routes its copied sample count through here so
/// the copy-vs-view benchmarks can read one counter.
void note_bytes_copied(std::size_t samples) {
  static const obs::MetricId kBytesCopied =
      obs::counter_id("timeseries.bytes_copied");
  obs::add_counter(kBytesCopied, samples * sizeof(double));
}

}  // namespace

MultiTrace::MultiTrace(TimeGrid grid, std::vector<ChannelId> channels)
    : grid_(grid),
      channels_(std::move(channels)),
      values_(grid.size(), channels_.size(), kGap) {
  std::unordered_set<ChannelId> seen;
  for (ChannelId id : channels_) {
    if (!seen.insert(id).second) {
      throw std::invalid_argument("MultiTrace: duplicate channel id " +
                                  std::to_string(id));
    }
  }
}

std::optional<std::size_t> MultiTrace::channel_index(
    ChannelId id) const noexcept {
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    if (channels_[c] == id) return c;
  }
  return std::nullopt;
}

std::size_t MultiTrace::require_channel(ChannelId id) const {
  if (auto c = channel_index(id)) return *c;
  throw std::invalid_argument("MultiTrace: unknown channel id " +
                              std::to_string(id));
}

bool MultiTrace::valid(std::size_t k, std::size_t c) const noexcept {
  return !std::isnan(values_(k, c));
}

void MultiTrace::clear(std::size_t k, std::size_t c) noexcept {
  values_(k, c) = kGap;
}

linalg::Vector MultiTrace::channel_series(ChannelId id) const {
  note_bytes_copied(size());
  return values_.col_vector(require_channel(id));
}

MultiTrace MultiTrace::select_channels(
    const std::vector<ChannelId>& ids) const {
  note_bytes_copied(size() * ids.size());
  MultiTrace out(grid_, ids);
  for (std::size_t c = 0; c < ids.size(); ++c) {
    const std::size_t src = require_channel(ids[c]);
    for (std::size_t k = 0; k < size(); ++k) {
      out.values_(k, c) = values_(k, src);
    }
  }
  return out;
}

MultiTrace MultiTrace::slice_rows(std::size_t first, std::size_t last) const {
  if (first > last || last > size()) {
    throw std::out_of_range("MultiTrace::slice_rows");
  }
  note_bytes_copied((last - first) * channel_count());
  TimeGrid g(grid_.start() + static_cast<Minutes>(first) * grid_.step(),
             grid_.step(), last - first);
  MultiTrace out(g, channels_);
  for (std::size_t k = first; k < last; ++k) {
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      out.values_(k - first, c) = values_(k, c);
    }
  }
  return out;
}

MultiTrace MultiTrace::filter_rows(const std::vector<bool>& keep) const {
  if (keep.size() != size()) {
    throw std::invalid_argument("MultiTrace::filter_rows: mask size mismatch");
  }
  std::size_t n = 0;
  for (bool b : keep) n += b ? 1 : 0;
  note_bytes_copied(n * channel_count());
  TimeGrid g(grid_.start(), grid_.step(), n);
  MultiTrace out(g, channels_);
  std::size_t row = 0;
  for (std::size_t k = 0; k < size(); ++k) {
    if (!keep[k]) continue;
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      out.values_(row, c) = values_(k, c);
    }
    ++row;
  }
  return out;
}

double MultiTrace::coverage() const noexcept {
  const std::size_t total = size() * channel_count();
  if (total == 0) return 0.0;
  std::size_t present = 0;
  for (double v : values_.data()) present += std::isnan(v) ? 0 : 1;
  return static_cast<double>(present) / static_cast<double>(total);
}

}  // namespace auditherm::timeseries
