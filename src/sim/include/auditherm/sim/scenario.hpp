#pragma once

/// \file scenario.hpp
/// Fleet-scale scenario generation: a declarative `ScenarioSpec` unifying
/// everything `generate_dataset` can vary (building geometry, season,
/// occupancy regime, HVAC program, run length, seed) and a `run_fleet`
/// that simulates many buildings in parallel as independent logical
/// processes on the deterministic thread pool.
///
/// The paper's dataset is one 14-week trace of one auditorium; training
/// corpora for the identification/clustering stack need thousands of
/// building variants x seasons x occupancy regimes. Each ScenarioSpec is
/// one such variant; `run_fleet` schedules one logical process per
/// building, each seeded independently, so
///   * the fleet result is **bitwise identical at any thread count** and
///     under any spec-order shuffle (every outcome is a pure function of
///     its spec alone — LP decomposition as in ROOT-Sim's PCS model, but
///     with no cross-LP events, so no GVT is needed);
///   * changing one building's seed leaves every other building's trace
///     bitwise unchanged (per-seed independence);
///   * a fleet-of-1 paper-hall spec reproduces `generate_dataset(config)`
///     byte-for-byte.
///
/// Seed-derivation contract: `ScenarioSpec::seed` is the entity seed; it
/// feeds `DatasetConfig::seed`, and generate_dataset mixes it into the
/// weather/occupancy sub-model seeds with fixed odd multipliers (see
/// dataset.cpp). Specs that omit an explicit seed in a fleet file get
/// `derive_entity_seed(base_seed, index)` — a splitmix64 stream over the
/// spec index — so one base seed reproduces the whole corpus while every
/// building still sees an independent, well-mixed 64-bit seed.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "auditherm/sim/dataset.hpp"

namespace auditherm::sim {

/// splitmix64 finalizer: a bijective 64-bit mix with full avalanche; the
/// same hash family the deterministic eigensolver start vectors use.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Per-entity seed for logical process `index` of a fleet seeded with
/// `base`: position `index + 1` of the splitmix64 stream starting at
/// `base`. Distinct indices give independent seeds; distinct bases give
/// disjoint corpora.
[[nodiscard]] constexpr std::uint64_t derive_entity_seed(
    std::uint64_t base, std::uint64_t index) noexcept {
  return splitmix64(base + 0x9E3779B97F4A7C15ull * index);
}

/// Which floor plan the scenario simulates.
enum class BuildingKind {
  kPaperHall,  ///< FloorPlan::brauer_auditorium()
  kGrid,       ///< FloorPlan::synthetic_grid(sensors)
  kCampus,     ///< FloorPlan::synthetic_campus(halls, sensors_per_hall)
};

/// Weather preset applied to WeatherConfig. kPaper keeps the defaults
/// (the paper's Jan 31 - May 8 winter-to-spring ramp).
enum class Season { kPaper, kWinter, kSummer, kShoulder };

/// Occupancy-calendar preset applied to OccupancyConfig. kPaper keeps the
/// defaults (the auditorium's class/seminar schedule).
enum class OccupancyRegime { kPaper, kQuiet, kBusy };

/// HVAC program preset. kPaper keeps the defaults (dual-mode thermostat
/// supply); kFixedSupply models a fixed-discharge AHU without reheat;
/// kEco widens the comfort band and raises the setpoint to save energy.
enum class HvacRegime { kPaper, kFixedSupply, kEco };

/// One building scenario — the unified knob set over generate_dataset's
/// DatasetConfig plus the floor-plan choice. Field defaults reproduce the
/// paper run exactly: a default-constructed spec is the 98-day paper-hall
/// dataset, bitwise.
struct ScenarioSpec {
  /// Scenario id: names output files (<name>.csv) and manifest entries.
  /// Restricted to [A-Za-z0-9._-], at most 64 chars, so names embed into
  /// file paths and hand-rolled JSON without escaping.
  std::string name = "scenario";

  BuildingKind building = BuildingKind::kPaperHall;
  std::size_t sensors = 64;           ///< kGrid: wireless sensor count
  std::size_t halls = 2;              ///< kCampus: hall count
  std::size_t sensors_per_hall = 32;  ///< kCampus: per-hall sensors

  Season season = Season::kPaper;
  OccupancyRegime occupancy = OccupancyRegime::kPaper;
  HvacRegime hvac = HvacRegime::kPaper;

  std::size_t days = 98;          ///< run length (the paper's ~14 weeks)
  std::size_t failure_days = 34;  ///< whole-system outage days
  double dropout = 0.04;          ///< per sensor-day wireless dropout prob.
  std::uint64_t seed = 1234;      ///< entity seed (see header comment)

  bool operator==(const ScenarioSpec&) const = default;

  /// Throws std::invalid_argument (message includes `name`) on a bad name,
  /// zero days, failure_days > days, dropout outside [0, 1], or a
  /// synthetic building too large for the reserved flow-channel band
  /// (more than 288 sensors => more than 9 VAVs).
  void validate() const;
};

/// The spec's floor plan. Validates first.
[[nodiscard]] FloorPlan scenario_plan(const ScenarioSpec& spec);

/// The spec composed down onto generate_dataset's DatasetConfig: season /
/// occupancy / HVAC presets applied, days/failure_days/dropout/seed
/// copied. A default spec yields a default DatasetConfig. Validates first.
[[nodiscard]] DatasetConfig scenario_config(const ScenarioSpec& spec);

/// Simulate one scenario: generate_dataset(scenario_plan, scenario_config).
[[nodiscard]] AuditoriumDataset run_scenario(const ScenarioSpec& spec);

/// Canonical JSON encoding of a spec (every field, declared order; the
/// seed as a number when it fits a double exactly, else a decimal
/// string). serve::scenario_from_json parses it back losslessly.
[[nodiscard]] std::string scenario_to_json(const ScenarioSpec& spec);

/// Fleet execution options.
struct FleetOptions {
  /// When non-empty: write <name>.csv, <name>.truth.csv and manifest.json
  /// into this directory (created if missing) and drop the in-memory
  /// datasets after fingerprinting (unless keep_datasets). When empty:
  /// nothing is written and every outcome retains its dataset.
  std::string out_dir;
  /// Retain datasets in the outcomes even when writing to out_dir.
  bool keep_datasets = false;
};

/// What one logical process produced.
struct ScenarioOutcome {
  ScenarioSpec spec;  ///< the resolved spec (seed filled in)
  std::size_t sensor_count = 0;
  std::size_t samples = 0;
  std::size_t channels = 0;
  std::size_t control_steps = 0;  ///< recorded main-loop plant steps
  double coverage = 0.0;          ///< trace.coverage()
  /// FNV-1a over the exact CSV bytes of the trace / the ground truth —
  /// the unit of every bitwise-determinism claim and manifest entry.
  std::uint64_t trace_fingerprint = 0;
  std::uint64_t truth_fingerprint = 0;
  std::string trace_file;  ///< file name under out_dir ("" when unwritten)
  std::string truth_file;
  double wall_seconds = 0.0;  ///< this building's simulation wall time
  /// Present when FleetOptions kept datasets (always without out_dir).
  std::optional<AuditoriumDataset> dataset;
};

/// Simulate every spec as an independent logical process, scheduled
/// dynamically on the deterministic thread pool, and return outcomes in
/// spec order. Throws std::invalid_argument on an invalid spec or a
/// duplicate name, std::runtime_error when out_dir cannot be written
/// (checked before any simulation runs).
[[nodiscard]] std::vector<ScenarioOutcome> run_fleet(
    const std::vector<ScenarioSpec>& specs, const FleetOptions& options = {});

/// The fleet manifest as deterministic JSON ("auditherm.fleet-manifest"
/// v1): building count, total steps, and one entry per scenario with the
/// resolved spec, shape, coverage, and hex fingerprints. run_fleet writes
/// this to <out_dir>/manifest.json; wall times are deliberately excluded
/// so the manifest bytes are reproducible.
[[nodiscard]] std::string fleet_manifest_json(
    const std::vector<ScenarioOutcome>& outcomes);

}  // namespace auditherm::sim
