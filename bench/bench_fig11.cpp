// Fig. 11: accuracy of the SIMPLIFIED thermal models — identify a reduced
// second-order model over the selected sensors and measure how well its
// open-loop predictions track the measured cluster means, for SMS / SRS /
// RS across cluster counts.
//
// Paper: models built on SMS/SRS-selected sensors predict the cluster
// means more accurately than RS-based ones, and the error falls as the
// cluster count (hence model size) grows.

#include "bench_common.hpp"

using namespace auditherm;

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Fig. 11: reduced-model accuracy vs cluster count");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);

  std::printf("%-10s %-10s %-10s %-10s\n", "clusters", "SMS", "SRS", "RS");
  linalg::Vector sms_curve, srs_curve, rs_curve;
  constexpr int kSeeds = 5;  // reduced models are costlier than raw selection

  // One SMS case plus kSeeds SRS/RS cases per cluster count. Every case
  // at a given k shares the Step-1 prefix, and the training view /
  // similarity graph / eigendecomposition are shared across ALL k through
  // the sweep-spanning cache — only the clustering stage rebuilds per k.
  std::vector<core::SweepCase> cases;
  cases.push_back({core::SelectionStrategy::kStratifiedNearMean, 1});
  for (int seed = 1; seed <= kSeeds; ++seed) {
    cases.push_back({core::SelectionStrategy::kStratifiedRandom,
                     static_cast<std::uint64_t>(seed)});
  }
  for (int seed = 1; seed <= kSeeds; ++seed) {
    cases.push_back({core::SelectionStrategy::kSimpleRandom,
                     static_cast<std::uint64_t>(seed)});
  }

  core::StageCache cache;
  for (std::size_t k = 2; k <= 8; ++k) {
    core::PipelineConfig base;
    base.spectral.cluster_count = k;
    const auto sweep = core::run_strategy_sweep(
        base, cases, dataset.trace, dataset.schedule, split,
        dataset.wireless_ids(), dataset.input_ids(),
        core::RunOptions{.thermostat_ids = dataset.thermostat_ids(),
                         .cache = &cache});
    const auto p99 = [&](std::size_t i) {
      return sweep[i].cluster_mean_errors.percentile(99.0);
    };
    const double sms = p99(0);
    double srs = 0.0, rs = 0.0;
    for (int s = 0; s < kSeeds; ++s) {
      srs += p99(1 + static_cast<std::size_t>(s));
      rs += p99(1 + static_cast<std::size_t>(kSeeds + s));
    }
    srs /= kSeeds;
    rs /= kSeeds;
    std::printf("%-10zu %-10.3f %-10.3f %-10.3f\n", k, sms, srs, rs);
    sms_curve.push_back(sms);
    srs_curve.push_back(srs);
    rs_curve.push_back(rs);
  }

  std::size_t sms_wins = 0, srs_wins = 0;
  for (std::size_t i = 0; i < sms_curve.size(); ++i) {
    if (sms_curve[i] < rs_curve[i]) ++sms_wins;
    if (srs_curve[i] < rs_curve[i]) ++srs_wins;
  }
  const bool improves = sms_curve.back() < sms_curve.front();
  std::printf("\nshape checks: SMS beats RS at %zu/7 cluster counts | SRS "
              "beats RS at %zu/7 | SMS error falls as clusters grow: %s\n",
              sms_wins, srs_wins, improves ? "yes" : "NO");
  bench::print_cache_stats(cache);
  return 0;
}
