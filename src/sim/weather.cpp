#include "auditherm/sim/weather.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

namespace auditherm::sim {

WeatherModel::WeatherModel(const WeatherConfig& config, std::size_t days)
    : config_(config) {
  if (days == 0) throw std::invalid_argument("WeatherModel: days == 0");
  if (std::abs(config.ar1_coefficient) >= 1.0 || config.ar1_noise_std_c < 0.0 ||
      config.day_offset_std_c < 0.0 || config.season_days <= 0.0) {
    throw std::invalid_argument("WeatherModel: inconsistent config");
  }
  std::mt19937_64 rng(config.seed);
  std::normal_distribution<double> day_noise(0.0, config.day_offset_std_c);
  day_offsets_.resize(days);
  // Weather systems persist a few days; smooth the iid draws.
  std::vector<double> raw(days);
  for (double& r : raw) r = day_noise(rng);
  for (std::size_t d = 0; d < days; ++d) {
    double s = 0.0;
    double w = 0.0;
    for (int off = -2; off <= 2; ++off) {
      const auto idx = static_cast<std::ptrdiff_t>(d) + off;
      if (idx < 0 || idx >= static_cast<std::ptrdiff_t>(days)) continue;
      const double weight = 1.0 / (1.0 + std::abs(off));
      s += weight * raw[static_cast<std::size_t>(idx)];
      w += weight;
    }
    day_offsets_[d] = s / w;
  }

  std::normal_distribution<double> ar_noise(0.0, config.ar1_noise_std_c);
  ar1_path_.resize(days * static_cast<std::size_t>(timeseries::kMinutesPerDay));
  double x = 0.0;
  for (double& v : ar1_path_) {
    x = config.ar1_coefficient * x + ar_noise(rng);
    v = x;
  }
}

double WeatherModel::deterministic_at(timeseries::Minutes t) const noexcept {
  const double day = static_cast<double>(t) /
                     static_cast<double>(timeseries::kMinutesPerDay);
  const double season_frac =
      std::clamp(day / config_.season_days, 0.0, 1.0);
  const double seasonal =
      config_.start_mean_c +
      season_frac * (config_.end_mean_c - config_.start_mean_c);
  const double phase =
      2.0 * std::numbers::pi *
      static_cast<double>(timeseries::minute_of_day(t) -
                          config_.coldest_minute) /
      static_cast<double>(timeseries::kMinutesPerDay);
  // Minimum at coldest_minute: -cos starts at the trough.
  const double diurnal = -config_.diurnal_amplitude_c * std::cos(phase);
  return seasonal + diurnal;
}

double WeatherModel::temperature_at(timeseries::Minutes t) const noexcept {
  const auto max_minute =
      static_cast<timeseries::Minutes>(ar1_path_.size()) - 1;
  const auto tc = std::clamp<timeseries::Minutes>(t, 0, max_minute);
  const auto day = static_cast<std::size_t>(timeseries::day_of(tc));
  return deterministic_at(tc) + day_offsets_[std::min(day, days() - 1)] +
         ar1_path_[static_cast<std::size_t>(tc)];
}

}  // namespace auditherm::sim
