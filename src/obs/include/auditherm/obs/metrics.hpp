#pragma once

/// \file metrics.hpp
/// Lock-cheap metrics registry: counters, gauges, and fixed-layout
/// histograms, recorded into per-thread shards and merged deterministically
/// at snapshot time.
///
/// Design (see DESIGN.md §"Observability"):
///   * Metric names are interned process-wide into dense indices
///     (counter_id() / gauge_id() / histogram_id()); hot paths resolve a
///     MetricId once (function-local static) and then record with one
///     relaxed atomic RMW into a thread-local shard — no lock, no string.
///   * Each thread gets its own shard per registry, created on first use
///     (the only locked path). Writes are single-writer; atomics exist
///     only so a concurrent snapshot never reads a torn value.
///   * snapshot() merges shards **in registration order** and sorts the
///     output by metric name. Counter and bucket merges are integer sums
///     (order-independent); histogram value sums are doubles folded in
///     that fixed shard order. Recording never feeds back into the
///     computation being measured, which is why instrumented runs stay
///     bitwise identical to uninstrumented ones.
///   * Gauges are last-write-wins and rare; they live under the registry
///     mutex rather than in shards.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace auditherm::obs {

/// True when observability instrumentation is compiled in (the default);
/// building with -DAUDITHERM_OBS=OFF defines AUDITHERM_NO_OBS, turning the
/// hot-path helpers in trace_span.hpp into constant-folded no-ops. The
/// registry itself stays real in both modes — StageCache's hit/miss
/// accessors are backed by it.
#if defined(AUDITHERM_NO_OBS)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// The one fixed histogram bucket layout: exponential, bucket b counts
/// values <= 2^b (b = 0..kBucketCount-2), last bucket is the overflow.
/// Durations are recorded in microseconds, so the layout spans 1 µs to
/// ~67 s before overflowing — wide enough for any stage this library runs.
struct HistogramLayout {
  static constexpr std::size_t kBucketCount = 28;

  /// Upper bound of bucket b (inclusive); the last bucket is unbounded.
  [[nodiscard]] static constexpr double upper_bound(std::size_t b) noexcept {
    return static_cast<double>(std::uint64_t{1} << b);
  }

  /// Index of the bucket `value` falls into (negatives clamp to bucket 0).
  [[nodiscard]] static std::size_t bucket_of(double value) noexcept;
};

/// Dense handle for an interned metric; resolve once, record many times.
class MetricId {
 public:
  constexpr MetricId() = default;

  [[nodiscard]] constexpr bool valid() const noexcept {
    return index_ != kInvalid;
  }
  [[nodiscard]] constexpr std::size_t index() const noexcept { return index_; }
  /// Shard slot for histogram metrics (kInvalid otherwise).
  [[nodiscard]] constexpr std::size_t histogram_slot() const noexcept {
    return slot_;
  }

 private:
  friend MetricId intern_metric(std::string_view, MetricKind);
  static constexpr std::size_t kInvalid = static_cast<std::size_t>(-1);
  constexpr MetricId(std::size_t index, std::size_t slot) noexcept
      : index_(index), slot_(slot) {}

  std::size_t index_ = kInvalid;
  std::size_t slot_ = kInvalid;
};

/// Intern `name` as a metric of `kind`, returning its dense id. Idempotent
/// for a (name, kind) pair; throws std::invalid_argument when the name was
/// already interned with a different kind, std::length_error past the
/// fixed capacity (256 metrics / 64 histograms).
[[nodiscard]] MetricId intern_metric(std::string_view name, MetricKind kind);

[[nodiscard]] inline MetricId counter_id(std::string_view name) {
  return intern_metric(name, MetricKind::kCounter);
}
[[nodiscard]] inline MetricId gauge_id(std::string_view name) {
  return intern_metric(name, MetricKind::kGauge);
}
[[nodiscard]] inline MetricId histogram_id(std::string_view name) {
  return intern_metric(name, MetricKind::kHistogram);
}

/// Merged view of one histogram.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, HistogramLayout::kBucketCount> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Deterministic merged view of a registry: every sequence sorted by
/// metric name; zero-valued counters and empty histograms are omitted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Thread-sharded metrics store. Recording through a MetricId is
/// lock-free after a thread's first touch; name-based conveniences intern
/// on the fly (two short critical sections) and suit cold paths like
/// StageCache bookkeeping.
class MetricsRegistry {
 public:
  /// Fixed shard capacities; intern_metric throws beyond them.
  static constexpr std::size_t kMaxMetrics = 256;
  static constexpr std::size_t kMaxHistograms = 64;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void add(MetricId id, std::uint64_t delta = 1) noexcept;
  void set(MetricId id, double value);
  void observe(MetricId id, double value) noexcept;

  void add_counter(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value);
  void observe_histogram(std::string_view name, double value);

  /// Current value of a counter by name (0 when never recorded here).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Shard;

  [[nodiscard]] Shard& local_shard() noexcept;
  Shard& register_shard();

  /// Process-unique identity for the thread-local shard cache; never
  /// reused, so a stale cache entry can't match a new registry that
  /// happens to land at the same address.
  const std::uint64_t epoch_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::thread::id, Shard*> shard_by_thread_;
  std::map<std::size_t, double> gauges_;  ///< metric index -> last value
};

}  // namespace auditherm::obs
