# Empty compiler generated dependencies file for auditherm_sysid.
# This may be replaced when dependencies are built.
