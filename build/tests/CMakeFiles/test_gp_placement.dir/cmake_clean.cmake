file(REMOVE_RECURSE
  "CMakeFiles/test_gp_placement.dir/test_gp_placement.cpp.o"
  "CMakeFiles/test_gp_placement.dir/test_gp_placement.cpp.o.d"
  "test_gp_placement"
  "test_gp_placement.pdb"
  "test_gp_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gp_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
