#include "auditherm/clustering/similarity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "auditherm/timeseries/trace_stats.hpp"

namespace auditherm::clustering {

namespace {

/// Keep only the symmetrized union of each vertex's k strongest edges.
/// Neighbor ranking sorts by (weight descending, index ascending) — the
/// index tie-break is what makes the sparsified pattern deterministic when
/// several neighbors share a weight (common with perfectly correlated
/// synthetic traces).
void sparsify_knn(linalg::Matrix& weights, std::size_t k) {
  const std::size_t p = weights.rows();
  std::vector<std::vector<bool>> keep(p, std::vector<bool>(p, false));
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < p; ++i) {
    order.clear();
    for (std::size_t j = 0; j < p; ++j) {
      if (j != i && weights(i, j) > 0.0) order.push_back(j);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (weights(i, a) != weights(i, b)) {
        return weights(i, a) > weights(i, b);
      }
      return a < b;
    });
    for (std::size_t r = 0; r < std::min(k, order.size()); ++r) {
      keep[i][order[r]] = true;
      keep[order[r]][i] = true;
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      if (i != j && !keep[i][j]) weights(i, j) = 0.0;
    }
  }
}

/// Count undirected weight>0 edges and connected components (BFS).
void connectivity_diagnostics(SimilarityGraph& graph) {
  const std::size_t p = graph.weights.rows();
  graph.edge_count = 0;
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i + 1; j < p; ++j) {
      if (graph.weights(i, j) > 0.0) ++graph.edge_count;
    }
  }
  graph.component_count = 0;
  std::vector<bool> seen(p, false);
  std::vector<std::size_t> queue;
  for (std::size_t start = 0; start < p; ++start) {
    if (seen[start]) continue;
    ++graph.component_count;
    queue.assign(1, start);
    seen[start] = true;
    while (!queue.empty()) {
      const std::size_t v = queue.back();
      queue.pop_back();
      for (std::size_t j = 0; j < p; ++j) {
        if (!seen[j] && graph.weights(v, j) > 0.0) {
          seen[j] = true;
          queue.push_back(j);
        }
      }
    }
  }
}

}  // namespace

SimilarityGraph build_similarity_graph(
    const timeseries::TraceView& trace,
    const std::vector<timeseries::ChannelId>& channels,
    const SimilarityOptions& options) {
  if (channels.size() < 2) {
    throw std::invalid_argument("build_similarity_graph: need >= 2 channels");
  }
  const auto sub = trace.select_channels(channels);
  const std::size_t p = channels.size();

  SimilarityGraph graph;
  graph.channels = channels;
  graph.weights = linalg::Matrix(p, p);

  if (options.metric == SimilarityMetric::kEuclidean) {
    const auto dist = timeseries::rms_distance_matrix(sub);
    std::vector<double> pair_dists;
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = i + 1; j < p; ++j) {
        if (std::isinf(dist(i, j))) {
          throw std::runtime_error(
              "build_similarity_graph: channel pair shares no samples");
        }
        pair_dists.push_back(dist(i, j));
      }
    }
    double sigma = options.sigma;
    if (sigma <= 0.0) {
      // Median heuristic keeps the kernel scale matched to the data.
      std::nth_element(pair_dists.begin(),
                       pair_dists.begin() +
                           static_cast<std::ptrdiff_t>(pair_dists.size() / 2),
                       pair_dists.end());
      sigma = pair_dists[pair_dists.size() / 2];
      if (sigma <= 0.0) sigma = 1.0;  // identical traces: any scale works
    }
    graph.sigma_used = sigma;
    const double two_s2 = 2.0 * sigma * sigma;
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = i + 1; j < p; ++j) {
        const double w = std::exp(-dist(i, j) * dist(i, j) / two_s2);
        graph.weights(i, j) = w;
        graph.weights(j, i) = w;
      }
    }
  } else {
    const auto corr = timeseries::correlation_matrix(sub);
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = i + 1; j < p; ++j) {
        // Clamp into [0, 1]: roundoff can push a perfect correlation a few
        // ulps above 1.
        const double w = std::clamp(corr(i, j), 0.0, 1.0);
        graph.weights(i, j) = w;
        graph.weights(j, i) = w;
      }
    }
  }

  if (options.sparsification == GraphSparsification::kKnn) {
    sparsify_knn(graph.weights, options.knn_k);
    connectivity_diagnostics(graph);
    return graph;
  }

  // Sparsify: epsilon-graph by absolute threshold and/or weight quantile,
  // with a per-vertex kNN floor so nothing disconnects.
  double cutoff = options.threshold;
  if (options.threshold_quantile > 0.0) {
    std::vector<double> weights;
    weights.reserve(p * (p - 1) / 2);
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = i + 1; j < p; ++j) {
        weights.push_back(graph.weights(i, j));
      }
    }
    const auto nth = static_cast<std::size_t>(
        options.threshold_quantile * static_cast<double>(weights.size() - 1));
    std::nth_element(weights.begin(),
                     weights.begin() + static_cast<std::ptrdiff_t>(nth),
                     weights.end());
    cutoff = std::max(cutoff, weights[nth]);
  }
  if (cutoff > 0.0) {
    // Protected edges: each vertex's strongest knn_floor links.
    std::vector<std::vector<bool>> keep(p, std::vector<bool>(p, false));
    for (std::size_t i = 0; i < p; ++i) {
      std::vector<std::size_t> order;
      for (std::size_t j = 0; j < p; ++j) {
        if (j != i) order.push_back(j);
      }
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return graph.weights(i, a) > graph.weights(i, b);
      });
      for (std::size_t r = 0; r < std::min(options.knn_floor, order.size());
           ++r) {
        keep[i][order[r]] = true;
        keep[order[r]][i] = true;
      }
    }
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        if (i != j && !keep[i][j] && graph.weights(i, j) < cutoff) {
          graph.weights(i, j) = 0.0;
        }
      }
    }
  }
  connectivity_diagnostics(graph);
  return graph;
}

}  // namespace auditherm::clustering
