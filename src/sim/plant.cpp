#include "auditherm/sim/plant.hpp"

#include <cmath>
#include <stdexcept>

#include "auditherm/hvac/vav.hpp"

namespace auditherm::sim {

ZonalPlant::ZonalPlant(const FloorPlan& plan, const PlantConfig& config)
    : plan_(plan), config_(config) {
  if (config.air_heat_capacity_j_k <= 0.0 ||
      config.mass_heat_capacity_j_k <= 0.0 || config.mass_coupling_w_k <= 0.0 ||
      config.mixing_conductance_w_k <= 0.0 || config.mixing_length_m <= 0.0 ||
      config.wall_conductance_w_k < 0.0 || config.outlet_spread_m <= 0.0 ||
      config.mixing_delay_tau_s < 0.0) {
    throw std::invalid_argument("ZonalPlant: inconsistent config");
  }
  const auto& sites = plan_.sensors();
  const std::size_t n = sites.size();
  if (config.room_volume_m3 <= 0.0 || config.co2_per_person_m3_s < 0.0) {
    throw std::invalid_argument("ZonalPlant: inconsistent CO2 config");
  }
  air_temps_.assign(n, config.initial_temp_c);
  mass_temps_.assign(n, config.initial_temp_c);
  forcing_.assign(n, 0.0);
  co2_ppm_ = config.initial_co2_ppm;

  // Pairwise air-mixing conductances with a Gaussian distance kernel.
  mixing_ = linalg::Matrix(n, n);
  const double two_l2 = 2.0 * config.mixing_length_m * config.mixing_length_m;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = distance(sites[i].position, sites[j].position);
      const double g = config.mixing_conductance_w_k * std::exp(-d * d / two_l2);
      mixing_(i, j) = g;
      mixing_(j, i) = g;
    }
  }

  // Wall leakage: nodes within the wall band couple to ambient, stronger
  // the closer they sit to the envelope.
  wall_conductance_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double wd = plan_.wall_distance(sites[i].position);
    if (wd < config.wall_band_m) {
      wall_conductance_[i] =
          config.wall_conductance_w_k * (1.0 - wd / config.wall_band_m);
    }
  }

  // Supply-jet weights: each outlet's air distributes over nodes with a
  // Gaussian spread; columns normalized so each outlet's flow is conserved.
  const auto& outlets = plan_.air_outlets();
  outlet_weights_ = linalg::Matrix(n, outlets.size());
  const double two_s2 = 2.0 * config.outlet_spread_m * config.outlet_spread_m;
  for (std::size_t o = 0; o < outlets.size(); ++o) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // Distance to the diffuser line, so supply spreads along its span.
      const double d = distance(sites[i].position, outlets[o]);
      const double w = std::exp(-d * d / two_s2);
      outlet_weights_(i, o) = w;
      sum += w;
    }
    for (std::size_t i = 0; i < n; ++i) outlet_weights_(i, o) /= sum;
  }

  // VAVs split evenly across the outlets (the building has 4 VAVs feeding
  // 2 outlets spanning the room).
  vav_to_outlet_.resize(plan_.vav_count());
  for (std::size_t v = 0; v < plan_.vav_count(); ++v) {
    vav_to_outlet_[v] = v * outlets.size() / plan_.vav_count();
  }

  // Occupant heat lands on seating-area nodes, deeper rows weighted more
  // (audiences fill from the middle/back in this room).
  occupant_weights_.assign(n, 0.0);
  double occ_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (plan_.in_seating(sites[i].position)) {
      occupant_weights_[i] = 0.5 + sites[i].position.y / plan_.depth();
      occ_sum += occupant_weights_[i];
    }
  }
  if (occ_sum == 0.0) {
    // Degenerate plan without seating nodes: spread occupant heat evenly.
    occupant_weights_.assign(n, 1.0 / static_cast<double>(n));
  } else {
    for (double& w : occupant_weights_) w /= occ_sum;
  }

  // Lighting heat is near-uniform (ceiling fixtures span the room).
  lighting_weights_.assign(n, 1.0 / static_cast<double>(n));
}

double ZonalPlant::air_temp_of(timeseries::ChannelId id) const {
  const auto& sites = plan_.sensors();
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].id == id) return air_temps_[i];
  }
  throw std::invalid_argument("ZonalPlant::air_temp_of: unknown id " +
                              std::to_string(id));
}

void ZonalPlant::initialize(double temp_c) noexcept {
  air_temps_.assign(air_temps_.size(), temp_c);
  mass_temps_.assign(mass_temps_.size(), temp_c);
  forcing_.assign(forcing_.size(), 0.0);
  co2_ppm_ = config_.initial_co2_ppm;
}

void ZonalPlant::derivative(const linalg::Vector& air,
                            const linalg::Vector& mass,
                            const linalg::Vector& forcing,
                            const PlantInputs& u, linalg::Vector& d_air,
                            linalg::Vector& d_mass,
                            linalg::Vector& d_forcing) const {
  const std::size_t n = air.size();
  d_air.assign(n, 0.0);
  d_mass.assign(n, 0.0);
  d_forcing.assign(n, 0.0);

  // Per-outlet volumetric heat conductance rho*cp*flow (W/K).
  std::vector<double> outlet_gain(plan_.air_outlets().size(), 0.0);
  for (std::size_t v = 0; v < u.vav_flows_m3_s.size(); ++v) {
    outlet_gain[vav_to_outlet_[v]] +=
        hvac::kAirVolumetricHeatCapacity * u.vav_flows_m3_s[v];
  }

  const double occ_power = u.occupants * config_.occupant_heat_w;
  const double light_power = u.lighting * config_.lighting_heat_w;
  const bool lagged = config_.mixing_delay_tau_s > 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    // Instantaneous injected power: supply jets + occupants + lighting +
    // local disturbances.
    double q_inject = occ_power * occupant_weights_[i] +
                      light_power * lighting_weights_[i];
    if (!u.extra_node_heat_w.empty()) q_inject += u.extra_node_heat_w[i];
    for (std::size_t o = 0; o < outlet_gain.size(); ++o) {
      q_inject +=
          outlet_weights_(i, o) * outlet_gain[o] * (u.supply_temp_c - air[i]);
    }

    double q = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) q += mixing_(i, j) * (air[j] - air[i]);
    }
    q += config_.mass_coupling_w_k * (mass[i] - air[i]);
    q += wall_conductance_[i] * (u.ambient_c - air[i]);
    if (lagged) {
      // Injected heat reaches the zone through the mixing lag; the lag
      // state carries it.
      q += forcing[i];
      d_forcing[i] = (q_inject - forcing[i]) / config_.mixing_delay_tau_s;
    } else {
      q += q_inject;
    }
    d_air[i] = q / config_.air_heat_capacity_j_k;
    d_mass[i] = config_.mass_coupling_w_k * (air[i] - mass[i]) /
                config_.mass_heat_capacity_j_k;
  }
}

void ZonalPlant::step(const PlantInputs& inputs, double dt_s) {
  if (dt_s <= 0.0) throw std::invalid_argument("ZonalPlant::step: dt <= 0");
  if (inputs.vav_flows_m3_s.size() != plan_.vav_count()) {
    throw std::invalid_argument("ZonalPlant::step: VAV flow count mismatch");
  }
  if (!inputs.extra_node_heat_w.empty() &&
      inputs.extra_node_heat_w.size() != air_temps_.size()) {
    throw std::invalid_argument(
        "ZonalPlant::step: disturbance vector size mismatch");
  }
  const std::size_t n = air_temps_.size();
  linalg::Vector k1a, k1m, k1f, k2a, k2m, k2f, k3a, k3m, k3f, k4a, k4m, k4f;
  linalg::Vector ta(n), tm(n), tf(n);

  derivative(air_temps_, mass_temps_, forcing_, inputs, k1a, k1m, k1f);
  for (std::size_t i = 0; i < n; ++i) {
    ta[i] = air_temps_[i] + 0.5 * dt_s * k1a[i];
    tm[i] = mass_temps_[i] + 0.5 * dt_s * k1m[i];
    tf[i] = forcing_[i] + 0.5 * dt_s * k1f[i];
  }
  derivative(ta, tm, tf, inputs, k2a, k2m, k2f);
  for (std::size_t i = 0; i < n; ++i) {
    ta[i] = air_temps_[i] + 0.5 * dt_s * k2a[i];
    tm[i] = mass_temps_[i] + 0.5 * dt_s * k2m[i];
    tf[i] = forcing_[i] + 0.5 * dt_s * k2f[i];
  }
  derivative(ta, tm, tf, inputs, k3a, k3m, k3f);
  for (std::size_t i = 0; i < n; ++i) {
    ta[i] = air_temps_[i] + dt_s * k3a[i];
    tm[i] = mass_temps_[i] + dt_s * k3m[i];
    tf[i] = forcing_[i] + dt_s * k3f[i];
  }
  derivative(ta, tm, tf, inputs, k4a, k4m, k4f);
  for (std::size_t i = 0; i < n; ++i) {
    air_temps_[i] +=
        dt_s / 6.0 * (k1a[i] + 2.0 * k2a[i] + 2.0 * k3a[i] + k4a[i]);
    mass_temps_[i] +=
        dt_s / 6.0 * (k1m[i] + 2.0 * k2m[i] + 2.0 * k3m[i] + k4m[i]);
    forcing_[i] +=
        dt_s / 6.0 * (k1f[i] + 2.0 * k2f[i] + 2.0 * k3f[i] + k4f[i]);
  }

  // Well-mixed CO2 balance (exact exponential update for the linear ODE
  // V dC/dt = G*1e6 - Q (C - C_out), inputs held constant over the step):
  double total_flow = 0.0;
  for (double f : inputs.vav_flows_m3_s) total_flow += f;
  const double generation_ppm_s =
      inputs.occupants * config_.co2_per_person_m3_s * 1e6 /
      config_.room_volume_m3;
  const double exchange_rate = total_flow / config_.room_volume_m3;  // 1/s
  if (exchange_rate > 0.0) {
    const double equilibrium =
        config_.co2_outdoor_ppm + generation_ppm_s / exchange_rate;
    const double decay = std::exp(-exchange_rate * dt_s);
    co2_ppm_ = equilibrium + (co2_ppm_ - equilibrium) * decay;
  } else {
    co2_ppm_ += generation_ppm_s * dt_s;
  }
}

double ZonalPlant::hvac_power_w(const PlantInputs& inputs) const {
  if (inputs.vav_flows_m3_s.size() != plan_.vav_count()) {
    throw std::invalid_argument("ZonalPlant::hvac_power_w: flow count");
  }
  std::vector<double> outlet_gain(plan_.air_outlets().size(), 0.0);
  for (std::size_t v = 0; v < inputs.vav_flows_m3_s.size(); ++v) {
    outlet_gain[vav_to_outlet_[v]] +=
        hvac::kAirVolumetricHeatCapacity * inputs.vav_flows_m3_s[v];
  }
  double power = 0.0;
  for (std::size_t i = 0; i < air_temps_.size(); ++i) {
    for (std::size_t o = 0; o < outlet_gain.size(); ++o) {
      power += outlet_weights_(i, o) * outlet_gain[o] *
               (inputs.supply_temp_c - air_temps_[i]);
    }
  }
  return power;
}

}  // namespace auditherm::sim
