#include "auditherm/obs/trace_span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace auditherm::obs {

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<Recorder*> g_current{nullptr};
std::atomic<std::uint64_t> g_ambient_parent{0};

/// Open-span stack of the current thread; parents are whatever is on top.
thread_local std::vector<std::uint64_t> t_span_stack;

}  // namespace

Recorder::Recorder() : origin_ns_(steady_now_ns()) {}

std::uint64_t Recorder::next_span_id() noexcept {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Recorder::now_ns() const noexcept {
  return steady_now_ns() - origin_ns_;
}

std::uint32_t Recorder::thread_ordinal() {
  // Caller holds mutex_.
  const auto [it, inserted] = thread_ordinals_.emplace(
      std::this_thread::get_id(),
      static_cast<std::uint32_t>(thread_ordinals_.size()));
  (void)inserted;
  return it->second;
}

void Recorder::append(SpanRecord&& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= kMaxSpans) {
    metrics_.add_counter("obs.dropped_spans");
    return;
  }
  record.thread = thread_ordinal();
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Recorder::spans() const {
  std::vector<SpanRecord> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.id < b.id; });
  return out;
}

Recorder* current() noexcept {
  return g_current.load(std::memory_order_relaxed);
}

RecorderScope::RecorderScope(Recorder* recorder) noexcept
    : active_(recorder != nullptr && recorder != current()) {
  if (active_) {
    previous_ = g_current.exchange(recorder, std::memory_order_relaxed);
  }
}

RecorderScope::~RecorderScope() {
  if (active_) g_current.store(previous_, std::memory_order_relaxed);
}

void set_ambient_parent(std::uint64_t span_id) noexcept {
  g_ambient_parent.store(span_id, std::memory_order_relaxed);
}

#if !defined(AUDITHERM_NO_OBS)

TraceSpan::TraceSpan(std::string_view name) {
  recorder_ = current();
  if (recorder_ == nullptr) return;
  id_ = recorder_->next_span_id();
  parent_ = t_span_stack.empty()
                ? g_ambient_parent.load(std::memory_order_relaxed)
                : t_span_stack.back();
  t_span_stack.push_back(id_);
  name_.assign(name);
  start_ns_ = recorder_->now_ns();
}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) return;
  const std::uint64_t end_ns = recorder_->now_ns();
  if (!t_span_stack.empty() && t_span_stack.back() == id_) {
    t_span_stack.pop_back();
  }
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = std::move(name_);
  record.start_ns = start_ns_;
  record.duration_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  recorder_->append(std::move(record));
}

#endif  // !AUDITHERM_NO_OBS

}  // namespace auditherm::obs
