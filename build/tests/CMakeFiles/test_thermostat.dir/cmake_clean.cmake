file(REMOVE_RECURSE
  "CMakeFiles/test_thermostat.dir/test_thermostat.cpp.o"
  "CMakeFiles/test_thermostat.dir/test_thermostat.cpp.o.d"
  "test_thermostat"
  "test_thermostat.pdb"
  "test_thermostat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermostat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
