#include "auditherm/control/controllers.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "auditherm/linalg/vector_ops.hpp"

namespace auditherm::control {

// ---------------------------------------------------------------------------
// RuleBasedController
// ---------------------------------------------------------------------------

RuleBasedController::RuleBasedController(
    hvac::ThermostatConfig config, hvac::Schedule schedule,
    std::vector<timeseries::ChannelId> thermostat_ids)
    : controller_(config, schedule),
      schedule_(schedule),
      thermostat_ids_(std::move(thermostat_ids)) {
  if (thermostat_ids_.empty()) {
    throw std::invalid_argument("RuleBasedController: no thermostats");
  }
  // One proxy box with an effectively instant damper: update() pushes the
  // commanded flow into it, and we read it back as the decision.
  hvac::VavConfig proxy;
  proxy.actuator_tau_s = 1e-3;
  proxy_boxes_.assign(1, hvac::VavBox(proxy));
}

HvacCommand RuleBasedController::decide(const ControlContext& context) {
  std::vector<double> temps(context.sensor_temps_c.begin(),
                            context.sensor_temps_c.end());
  controller_.update(proxy_boxes_, temps, context.time,
                     context.step_minutes * 60.0);
  proxy_boxes_[0].step(context.step_minutes * 60.0);
  HvacCommand command;
  command.flow_per_vav_m3_s = proxy_boxes_[0].flow();
  command.supply_temp_c = controller_.supply_temp_c();
  return command;
}

// ---------------------------------------------------------------------------
// ModelPredictiveController
// ---------------------------------------------------------------------------

ModelPredictiveController::ModelPredictiveController(sysid::ThermalModel model,
                                                     std::size_t vav_count,
                                                     hvac::Schedule schedule,
                                                     MpcOptions options)
    : model_(std::move(model)),
      vav_count_(vav_count),
      schedule_(schedule),
      options_(std::move(options)) {
  if (vav_count_ == 0) {
    throw std::invalid_argument("ModelPredictiveController: no VAVs");
  }
  if (model_.input_count() != vav_count_ + 4) {
    throw std::invalid_argument(
        "ModelPredictiveController: model inputs must be [flows.., "
        "supply_temp, occupants, lighting, ambient]");
  }
  if (options_.flow_levels.empty() || options_.horizon_steps == 0) {
    throw std::invalid_argument(
        "ModelPredictiveController: empty flow levels or zero horizon");
  }
}

void ModelPredictiveController::reset() {
  has_previous_ = false;
  previous_temps_.clear();
}

double ModelPredictiveController::plan_cost(const ControlContext& context,
                                            const HvacCommand& command) const {
  const std::size_t steps =
      std::min<std::size_t>(options_.horizon_steps,
                            context.exogenous_forecast.rows());
  const std::size_t q = model_.input_count();

  linalg::Matrix inputs(steps, q);
  for (std::size_t k = 0; k < steps; ++k) {
    for (std::size_t v = 0; v < vav_count_; ++v) {
      inputs(k, v) = command.flow_per_vav_m3_s;
    }
    inputs(k, vav_count_) = command.supply_temp_c;
    for (std::size_t j = 0; j < 3; ++j) {
      inputs(k, vav_count_ + 1 + j) = context.exogenous_forecast(k, j);
    }
  }

  linalg::Vector delta(model_.state_count(), 0.0);
  if (has_previous_) {
    delta = linalg::subtract(context.sensor_temps_c, previous_temps_);
  }
  const auto predicted =
      model_.simulate(context.sensor_temps_c, delta, inputs);

  double cost = 0.0;
  const double dt_h = context.step_minutes / 60.0;
  for (std::size_t k = 0; k < steps; ++k) {
    const auto t = context.time +
                   static_cast<timeseries::Minutes>(
                       static_cast<double>(k + 1) * context.step_minutes);
    if (schedule_.occupied_at(t)) {
      for (std::size_t s = 0; s < model_.state_count(); ++s) {
        const double dev = predicted(k, s) - options_.objective.setpoint_c;
        cost += options_.objective.comfort_weight * dev * dev;
      }
    }
    const double total_flow =
        command.flow_per_vav_m3_s * static_cast<double>(vav_count_);
    cost += options_.objective.energy_weight * total_flow * total_flow * dt_h;
  }
  return cost;
}

HvacCommand ModelPredictiveController::decide(const ControlContext& context) {
  if (context.sensor_temps_c.size() != model_.state_count()) {
    throw std::invalid_argument(
        "ModelPredictiveController: sensor reading count mismatch");
  }
  if (context.exogenous_forecast.cols() != 3 ||
      context.exogenous_forecast.rows() == 0) {
    throw std::invalid_argument(
        "ModelPredictiveController: forecast must be steps x 3");
  }

  HvacCommand best;
  double best_cost = std::numeric_limits<double>::infinity();
  if (!schedule_.occupied_at(context.time)) {
    // Off-mode: trickle ventilation, like the building's own program.
    best.flow_per_vav_m3_s = options_.flow_levels.front();
    best.supply_temp_c = options_.neutral_supply_c;
    last_plan_cost_ = 0.0;
  } else {
    for (double supply :
         {options_.cooling_supply_c, options_.neutral_supply_c,
          options_.heating_supply_c}) {
      for (double flow : options_.flow_levels) {
        // Heating runs at the ventilation floor only (reheat coil at
        // minimum airflow), matching the plant-side VAV program.
        if (supply == options_.heating_supply_c &&
            flow != options_.flow_levels.front()) {
          continue;
        }
        HvacCommand candidate;
        candidate.flow_per_vav_m3_s = flow;
        candidate.supply_temp_c = supply;
        const double cost = plan_cost(context, candidate);
        if (cost < best_cost) {
          best_cost = cost;
          best = candidate;
        }
      }
    }
    last_plan_cost_ = best_cost;
  }

  previous_temps_ = context.sensor_temps_c;
  has_previous_ = true;
  return best;
}

}  // namespace auditherm::control
