// Streaming identification benchmark: incremental QR refits vs per-step
// batch refits over the standard 98-day trace, plus drift detection on a
// scenario-generated regime switch. Writes BENCH_streaming.json with the
// CI perf-smoke gates: speedup_98d, max_param_diff, and the two drift
// booleans.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace auditherm;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

double max_model_diff(const sysid::ThermalModel& x,
                      const sysid::ThermalModel& y) {
  double diff = 0.0;
  const auto acc = [&](const linalg::Matrix& a, const linalg::Matrix& b) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t j = 0; j < a.cols(); ++j) {
        diff = std::max(diff, std::abs(a(i, j) - b(i, j)));
      }
    }
  };
  acc(x.a(), y.a());
  acc(x.a2(), y.a2());
  acc(x.b(), y.b());
  return diff;
}

/// Concatenate two scenario traces (same building, same channels) into one
/// stream — the fleet-scale "season flipped mid-deployment" case the drift
/// detector exists for.
timeseries::MultiTrace concatenate(
    const timeseries::MultiTrace& first, const timeseries::MultiTrace& second,
    const std::vector<timeseries::ChannelId>& channels) {
  const timeseries::TraceView a(first);
  const timeseries::TraceView b(second);
  timeseries::MultiTrace out(
      timeseries::TimeGrid(first.grid().start(), first.grid().step(),
                           a.size() + b.size()),
      channels);
  for (std::size_t c = 0; c < channels.size(); ++c) {
    const std::size_t ca = a.require_channel(channels[c]);
    const std::size_t cb = b.require_channel(channels[c]);
    for (std::size_t k = 0; k < a.size(); ++k) {
      out.set(k, c, a.value(k, ca));
    }
    for (std::size_t k = 0; k < b.size(); ++k) {
      out.set(a.size() + k, c, b.value(k, cb));
    }
  }
  return out;
}

}  // namespace

int main() {
  const bench::ObsSession obs_session;
  bench::print_header(
      "Streaming identification: incremental QR vs batch refits");

  // ---- Part 1: per-step refit cost over the paper's 98-day trace. ----
  const auto dataset = bench::make_standard_dataset();
  const timeseries::TraceView view(dataset.trace);
  const auto states = dataset.thermostat_ids();
  const auto inputs = dataset.input_ids();
  const std::size_t window = 336;  // 7 days at 30-minute sampling
  std::printf("trace: %zu rows, %zu states, %zu inputs, window %zu rows\n",
              view.size(), states.size(), inputs.size(), window);

  sysid::StreamingOptions stream_opts;
  stream_opts.window_rows = window;
  stream_opts.drift.enabled = false;  // timed separately below

  // Incremental pass: push every row, re-solve whenever a model exists —
  // the "fresh parameters after every sample" deployment loop. Min of 3
  // repetitions on both sides to tame single-core scheduling noise.
  constexpr int kReps = 3;
  std::vector<std::size_t> solved_rows;
  std::vector<sysid::ThermalModel> streamed_models;
  linalg::Vector srow(states.size()), irow(inputs.size());
  std::vector<std::size_t> state_cols, input_cols;
  for (const auto id : states) state_cols.push_back(view.require_channel(id));
  for (const auto id : inputs) input_cols.push_back(view.require_channel(id));

  sysid::StreamingStats final_stats;
  double incremental_ms = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    sysid::StreamingEstimator streaming(states, inputs,
                                        sysid::ModelOrder::kSecond,
                                        stream_opts);
    solved_rows.clear();
    streamed_models.clear();
    const auto t0 = Clock::now();
    for (std::size_t k = 0; k < view.size(); ++k) {
      for (std::size_t i = 0; i < state_cols.size(); ++i) {
        srow[i] = view.value(k, state_cols[i]);
      }
      for (std::size_t i = 0; i < input_cols.size(); ++i) {
        irow[i] = view.value(k, input_cols[i]);
      }
      streaming.push(srow, irow);
      if (k >= window && streaming.has_model()) {
        const sysid::ThermalModel& m = streaming.model();
        if (k % 48 == 0) {  // one snapshot per day for the agreement check
          solved_rows.push_back(k);
          streamed_models.push_back(m);
        }
      }
    }
    const double ms = ms_since(t0);
    if (rep == 0 || ms < incremental_ms) incremental_ms = ms;
    final_stats = streaming.stats();
  }

  // Batch pass: the pre-existing path — refactorize the window regression
  // from scratch at the same rows.
  const sysid::ModelEstimator batch(states, inputs,
                                    sysid::ModelOrder::kSecond);
  std::size_t batch_fits = 0;
  double batch_ms = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    batch_fits = 0;
    const auto t0 = Clock::now();
    for (std::size_t k = window; k < view.size(); ++k) {
      const auto slice = view.slice_rows(k + 1 - window, k + 1);
      if (batch.summarize(slice).transitions <
          std::max<std::size_t>(
              4 * (2 * states.size() + inputs.size()), 8)) {
        continue;
      }
      const auto model = batch.fit(slice);
      ++batch_fits;
      (void)model;
    }
    const double ms = ms_since(t0);
    if (rep == 0 || ms < batch_ms) batch_ms = ms;
  }
  const double speedup =
      incremental_ms > 0.0 ? batch_ms / incremental_ms : 0.0;

  // Agreement: re-fit only the daily snapshots and diff parameters.
  double max_param_diff = 0.0;
  for (std::size_t i = 0; i < solved_rows.size(); ++i) {
    const std::size_t k = solved_rows[i];
    const auto model = batch.fit(view.slice_rows(k + 1 - window, k + 1));
    max_param_diff =
        std::max(max_param_diff, max_model_diff(streamed_models[i], model));
  }
  const bool agree = max_param_diff <= 1e-8 && !solved_rows.empty();
  std::printf(
      "incremental %8.1f ms   batch %8.1f ms (%zu refits)   "
      "speedup %6.1fx\n",
      incremental_ms, batch_ms, batch_fits, speedup);
  std::printf("per-window agreement over %zu snapshots: max diff %.3g (%s)\n",
              solved_rows.size(), max_param_diff, agree ? "ok" : "FAIL");

  // ---- Part 2: drift detection on a scenario regime switch. ----
  // 8 paper-preset days followed by 8 summer fixed-supply days of the same
  // hall: the AHU discharge behavior changes (a genuine B-matrix shift —
  // supply temperature is not an input channel), so the detector must fire
  // at the splice and stay silent on a 16-day stationary paper run.
  sim::ScenarioSpec before;
  before.name = "drift-before";
  before.days = 8;
  before.failure_days = 0;
  before.dropout = 0.0;
  sim::ScenarioSpec after = before;
  after.name = "drift-after";
  after.season = sim::Season::kSummer;
  after.hvac = sim::HvacRegime::kFixedSupply;

  const auto run_before = sim::run_scenario(before);
  const auto run_after = sim::run_scenario(after);
  std::vector<timeseries::ChannelId> drift_channels = states;
  drift_channels.insert(drift_channels.end(), inputs.begin(), inputs.end());
  const auto switched =
      concatenate(run_before.trace, run_after.trace, drift_channels);
  const std::size_t switch_row = run_before.trace.grid().size();

  sysid::StreamingOptions drift_opts;
  drift_opts.window_rows = 240;  // 5 days
  sysid::StreamingEstimator detector(states, inputs,
                                     sysid::ModelOrder::kSecond, drift_opts);
  detector.push_trace(timeseries::TraceView(switched));
  const auto& events = detector.drift_events();
  const bool fired = !events.empty() && events.front().row >= switch_row &&
                     events.front().row < switch_row + 96;
  std::printf("regime switch at row %zu: %zu drift event(s)%s\n", switch_row,
              events.size(), fired ? "" : " (FAIL)");
  for (const auto& e : events) {
    std::printf("  row %zu, %.1f sigma, direction %+.0f\n", e.row,
                e.statistic, e.direction);
  }

  sim::ScenarioSpec stationary = before;
  stationary.name = "drift-stationary";
  stationary.days = 16;
  const auto run_stationary = sim::run_scenario(stationary);
  sysid::StreamingEstimator quiet(states, inputs, sysid::ModelOrder::kSecond,
                                  drift_opts);
  quiet.push_trace(timeseries::TraceView(run_stationary.trace));
  const bool silent = quiet.drift_events().empty();
  std::printf("stationary paper run: %zu drift event(s)%s\n",
              quiet.drift_events().size(), silent ? "" : " (FAIL)");

  bench::JsonObject json;
  json.add("rows", view.size());
  json.add("window_rows", window);
  json.add("incremental_ms", incremental_ms);
  json.add("batch_ms", batch_ms);
  json.add("batch_refits", batch_fits);
  json.add("speedup_98d", speedup);
  json.add("agreement_snapshots", solved_rows.size());
  json.add("max_param_diff", max_param_diff);
  json.add("batch_agreement_ok", agree);
  json.add("qr_updates", final_stats.transitions);
  json.add("qr_downdates", final_stats.downdates);
  json.add("reanchors", final_stats.reanchors);
  json.add("drift_switch_row", switch_row);
  json.add("drift_events_on_switch", events.size());
  json.add("drift_first_event_row",
           events.empty() ? std::size_t{0} : events.front().row);
  json.add("drift_fired_on_switch", fired);
  json.add("drift_events_stationary", quiet.drift_events().size());
  json.add("drift_silent_on_paper", silent);
  if (!json.write_file("BENCH_streaming.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_streaming.json\n");
    return 1;
  }
  std::printf("wrote BENCH_streaming.json\n");
  return agree && speedup > 5.0 && fired && silent ? 0 : 1;
}
