#include "auditherm/core/stage_cache.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "auditherm/core/parallel.hpp"
#include "auditherm/obs/trace_span.hpp"

namespace auditherm::core {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// All NaN payloads key identically: a gap is a gap.
constexpr std::uint64_t kNanSentinel = 0x7ff8dead00000000ull;

constexpr std::string_view kHitPrefix = "stage_cache.hit.";
constexpr std::string_view kMissPrefix = "stage_cache.miss.";
constexpr std::string_view kEvictionPrefix = "stage_cache.eviction.";
constexpr std::string_view kEvictedBytes = "stage_cache.evicted_bytes";
constexpr std::string_view kResidentGauge = "stage_cache.resident_bytes";

std::string event_name(std::string_view prefix, std::string_view stage) {
  std::string name;
  name.reserve(prefix.size() + stage.size());
  name.append(prefix);
  name.append(stage);
  return name;
}

}  // namespace

void StageKeyHasher::add_bytes(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = state_;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  state_ = h;
}

void StageKeyHasher::add(std::uint64_t v) noexcept {
  add_bytes(&v, sizeof(v));
}

void StageKeyHasher::add(double v) noexcept {
  const std::uint64_t bits =
      std::isnan(v) ? kNanSentinel : std::bit_cast<std::uint64_t>(v);
  add(bits);
}

void StageKeyHasher::add(std::string_view s) noexcept {
  add(static_cast<std::uint64_t>(s.size()));
  add_bytes(s.data(), s.size());
}

void StageKeyHasher::add(const std::vector<bool>& mask) noexcept {
  add(static_cast<std::uint64_t>(mask.size()));
  std::uint64_t word = 0;
  std::size_t filled = 0;
  for (bool b : mask) {
    word = (word << 1) | (b ? 1u : 0u);
    if (++filled == 64) {
      add(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) add(word);
}

void StageKeyHasher::add(const std::vector<int>& v) noexcept {
  add(static_cast<std::uint64_t>(v.size()));
  for (int x : v) add(static_cast<std::uint64_t>(static_cast<std::int64_t>(x)));
}

std::uint64_t trace_fingerprint(const timeseries::TraceView& trace) {
  StageKeyHasher h;
  h.add(trace.grid().start());
  h.add(trace.grid().step());
  h.add(static_cast<std::uint64_t>(trace.size()));
  h.add(trace.channels());
  for (std::size_t k = 0; k < trace.size(); ++k) {
    for (std::size_t c = 0; c < trace.channel_count(); ++c) {
      h.add(trace.value(k, c));
    }
  }
  return h.value();
}

std::uint64_t StageCache::tag_key(std::string_view stage,
                                  std::uint64_t key) noexcept {
  StageKeyHasher h;
  h.add(stage);
  h.add(key);
  return h.value();
}

void StageCache::touch_locked(Entry& entry) {
  if (entry.in_lru) lru_.splice(lru_.begin(), lru_, entry.lru);
}

void StageCache::insert_lru_locked(Entry& entry, std::uint64_t key) {
  entry.lru = lru_.insert(lru_.begin(), key);
  entry.in_lru = true;
}

void StageCache::publish_locked(Entry& entry, std::uint64_t key,
                                std::string_view stage,
                                ErasedArtifact&& built) {
  entry.value = std::move(built.value);
  entry.bytes = built.bytes;
  entry.stage.assign(stage);
  resident_bytes_ += entry.bytes;
  // In-flight entries stay out of the LRU list so eviction can never
  // remove a key someone is still building under; the claimer links the
  // entry when it finishes.
  if (!entry.building) insert_lru_locked(entry, key);
}

void StageCache::evict_over_budget_locked(PendingEvents& events) {
  if (budget_.bytes == 0) return;
  while (resident_bytes_ > budget_.bytes && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    // lru_ holds only completed entries, so the lookup always succeeds.
    resident_bytes_ -= it->second.bytes;
    ++evictions_;
    evicted_bytes_ += it->second.bytes;
    events.emplace_back(event_name(kEvictionPrefix, it->second.stage), 1);
    events.emplace_back(std::string(kEvictedBytes), it->second.bytes);
    entries_.erase(it);
  }
}

std::shared_ptr<const void> StageCache::get_or_build_erased(
    std::string_view stage, std::uint64_t tagged_key,
    const std::function<ErasedArtifact()>& build) {
  bool claimed = false;
  std::uint64_t claim_gen = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      Entry& entry = entries_[tagged_key];
      if (entry.value) {
        touch_locked(entry);
        std::shared_ptr<const void> value = entry.value;
        lock.unlock();
        count_event(stage, /*hit=*/true);
        return value;
      }
      if (!entry.building) {
        entry.building = true;
        entry.generation = generation_;
        claim_gen = generation_;
        claimed = true;
        break;
      }
      // Someone else is building this key. Parking inside a parallel
      // region would stall the pool the builder may itself be waiting
      // for, so there we race a duplicate build instead (first publish
      // wins); otherwise wait for the builder to publish.
      if (detail::in_parallel_region()) {
        claim_gen = generation_;
        break;
      }
      build_done_.wait(lock);
    }
  }

  // The builder runs with no cache lock held: it may fan out over the
  // thread pool, and holding a lock here would order the cache against
  // the pool's internals (lock-order inversion).
  ErasedArtifact built;
  try {
    built = build();
  } catch (...) {
    if (claimed) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(tagged_key);
        // Our claim is identified by (building, claim generation): clear()
        // keeps in-flight entries and eviction skips them, so nobody else
        // can have reclaimed the key while we were building.
        if (it != entries_.end() && it->second.building &&
            it->second.generation == claim_gen) {
          if (it->second.value) {
            // A duplicate builder published while we failed; keep its
            // artifact and make it evictable.
            it->second.building = false;
            if (!it->second.in_lru) insert_lru_locked(it->second, tagged_key);
          } else {
            entries_.erase(it);
          }
        }
      }
      build_done_.notify_all();
    }
    throw;
  }

  std::shared_ptr<const void> result = built.value;
  bool hit = false;
  PendingEvents events;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = entries_.find(tagged_key);
    if (claim_gen != generation_) {
      // clear() ran while we were building: the table we claimed into no
      // longer exists. Hand the artifact to our caller (it is a correct
      // value for the key) but do NOT republish it; drop our stale claim
      // so post-clear callers rebuild from scratch.
      if (claimed && it != entries_.end() && it->second.building &&
          it->second.generation == claim_gen) {
        entries_.erase(it);
      }
      lock.unlock();
      if (claimed) build_done_.notify_all();
      count_event(stage, /*hit=*/false);
      return result;
    }
    if (claimed) {
      // The entry is ours and still present (clear() keeps in-flight
      // entries, eviction skips them).
      Entry& entry = it->second;
      entry.building = false;
      if (!entry.value) {
        publish_locked(entry, tagged_key, stage, std::move(built));
      } else {
        // Lost a duplicate-build race; keep the published artifact so
        // every caller aliases the same object.
        result = entry.value;
        hit = true;
        if (!entry.in_lru) insert_lru_locked(entry, tagged_key);
        touch_locked(entry);
      }
      evict_over_budget_locked(events);
    } else {
      // Duplicate build from inside a parallel region: publish only if
      // the entry still exists and nobody beat us to it.
      if (it == entries_.end()) {
        // Evicted (or erased by a failed claimer) since we broke out;
        // our caller still gets the freshly built artifact.
        lock.unlock();
        count_event(stage, /*hit=*/false);
        return result;
      }
      Entry& entry = it->second;
      if (entry.value) {
        result = entry.value;
        hit = true;
        touch_locked(entry);
      } else {
        publish_locked(entry, tagged_key, stage, std::move(built));
        evict_over_budget_locked(events);
      }
    }
  }
  if (claimed) build_done_.notify_all();
  count_event(stage, hit);
  flush_events(events);
  return result;
}

void StageCache::count_event(std::string_view stage, bool hit) {
  const std::string name =
      event_name(hit ? kHitPrefix : kMissPrefix, stage);
  registry_.add_counter(name);
  // Mirror into the current run recorder (if one is installed) so
  // --metrics-out JSON carries cache behavior without caller plumbing.
  // Runs with mutex_ released: the recorder's shard locks must never
  // nest inside the cache lock (serve shares one recorder across every
  // request thread).
  obs::add_counter(name);
}

void StageCache::flush_events(const PendingEvents& events) {
  if (events.empty()) return;
  for (const auto& [name, delta] : events) {
    registry_.add_counter(name, delta);
    obs::add_counter(name, delta);
  }
  // Gauge the post-eviction resident set so /metrics exports show the
  // budget holding. Reading resident_bytes() re-locks briefly; the value
  // is advisory (monotonic correctness lives in the counters above).
  const double resident = static_cast<double>(resident_bytes());
  registry_.set_gauge(kResidentGauge, resident);
  if (obs::kCompiledIn) {
    static const obs::MetricId id = obs::gauge_id(kResidentGauge);
    obs::set_gauge(id, resident);
  }
}

StageStats StageCache::stats(std::string_view stage) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  StageStats s;
  const std::string hit_name = event_name(kHitPrefix, stage);
  const std::string miss_name = event_name(kMissPrefix, stage);
  const auto since_baseline = [&](const std::string& name) -> std::size_t {
    const std::uint64_t now = registry_.counter(name);
    const auto it = baseline_.find(name);
    return static_cast<std::size_t>(
        now - (it == baseline_.end() ? 0 : it->second));
  };
  s.hits = since_baseline(hit_name);
  s.misses = since_baseline(miss_name);
  return s;
}

StageStats StageCache::totals() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  StageStats total;
  for (const auto& [name, value] : registry_.snapshot().counters) {
    std::uint64_t base = 0;
    if (const auto it = baseline_.find(name); it != baseline_.end()) {
      base = it->second;
    }
    const std::size_t delta = static_cast<std::size_t>(value - base);
    if (name.starts_with(kHitPrefix)) {
      total.hits += delta;
    } else if (name.starts_with(kMissPrefix)) {
      total.misses += delta;
    }
  }
  return total;
}

std::size_t StageCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.value) ++n;
  }
  return n;
}

std::size_t StageCache::resident_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

std::uint64_t StageCache::eviction_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::uint64_t StageCache::evicted_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evicted_bytes_;
}

void StageCache::clear() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // In-flight builds are generation-tagged, not erased: the running
    // builder finds its claim (now stale) and drops it on publish, so no
    // pre-clear artifact is ever republished and no waiter parks on an
    // entry that silently vanished. Their values (a duplicate builder may
    // have published one) are dropped here like every completed entry's.
    ++generation_;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.building) {
        it->second.value.reset();
        it->second.bytes = 0;
        it->second.in_lru = false;
        ++it;
      } else {
        it = entries_.erase(it);
      }
    }
    lru_.clear();
    resident_bytes_ = 0;
    // Reset the visible counters by re-baselining, keeping the registry's
    // counters (and the mirrored run-recorder copies) monotonic. This is
    // the cache's own registry — never the run recorder's — so holding
    // mutex_ across the snapshot cannot couple with recorder locks.
    for (const auto& [name, value] : registry_.snapshot().counters) {
      baseline_[name] = value;
    }
  }
  build_done_.notify_all();
}

}  // namespace auditherm::core
