# Empty dependencies file for test_sensor_model.
# This may be replaced when dependencies are built.
