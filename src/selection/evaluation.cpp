#include "auditherm/selection/evaluation.hpp"

#include <cmath>
#include <stdexcept>

#include "auditherm/linalg/stats.hpp"

namespace auditherm::selection {

linalg::Vector ClusterMeanErrors::pooled() const {
  linalg::Vector all;
  for (const auto& c : per_cluster_abs) {
    all.insert(all.end(), c.begin(), c.end());
  }
  return all;
}

double ClusterMeanErrors::percentile(double p) const {
  auto all = pooled();
  if (all.empty()) {
    throw std::runtime_error("ClusterMeanErrors::percentile: no samples");
  }
  return linalg::percentile(std::move(all), p);
}

double ClusterMeanErrors::rms() const {
  auto all = pooled();
  if (all.empty()) {
    throw std::runtime_error("ClusterMeanErrors::rms: no samples");
  }
  return linalg::rms(all);
}

ClusterMeanErrors evaluate_cluster_mean_prediction(
    const timeseries::TraceView& validation, const ClusterSets& clusters,
    const Selection& selection) {
  if (selection.per_cluster.size() != clusters.size()) {
    throw std::invalid_argument(
        "evaluate_cluster_mean_prediction: cluster count mismatch");
  }
  ClusterMeanErrors errors;
  errors.per_cluster_abs.resize(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (selection.per_cluster[c].empty()) {
      throw std::invalid_argument(
          "evaluate_cluster_mean_prediction: cluster with no selection");
    }
    const auto target = timeseries::row_mean(validation, clusters[c]);
    const auto predicted =
        timeseries::row_mean(validation, selection.per_cluster[c]);
    for (std::size_t k = 0; k < validation.size(); ++k) {
      if (std::isnan(target[k]) || std::isnan(predicted[k])) continue;
      errors.per_cluster_abs[c].push_back(std::abs(predicted[k] - target[k]));
    }
  }
  return errors;
}

}  // namespace auditherm::selection
