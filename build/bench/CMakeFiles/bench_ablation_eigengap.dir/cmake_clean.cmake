file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eigengap.dir/bench_ablation_eigengap.cpp.o"
  "CMakeFiles/bench_ablation_eigengap.dir/bench_ablation_eigengap.cpp.o.d"
  "bench_ablation_eigengap"
  "bench_ablation_eigengap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eigengap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
