// Fig. 8: correlation-based clustering quality at k = 2, 3, 4, 5.
//
// Paper: at the eigengap's k=2 both clusters have max temperature
// differences clearly below the all-sensor baseline, and — unlike the
// Euclidean grouping of Fig. 7 — sensors within a cluster correlate
// strongly with each other.

#include "bench_cluster_quality.hpp"

using namespace auditherm;

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Fig. 8: correlation clustering quality");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  // Training view, similarity graph (correlation default), and the one
  // eigendecomposition all come from the shared stage cache; the k-sweep
  // below only redoes the cheap embedding per k.
  core::StageCache cache;
  const auto art = bench::prepare_stages(dataset, split, cache);
  const timeseries::TraceView& training = art.training;
  const auto& graph = *art.graph;
  const auto eigengap_k = art.spectrum->eigengap_cluster_count();

  bench::report_metric_quality(dataset, training, graph, *art.spectrum,
                               {2, 3, 4, 5}, eigengap_k);

  // Shape checks at the eigengap's k=2: every cluster tighter than the
  // room, and intra-cluster correlation high.
  clustering::SpectralOptions spec;
  spec.cluster_count = 2;
  const auto result = clustering::spectral_cluster(graph, *art.spectrum, spec);
  const auto overall = linalg::percentile(
      timeseries::pairwise_max_differences(training, dataset.wireless_ids()),
      95.0);
  bool all_tighter = true;
  double min_corr = 1.0;
  for (const auto& cluster : result.clusters()) {
    const auto diffs = timeseries::pairwise_max_differences(training, cluster);
    if (!diffs.empty() && linalg::percentile(diffs, 95.0) >= overall) {
      all_tighter = false;
    }
    min_corr = std::min(min_corr,
                        bench::mean_intra_correlation(training, cluster));
  }
  std::printf("\nshape checks: every k=2 cluster tighter than the room: %s | "
              "high intra-cluster correlation (min %.2f >= 0.5): %s\n",
              all_tighter ? "yes" : "NO", min_corr,
              min_corr >= 0.5 ? "yes" : "NO");
  return 0;
}
