#pragma once

/// \file controllers.hpp
/// HVAC controllers for closed-loop operation.
///
/// The paper's conclusion positions its modeling pipeline as "a practical
/// foundation for HVAC control and optimization for large open spaces".
/// This module delivers that step: a receding-horizon controller that
/// plans on an identified (reduced) thermal model, next to the building's
/// existing thermostat rule as the baseline.

#include <cstddef>
#include <memory>
#include <vector>

#include "auditherm/hvac/schedule.hpp"
#include "auditherm/hvac/thermostat.hpp"
#include "auditherm/sysid/model.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::control {

/// One actuation decision: a common flow command for all VAVs plus the
/// supply-air temperature (cooling / heating / neutral).
struct HvacCommand {
  double flow_per_vav_m3_s = 0.05;
  double supply_temp_c = 18.0;
};

/// Everything a controller may look at when deciding.
struct ControlContext {
  timeseries::Minutes time = 0;
  /// Readings of the controller's own sensors, in the order the
  /// controller declared via sensor_ids().
  linalg::Vector sensor_temps_c;
  /// Perfect short-term forecasts of the exogenous inputs, one row per
  /// upcoming step: columns are [occupants, lighting, ambient].
  linalg::Matrix exogenous_forecast;
  double step_minutes = 30.0;
};

/// Abstract controller: subclasses declare which sensors they need and map
/// a context to a command.
class HvacController {
 public:
  virtual ~HvacController() = default;

  /// Channels whose temperatures must appear in
  /// ControlContext::sensor_temps_c (in this order).
  [[nodiscard]] virtual std::vector<timeseries::ChannelId> sensor_ids()
      const = 0;

  /// Decide the actuation for the step starting at context.time.
  [[nodiscard]] virtual HvacCommand decide(const ControlContext& context) = 0;

  /// Reset any internal state (integrators, histories).
  virtual void reset() {}
};

/// The building's existing rule: the PI thermostat loop on the two wall
/// thermostats (the closed-loop baseline).
class RuleBasedController final : public HvacController {
 public:
  RuleBasedController(hvac::ThermostatConfig config, hvac::Schedule schedule,
                      std::vector<timeseries::ChannelId> thermostat_ids);

  [[nodiscard]] std::vector<timeseries::ChannelId> sensor_ids()
      const override {
    return thermostat_ids_;
  }
  [[nodiscard]] HvacCommand decide(const ControlContext& context) override;
  void reset() override { controller_.reset(); }

 private:
  hvac::ThermostatController controller_;
  hvac::Schedule schedule_;
  std::vector<timeseries::ChannelId> thermostat_ids_;
  std::vector<hvac::VavBox> proxy_boxes_;  ///< expose the loop's command
};

/// Objective weights for predictive control.
struct ControlObjective {
  double setpoint_c = 21.0;
  /// Weight on squared zone-temperature deviation from the setpoint
  /// (occupied steps only).
  double comfort_weight = 1.0;
  /// Weight on squared total flow (fan + coil energy proxy).
  double energy_weight = 0.4;
};

/// Receding-horizon (MPC-style) controller planning on an identified
/// thermal model over the selected sensors.
///
/// Each step it enumerates a discrete set of candidate commands (flow
/// level x supply mode), holds each constant over the horizon, simulates
/// the model with the exogenous forecast, scores comfort + energy, and
/// applies the first step of the best plan. Discrete enumeration is exact
/// for this small action set and keeps the controller free of external
/// solver dependencies.
/// ModelPredictiveController tuning knobs.
struct MpcOptions {
  std::size_t horizon_steps = 6;  ///< 3 h on the 30-minute grid
  std::vector<double> flow_levels{0.05, 0.15, 0.30, 0.45, 0.60};
  double cooling_supply_c = 13.0;
  double heating_supply_c = 28.0;
  double neutral_supply_c = 18.0;
  ControlObjective objective;
};

class ModelPredictiveController final : public HvacController {
 public:
  /// `model` must have the extended input layout [h_1..h_m, supply_temp,
  /// occupants, lighting, ambient] (AuditoriumDataset::extended_input_ids)
  /// so candidate supply modes produce different predictions; its states
  /// define the sensors this controller reads. Throws
  /// std::invalid_argument when the model's input count is not vav_count+4
  /// or options are inconsistent (empty flow levels, zero horizon).
  ModelPredictiveController(sysid::ThermalModel model, std::size_t vav_count,
                            hvac::Schedule schedule,
                            MpcOptions options = {});

  [[nodiscard]] std::vector<timeseries::ChannelId> sensor_ids()
      const override {
    return model_.state_channels();
  }
  [[nodiscard]] HvacCommand decide(const ControlContext& context) override;
  void reset() override;

  /// The cost the last decide() assigned to its chosen plan.
  [[nodiscard]] double last_plan_cost() const noexcept {
    return last_plan_cost_;
  }

 private:
  /// Cost of holding `command` for the whole horizon from current state.
  [[nodiscard]] double plan_cost(const ControlContext& context,
                                 const HvacCommand& command) const;

  sysid::ThermalModel model_;
  std::size_t vav_count_;
  hvac::Schedule schedule_;
  MpcOptions options_;
  linalg::Vector previous_temps_;  ///< for the second-order delta state
  bool has_previous_ = false;
  double last_plan_cost_ = 0.0;
};

}  // namespace auditherm::control
