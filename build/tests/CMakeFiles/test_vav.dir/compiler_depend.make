# Empty compiler generated dependencies file for test_vav.
# This may be replaced when dependencies are built.
