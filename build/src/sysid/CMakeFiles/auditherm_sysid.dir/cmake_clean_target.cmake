file(REMOVE_RECURSE
  "libauditherm_sysid.a"
)
