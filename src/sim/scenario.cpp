#include "auditherm/sim/scenario.hpp"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "auditherm/core/parallel.hpp"
#include "auditherm/obs/trace_span.hpp"
#include "auditherm/timeseries/csv_io.hpp"

namespace auditherm::sim {

namespace {

/// Largest synthetic sensor count whose VAV bank (max(4, n/32)) still
/// fits the 9-wide flow-channel band 101..109.
constexpr std::size_t kMaxSyntheticSensors = 288;

/// Integers up to 2^53 survive a double round-trip exactly; JSON numbers
/// are doubles, so bigger seeds are encoded as decimal strings.
constexpr std::uint64_t kMaxExactJsonInteger = 1ull << 53;

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Shortest round-trip decimal form (std::to_chars), so "0.04" stays
/// "0.04" in specs and manifests yet reparses to the identical double.
std::string json_double(double v) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, result.ptr);
}

std::string json_seed(std::uint64_t seed) {
  if (seed <= kMaxExactJsonInteger) return std::to_string(seed);
  return "\"" + std::to_string(seed) + "\"";
}

std::string hex_fingerprint(std::uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

const char* building_name(BuildingKind kind) {
  switch (kind) {
    case BuildingKind::kPaperHall: return "paper";
    case BuildingKind::kGrid: return "grid";
    case BuildingKind::kCampus: return "campus";
  }
  return "?";
}

const char* season_name(Season season) {
  switch (season) {
    case Season::kPaper: return "paper";
    case Season::kWinter: return "winter";
    case Season::kSummer: return "summer";
    case Season::kShoulder: return "shoulder";
  }
  return "?";
}

const char* occupancy_name(OccupancyRegime regime) {
  switch (regime) {
    case OccupancyRegime::kPaper: return "paper";
    case OccupancyRegime::kQuiet: return "quiet";
    case OccupancyRegime::kBusy: return "busy";
  }
  return "?";
}

const char* hvac_name(HvacRegime regime) {
  switch (regime) {
    case HvacRegime::kPaper: return "paper";
    case HvacRegime::kFixedSupply: return "fixed-supply";
    case HvacRegime::kEco: return "eco";
  }
  return "?";
}

/// Serialize a trace to its exact CSV bytes (the unit every fingerprint
/// and on-disk file is defined over).
std::string csv_bytes(const timeseries::MultiTrace& trace) {
  std::ostringstream os;
  timeseries::write_csv(os, trace);
  return std::move(os).str();
}

/// Write `bytes` to `path`; no partial file survives a failure.
void write_bytes_file(const std::filesystem::path& path,
                      const std::string& bytes) {
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("run_fleet: cannot open " + path.string());
  }
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  f.flush();
  const bool ok = static_cast<bool>(f);
  f.close();
  if (!ok || f.fail()) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    throw std::runtime_error("run_fleet: write failed for " + path.string() +
                             " (partial file removed)");
  }
}

/// Simulate one logical process; pure function of `spec` except for the
/// optional file writes (disjoint paths per scenario, so concurrent LPs
/// never contend).
ScenarioOutcome run_one(const ScenarioSpec& spec, const FleetOptions& options,
                        const std::filesystem::path& dir) {
  obs::TraceSpan span("sim.fleet.building");
  const auto start = std::chrono::steady_clock::now();

  ScenarioOutcome out;
  out.spec = spec;
  const DatasetConfig config = scenario_config(spec);
  AuditoriumDataset dataset = generate_dataset(scenario_plan(spec), config);
  out.sensor_count = dataset.sensor_ids().size();
  out.samples = dataset.trace.size();
  out.channels = dataset.trace.channel_count();
  out.coverage = dataset.trace.coverage();
  out.control_steps = spec.days * static_cast<std::size_t>(
                                      timeseries::kMinutesPerDay) /
                      static_cast<std::size_t>(config.control_dt_s / 60.0);

  const std::string trace_csv = csv_bytes(dataset.trace);
  const std::string truth_csv = csv_bytes(dataset.truth);
  out.trace_fingerprint = fnv1a(trace_csv);
  out.truth_fingerprint = fnv1a(truth_csv);

  const bool writing = !options.out_dir.empty();
  if (writing) {
    out.trace_file = spec.name + ".csv";
    out.truth_file = spec.name + ".truth.csv";
    write_bytes_file(dir / out.trace_file, trace_csv);
    write_bytes_file(dir / out.truth_file, truth_csv);
  }
  if (!writing || options.keep_datasets) out.dataset = std::move(dataset);

  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  obs::add_counter("sim.fleet.buildings");
  obs::add_counter("sim.fleet.steps", out.control_steps);
  return out;
}

}  // namespace

void ScenarioSpec::validate() const {
  const auto fail = [this](const std::string& what) {
    throw std::invalid_argument("scenario '" + name + "': " + what);
  };
  if (name.empty() || name.size() > 64) {
    fail("name must be 1..64 characters");
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) fail("name may only contain [A-Za-z0-9._-]");
  }
  if (days == 0) fail("days must be >= 1");
  if (failure_days > days) fail("failure_days exceeds days");
  if (!(dropout >= 0.0 && dropout <= 1.0)) fail("dropout must be in [0, 1]");
  if (building == BuildingKind::kGrid) {
    if (sensors == 0) fail("grid building needs sensors >= 1");
    if (sensors > kMaxSyntheticSensors) {
      fail("grid building has " + std::to_string(sensors) +
           " sensors; at most 288 fit the 9-VAV flow-channel band 101..109");
    }
  }
  if (building == BuildingKind::kCampus) {
    if (halls == 0 || sensors_per_hall == 0) {
      fail("campus building needs halls >= 1 and sensors_per_hall >= 1");
    }
    if (halls * sensors_per_hall > kMaxSyntheticSensors) {
      fail("campus has " + std::to_string(halls * sensors_per_hall) +
           " sensors; at most 288 fit the 9-VAV flow-channel band 101..109");
    }
  }
}

FloorPlan scenario_plan(const ScenarioSpec& spec) {
  spec.validate();
  switch (spec.building) {
    case BuildingKind::kPaperHall: return FloorPlan::brauer_auditorium();
    case BuildingKind::kGrid: return FloorPlan::synthetic_grid(spec.sensors);
    case BuildingKind::kCampus:
      return FloorPlan::synthetic_campus(spec.halls, spec.sensors_per_hall);
  }
  throw std::invalid_argument("scenario_plan: unknown building kind");
}

DatasetConfig scenario_config(const ScenarioSpec& spec) {
  spec.validate();
  DatasetConfig config;
  config.days = spec.days;
  config.failure_days = spec.failure_days;
  config.sensor_dropout_probability = spec.dropout;
  config.seed = spec.seed;

  // Season presets reshape the weather generator; every non-paper season
  // also spans its ramp over the scenario's own run length (the paper
  // preset keeps the published 98-day winter-to-spring ramp so default
  // specs stay bitwise-equal to generate_dataset(DatasetConfig{})).
  switch (spec.season) {
    case Season::kPaper:
      break;
    case Season::kWinter:
      config.weather.start_mean_c = -6.0;
      config.weather.end_mean_c = 1.0;
      config.weather.diurnal_amplitude_c = 4.0;
      config.weather.day_offset_std_c = 4.0;
      config.weather.season_days = static_cast<double>(spec.days);
      break;
    case Season::kSummer:
      config.weather.start_mean_c = 23.0;
      config.weather.end_mean_c = 29.0;
      config.weather.diurnal_amplitude_c = 6.5;
      config.weather.coldest_minute = 5 * 60;
      config.weather.season_days = static_cast<double>(spec.days);
      break;
    case Season::kShoulder:
      config.weather.start_mean_c = 11.0;
      config.weather.end_mean_c = 16.0;
      config.weather.diurnal_amplitude_c = 7.0;
      config.weather.season_days = static_cast<double>(spec.days);
      break;
  }

  switch (spec.occupancy) {
    case OccupancyRegime::kPaper:
      break;
    case OccupancyRegime::kQuiet:
      config.occupancy.class_probability = 0.20;
      config.occupancy.evening_probability = 0.05;
      config.occupancy.weekend_probability = 0.04;
      break;
    case OccupancyRegime::kBusy:
      config.occupancy.class_probability = 0.85;
      config.occupancy.evening_probability = 0.40;
      config.occupancy.weekend_probability = 0.35;
      break;
  }

  switch (spec.hvac) {
    case HvacRegime::kPaper:
      break;
    case HvacRegime::kFixedSupply:
      config.use_controller_supply = false;
      break;
    case HvacRegime::kEco:
      config.thermostat.setpoint_c = 22.0;
      config.thermostat.deadband_c = 0.8;
      config.idle_supply_temp_c = 19.0;
      break;
  }
  return config;
}

AuditoriumDataset run_scenario(const ScenarioSpec& spec) {
  return generate_dataset(scenario_plan(spec), scenario_config(spec));
}

std::string scenario_to_json(const ScenarioSpec& spec) {
  spec.validate();  // the name charset keeps this escaping-free
  std::string out = "{";
  out += "\"name\": \"" + spec.name + "\"";
  out += std::string(", \"building\": \"") + building_name(spec.building) +
         "\"";
  out += ", \"sensors\": " + std::to_string(spec.sensors);
  out += ", \"halls\": " + std::to_string(spec.halls);
  out += ", \"sensors_per_hall\": " + std::to_string(spec.sensors_per_hall);
  out += std::string(", \"season\": \"") + season_name(spec.season) + "\"";
  out += std::string(", \"occupancy\": \"") + occupancy_name(spec.occupancy) +
         "\"";
  out += std::string(", \"hvac\": \"") + hvac_name(spec.hvac) + "\"";
  out += ", \"days\": " + std::to_string(spec.days);
  out += ", \"failure_days\": " + std::to_string(spec.failure_days);
  out += ", \"dropout\": " + json_double(spec.dropout);
  out += ", \"seed\": " + json_seed(spec.seed);
  out += "}";
  return out;
}

std::vector<ScenarioOutcome> run_fleet(const std::vector<ScenarioSpec>& specs,
                                       const FleetOptions& options) {
  obs::TraceSpan span("sim.fleet");
  std::unordered_set<std::string> names;
  for (const auto& spec : specs) {
    spec.validate();
    if (!names.insert(spec.name).second) {
      throw std::invalid_argument("run_fleet: duplicate scenario name '" +
                                  spec.name + "'");
    }
  }

  const bool writing = !options.out_dir.empty();
  std::filesystem::path dir;
  if (writing) {
    dir = options.out_dir;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    // Probe the manifest path (append mode: creates without truncating)
    // before burning CPU, so an unwritable out_dir fails up front instead
    // of after the simulations.
    const std::filesystem::path manifest_path = dir / "manifest.json";
    std::ofstream probe(manifest_path, std::ios::app);
    if (!probe) {
      throw std::runtime_error("run_fleet: cannot write " +
                               manifest_path.string());
    }
  }

  // One logical process per building: tasks are claimed dynamically by
  // the pool but write only their own outcome slot, so completion order
  // cannot affect the result — each outcome is a pure function of its
  // spec (grain 1: a building simulation dwarfs any scheduling cost).
  std::vector<ScenarioOutcome> outcomes(specs.size());
  core::parallel_for(0, specs.size(), 1, [&](std::size_t i) {
    outcomes[i] = run_one(specs[i], options, dir);
  });

  if (writing) {
    write_bytes_file(dir / "manifest.json", fleet_manifest_json(outcomes));
  }
  return outcomes;
}

std::string fleet_manifest_json(const std::vector<ScenarioOutcome>& outcomes) {
  std::size_t total_steps = 0;
  for (const auto& out : outcomes) total_steps += out.control_steps;

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"auditherm.fleet-manifest\",\n";
  json += "  \"version\": 1,\n";
  json += "  \"buildings\": " + std::to_string(outcomes.size()) + ",\n";
  json += "  \"total_steps\": " + std::to_string(total_steps) + ",\n";
  json += "  \"scenarios\": [";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& out = outcomes[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\n";
    json += "      \"name\": \"" + out.spec.name + "\",\n";
    json += "      \"spec\": " + scenario_to_json(out.spec) + ",\n";
    json += "      \"sensors\": " + std::to_string(out.sensor_count) + ",\n";
    json += "      \"samples\": " + std::to_string(out.samples) + ",\n";
    json += "      \"channels\": " + std::to_string(out.channels) + ",\n";
    json += "      \"coverage\": " + json_double(out.coverage) + ",\n";
    json +=
        "      \"control_steps\": " + std::to_string(out.control_steps) + ",\n";
    json += "      \"trace_fingerprint\": \"" +
            hex_fingerprint(out.trace_fingerprint) + "\",\n";
    json += "      \"truth_fingerprint\": \"" +
            hex_fingerprint(out.truth_fingerprint) + "\"";
    if (!out.trace_file.empty()) {
      json += ",\n      \"trace_file\": \"" + out.trace_file + "\"";
      json += ",\n      \"truth_file\": \"" + out.truth_file + "\"";
    }
    json += "\n    }";
  }
  json += outcomes.empty() ? "],\n" : "\n  ],\n";
  json += "  \"fingerprint\": \"" +
          hex_fingerprint([&] {
            std::uint64_t h = 1469598103934665603ull;
            for (const auto& out : outcomes) {
              h ^= out.trace_fingerprint;
              h *= 1099511628211ull;
            }
            return h;
          }()) +
          "\"\n";
  json += "}\n";
  return json;
}

}  // namespace auditherm::sim
