// Performance benchmarks for the end-to-end machinery (google-benchmark):
// dataset generation, similarity graphs, spectral clustering, model
// identification, multi-step evaluation, and the full pipeline.
//
// After the microbenchmarks, main() times the full pipeline and a
// 4-strategy sweep at 1/2/4/8 threads — the sweep both uncached
// (standalone run() per case) and through the content-keyed stage cache —
// prints a speedup table with cache hit/miss counters, verifies the
// results are bitwise identical across thread counts and cache modes, and
// writes the numbers to BENCH_perf_pipeline.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "auditherm/auditherm.hpp"
#include "auditherm/core/parallel.hpp"
#include "bench_common.hpp"

using namespace auditherm;

namespace {

/// Shared 28-day dataset; generated once.
const sim::AuditoriumDataset& dataset() {
  static const sim::AuditoriumDataset ds = [] {
    sim::DatasetConfig config;
    config.days = 28;
    config.failure_days = 4;
    return sim::generate_dataset(config);
  }();
  return ds;
}

const core::DataSplit& split() {
  static const core::DataSplit s = [] {
    auto required = dataset().sensor_ids();
    const auto inputs = dataset().input_ids();
    required.insert(required.end(), inputs.begin(), inputs.end());
    return core::split_dataset(dataset().trace, required, dataset().schedule,
                               hvac::Mode::kOccupied);
  }();
  return s;
}

const std::vector<bool>& occupied_mask() {
  static const std::vector<bool> m = dataset().schedule.mode_mask(
      dataset().trace.grid(), hvac::Mode::kOccupied);
  return m;
}

void BM_GenerateDataset(benchmark::State& state) {
  sim::DatasetConfig config;
  config.days = static_cast<std::size_t>(state.range(0));
  config.failure_days = config.days / 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::generate_dataset(config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.days));
}
BENCHMARK(BM_GenerateDataset)->Arg(7)->Arg(28)->Unit(benchmark::kMillisecond);

void BM_SimilarityGraph(benchmark::State& state) {
  const auto training = dataset().trace.filter_rows(
      core::and_masks(split().train_mask, occupied_mask()));
  const auto metric = state.range(0) == 0
                          ? clustering::SimilarityMetric::kCorrelation
                          : clustering::SimilarityMetric::kEuclidean;
  clustering::SimilarityOptions opts;
  opts.metric = metric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::build_similarity_graph(
        training, dataset().wireless_ids(), opts));
  }
}
BENCHMARK(BM_SimilarityGraph)->Arg(0)->Arg(1);

void BM_SpectralCluster(benchmark::State& state) {
  const auto training = dataset().trace.filter_rows(
      core::and_masks(split().train_mask, occupied_mask()));
  const auto graph = clustering::build_similarity_graph(
      training, dataset().wireless_ids(), {});
  clustering::SpectralOptions opts;
  opts.cluster_count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::spectral_cluster(graph, opts));
  }
}
BENCHMARK(BM_SpectralCluster)->Arg(2)->Arg(4)->Arg(8);

void BM_FitModel(benchmark::State& state) {
  const auto order = state.range(0) == 1 ? sysid::ModelOrder::kFirst
                                         : sysid::ModelOrder::kSecond;
  sysid::ModelEstimator estimator(dataset().sensor_ids(),
                                  dataset().input_ids(), order);
  const auto mask = core::and_masks(split().train_mask, occupied_mask());
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.fit(dataset().trace, mask));
  }
}
BENCHMARK(BM_FitModel)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_EvaluatePrediction(benchmark::State& state) {
  sysid::ModelEstimator estimator(dataset().sensor_ids(),
                                  dataset().input_ids(),
                                  sysid::ModelOrder::kSecond);
  const auto model = estimator.fit(
      dataset().trace, core::and_masks(split().train_mask, occupied_mask()));
  auto mask = core::and_masks(split().validation_mask, occupied_mask());
  mask = core::and_masks(mask, timeseries::rows_with_all_valid(
                                   dataset().trace, dataset().input_ids()));
  const auto windows = timeseries::find_segments(mask, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sysid::evaluate_prediction(model, dataset().trace, windows, {}));
  }
}
BENCHMARK(BM_EvaluatePrediction);

void BM_GpPlacement(benchmark::State& state) {
  const auto training = dataset().trace.filter_rows(
      core::and_masks(split().train_mask, occupied_mask()));
  const auto count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(selection::gp_mutual_information_selection(
        training, dataset().wireless_ids(), count));
  }
}
BENCHMARK(BM_GpPlacement)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  core::PipelineConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  const core::ThermalModelingPipeline pipeline(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(
        dataset().trace, dataset().schedule, split(),
        dataset().wireless_ids(), dataset().input_ids(),
        core::RunOptions{.thermostat_ids = dataset().thermostat_ids()}));
  }
}
BENCHMARK(BM_FullPipeline)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// --- Threads-vs-serial speedup report -----------------------------------
// Runs on the standard 98-day dataset (the paper's full trace) so the
// numbers track the real reproduction workload, not the microbench one.

const sim::AuditoriumDataset& standard_dataset() {
  static const sim::AuditoriumDataset ds = [] {
    sim::DatasetConfig config;
    config.days = 98;
    config.failure_days = 34;
    return sim::generate_dataset(config);
  }();
  return ds;
}

const core::DataSplit& standard_split() {
  static const core::DataSplit s = [] {
    auto required = standard_dataset().sensor_ids();
    const auto inputs = standard_dataset().input_ids();
    required.insert(required.end(), inputs.begin(), inputs.end());
    return core::split_dataset(standard_dataset().trace, required,
                               standard_dataset().schedule,
                               hvac::Mode::kOccupied);
  }();
  return s;
}

core::PipelineResult run_pipeline_at(std::size_t threads) {
  core::PipelineConfig config;
  config.threads = threads;
  const core::ThermalModelingPipeline pipeline(config);
  return pipeline.run(
      standard_dataset().trace, standard_dataset().schedule, standard_split(),
      standard_dataset().wireless_ids(), standard_dataset().input_ids(),
      core::RunOptions{.thermostat_ids = standard_dataset().thermostat_ids()});
}

const std::vector<core::SweepCase>& sweep_cases() {
  static const std::vector<core::SweepCase> cases{
      {core::SelectionStrategy::kStratifiedNearMean, 7},
      {core::SelectionStrategy::kStratifiedRandom, 1},
      {core::SelectionStrategy::kSimpleRandom, 1},
      {core::SelectionStrategy::kThermostats, 7},
  };
  return cases;
}

/// The sweep through run_strategy_sweep: the Step-1 prefix (similarity
/// graph, eigendecomposition, clustering, windows) is computed once and
/// shared via `cache` across all cases.
std::vector<core::PipelineResult> run_sweep_cached(std::size_t threads,
                                                   core::StageCache* cache) {
  core::PipelineConfig base;
  base.threads = threads;
  return core::run_strategy_sweep(
      base, sweep_cases(), standard_dataset().trace,
      standard_dataset().schedule, standard_split(),
      standard_dataset().wireless_ids(), standard_dataset().input_ids(),
      core::RunOptions{
          .thermostat_ids = standard_dataset().thermostat_ids(),
          .cache = cache});
}

/// The pre-cache baseline: each case is a full standalone run() that
/// recomputes every Step-1 stage from scratch.
std::vector<core::PipelineResult> run_sweep_uncached(std::size_t threads) {
  std::vector<core::PipelineResult> results;
  for (const auto& c : sweep_cases()) {
    core::PipelineConfig config;
    config.threads = threads;
    config.strategy = c.strategy;
    config.selection_seed = c.seed;
    const core::ThermalModelingPipeline pipeline(config);
    results.push_back(pipeline.run(
        standard_dataset().trace, standard_dataset().schedule,
        standard_split(), standard_dataset().wireless_ids(),
        standard_dataset().input_ids(),
        core::RunOptions{
            .thermostat_ids = standard_dataset().thermostat_ids()}));
  }
  return results;
}

/// Best-of-3 wall time in milliseconds.
template <typename Fn>
double time_ms(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < best) best = ms;
  }
  return best;
}

bool results_bitwise_equal(const core::PipelineResult& a,
                           const core::PipelineResult& b) {
  return a.clustering.labels == b.clustering.labels &&
         a.selection.per_cluster == b.selection.per_cluster &&
         a.reduced_model.a() == b.reduced_model.a() &&
         a.reduced_model.a2() == b.reduced_model.a2() &&
         a.reduced_model.b() == b.reduced_model.b() &&
         a.reduced_eval.channel_rms == b.reduced_eval.channel_rms &&
         a.reduced_eval.pooled_rms == b.reduced_eval.pooled_rms;
}

// --- Copy-path vs view-path bytes report --------------------------------
// Measures how many sample bytes the strategy sweep's data path moves on
// scaled-up synthetic halls, legacy materializing path vs the zero-copy
// TraceView path, via the timeseries.bytes_copied counter.

struct HallSweep {
  std::size_t sensors = 0;
  std::size_t rows = 0;
  std::uint64_t copy_bytes = 0;    ///< legacy per-case materializing path
  std::uint64_t view_bytes = 0;    ///< uncached view-path sweep
  std::uint64_t view_cached_bytes = 0;  ///< view sweep via StageCache
  double reduction = 0.0;          ///< copy_bytes / max(view_bytes, 1)
  bool results_equal = false;      ///< sweep == per-case run(), bitwise
};

struct HallData {
  timeseries::MultiTrace trace;
  hvac::Schedule schedule;
  core::DataSplit split;
  std::vector<timeseries::ChannelId> sensor_ids;
  std::vector<timeseries::ChannelId> input_ids;
  std::vector<timeseries::ChannelId> thermostat_ids;
};

/// Deterministic `sensor_count`-sensor hall on the synthetic grid plan:
/// two thermal zones split at mid-depth, per-sensor phase/offset from the
/// floor position, sparse deterministic NaN gaps, and an [h; o; l; w]
/// input block driven by the schedule.
HallData make_synthetic_hall(std::size_t sensor_count, std::size_t days) {
  const auto plan = sim::FloorPlan::synthetic_grid(sensor_count);
  std::vector<timeseries::ChannelId> sensor_ids, thermostat_ids;
  std::vector<sim::Position> sites;
  for (const auto& s : plan.sensors()) {
    if (s.is_thermostat) {
      thermostat_ids.push_back(s.id);
      continue;
    }
    sensor_ids.push_back(s.id);
    sites.push_back(s.position);
  }
  const std::vector<timeseries::ChannelId> input_ids{2001, 2002, 2003, 2004};
  std::vector<timeseries::ChannelId> all = sensor_ids;
  all.insert(all.end(), thermostat_ids.begin(), thermostat_ids.end());
  all.insert(all.end(), input_ids.begin(), input_ids.end());

  constexpr std::size_t kPerDay = 48;  // 30-minute samples
  const std::size_t rows = days * kPerDay;
  timeseries::MultiTrace trace(timeseries::TimeGrid(0, 30, rows), all);
  const hvac::Schedule schedule;
  for (std::size_t k = 0; k < rows; ++k) {
    const double day_phase =
        2.0 * M_PI * static_cast<double>(k % kPerDay) / kPerDay;
    const bool on = schedule.occupied_at(trace.grid().at(k));
    for (std::size_t c = 0; c < sensor_ids.size(); ++c) {
      // Every 8th sensor drops three mid-day samples per day — gaps in
      // the occupied window, but few enough rows that every day stays
      // usable for split_dataset at any hall size.
      if (c % 8 == 0 && k % kPerDay == 13 + 2 * (c % 3)) continue;
      const double zone = sites[c].y < 0.5 * plan.depth() ? 1.0 : -1.0;
      const double v = 21.0 + 2.0 * zone * std::sin(day_phase) +
                       0.05 * sites[c].x +
                       0.01 * std::sin(day_phase * 3.0 + 0.1 * c);
      trace.set(k, c, v);
    }
    std::size_t base = sensor_ids.size();
    for (std::size_t t = 0; t < thermostat_ids.size(); ++t) {
      trace.set(k, base + t, 21.5 + 1.5 * std::sin(day_phase + 0.2 * t));
    }
    base += thermostat_ids.size();
    trace.set(k, base + 0, 18.0 + 0.5 * std::sin(day_phase));       // h
    trace.set(k, base + 1, on ? 60.0 : 0.0);                        // o
    trace.set(k, base + 2, on ? 0.4 : 0.1);                         // l
    trace.set(k, base + 3, 10.0 + 5.0 * std::sin(day_phase / 7.0)); // w
  }
  auto split = core::split_dataset(trace, all, schedule,
                                   hvac::Mode::kOccupied);
  return {std::move(trace),     schedule, std::move(split),
          std::move(sensor_ids), input_ids, std::move(thermostat_ids)};
}

std::uint64_t sample_bytes_copied(const obs::Recorder& recorder) {
  for (const auto& [name, value] : recorder.metrics().snapshot().counters) {
    if (name == "timeseries.bytes_copied") return value;
  }
  return 0;
}

const std::vector<core::SweepCase>& hall_cases() {
  // A seed sweep like the paper's tables: deterministic SMS/GP cases plus
  // the random strategies at three seeds each.
  static const std::vector<core::SweepCase> cases{
      {core::SelectionStrategy::kStratifiedNearMean, 7},
      {core::SelectionStrategy::kStratifiedRandom, 1},
      {core::SelectionStrategy::kStratifiedRandom, 2},
      {core::SelectionStrategy::kStratifiedRandom, 3},
      {core::SelectionStrategy::kSimpleRandom, 1},
      {core::SelectionStrategy::kSimpleRandom, 2},
      {core::SelectionStrategy::kSimpleRandom, 3},
      {core::SelectionStrategy::kThermostats, 7},
  };
  return cases;
}

/// Replay the sample copies the pre-TraceView data path performed for a
/// per-case sweep: each case materialized the training rows
/// (filter_rows) and the similarity stage's channel subset
/// (select_channels). GP cases added two more sensor-width copies; this
/// sweep draws none, so the replay *under*-counts the legacy traffic.
/// Returns the byte count, and checks the materialized training keys
/// identically to the zero-copy view of the same rows.
std::uint64_t legacy_copy_replay(const HallData& hall, std::size_t cases,
                                 bool& training_identical) {
  const auto mask = core::and_masks(
      hall.split.train_mask,
      hall.schedule.mode_mask(hall.trace.grid(), hvac::Mode::kOccupied));
  obs::Recorder recorder;
  obs::RecorderScope scope(&recorder);
  for (std::size_t i = 0; i < cases; ++i) {
    const auto training = hall.trace.filter_rows(mask);
    benchmark::DoNotOptimize(training.select_channels(hall.sensor_ids));
    if (i == 0) {
      training_identical =
          core::trace_fingerprint(training) ==
          core::trace_fingerprint(
              timeseries::TraceView(hall.trace).filter_rows(mask));
    }
  }
  return sample_bytes_copied(recorder);
}

std::vector<HallSweep> copy_vs_view_report() {
  std::printf("\n----------------------------------------------------------\n");
  std::printf("Copy-path vs view-path sample traffic (synthetic halls,\n");
  std::printf("8-case sweep; bytes from the timeseries.bytes_copied\n");
  std::printf("counter%s)\n",
              obs::kCompiledIn ? "" : " — observability compiled OUT");
  std::printf("----------------------------------------------------------\n");
  std::printf("%8s %6s %14s %13s %12s %10s %8s\n", "sensors", "rows",
              "copy_bytes", "view_percase", "view_sweep", "reduction",
              "bitwise");

  std::vector<HallSweep> report;
  for (const std::size_t sensors : {std::size_t{128}, std::size_t{512}}) {
    const auto hall = make_synthetic_hall(sensors, 10);
    HallSweep entry;
    entry.sensors = sensors;
    entry.rows = hall.trace.size();

    core::PipelineConfig base;
    base.threads = 1;
    core::RunOptions plain;
    plain.thermostat_ids = hall.thermostat_ids;

    // View-path sweep (run_strategy_sweep's sweep-local cache stores one
    // materialized training copy — the only sample bytes left moving).
    std::vector<core::PipelineResult> sweep;
    {
      obs::Recorder recorder;
      obs::RecorderScope scope(&recorder);
      sweep = core::run_strategy_sweep(base, hall_cases(), hall.trace,
                                       hall.schedule, hall.split,
                                       hall.sensor_ids, hall.input_ids, plain);
      entry.view_cached_bytes = sample_bytes_copied(recorder);
    }

    bool training_identical = false;
    entry.copy_bytes =
        legacy_copy_replay(hall, hall_cases().size(), training_identical);

    // Per-case standalone runs: pure zero-copy views end to end. They
    // double as the equality check — the sweep must match them bit for
    // bit.
    bool equal = training_identical;
    {
      obs::Recorder recorder;
      obs::RecorderScope scope(&recorder);
      for (std::size_t i = 0; i < hall_cases().size(); ++i) {
        core::PipelineConfig config = base;
        config.strategy = hall_cases()[i].strategy;
        config.selection_seed = hall_cases()[i].seed;
        const core::ThermalModelingPipeline pipeline(config);
        const auto single =
            pipeline.run(hall.trace, hall.schedule, hall.split,
                         hall.sensor_ids, hall.input_ids, plain);
        equal = equal && results_bitwise_equal(sweep[i], single);
      }
      entry.view_bytes = sample_bytes_copied(recorder);
    }
    entry.results_equal = equal;
    // Conservative reduction: legacy traffic over the *larger* of the two
    // view-path measurements (the sweep's single cache-owned copy).
    const std::uint64_t view_worst =
        std::max(entry.view_bytes, entry.view_cached_bytes);
    entry.reduction = static_cast<double>(entry.copy_bytes) /
                      static_cast<double>(view_worst > 0 ? view_worst : 1);

    std::printf("%8zu %6zu %14llu %13llu %12llu %9.1fx %8s\n", entry.sensors,
                entry.rows, static_cast<unsigned long long>(entry.copy_bytes),
                static_cast<unsigned long long>(entry.view_bytes),
                static_cast<unsigned long long>(entry.view_cached_bytes),
                entry.reduction, entry.results_equal ? "yes" : "NO");
    report.push_back(entry);
  }
  return report;
}

void speedup_report() {
  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  const auto reference = run_pipeline_at(1);
  const auto sweep_reference = run_sweep_uncached(1);

  std::printf("\n----------------------------------------------------------\n");
  std::printf("Threads-vs-serial speedup (98-day dataset, best of 3)\n");
  std::printf("sweep4 = 4-strategy sweep; uncached recomputes Step 1 per\n");
  std::printf("case, cached shares it through the stage cache\n");
  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());
  std::printf("----------------------------------------------------------\n");
  std::printf("%8s %12s %8s %17s %15s %9s %8s\n", "threads", "pipeline_ms",
              "speedup", "sweep4_uncached", "sweep4_cached", "cache_x",
              "bitwise");

  std::vector<double> pipeline_ms, uncached_ms, cached_ms;
  std::vector<bool> bitwise;
  std::size_t cache_hits = 0, cache_misses = 0;
  for (std::size_t t : thread_counts) {
    bool identical = true;
    pipeline_ms.push_back(time_ms([&] {
      const auto r = run_pipeline_at(t);
      identical = identical && results_bitwise_equal(r, reference);
    }));
    uncached_ms.push_back(time_ms([&] { (void)run_sweep_uncached(t); }));
    cached_ms.push_back(time_ms([&] {
      // Fresh cache per repetition: the timed region includes the one
      // Step-1 build plus the all-hit fan-out, like a real sweep.
      core::StageCache cache;
      const auto sweep = run_sweep_cached(t, &cache);
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        identical =
            identical && results_bitwise_equal(sweep[i], sweep_reference[i]);
      }
      const auto totals = cache.totals();
      cache_hits = totals.hits;
      cache_misses = totals.misses;
    }));
    bitwise.push_back(identical);
  }
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    std::printf("%8zu %12.1f %7.2fx %17.1f %15.1f %8.2fx %8s\n",
                thread_counts[i], pipeline_ms[i],
                pipeline_ms[0] / pipeline_ms[i], uncached_ms[i], cached_ms[i],
                uncached_ms[i] / cached_ms[i], bitwise[i] ? "yes" : "NO");
  }
  std::printf("stage cache per sweep: %zu hits / %zu misses\n", cache_hits,
              cache_misses);

  FILE* json = std::fopen("BENCH_perf_pipeline.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_perf_pipeline.json\n");
    return;
  }
  std::fprintf(json, "{\n  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(json, "  \"dataset_days\": 98,\n");
  std::fprintf(json, "  \"sweep_cases\": %zu,\n", sweep_cases().size());
  std::fprintf(json,
               "  \"stage_cache\": {\"hits\": %zu, \"misses\": %zu},\n",
               cache_hits, cache_misses);
  std::fprintf(json, "  \"runs\": [\n");
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    std::fprintf(json,
                 "    {\"threads\": %zu, \"pipeline_ms\": %.3f, "
                 "\"pipeline_speedup\": %.3f, "
                 "\"sweep4_uncached_ms\": %.3f, \"sweep4_cached_ms\": %.3f, "
                 "\"cache_speedup\": %.3f, \"bitwise_identical\": %s}%s\n",
                 thread_counts[i], pipeline_ms[i],
                 pipeline_ms[0] / pipeline_ms[i], uncached_ms[i], cached_ms[i],
                 uncached_ms[i] / cached_ms[i], bitwise[i] ? "true" : "false",
                 i + 1 < thread_counts.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"copy_vs_view\": [\n");
  const auto halls = copy_vs_view_report();
  for (std::size_t i = 0; i < halls.size(); ++i) {
    const auto& h = halls[i];
    std::fprintf(json,
                 "    {\"sensors\": %zu, \"rows\": %zu, "
                 "\"copy_path_bytes\": %llu, \"view_percase_bytes\": %llu, "
                 "\"view_sweep_bytes\": %llu, \"reduction_x\": %.1f, "
                 "\"results_identical\": %s}%s\n",
                 h.sensors, h.rows,
                 static_cast<unsigned long long>(h.copy_bytes),
                 static_cast<unsigned long long>(h.view_bytes),
                 static_cast<unsigned long long>(h.view_cached_bytes),
                 h.reduction, h.results_equal ? "true" : "false",
                 i + 1 < halls.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_perf_pipeline.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsSession obs_session;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  speedup_report();
  return 0;
}
