// Tests for the ThermalModel structure and simulation.

#include "auditherm/sysid/model.hpp"

#include "auditherm/linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sysid = auditherm::sysid;
namespace linalg = auditherm::linalg;
using linalg::Matrix;
using linalg::Vector;

namespace {

sysid::ThermalModel first_order() {
  // T(k+1) = 0.5*T(k) + [1, 2] u(k), two states decoupled.
  Matrix a{{0.5, 0.0}, {0.0, 0.5}};
  Matrix b{{1.0, 0.0}, {0.0, 2.0}};
  return sysid::ThermalModel(sysid::ModelOrder::kFirst, a, {}, b, {1, 2},
                             {101, 102});
}

sysid::ThermalModel second_order() {
  Matrix a{{0.8, 0.0}, {0.0, 0.8}};
  Matrix a2{{0.1, 0.0}, {0.0, 0.1}};
  Matrix b{{1.0}, {1.0}};
  return sysid::ThermalModel(sysid::ModelOrder::kSecond, a, a2, b, {1, 2},
                             {101});
}

}  // namespace

TEST(ThermalModel, ShapeValidation) {
  Matrix a2x2 = Matrix::identity(2);
  Matrix b2x1(2, 1);
  // Wrong A shape.
  EXPECT_THROW(sysid::ThermalModel(sysid::ModelOrder::kFirst, Matrix(2, 3),
                                   {}, b2x1, {1, 2}, {101}),
               std::invalid_argument);
  // Missing A2 for second order.
  EXPECT_THROW(sysid::ThermalModel(sysid::ModelOrder::kSecond, a2x2, {},
                                   b2x1, {1, 2}, {101}),
               std::invalid_argument);
  // Spurious A2 for first order.
  EXPECT_THROW(sysid::ThermalModel(sysid::ModelOrder::kFirst, a2x2, a2x2,
                                   b2x1, {1, 2}, {101}),
               std::invalid_argument);
  // Wrong B shape.
  EXPECT_THROW(sysid::ThermalModel(sysid::ModelOrder::kFirst, a2x2, {},
                                   Matrix(2, 2), {1, 2}, {101}),
               std::invalid_argument);
  // No states.
  EXPECT_THROW(sysid::ThermalModel(sysid::ModelOrder::kFirst, Matrix(), {},
                                   Matrix(), {}, {101}),
               std::invalid_argument);
}

TEST(ThermalModel, PredictNextFirstOrder) {
  const auto m = first_order();
  const Vector next = m.predict_next({10.0, 20.0}, {}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(next[0], 6.0);   // 0.5*10 + 1
  EXPECT_DOUBLE_EQ(next[1], 12.0);  // 0.5*20 + 2
}

TEST(ThermalModel, PredictNextSecondOrderUsesDelta) {
  const auto m = second_order();
  const Vector next = m.predict_next({10.0, 10.0}, {1.0, -1.0}, {0.0});
  EXPECT_DOUBLE_EQ(next[0], 8.1);  // 0.8*10 + 0.1*1
  EXPECT_DOUBLE_EQ(next[1], 7.9);  // 0.8*10 - 0.1
}

TEST(ThermalModel, PredictNextValidatesSizes) {
  const auto m = first_order();
  EXPECT_THROW((void)m.predict_next({1.0}, {}, {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)m.predict_next({1.0, 2.0}, {}, {1.0}),
               std::invalid_argument);
  const auto m2 = second_order();
  EXPECT_THROW((void)m2.predict_next({1.0, 2.0}, {1.0}, {1.0}),
               std::invalid_argument);
}

TEST(ThermalModel, SimulateMatchesIteratedPredict) {
  const auto m = second_order();
  Matrix inputs(5, 1);
  for (std::size_t k = 0; k < 5; ++k) inputs(k, 0) = 0.3 * (k + 1);
  const Vector init{20.0, 21.0};
  const Vector init_delta{0.2, -0.1};
  const auto sim = m.simulate(init, init_delta, inputs);

  Vector temps = init;
  Vector delta = init_delta;
  for (std::size_t k = 0; k < 5; ++k) {
    const Vector next = m.predict_next(temps, delta, inputs.row_vector(k));
    EXPECT_DOUBLE_EQ(sim(k, 0), next[0]);
    EXPECT_DOUBLE_EQ(sim(k, 1), next[1]);
    delta = auditherm::linalg::subtract(next, temps);
    temps = next;
  }
}

TEST(ThermalModel, SimulateStableSystemConverges) {
  // x(k+1) = 0.5 x(k) + u with constant u=1 converges to 2.
  const auto m = first_order();
  Matrix inputs(100, 2, 1.0);
  const auto sim = m.simulate({0.0, 0.0}, {}, inputs);
  EXPECT_NEAR(sim(99, 0), 2.0, 1e-9);
  EXPECT_NEAR(sim(99, 1), 4.0, 1e-9);
}

TEST(ThermalModel, SimulateValidatesShapes) {
  const auto m = first_order();
  EXPECT_THROW((void)m.simulate({1.0}, {}, Matrix(3, 2)),
               std::invalid_argument);
  EXPECT_THROW((void)m.simulate({1.0, 2.0}, {}, Matrix(3, 1)),
               std::invalid_argument);
  const auto m2 = second_order();
  EXPECT_THROW((void)m2.simulate({1.0, 2.0}, {0.1}, Matrix(3, 1)),
               std::invalid_argument);
}

TEST(ThermalModel, SpectralRadiusOfDiagonalSystem) {
  const auto m = first_order();  // A = 0.5 I
  EXPECT_NEAR(m.spectral_radius_bound(), 0.5, 1e-6);
}

TEST(ThermalModel, SpectralRadiusFlagsUnstableSystem) {
  Matrix a{{1.2, 0.0}, {0.0, 0.3}};
  Matrix b(2, 1);
  const sysid::ThermalModel m(sysid::ModelOrder::kFirst, a, {}, b, {1, 2},
                              {101});
  EXPECT_GT(m.spectral_radius_bound(), 1.1);
}

TEST(ThermalModel, AccessorsReflectConstruction) {
  const auto m = second_order();
  EXPECT_EQ(m.order(), sysid::ModelOrder::kSecond);
  EXPECT_EQ(m.state_count(), 2u);
  EXPECT_EQ(m.input_count(), 1u);
  EXPECT_EQ(m.state_channels(), (std::vector<int>{1, 2}));
  EXPECT_EQ(m.input_channels(), (std::vector<int>{101}));
  EXPECT_DOUBLE_EQ(m.a()(0, 0), 0.8);
  EXPECT_DOUBLE_EQ(m.a2()(0, 0), 0.1);
}
