#include "auditherm/hvac/comfort.hpp"

#include <cmath>
#include <stdexcept>

namespace auditherm::hvac {

ComfortResult predicted_mean_vote(const ComfortInputs& in) {
  if (in.relative_humidity < 0.0 || in.relative_humidity > 1.0) {
    throw std::invalid_argument("predicted_mean_vote: humidity outside [0,1]");
  }
  if (in.metabolic_rate_met <= 0.0 || in.clothing_clo < 0.0 ||
      in.air_velocity_m_s < 0.0) {
    throw std::invalid_argument("predicted_mean_vote: bad personal inputs");
  }

  const double ta = in.air_temp_c;
  const double tr = in.mean_radiant_temp_c;
  const double vel = in.air_velocity_m_s;
  // Water vapour partial pressure (Pa), Antoine-style fit used by ISO 7730.
  const double pa =
      in.relative_humidity * 1000.0 * std::exp(16.6536 - 4030.183 / (ta + 235.0));

  const double icl = 0.155 * in.clothing_clo;  // m^2 K / W
  const double m = in.metabolic_rate_met * 58.15;
  const double w = in.external_work_met * 58.15;
  const double mw = m - w;

  const double fcl = icl <= 0.078 ? 1.0 + 1.29 * icl : 1.05 + 0.645 * icl;
  const double hcf = 12.1 * std::sqrt(vel);
  const double taa = ta + 273.0;
  const double tra = tr + 273.0;

  // Iterate for the clothing surface temperature.
  double tcla = taa + (35.5 - ta) / (3.5 * icl + 0.1);
  const double p1 = icl * fcl;
  const double p2 = p1 * 3.96;
  const double p3 = p1 * 100.0;
  const double p4 = p1 * taa;
  const double p5 = 308.7 - 0.028 * mw + p2 * std::pow(tra / 100.0, 4.0);

  double xn = tcla / 100.0;
  double xf = tcla / 50.0;
  double hc = hcf;
  constexpr double kEps = 1e-5;
  int iterations = 0;
  while (std::abs(xn - xf) > kEps) {
    if (++iterations > 300) {
      throw std::domain_error(
          "predicted_mean_vote: surface temperature iteration diverged");
    }
    xf = (xf + xn) / 2.0;
    const double hcn = 2.38 * std::pow(std::abs(100.0 * xf - taa), 0.25);
    hc = std::max(hcf, hcn);
    xn = (p5 + p4 * hc - p2 * std::pow(xf, 4.0)) / (100.0 + p3 * hc);
  }
  const double tcl = 100.0 * xn - 273.0;

  // Heat-loss components (W/m^2).
  const double hl1 = 3.05e-3 * (5733.0 - 6.99 * mw - pa);  // skin diffusion
  const double hl2 = mw > 58.15 ? 0.42 * (mw - 58.15) : 0.0;  // sweating
  const double hl3 = 1.7e-5 * m * (5867.0 - pa);              // latent resp.
  const double hl4 = 0.0014 * m * (34.0 - ta);                // dry resp.
  const double hl5 =
      3.96 * fcl * (std::pow(xn, 4.0) - std::pow(tra / 100.0, 4.0));  // radiation
  const double hl6 = fcl * hc * (tcl - ta);                           // convection

  const double ts = 0.303 * std::exp(-0.036 * m) + 0.028;
  ComfortResult r;
  r.pmv = ts * (mw - hl1 - hl2 - hl3 - hl4 - hl5 - hl6);
  r.ppd = 100.0 -
          95.0 * std::exp(-0.03353 * std::pow(r.pmv, 4.0) -
                          0.2179 * r.pmv * r.pmv);
  return r;
}

bool within_comfort_band(const ComfortResult& r) noexcept {
  return std::abs(r.pmv) <= 0.5;
}

double neutral_temperature(ComfortInputs inputs) {
  const auto pmv_at = [&inputs](double t) {
    inputs.air_temp_c = t;
    inputs.mean_radiant_temp_c = t;
    return predicted_mean_vote(inputs).pmv;
  };
  double lo = 5.0;
  double hi = 40.0;
  double f_lo = pmv_at(lo);
  double f_hi = pmv_at(hi);
  if (f_lo > 0.0 || f_hi < 0.0) {
    throw std::domain_error(
        "neutral_temperature: PMV does not cross zero in [5, 40] degC");
  }
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (pmv_at(mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double pmv_temperature_sensitivity(ComfortInputs inputs, double delta_c) {
  if (delta_c <= 0.0) {
    throw std::invalid_argument("pmv_temperature_sensitivity: delta <= 0");
  }
  ComfortInputs hi = inputs;
  ComfortInputs lo = inputs;
  hi.air_temp_c += delta_c;
  hi.mean_radiant_temp_c += delta_c;
  lo.air_temp_c -= delta_c;
  lo.mean_radiant_temp_c -= delta_c;
  return (predicted_mean_vote(hi).pmv - predicted_mean_vote(lo).pmv) /
         (2.0 * delta_c);
}

}  // namespace auditherm::hvac
