#include "auditherm/linalg/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace auditherm::linalg {

double mean(const Vector& x) {
  if (x.empty()) throw std::invalid_argument("mean: empty input");
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(const Vector& x) {
  if (x.size() < 2) throw std::invalid_argument("variance: need >= 2 samples");
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size() - 1);
}

double stddev(const Vector& x) { return std::sqrt(variance(x)); }

double rms(const Vector& x) {
  if (x.empty()) throw std::invalid_argument("rms: empty input");
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s / static_cast<double>(x.size()));
}

double percentile(Vector x, double p) {
  if (x.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p outside [0, 100]");
  }
  std::sort(x.begin(), x.end());
  if (x.size() == 1) return x.front();
  const double rank = p / 100.0 * static_cast<double>(x.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= x.size()) return x.back();
  const double frac = rank - static_cast<double>(lo);
  return x[lo] + frac * (x[lo + 1] - x[lo]);
}

double covariance(const Vector& x, const Vector& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("covariance: size mismatch");
  }
  if (x.size() < 2) throw std::invalid_argument("covariance: need >= 2");
  const double mx = mean(x);
  const double my = mean(y);
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += (x[i] - mx) * (y[i] - my);
  return s / static_cast<double>(x.size() - 1);
}

double pearson_correlation(const Vector& x, const Vector& y) {
  const double c = covariance(x, y);
  const double sx = stddev(x);
  const double sy = stddev(y);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return c / (sx * sy);
}

std::vector<CdfPoint> empirical_cdf(Vector x) {
  if (x.empty()) throw std::invalid_argument("empirical_cdf: empty input");
  std::sort(x.begin(), x.end());
  std::vector<CdfPoint> cdf(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    cdf[i] = {x[i],
              static_cast<double>(i + 1) / static_cast<double>(x.size())};
  }
  return cdf;
}

double cdf_at(const std::vector<CdfPoint>& cdf, double value) {
  double p = 0.0;
  for (const auto& pt : cdf) {
    if (pt.value <= value) {
      p = pt.probability;
    } else {
      break;
    }
  }
  return p;
}

}  // namespace auditherm::linalg
