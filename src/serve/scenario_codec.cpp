#include "auditherm/serve/scenario_codec.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace auditherm::serve {

namespace {

using sim::BuildingKind;
using sim::HvacRegime;
using sim::OccupancyRegime;
using sim::ScenarioSpec;
using sim::Season;

/// Integers above 2^53 do not survive the parser's double representation,
/// so they must arrive as decimal strings.
constexpr double kMaxExactJsonInteger = 9007199254740992.0;  // 2^53

[[noreturn]] void fail(const std::string& where, const std::string& what) {
  throw std::invalid_argument(where + ": " + what);
}

std::string string_field(const json::Value& v, const std::string& where,
                         const std::string& key) {
  if (!v.is_string()) fail(where, "'" + key + "' must be a string");
  return v.string;
}

std::size_t count_field(const json::Value& v, const std::string& where,
                        const std::string& key) {
  if (!v.is_number() || v.number != std::floor(v.number) || v.number < 0.0) {
    fail(where, "'" + key + "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(v.number);
}

double number_field(const json::Value& v, const std::string& where,
                    const std::string& key) {
  if (!v.is_number()) fail(where, "'" + key + "' must be a number");
  return v.number;
}

/// A 64-bit seed: a JSON integer when it fits a double exactly, else a
/// decimal string (the form scenario_to_json emits for huge seeds).
std::uint64_t seed_field(const json::Value& v, const std::string& where,
                         const std::string& key) {
  if (v.is_number()) {
    if (v.number != std::floor(v.number) || v.number < 0.0 ||
        v.number > kMaxExactJsonInteger) {
      fail(where, "'" + key +
                      "' must be a non-negative integer <= 2^53 "
                      "(use a decimal string for larger seeds)");
    }
    return static_cast<std::uint64_t>(v.number);
  }
  if (v.is_string()) {
    std::uint64_t seed = 0;
    const char* begin = v.string.data();
    const char* end = begin + v.string.size();
    const auto [ptr, ec] = std::from_chars(begin, end, seed);
    if (ec != std::errc() || ptr != end || v.string.empty()) {
      fail(where, "'" + key + "' string must be a decimal 64-bit integer");
    }
    return seed;
  }
  fail(where, "'" + key + "' must be an integer or a decimal string");
}

BuildingKind building_field(const json::Value& v, const std::string& where,
                            const std::string& key) {
  const std::string s = string_field(v, where, key);
  if (s == "paper") return BuildingKind::kPaperHall;
  if (s == "grid") return BuildingKind::kGrid;
  if (s == "campus") return BuildingKind::kCampus;
  fail(where, "'" + key + "' must be one of paper|grid|campus, got '" + s +
                  "'");
}

Season season_field(const json::Value& v, const std::string& where,
                    const std::string& key) {
  const std::string s = string_field(v, where, key);
  if (s == "paper") return Season::kPaper;
  if (s == "winter") return Season::kWinter;
  if (s == "summer") return Season::kSummer;
  if (s == "shoulder") return Season::kShoulder;
  fail(where, "'" + key + "' must be one of paper|winter|summer|shoulder, " +
                  "got '" + s + "'");
}

OccupancyRegime occupancy_field(const json::Value& v, const std::string& where,
                                const std::string& key) {
  const std::string s = string_field(v, where, key);
  if (s == "paper") return OccupancyRegime::kPaper;
  if (s == "quiet") return OccupancyRegime::kQuiet;
  if (s == "busy") return OccupancyRegime::kBusy;
  fail(where, "'" + key + "' must be one of paper|quiet|busy, got '" + s +
                  "'");
}

HvacRegime hvac_field(const json::Value& v, const std::string& where,
                      const std::string& key) {
  const std::string s = string_field(v, where, key);
  if (s == "paper") return HvacRegime::kPaper;
  if (s == "fixed-supply") return HvacRegime::kFixedSupply;
  if (s == "eco") return HvacRegime::kEco;
  fail(where, "'" + key + "' must be one of paper|fixed-supply|eco, got '" +
                  s + "'");
}

/// Shared by the public decoder and the fleet loop; reports through
/// `had_seed` whether the object carried an explicit "seed" so the fleet
/// decoder knows when to derive one.
ScenarioSpec decode_scenario(const json::Value& body, const std::string& where,
                             bool& had_seed) {
  if (!body.is_object()) fail(where, "must be a JSON object");
  ScenarioSpec spec;
  had_seed = false;
  for (const auto& [key, value] : body.object) {
    if (key == "name") {
      spec.name = string_field(value, where, key);
    } else if (key == "building") {
      spec.building = building_field(value, where, key);
    } else if (key == "sensors") {
      spec.sensors = count_field(value, where, key);
    } else if (key == "halls") {
      spec.halls = count_field(value, where, key);
    } else if (key == "sensors_per_hall") {
      spec.sensors_per_hall = count_field(value, where, key);
    } else if (key == "season") {
      spec.season = season_field(value, where, key);
    } else if (key == "occupancy") {
      spec.occupancy = occupancy_field(value, where, key);
    } else if (key == "hvac") {
      spec.hvac = hvac_field(value, where, key);
    } else if (key == "days") {
      spec.days = count_field(value, where, key);
    } else if (key == "failure_days") {
      spec.failure_days = count_field(value, where, key);
    } else if (key == "dropout") {
      spec.dropout = number_field(value, where, key);
    } else if (key == "seed") {
      spec.seed = seed_field(value, where, key);
      had_seed = true;
    } else {
      fail(where, "unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

}  // namespace

sim::ScenarioSpec scenario_from_json(const json::Value& body,
                                     const std::string& where) {
  bool had_seed = false;
  return decode_scenario(body, where, had_seed);
}

SimulateRequest simulate_request_from_json(const json::Value& body) {
  static const std::string kWhere = "simulate request";
  if (!body.is_object()) fail(kWhere, "body must be a JSON object");

  SimulateRequest request;
  if (body.find("scenarios") == nullptr) {
    // Single-scenario shorthand: the body *is* the spec.
    request.specs.push_back(scenario_from_json(body, kWhere));
    return request;
  }

  std::uint64_t base_seed = ScenarioSpec{}.seed;
  const json::Value* scenarios = nullptr;
  for (const auto& [key, value] : body.object) {
    if (key == "scenarios") {
      if (!value.is_array()) fail(kWhere, "'scenarios' must be an array");
      scenarios = &value;
    } else if (key == "base_seed") {
      base_seed = seed_field(value, kWhere, key);
    } else if (key == "out_dir") {
      request.out_dir = string_field(value, kWhere, key);
    } else {
      fail(kWhere, "unknown key '" + key + "'");
    }
  }
  if (scenarios->array.empty()) {
    fail(kWhere, "'scenarios' must not be empty");
  }
  for (std::size_t i = 0; i < scenarios->array.size(); ++i) {
    const std::string where = kWhere + ": scenarios[" + std::to_string(i) +
                              "]";
    bool had_seed = false;
    ScenarioSpec spec = decode_scenario(scenarios->array[i], where, had_seed);
    if (!had_seed) spec.seed = sim::derive_entity_seed(base_seed, i);
    request.specs.push_back(std::move(spec));
  }
  return request;
}

}  // namespace auditherm::serve
