// Fig. 9: SRS cluster-mean prediction error vs the number of sensors
// selected per cluster (2 correlation clusters).
//
// Paper: the 99th-percentile error decreases steadily as more sensors per
// cluster are averaged, from ~0.75 degC at one sensor toward ~0.1 at
// eight.

#include "bench_common.hpp"

using namespace auditherm;

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Fig. 9: SRS error vs sensors per cluster");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto validation = dataset.trace.filter_rows(
      core::and_masks(split.validation_mask, mode_mask));

  // The 2-cluster partition comes from the shared stage cache (training
  // view -> similarity graph -> spectrum -> clustering).
  core::StageCache cache;
  const auto art = bench::prepare_stages(dataset, split, cache, 2);
  const auto& clusters = *art.clusters;

  std::printf("%-18s %-24s\n", "sensors/cluster",
              "99th-pct error (degC, mean over 25 seeds)");
  linalg::Vector errors;
  for (std::size_t per_cluster = 1; per_cluster <= 8; ++per_cluster) {
    double total = 0.0;
    constexpr int kSeeds = 25;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const auto sel = selection::stratified_random(
          clusters, static_cast<std::uint64_t>(seed), per_cluster);
      total += selection::evaluate_cluster_mean_prediction(validation,
                                                           clusters, sel)
                   .percentile(99.0);
    }
    errors.push_back(total / kSeeds);
    std::printf("%-18zu %-24.3f\n", per_cluster, errors.back());
  }

  bool decreasing = true;
  for (std::size_t i = 1; i < errors.size(); ++i) {
    if (errors[i] > errors[i - 1] + 0.02) decreasing = false;
  }
  std::printf("\nshape checks: error decreases with more sensors: %s | "
              "8-sensor error under half the 1-sensor error: %s\n",
              decreasing ? "yes" : "NO",
              errors.back() < 0.5 * errors.front() ? "yes" : "NO");
  return 0;
}
