#pragma once

/// \file closed_loop.hpp
/// Closed-loop evaluation of HVAC controllers against the zonal plant.
///
/// Runs the same physics as the dataset generator, but with an arbitrary
/// HvacController in the loop instead of the built-in thermostat program,
/// and scores the run on the two axes a building operator cares about:
/// occupant comfort (Fanger PMV inside the ASHRAE-55 band, per thermal
/// zone) and HVAC energy (coil thermal energy + a fan-law term).

#include <memory>
#include <vector>

#include "auditherm/control/controllers.hpp"
#include "auditherm/hvac/comfort.hpp"
#include "auditherm/sim/dataset.hpp"

namespace auditherm::control {

/// Closed-loop run configuration.
struct ClosedLoopConfig {
  std::size_t days = 14;
  timeseries::Minutes step = 30;  ///< control decision period
  double control_dt_s = 60.0;     ///< plant integration step
  sim::WeatherConfig weather;
  sim::OccupancyConfig occupancy;
  sim::PlantConfig plant;
  hvac::Schedule schedule;
  /// Comfort is scored on these sensor groups (thermal zones); occupant
  /// comfort inputs use the zone-mean temperature.
  std::vector<std::vector<timeseries::ChannelId>> comfort_zones;
  /// Personal factors of the audience: seated (1.0 met) in winter indoor
  /// clothing (1.0 clo), for which a ~21 degC room sits inside the
  /// ASHRAE-55 band.
  hvac::ComfortInputs comfort_model{.air_temp_c = 21.0,
                                    .mean_radiant_temp_c = 21.0,
                                    .air_velocity_m_s = 0.12,
                                    .relative_humidity = 0.45,
                                    .metabolic_rate_met = 1.0,
                                    .clothing_clo = 1.0,
                                    .external_work_met = 0.0};
  /// Occupant threshold: comfort counts only when at least this many
  /// people are present.
  double min_occupants = 10.0;
  std::uint64_t seed = 77;
  double turbulence_std_w = 40.0;
  double turbulence_tau_min = 45.0;
  double turbulence_night_factor = 0.25;
};

/// Outcome metrics of a closed-loop run.
struct ClosedLoopMetrics {
  /// Fraction of scored (occupied, audience present) zone-samples whose
  /// PMV fell outside |PMV| <= 0.5.
  double comfort_violation_fraction = 0.0;
  /// Mean |zone temp - setpoint| over scored zone-samples (degC).
  double mean_abs_deviation_c = 0.0;
  /// Thermal energy moved by the coils (kWh, both heating and cooling).
  double coil_energy_kwh = 0.0;
  /// Fan energy proxy (kWh), cubic in total flow per the fan laws.
  double fan_energy_kwh = 0.0;
  std::size_t scored_samples = 0;

  [[nodiscard]] double total_energy_kwh() const noexcept {
    return coil_energy_kwh + fan_energy_kwh;
  }
};

/// Run `controller` in closed loop for config.days and score it.
/// Throws std::invalid_argument on inconsistent configuration (zero days,
/// step not whole control periods, empty comfort zones).
[[nodiscard]] ClosedLoopMetrics run_closed_loop(const ClosedLoopConfig& config,
                                                HvacController& controller,
                                                double setpoint_c = 21.0);

}  // namespace auditherm::control
