#include "auditherm/linalg/least_squares.hpp"

#include <cmath>
#include <stdexcept>

#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/linalg/vector_ops.hpp"
#include "auditherm/obs/trace_span.hpp"

namespace auditherm::linalg {

namespace {

/// Effective ridge penalty: `ridge` itself, or scaled by the mean diagonal
/// of A^T A (= ||A||_F^2 / n) when relative_ridge is set. Computed straight
/// from A so the QR path never forms the Gram matrix.
double effective_ridge(const Matrix& a, const LeastSquaresOptions& opts) {
  if (!opts.relative_ridge) return opts.ridge;
  double tr = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) tr += a(i, j) * a(i, j);
  }
  return opts.ridge * tr / static_cast<double>(a.cols());
}

}  // namespace

Matrix solve_least_squares(const Matrix& a, const Matrix& b,
                           const LeastSquaresOptions& opts) {
  static const obs::MetricId kCalls =
      obs::counter_id("linalg.least_squares_calls");
  obs::add_counter(kCalls);
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("solve_least_squares: row count mismatch");
  }
  if (a.rows() < a.cols()) {
    throw std::invalid_argument(
        "solve_least_squares: underdetermined system (rows < cols)");
  }
  if (opts.ridge < 0.0) {
    throw std::invalid_argument("solve_least_squares: negative ridge");
  }
  if (opts.ridge == 0.0 && opts.prefer_qr) {
    return QrDecomposition(a).solve(b);
  }
  if (opts.prefer_qr) {
    // Ridge via QR on the augmented system [A; sqrt(lambda) I] x = [B; 0]:
    // the exact same minimizer as the regularized normal equations below,
    // but the factorization sees cond(A) rather than cond(A)^2, which is
    // what keeps ill-conditioned regressors solvable at working precision.
    const double lambda = effective_ridge(a, opts);
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    Matrix aug(m + n, n);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) aug(i, j) = a(i, j);
    }
    const double s = std::sqrt(lambda);
    for (std::size_t i = 0; i < n; ++i) aug(m + i, i) = s;
    Matrix baug(m + n, b.cols());
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < b.cols(); ++j) baug(i, j) = b(i, j);
    }
    return QrDecomposition(aug).solve(baug);
  }
  // Normal equations: (A^T A + ridge I) X = A^T B.
  Matrix ata = gram(a, a);
  double lambda = opts.ridge;
  if (opts.relative_ridge) {
    double tr = 0.0;
    for (std::size_t i = 0; i < ata.rows(); ++i) tr += ata(i, i);
    lambda *= tr / static_cast<double>(ata.rows());
  }
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += lambda;
  const Matrix atb = gram(a, b);
  return CholeskyDecomposition(ata).solve(atb);
}

Vector solve_least_squares(const Matrix& a, const Vector& b,
                           const LeastSquaresOptions& opts) {
  return solve_least_squares(a, Matrix::column(b), opts).col_vector(0);
}

double residual_norm(const Matrix& a, const Vector& x, const Vector& b) {
  return norm2(subtract(a * x, b));
}

}  // namespace auditherm::linalg
