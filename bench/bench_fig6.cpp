// Fig. 6: spectral clustering of the sensors under both similarity
// metrics — memberships, Laplacian eigenvalues, and per-cluster mean
// temperatures.
//
// Paper: Euclidean-distance clustering yields 3 clusters (cool front,
// warm back, and a residual group with no clean geography); correlation
// clustering yields 2 clean front/back clusters. The cluster count comes
// from the largest eigengap in each spectrum.

#include <cmath>

#include "bench_common.hpp"

using namespace auditherm;

namespace {

void report_metric(const char* label,
                   const sim::AuditoriumDataset& dataset,
                   const timeseries::MultiTrace& training,
                   clustering::SimilarityMetric metric,
                   std::size_t paper_k) {
  clustering::SimilarityOptions sim_opts;
  sim_opts.metric = metric;
  const auto graph = clustering::build_similarity_graph(
      training, dataset.wireless_ids(), sim_opts);
  const auto analysis = clustering::analyze_spectrum(graph.weights);
  const auto result = clustering::spectral_cluster(graph);

  std::printf("--- %s ---\n", label);
  std::printf("eigenvalues (log10):");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, analysis.eigenvalues.size());
       ++i) {
    const double lam = std::max(analysis.eigenvalues[i], 1e-12);
    std::printf(" %.2f", std::log10(lam));
  }
  std::printf(" ...\n");
  std::printf("eigengap cluster count: %zu (paper: %zu)\n",
              result.cluster_count, paper_k);

  const auto means = timeseries::channel_means(training);
  const auto clusters = result.clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    double mean_temp = 0.0;
    std::size_t n = 0;
    std::printf("cluster %zu:", c + 1);
    for (auto id : clusters[c]) {
      std::printf(" %d", id);
      const auto idx = training.require_channel(id);
      if (!std::isnan(means[idx])) {
        mean_temp += means[idx];
        ++n;
      }
    }
    std::printf("   (mean %.2f degC over %zu sensors)\n",
                n ? mean_temp / static_cast<double>(n) : 0.0, clusters[c].size());
  }

  // Front/back separation check: mean y-coordinate per cluster.
  if (clusters.size() >= 2) {
    double y0 = 0.0, y1 = 0.0;
    for (auto id : clusters[0]) y0 += dataset.plan.site(id).position.y;
    for (auto id : clusters[1]) y1 += dataset.plan.site(id).position.y;
    y0 /= static_cast<double>(clusters[0].size());
    y1 /= static_cast<double>(clusters[1].size());
    std::printf("front/back structure: cluster mean depths %.1f vs %.1f m "
                "(separated: %s)\n",
                y0, y1, std::abs(y0 - y1) > 2.0 ? "yes" : "NO");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Fig. 6: sensor clustering under both metrics");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto training = dataset.trace.filter_rows(
      core::and_masks(split.train_mask, mode_mask));

  report_metric("Euclidean distance", dataset, training,
                clustering::SimilarityMetric::kEuclidean, 3);
  report_metric("correlation", dataset, training,
                clustering::SimilarityMetric::kCorrelation, 2);
  return 0;
}
