// End-to-end shape tests: the paper's headline findings must hold on the
// simulated testbed (smaller dataset than the benches for test-suite
// speed, same machinery).

#include <gtest/gtest.h>

#include "auditherm/auditherm.hpp"

using namespace auditherm;

namespace {

const sim::AuditoriumDataset& dataset() {
  static const sim::AuditoriumDataset ds = [] {
    sim::DatasetConfig config;
    config.days = 56;
    config.failure_days = 10;
    return sim::generate_dataset(config);
  }();
  return ds;
}

struct Context {
  core::DataSplit split;
  std::vector<bool> mode_mask;
  std::vector<timeseries::Segment> validation_windows;
};

Context make_context(hvac::Mode mode) {
  const auto& ds = dataset();
  auto required = ds.sensor_ids();
  const auto inputs = ds.input_ids();
  required.insert(required.end(), inputs.begin(), inputs.end());
  Context ctx;
  ctx.split = core::split_dataset(ds.trace, required, ds.schedule, mode);
  ctx.mode_mask = ds.schedule.mode_mask(ds.trace.grid(), mode);
  auto window_mask =
      core::and_masks(ctx.split.validation_mask, ctx.mode_mask);
  window_mask = core::and_masks(
      window_mask, timeseries::rows_with_all_valid(ds.trace, inputs));
  ctx.validation_windows = timeseries::find_segments(window_mask, 2);
  return ctx;
}

double p90_error(sysid::ModelOrder order, hvac::Mode mode) {
  const auto& ds = dataset();
  const auto ctx = make_context(mode);
  sysid::ModelEstimator estimator(ds.sensor_ids(), ds.input_ids(), order);
  const auto model = estimator.fit(
      ds.trace, core::and_masks(ctx.split.train_mask, ctx.mode_mask));
  sysid::EvaluationOptions opts;
  opts.horizon_samples = mode == hvac::Mode::kOccupied ? 27 : 18;
  const auto eval = sysid::evaluate_prediction(model, ds.trace,
                                               ctx.validation_windows, opts);
  return eval.channel_rms_percentile(90.0);
}

}  // namespace

TEST(Integration, UsableDayAccountingRoughlyMatchesPaperRatio) {
  // 56 days with 10 failure days: expect the usable count to land near
  // 56-10 (a few more may fall to dropout pileups).
  const auto ctx = make_context(hvac::Mode::kOccupied);
  EXPECT_GE(ctx.split.usable_days.size(), 38u);
  EXPECT_LE(ctx.split.usable_days.size(), 46u);
}

TEST(Integration, SecondOrderBeatsFirstOrderUnoccupied) {
  const double first = p90_error(sysid::ModelOrder::kFirst,
                                 hvac::Mode::kUnoccupied);
  const double second = p90_error(sysid::ModelOrder::kSecond,
                                  hvac::Mode::kUnoccupied);
  EXPECT_LT(second, first);
  EXPECT_LT(second, 0.6);  // sane absolute magnitude
}

TEST(Integration, ErrorsAreTolerableInOccupiedMode) {
  const double second = p90_error(sysid::ModelOrder::kSecond,
                                  hvac::Mode::kOccupied);
  EXPECT_LT(second, 1.2);
  EXPECT_GT(second, 0.05);  // and not implausibly perfect
}

TEST(Integration, CorrelationClusteringFindsTwoZones) {
  const auto& ds = dataset();
  const auto ctx = make_context(hvac::Mode::kOccupied);
  const auto training = ds.trace.filter_rows(
      core::and_masks(ctx.split.train_mask, ctx.mode_mask));
  const auto graph =
      clustering::build_similarity_graph(training, ds.wireless_ids());
  const auto result = clustering::spectral_cluster(graph);
  EXPECT_EQ(result.cluster_count, 2u);
}

TEST(Integration, SmsBeatsClusterBlindBaselines) {
  const auto& ds = dataset();
  const auto ctx = make_context(hvac::Mode::kOccupied);
  const auto training = ds.trace.filter_rows(
      core::and_masks(ctx.split.train_mask, ctx.mode_mask));
  const auto validation = ds.trace.filter_rows(
      core::and_masks(ctx.split.validation_mask, ctx.mode_mask));
  const auto graph =
      clustering::build_similarity_graph(training, ds.wireless_ids());
  const auto clusters = clustering::spectral_cluster(graph).clusters();

  const auto p99 = [&](const selection::Selection& sel) {
    return selection::evaluate_cluster_mean_prediction(validation, clusters,
                                                       sel)
        .percentile(99.0);
  };
  const double sms =
      p99(selection::stratified_near_mean(training, clusters));
  const double thermostats = p99(selection::thermostat_baseline(
      ds.thermostat_ids(), clusters.size()));
  double rs = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    rs += p99(selection::simple_random(training, clusters, seed));
  }
  rs /= 10.0;

  EXPECT_LT(sms, rs);
  EXPECT_LT(sms, thermostats);
  EXPECT_LT(sms, 0.8);  // SMS is genuinely tight, not just relatively better
}

TEST(Integration, CsvRoundTripOfGeneratedDataset) {
  const auto& ds = dataset();
  const std::string path = ::testing::TempDir() + "/auditherm_dataset.csv";
  timeseries::write_csv_file(path, ds.trace);
  const auto loaded = timeseries::read_csv_file(path);
  EXPECT_EQ(loaded.grid(), ds.trace.grid());
  EXPECT_EQ(loaded.channels(), ds.trace.channels());
  EXPECT_NEAR(loaded.coverage(), ds.trace.coverage(), 1e-12);
}
