// Tests for continuous-interval segmentation.

#include "auditherm/timeseries/segmentation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ts = auditherm::timeseries;
using ts::Segment;

TEST(Segmentation, FindsMaximalRuns) {
  const std::vector<bool> mask{true, true, false, true, true, true, false};
  const auto segs = ts::find_segments(mask);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Segment{0, 2}));
  EXPECT_EQ(segs[1], (Segment{3, 6}));
}

TEST(Segmentation, MinLengthFiltersShortRuns) {
  const std::vector<bool> mask{true, false, true, true, false, true, true, true};
  const auto segs = ts::find_segments(mask, 3);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{5, 8}));
}

TEST(Segmentation, EmptyAndAllTrue) {
  EXPECT_TRUE(ts::find_segments({}).empty());
  EXPECT_TRUE(ts::find_segments({false, false}).empty());
  const auto segs = ts::find_segments({true, true, true});
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].length(), 3u);
}

TEST(Segmentation, MinLengthZeroThrows) {
  EXPECT_THROW((void)ts::find_segments({true}, 0), std::invalid_argument);
}

TEST(Segmentation, TotalLength) {
  EXPECT_EQ(ts::total_length({{0, 2}, {5, 9}}), 6u);
  EXPECT_EQ(ts::total_length({}), 0u);
}

TEST(Segmentation, IntersectSplitsRuns) {
  // One long run, the mask punches a hole in the middle.
  const std::vector<Segment> segs{{0, 8}};
  std::vector<bool> mask(8, true);
  mask[3] = false;
  const auto out = ts::intersect_segments(segs, mask);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Segment{0, 3}));
  EXPECT_EQ(out[1], (Segment{4, 8}));
}

TEST(Segmentation, IntersectRespectsSegmentBounds) {
  const std::vector<Segment> segs{{2, 5}};
  const std::vector<bool> mask(8, true);
  const auto out = ts::intersect_segments(segs, mask);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Segment{2, 5}));
}

TEST(Segmentation, IntersectOutOfRangeSegmentThrows) {
  // A segment past the mask means the mask was built for a different
  // trace — that used to be silently clamped (truncated windows), now it
  // throws.
  const std::vector<bool> mask(8, true);
  EXPECT_THROW((void)ts::intersect_segments({{6, 9}}, mask),
               std::out_of_range);
  EXPECT_THROW((void)ts::intersect_segments({{8, 12}}, mask),
               std::out_of_range);
  EXPECT_THROW((void)ts::intersect_segments({{0, 3}}, std::vector<bool>{}),
               std::out_of_range);
  // A segment ending exactly at the mask boundary is in range.
  EXPECT_NO_THROW((void)ts::intersect_segments({{5, 8}}, mask));
}
