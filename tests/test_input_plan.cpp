// Tests for the input-plan layer: TraceView derived channels, plan
// resolution (ground truth / CO2 estimate / schedule prior), the
// calibration fingerprint, the ground-truth bitwise no-op contract
// through the pipeline, and streaming agreement on augmented views.

#include "auditherm/sysid/input_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "auditherm/core/pipeline.hpp"
#include "auditherm/core/split.hpp"
#include "auditherm/core/stage_cache.hpp"
#include "auditherm/obs/metrics.hpp"
#include "auditherm/obs/trace_span.hpp"
#include "auditherm/sim/dataset.hpp"
#include "auditherm/sysid/estimator.hpp"
#include "auditherm/sysid/streaming.hpp"
#include "auditherm/timeseries/multi_trace.hpp"
#include "auditherm/timeseries/trace_view.hpp"

namespace core = auditherm::core;
namespace obs = auditherm::obs;
namespace sim = auditherm::sim;
namespace sysid = auditherm::sysid;
namespace timeseries = auditherm::timeseries;
namespace linalg = auditherm::linalg;
namespace hvac = auditherm::hvac;

namespace {

// --- TraceView derived channels -------------------------------------------

/// 6-row, 2-channel trace with one gap.
timeseries::MultiTrace tiny_trace() {
  timeseries::MultiTrace trace(timeseries::TimeGrid(0, 30, 6), {1, 2});
  for (std::size_t k = 0; k < 6; ++k) {
    trace.set(k, 0, 10.0 + static_cast<double>(k));
    trace.set(k, 1, 20.0 + static_cast<double>(k));
  }
  trace.set(3, 1, std::numeric_limits<double>::quiet_NaN());
  return trace;
}

std::shared_ptr<const linalg::Vector> counting_column(std::size_t rows) {
  auto column = std::make_shared<linalg::Vector>(rows);
  for (std::size_t k = 0; k < rows; ++k) {
    (*column)[k] = 100.0 + static_cast<double>(k);
  }
  return column;
}

TEST(TraceViewDerived, WithChannelReadsAttachedColumn) {
  const auto trace = tiny_trace();
  const timeseries::TraceView base(trace);
  EXPECT_FALSE(base.has_derived_channels());

  const auto view = base.with_channel(9, counting_column(6));
  EXPECT_TRUE(view.has_derived_channels());
  ASSERT_EQ(view.channel_count(), 3u);
  EXPECT_EQ(view.channels().back(), 9);
  const auto c = view.require_channel(9);
  for (std::size_t k = 0; k < view.size(); ++k) {
    EXPECT_EQ(view.value(k, c), 100.0 + static_cast<double>(k));
    EXPECT_TRUE(view.valid(k, c));
  }
  // Base channels read through unchanged.
  EXPECT_EQ(view.value(2, view.require_channel(1)), 12.0);
}

TEST(TraceViewDerived, ColumnIsIndexedBySourceRow) {
  const auto trace = tiny_trace();
  const timeseries::TraceView base(trace);
  const auto column = counting_column(6);

  // Attach-then-subset and subset-then-attach read identical samples.
  std::vector<bool> keep{true, false, true, false, true, true};
  const auto attached_first = base.with_channel(9, column).filter_rows(keep);
  const auto subset_first = base.filter_rows(keep).with_channel(9, column);
  ASSERT_EQ(attached_first.size(), subset_first.size());
  const auto ca = attached_first.require_channel(9);
  const auto cs = subset_first.require_channel(9);
  for (std::size_t k = 0; k < attached_first.size(); ++k) {
    EXPECT_EQ(attached_first.value(k, ca), subset_first.value(k, cs));
    EXPECT_EQ(attached_first.value(k, ca),
              (*column)[attached_first.source_row(k)]);
  }

  // Slices shift through the same source-row mapping.
  const auto sliced = base.with_channel(9, column).slice_rows(2, 5);
  const auto c = sliced.require_channel(9);
  EXPECT_EQ(sliced.value(0, c), 102.0);
  EXPECT_EQ(sliced.value(2, c), 104.0);
}

TEST(TraceViewDerived, SelectCanDropOrKeepDerivedChannels) {
  const auto trace = tiny_trace();
  const auto view =
      timeseries::TraceView(trace).with_channel(9, counting_column(6));

  const auto without = view.select_channels({1, 2});
  EXPECT_FALSE(without.has_derived_channels());
  const auto with = view.select_channels({9, 1});
  EXPECT_TRUE(with.has_derived_channels());
  EXPECT_EQ(with.value(1, 0), 101.0);
  EXPECT_EQ(with.value(1, 1), 11.0);
}

TEST(TraceViewDerived, MaterializeCopiesDerivedSamples) {
  const auto trace = tiny_trace();
  const auto view =
      timeseries::TraceView(trace).with_channel(9, counting_column(6));
  const auto owned = view.materialize();
  const auto c = owned.require_channel(9);
  EXPECT_EQ(owned.value(4, c), 104.0);
}

TEST(TraceViewDerived, WithChannelValidatesItsArguments) {
  const auto trace = tiny_trace();
  const timeseries::TraceView base(trace);
  EXPECT_THROW((void)base.with_channel(1, counting_column(6)),
               std::invalid_argument);  // id exists
  EXPECT_THROW((void)base.with_channel(9, nullptr), std::invalid_argument);
  EXPECT_THROW((void)base.with_channel(9, counting_column(5)),
               std::invalid_argument);  // wrong row count
}

// --- Plan resolution -------------------------------------------------------

/// Shared small dataset (generation costs a few hundred ms).
const sim::AuditoriumDataset& dataset() {
  static const sim::AuditoriumDataset shared = [] {
    sim::DatasetConfig config;
    config.days = 14;
    config.failure_days = 2;
    return sim::generate_dataset(config);
  }();
  return shared;
}

const core::DataSplit& split() {
  static const core::DataSplit shared = core::split_dataset(
      dataset().trace, dataset().input_ids(), dataset().schedule,
      hvac::Mode::kOccupied);
  return shared;
}

sysid::InputPlan estimated_plan() {
  sysid::InputPlan plan;
  for (const auto id : dataset().input_ids()) {
    if (id == sim::DatasetChannels::kOccupancy) {
      sysid::Co2Channels co2;
      co2.vav_flows = dataset().vav_ids();
      plan.slots.push_back(sysid::InputSlot::co2_estimated(co2));
    } else {
      plan.slots.push_back(sysid::InputSlot::ground_truth(id));
    }
  }
  return plan;
}

TEST(InputPlan, GroundTruthPlanResolvesToNoOp) {
  const auto plan = sysid::InputPlan::ground_truth(dataset().input_ids());
  EXPECT_TRUE(plan.pure_ground_truth());
  EXPECT_EQ(plan.channel_ids(), dataset().input_ids());

  const auto resolved =
      sysid::resolve_input_plan(plan, dataset().trace, split().train_mask);
  EXPECT_TRUE(resolved.pure_ground_truth());
  EXPECT_EQ(resolved.fingerprint, 0u);
  EXPECT_EQ(resolved.channel_ids, dataset().input_ids());
  // augment() returns the base view unchanged.
  const auto view = resolved.augment(dataset().trace);
  EXPECT_FALSE(view.has_derived_channels());
  EXPECT_EQ(view.channel_count(),
            timeseries::TraceView(dataset().trace).channel_count());
}

TEST(InputPlan, Co2EstimatedMatchesManualCalibration) {
  const auto resolved = sysid::resolve_input_plan(
      estimated_plan(), dataset().trace, split().train_mask);
  EXPECT_FALSE(resolved.pure_ground_truth());
  EXPECT_NE(resolved.fingerprint, 0u);
  ASSERT_EQ(resolved.derived.size(), 1u);
  EXPECT_EQ(resolved.derived[0].id, sysid::kEstimatedOccupancyChannel);

  // The occupancy slot's position now carries the derived id.
  auto expected_ids = dataset().input_ids();
  for (auto& id : expected_ids) {
    if (id == sim::DatasetChannels::kOccupancy) {
      id = sysid::kEstimatedOccupancyChannel;
    }
  }
  EXPECT_EQ(resolved.channel_ids, expected_ids);

  // Bitwise equal to calibrating on the training rows and estimating over
  // the full trace by hand.
  sysid::Co2Channels co2;
  co2.vav_flows = dataset().vav_ids();
  sysid::Co2OccupancyEstimator estimator(co2);
  estimator.calibrate(
      timeseries::TraceView(dataset().trace).filter_rows(split().train_mask));
  const auto manual = estimator.estimate(dataset().trace);
  const auto& column = *resolved.derived[0].column;
  ASSERT_EQ(column.size(), manual.size());
  for (std::size_t k = 0; k < manual.size(); ++k) {
    if (std::isnan(manual[k])) {
      EXPECT_TRUE(std::isnan(column[k])) << "row " << k;
    } else {
      EXPECT_EQ(column[k], manual[k]) << "row " << k;
    }
  }

  // The augmented view exposes the derived channel to downstream readers.
  const auto view = resolved.augment(dataset().trace);
  const auto c = view.require_channel(sysid::kEstimatedOccupancyChannel);
  EXPECT_EQ(view.value(10, c), column[10]);
}

TEST(InputPlan, ClampAndRoundShapeTheEstimate) {
  auto plan = estimated_plan();
  for (auto& slot : plan.slots) {
    if (slot.source == sysid::InputSource::kCo2Estimated) {
      slot.clamp_max = 3.0;
      slot.round_to_integer = true;
    }
  }
  const auto resolved =
      sysid::resolve_input_plan(plan, dataset().trace, split().train_mask);
  const auto& column = *resolved.derived[0].column;
  for (const double v : column) {
    if (std::isnan(v)) continue;
    EXPECT_LE(v, 3.0);
    EXPECT_EQ(v, std::round(v));
  }

  // Options enter the fingerprint: same data, different plan options,
  // different keys.
  const auto plain = sysid::resolve_input_plan(
      estimated_plan(), dataset().trace, split().train_mask);
  EXPECT_NE(resolved.fingerprint, plain.fingerprint);
}

TEST(InputPlan, SchedulePriorIsTwoLevel) {
  sysid::InputPlan plan;
  plan.slots.push_back(sysid::InputSlot::ground_truth(
      sim::DatasetChannels::kAmbient));
  plan.slots.push_back(
      sysid::InputSlot::schedule_prior(dataset().schedule, 80.0, 0.0));
  const auto resolved =
      sysid::resolve_input_plan(plan, dataset().trace, split().train_mask);
  ASSERT_EQ(resolved.derived.size(), 1u);
  EXPECT_EQ(resolved.derived[0].id, sysid::kSchedulePriorChannel);
  const auto& column = *resolved.derived[0].column;
  const auto& grid = dataset().trace.grid();
  for (std::size_t k = 0; k < column.size(); ++k) {
    const bool occupied = dataset().schedule.occupied_at(grid[k]);
    EXPECT_EQ(column[k], occupied ? 80.0 : 0.0) << "row " << k;
  }
  EXPECT_NE(resolved.fingerprint, 0u);
}

TEST(InputPlan, FingerprintIsDeterministicAndSourceSensitive) {
  const auto a = sysid::resolve_input_plan(estimated_plan(), dataset().trace,
                                           split().train_mask);
  const auto b = sysid::resolve_input_plan(estimated_plan(), dataset().trace,
                                           split().train_mask);
  EXPECT_EQ(a.fingerprint, b.fingerprint);

  sysid::InputPlan schedule_plan;
  for (const auto id : dataset().input_ids()) {
    if (id == sim::DatasetChannels::kOccupancy) {
      schedule_plan.slots.push_back(
          sysid::InputSlot::schedule_prior(dataset().schedule, 80.0, 0.0));
    } else {
      schedule_plan.slots.push_back(sysid::InputSlot::ground_truth(id));
    }
  }
  const auto c = sysid::resolve_input_plan(schedule_plan, dataset().trace,
                                           split().train_mask);
  EXPECT_NE(a.fingerprint, c.fingerprint);

  // A different training mask recalibrates — the calibration fingerprint
  // moves with it.
  auto shifted = split().train_mask;
  std::size_t flipped = 0;
  for (std::size_t k = 0; k < shifted.size() && flipped < 48; ++k) {
    if (shifted[k]) {
      shifted[k] = false;
      ++flipped;
    }
  }
  const auto d =
      sysid::resolve_input_plan(estimated_plan(), dataset().trace, shifted);
  EXPECT_NE(a.fingerprint, d.fingerprint);
}

TEST(InputPlan, ResolveValidatesPlans) {
  const timeseries::TraceView view(dataset().trace);
  EXPECT_THROW(
      (void)sysid::resolve_input_plan({}, view, split().train_mask),
      std::invalid_argument);

  // Duplicate resolved ids.
  sysid::InputPlan duplicate;
  duplicate.slots.push_back(sysid::InputSlot::ground_truth(111));
  duplicate.slots.push_back(sysid::InputSlot::ground_truth(111));
  EXPECT_THROW(
      (void)sysid::resolve_input_plan(duplicate, view, split().train_mask),
      std::invalid_argument);

  // A derived id colliding with an existing trace channel.
  sysid::InputPlan collision;
  sysid::Co2Channels co2;
  co2.vav_flows = dataset().vav_ids();
  collision.slots.push_back(sysid::InputSlot::co2_estimated(
      co2, sim::DatasetChannels::kLighting));
  EXPECT_THROW(
      (void)sysid::resolve_input_plan(collision, view, split().train_mask),
      std::invalid_argument);

  // Training mask must match the trace rows.
  EXPECT_THROW((void)sysid::resolve_input_plan(
                   estimated_plan(), view,
                   std::vector<bool>(view.size() - 1, true)),
               std::invalid_argument);
}

// --- Pipeline integration --------------------------------------------------

core::PipelineConfig two_cluster_config() {
  core::PipelineConfig config;
  config.spectral.cluster_count = 2;
  return config;
}

TEST(InputPlanPipeline, GroundTruthPlanIsBitwiseNoOp) {
  const core::ThermalModelingPipeline pipeline(two_cluster_config());
  const auto baseline =
      pipeline.run(dataset().trace, dataset().schedule, split(),
                   dataset().wireless_ids(), dataset().input_ids(), {});

  const auto plan = sysid::InputPlan::ground_truth(dataset().input_ids());
  core::RunOptions options;
  options.input_plan = &plan;
  const auto planned =
      pipeline.run(dataset().trace, dataset().schedule, split(),
                   dataset().wireless_ids(), dataset().input_ids(), options);

  EXPECT_EQ(planned.selection.flattened(), baseline.selection.flattened());
  EXPECT_EQ(planned.reduced_eval.pooled_rms, baseline.reduced_eval.pooled_rms);
  const auto& a = baseline.reduced_model.b();
  const auto& b = planned.reduced_model.b();
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j));
    }
  }
}

TEST(InputPlanPipeline, EstimatedPlanRunsAndNeverAliasesCachedStages) {
  const core::ThermalModelingPipeline pipeline(two_cluster_config());
  core::StageCache cache;
  core::RunOptions truth_options;
  truth_options.cache = &cache;
  const auto truth =
      pipeline.run(dataset().trace, dataset().schedule, split(),
                   dataset().wireless_ids(), dataset().input_ids(),
                   truth_options);
  const auto misses_after_truth = cache.totals().misses;

  // A different input source must key its own stages, not reuse truth's.
  const auto plan = estimated_plan();
  core::RunOptions estimated_options;
  estimated_options.cache = &cache;
  estimated_options.input_plan = &plan;
  const auto estimated =
      pipeline.run(dataset().trace, dataset().schedule, split(),
                   dataset().wireless_ids(), dataset().input_ids(),
                   estimated_options);
  EXPECT_GT(cache.totals().misses, misses_after_truth);
  EXPECT_TRUE(std::isfinite(estimated.reduced_eval.pooled_rms));
  EXPECT_NE(estimated.reduced_model.input_channels(),
            truth.reduced_model.input_channels());

  // Re-running the estimated plan is deterministic: pure cache hits.
  const auto misses_after_estimated = cache.totals().misses;
  const auto repeat =
      pipeline.run(dataset().trace, dataset().schedule, split(),
                   dataset().wireless_ids(), dataset().input_ids(),
                   estimated_options);
  EXPECT_EQ(cache.totals().misses, misses_after_estimated);
  EXPECT_EQ(repeat.reduced_eval.pooled_rms,
            estimated.reduced_eval.pooled_rms);
}

TEST(InputPlanPipeline, StreamingMatchesBatchOnTheAugmentedView) {
  const auto resolved = sysid::resolve_input_plan(
      estimated_plan(), dataset().trace, split().train_mask);
  const auto full = resolved.augment(dataset().trace);
  const auto states = dataset().thermostat_ids();
  const auto fit_mask = core::and_masks(
      split().train_mask,
      dataset().schedule.mode_mask(dataset().trace.grid(),
                                   hvac::Mode::kOccupied));

  sysid::ModelEstimator batch(states, resolved.channel_ids,
                              sysid::ModelOrder::kSecond);
  const auto batch_model = batch.fit(full, fit_mask);

  sysid::StreamingEstimator streaming(states, resolved.channel_ids,
                                      sysid::ModelOrder::kSecond);
  streaming.push_trace(full, fit_mask);
  ASSERT_TRUE(streaming.has_model());
  const auto& online = streaming.model();
  const auto check = [](const linalg::Matrix& x, const linalg::Matrix& y) {
    ASSERT_EQ(x.rows(), y.rows());
    ASSERT_EQ(x.cols(), y.cols());
    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t j = 0; j < x.cols(); ++j) {
        EXPECT_NEAR(x(i, j), y(i, j), 1e-8);
      }
    }
  };
  check(online.a(), batch_model.a());
  check(online.a2(), batch_model.a2());
  check(online.b(), batch_model.b());
}

TEST(InputPlanObs, ResolutionEmitsSpansAndSourceCounters) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  obs::Recorder recorder;
  {
    const obs::RecorderScope scope(&recorder);
    (void)sysid::resolve_input_plan(estimated_plan(), dataset().trace,
                                    split().train_mask);
  }
  const auto snapshot = recorder.metrics().snapshot();
  std::size_t estimated = 0, truth = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "sysid.input_plan.co2_estimated") estimated = value;
    if (name == "sysid.input_plan.ground_truth") truth = value;
  }
  EXPECT_EQ(estimated, 1u);
  EXPECT_EQ(truth, dataset().input_ids().size() - 1);
  bool saw_resolve_span = false;
  for (const auto& span : recorder.spans()) {
    if (span.name == "sysid.input_plan.resolve") saw_resolve_span = true;
  }
  EXPECT_TRUE(saw_resolve_span);
}

}  // namespace
