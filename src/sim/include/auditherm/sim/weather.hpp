#pragma once

/// \file weather.hpp
/// Synthetic ambient-temperature generator.
///
/// Stands in for the paper's measured St. Louis weather (Jan 31 - May 8,
/// 2013): a winter-to-spring seasonal ramp, a diurnal cycle with the
/// minimum near dawn, a per-day weather-system offset, and AR(1) noise.
/// This is the w(k) input of the thermal models.

#include <cstdint>
#include <vector>

#include "auditherm/timeseries/time_grid.hpp"

namespace auditherm::timeseries {
class MultiTrace;
}

namespace auditherm::sim {

/// Weather generator parameters.
struct WeatherConfig {
  double start_mean_c = 1.0;      ///< seasonal mean on day 0 (late January)
  double end_mean_c = 18.0;       ///< seasonal mean on day `season_days`
  double season_days = 98.0;      ///< length of the ramp
  double diurnal_amplitude_c = 5.0;
  timeseries::Minutes coldest_minute = 6 * 60;  ///< diurnal minimum time
  double day_offset_std_c = 3.0;  ///< per-day weather-system offset
  double ar1_coefficient = 0.95;  ///< minute-scale AR(1) persistence
  double ar1_noise_std_c = 0.08;
  std::uint64_t seed = 20130131;
};

/// Deterministic, seeded ambient temperature model.
///
/// Day offsets and the AR(1) path are pre-generated on a minute grid so
/// that temperature_at(t) is a pure function of (config, t): two queries
/// at the same t always agree, regardless of query order.
class WeatherModel {
 public:
  /// Generate `days` days of weather. Throws std::invalid_argument when
  /// days == 0 or the config is inconsistent (|ar1| >= 1, negative stds).
  WeatherModel(const WeatherConfig& config, std::size_t days);

  [[nodiscard]] const WeatherConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t days() const noexcept { return day_offsets_.size(); }

  /// Ambient temperature at absolute minute t (clamped to the generated
  /// range).
  [[nodiscard]] double temperature_at(timeseries::Minutes t) const noexcept;

  /// Seasonal + diurnal component only (no stochastic terms).
  [[nodiscard]] double deterministic_at(timeseries::Minutes t) const noexcept;

 private:
  WeatherConfig config_;
  std::vector<double> day_offsets_;  ///< per-day weather-system offset
  std::vector<double> ar1_path_;     ///< minute-resolution AR(1) noise
};

}  // namespace auditherm::sim
