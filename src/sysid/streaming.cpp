#include "auditherm/sysid/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "auditherm/obs/trace_span.hpp"

namespace auditherm::sysid {

namespace {

/// Rows of history a transition needs before its target (same rule as the
/// batch estimator): 1 for first order, 2 for second (dT(k) needs T(k-1)).
std::size_t history_rows(ModelOrder order) {
  return order == ModelOrder::kSecond ? 2 : 1;
}

bool all_finite(const linalg::Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

StreamingEstimator::StreamingEstimator(
    std::vector<timeseries::ChannelId> state_ids,
    std::vector<timeseries::ChannelId> input_ids, ModelOrder order,
    StreamingOptions options)
    : state_ids_(std::move(state_ids)),
      input_ids_(std::move(input_ids)),
      order_(order),
      options_(options),
      history_(history_rows(order)),
      n_params_((order == ModelOrder::kSecond ? 2 * state_ids_.size()
                                              : state_ids_.size()) +
                input_ids_.size()),
      qr_(n_params_ == 0 ? 1 : n_params_,
          state_ids_.empty() ? 1 : state_ids_.size()) {
  if (state_ids_.empty()) {
    throw std::invalid_argument("StreamingEstimator: no state channels");
  }
  if (input_ids_.empty()) {
    throw std::invalid_argument("StreamingEstimator: no input channels");
  }
  if (options_.estimation.ridge < 0.0) {
    throw std::invalid_argument("StreamingEstimator: negative ridge");
  }
  if (options_.window_rows != 0 && options_.window_rows < history_ + 2) {
    throw std::invalid_argument(
        "StreamingEstimator: window_rows " +
        std::to_string(options_.window_rows) + " cannot hold a transition (" +
        std::to_string(history_ + 2) + " rows needed)");
  }
}

std::size_t StreamingEstimator::min_transitions_needed() const noexcept {
  if (options_.estimation.min_transitions != 0) {
    return options_.estimation.min_transitions;
  }
  return std::max<std::size_t>(4 * n_params_, 8);
}

bool StreamingEstimator::has_model() const noexcept {
  return window_.size() >= min_transitions_needed();
}

linalg::Matrix StreamingEstimator::solve_theta() const {
  const double ridge = options_.estimation.ridge;
  if (ridge == 0.0) return qr_.solve();
  double lambda = ridge;
  if (options_.estimation.relative_ridge) {
    lambda *= qr_.gram_trace() / static_cast<double>(n_params_);
  }
  if (!(lambda > 0.0)) return qr_.solve();
  return qr_.solve_ridge(lambda);
}

const ThermalModel& StreamingEstimator::model() const {
  if (!has_model()) {
    throw std::runtime_error(
        "StreamingEstimator::model: only " +
        std::to_string(window_.size()) + " window transitions, need " +
        std::to_string(min_transitions_needed()));
  }
  if (!cached_model_) {
    const linalg::Matrix theta = solve_theta();
    const std::size_t p = state_ids_.size();
    const std::size_t q = input_ids_.size();
    linalg::Matrix a(p, p);
    linalg::Matrix a2;
    linalg::Matrix b(p, q);
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) a(i, j) = theta(j, i);
    }
    std::size_t offset = p;
    if (order_ == ModelOrder::kSecond) {
      a2 = linalg::Matrix(p, p);
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = 0; j < p; ++j) a2(i, j) = theta(offset + j, i);
      }
      offset += p;
    }
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < q; ++j) b(i, j) = theta(offset + j, i);
    }
    cached_model_.emplace(order_, std::move(a), std::move(a2), std::move(b),
                          state_ids_, input_ids_);
  }
  return *cached_model_;
}

double StreamingEstimator::aic() const {
  if (!has_model()) {
    throw std::runtime_error("StreamingEstimator::aic: no model yet");
  }
  const std::size_t p = state_ids_.size();
  const double samples = static_cast<double>(window_.size() * p);
  double rss = 0.0;
  for (double s : qr_.residual_sumsq()) rss += s;
  rss = std::max(rss, 1e-300);
  return samples * std::log(rss / samples) +
         2.0 * static_cast<double>(n_params_ * p);
}

double StreamingEstimator::cusum_statistic() const noexcept {
  return std::max(cusum_pos_, cusum_neg_);
}

void StreamingEstimator::observe_residual(const TransitionRow& row) {
  const DriftDetectorOptions& d = options_.drift;
  if (!d.enabled || !drift_theta_) return;
  // The first warmup_refits references have seen too little excitation to
  // score against (their residual spikes would inflate the calibration).
  if (drift_refits_ <= d.warmup_refits) return;
  const std::size_t p = state_ids_.size();
  double ss = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    double pred = 0.0;
    for (std::size_t j = 0; j < n_params_; ++j) {
      pred += (*drift_theta_)(j, i) * row.z[j];
    }
    const double e = row.y[i] - pred;
    ss += e * e;
  }
  const double s = std::sqrt(ss / static_cast<double>(p));

  if (!armed_) {
    // Welford pass over the (re-)calibration stretch.
    ++calib_count_;
    const double delta = s - calib_mean_;
    calib_mean_ += delta / static_cast<double>(calib_count_);
    calib_m2_ += delta * (s - calib_mean_);
    if (calib_count_ >= std::max<std::size_t>(d.calibration_transitions, 2)) {
      base_mean_ = calib_mean_;
      base_std_ = std::max(
          std::sqrt(calib_m2_ / static_cast<double>(calib_count_ - 1)),
          1e-12);
      armed_ = true;
      cusum_pos_ = 0.0;
      cusum_neg_ = 0.0;
    }
    return;
  }

  const double z = (s - base_mean_) / base_std_;
  cusum_pos_ = std::max(0.0, cusum_pos_ + z - d.slack_sigmas);
  cusum_neg_ = std::max(0.0, cusum_neg_ - z - d.slack_sigmas);
  const double g = std::max(cusum_pos_, cusum_neg_);
  if (g > d.threshold_sigmas) {
    static const obs::MetricId kDriftEvents =
        obs::counter_id("sysid.stream.drift_events");
    obs::add_counter(kDriftEvents);
    DriftEvent event;
    event.row = row.target;
    event.statistic = g;
    event.direction = cusum_pos_ >= cusum_neg_ ? 1.0 : -1.0;
    drift_events_.push_back(event);
    // Re-calibrate against the new regime; a persistent change fires once.
    armed_ = false;
    calib_count_ = 0;
    calib_mean_ = 0.0;
    calib_m2_ = 0.0;
    cusum_pos_ = 0.0;
    cusum_neg_ = 0.0;
    return;
  }
  if (g < 0.25 * d.threshold_sigmas) {
    // Quiet: let the baseline track slow benign drift.
    const double dm = s - base_mean_;
    base_mean_ += d.baseline_alpha * dm;
    double var = base_std_ * base_std_;
    var += d.baseline_alpha * (dm * dm - var);
    base_std_ = std::max(std::sqrt(var), 1e-12);
  }
}

void StreamingEstimator::fold_transition(TransitionRow row) {
  static const obs::MetricId kTransitions =
      obs::counter_id("sysid.stream.transitions");
  obs::add_counter(kTransitions);
  qr_.append(row.z.data(), row.y.data());
  window_.push_back(std::move(row));
  ++stats_.transitions;
  ++since_anchor_;
  ++since_drift_refit_;
  cached_model_.reset();
}

void StreamingEstimator::evict_aged(std::size_t newest_row) {
  if (options_.window_rows == 0) return;
  const std::size_t w = options_.window_rows;
  // A transition with target row tau spans rows tau-history..tau; it stays
  // while tau-history >= newest-w+1, i.e. tau + w >= newest + history + 1.
  while (!window_.empty() &&
         window_.front().target + w < newest_row + history_ + 1) {
    TransitionRow aged = std::move(window_.front());
    window_.pop_front();
    cached_model_.reset();
    if (qr_.downdate(aged.z.data(), aged.y.data())) {
      ++stats_.downdates;
    } else {
      // Guard trip: the hyperbolic rotation would amplify roundoff, so
      // fall back to the deterministic from-scratch refactorization.
      ++stats_.downdate_refactors;
      reanchor();
    }
  }
}

void StreamingEstimator::reanchor() {
  obs::TraceSpan span("sysid.stream.reanchor");
  static const obs::MetricId kReanchors =
      obs::counter_id("sysid.stream.reanchors");
  obs::add_counter(kReanchors);
  const std::size_t p = state_ids_.size();
  const std::size_t m = window_.size();
  if (m >= n_params_) {
    linalg::Matrix z(m, n_params_);
    linalg::Matrix y(m, p);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t j = 0; j < n_params_; ++j) z(r, j) = window_[r].z[j];
      for (std::size_t j = 0; j < p; ++j) y(r, j) = window_[r].y[j];
    }
    qr_ = linalg::UpdatableQr(z, y);
  } else {
    qr_ = linalg::UpdatableQr(n_params_, p);
    for (const TransitionRow& row : window_) {
      qr_.append(row.z.data(), row.y.data());
    }
  }
  ++stats_.reanchors;
  since_anchor_ = 0;
  cached_model_.reset();
}

void StreamingEstimator::push(const linalg::Vector& states,
                              const linalg::Vector& inputs) {
  const std::size_t p = state_ids_.size();
  const std::size_t q = input_ids_.size();
  if (states.size() != p || inputs.size() != q) {
    throw std::invalid_argument("StreamingEstimator::push: size mismatch");
  }
  static const obs::MetricId kRows = obs::counter_id("sysid.stream.rows");
  obs::add_counter(kRows);

  const std::size_t t = stats_.rows_pushed;
  const bool valid = all_finite(states) && all_finite(inputs);

  // A transition targets this row when it and the preceding `history_`
  // rows are all valid — identical to the batch estimator's segment rule.
  if (valid && consec_valid_ >= history_) {
    TransitionRow row;
    row.target = t;
    row.z.resize(n_params_);
    row.y.assign(states.begin(), states.end());
    const std::vector<double>& prev = recent_states_.back();
    for (std::size_t i = 0; i < p; ++i) row.z[i] = prev[i];
    std::size_t offset = p;
    if (order_ == ModelOrder::kSecond) {
      const std::vector<double>& prev2 =
          recent_states_[recent_states_.size() - 2];
      for (std::size_t i = 0; i < p; ++i) {
        row.z[offset + i] = prev[i] - prev2[i];
      }
      offset += p;
    }
    const std::vector<double>& prev_u = recent_inputs_.back();
    for (std::size_t i = 0; i < q; ++i) row.z[offset + i] = prev_u[i];

    // Score the one-step residual against the reference model BEFORE the
    // row enters the fit (a genuine out-of-sample prediction).
    observe_residual(row);
    fold_transition(std::move(row));

    // Refresh the drift reference on its own append-count cadence so
    // detection never depends on which accessors the caller invokes.
    if (options_.drift.enabled && has_model() &&
        (!drift_theta_ ||
         since_drift_refit_ >= options_.drift.refit_transitions)) {
      drift_theta_ = solve_theta();
      since_drift_refit_ = 0;
      ++drift_refits_;
    }
  }

  evict_aged(t);
  if (options_.reanchor_interval != 0 &&
      since_anchor_ >= options_.reanchor_interval) {
    reanchor();
  }

  recent_states_.emplace_back(states.begin(), states.end());
  recent_inputs_.emplace_back(inputs.begin(), inputs.end());
  while (recent_states_.size() > history_) {
    recent_states_.pop_front();
    recent_inputs_.pop_front();
  }
  consec_valid_ = valid ? consec_valid_ + 1 : 0;
  ++stats_.rows_pushed;
}

void StreamingEstimator::push_trace(const timeseries::TraceView& trace,
                                    const std::vector<bool>& row_filter) {
  obs::TraceSpan span("sysid.stream.push_trace");
  if (!row_filter.empty() && row_filter.size() != trace.size()) {
    throw std::invalid_argument(
        "StreamingEstimator::push_trace: row_filter size mismatch");
  }
  const std::size_t p = state_ids_.size();
  const std::size_t q = input_ids_.size();
  std::vector<std::size_t> state_cols(p);
  for (std::size_t i = 0; i < p; ++i) {
    state_cols[i] = trace.require_channel(state_ids_[i]);
  }
  std::vector<std::size_t> input_cols(q);
  for (std::size_t i = 0; i < q; ++i) {
    input_cols[i] = trace.require_channel(input_ids_[i]);
  }
  linalg::Vector states(p);
  linalg::Vector inputs(q);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const bool keep = row_filter.empty() || row_filter[k];
    for (std::size_t i = 0; i < p; ++i) {
      states[i] = keep ? trace.value(k, state_cols[i]) : nan;
    }
    for (std::size_t i = 0; i < q; ++i) {
      inputs[i] = keep ? trace.value(k, input_cols[i]) : nan;
    }
    push(states, inputs);
  }
}

}  // namespace auditherm::sysid
