#include "auditherm/core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace auditherm::core {

namespace {

using timeseries::ChannelId;

/// Deduplicate while preserving order (a sensor may represent two
/// clusters under the thermostat baseline).
std::vector<ChannelId> unique_ordered(const std::vector<ChannelId>& ids) {
  std::vector<ChannelId> out;
  for (ChannelId id : ids) {
    if (std::find(out.begin(), out.end(), id) == out.end()) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace

ThermalModelingPipeline::ThermalModelingPipeline(PipelineConfig config)
    : config_(std::move(config)) {
  if (config_.sensors_per_cluster == 0) {
    throw std::invalid_argument(
        "ThermalModelingPipeline: sensors_per_cluster == 0");
  }
}

PipelineResult ThermalModelingPipeline::run(
    const timeseries::MultiTrace& trace, const hvac::Schedule& schedule,
    const DataSplit& split, const std::vector<ChannelId>& sensor_ids,
    const std::vector<ChannelId>& input_ids,
    const std::vector<ChannelId>& thermostat_ids) const {
  // Apply the configured thread count for the duration of the run; every
  // kernel below is bitwise deterministic in it.
  const ThreadCountScope thread_scope(config_.threads);
  const auto mode_mask = schedule.mode_mask(trace.grid(), config_.mode);

  // Training view: training days in the configured mode, rows reindexed.
  // Clustering and selection only need cross-sectional statistics, so the
  // reindexing is harmless.
  const auto training =
      trace.filter_rows(and_masks(split.train_mask, mode_mask));

  PipelineResult result;

  // --- Step 1: spectral clustering of the dense network. ---------------
  const auto graph = clustering::build_similarity_graph(training, sensor_ids,
                                                        config_.similarity);
  result.clustering = clustering::spectral_cluster(graph, config_.spectral);
  const auto clusters = result.clustering.clusters();

  // --- Step 2: representative selection. --------------------------------
  switch (config_.strategy) {
    case SelectionStrategy::kStratifiedNearMean:
      result.selection = selection::stratified_near_mean(
          training, clusters, config_.sensors_per_cluster);
      break;
    case SelectionStrategy::kStratifiedRandom:
      result.selection = selection::stratified_random(
          clusters, config_.selection_seed, config_.sensors_per_cluster);
      break;
    case SelectionStrategy::kSimpleRandom:
      result.selection =
          selection::simple_random(training, clusters, config_.selection_seed,
                                   config_.sensors_per_cluster);
      break;
    case SelectionStrategy::kThermostats:
      result.selection =
          selection::thermostat_baseline(thermostat_ids, clusters.size());
      break;
    case SelectionStrategy::kGaussianProcess: {
      const auto chosen = selection::gp_mutual_information_selection(
          training, sensor_ids,
          std::min(config_.sensors_per_cluster * clusters.size(),
                   sensor_ids.size()));
      result.selection = selection::assign_to_clusters(
          training, clusters, chosen, config_.sensors_per_cluster);
      break;
    }
  }

  // --- Step 3: identify the reduced model over the selected sensors. ----
  const auto states = unique_ordered(result.selection.flattened());
  const sysid::ModelEstimator estimator(states, input_ids, config_.order,
                                        config_.estimation);
  result.reduced_model =
      estimator.fit(trace, and_masks(split.train_mask, mode_mask));

  // --- Evaluation on the validation days. --------------------------------
  std::vector<ChannelId> required = input_ids;  // windows need valid inputs
  auto window_mask = and_masks(split.validation_mask, mode_mask);
  const auto valid_inputs = timeseries::rows_with_all_valid(trace, required);
  window_mask = and_masks(window_mask, valid_inputs);
  const auto windows = timeseries::find_segments(
      window_mask, std::max<std::size_t>(config_.evaluation.min_steps, 2));

  result.reduced_eval = sysid::evaluate_prediction(result.reduced_model, trace,
                                                   windows, config_.evaluation);
  result.cluster_mean_errors = evaluate_reduced_model_cluster_mean(
      result.reduced_model, trace, clusters, result.selection, windows,
      config_.evaluation);
  return result;
}

selection::ClusterMeanErrors evaluate_reduced_model_cluster_mean(
    const sysid::ThermalModel& model, const timeseries::MultiTrace& trace,
    const selection::ClusterSets& clusters,
    const selection::Selection& selection,
    const std::vector<timeseries::Segment>& windows,
    const sysid::EvaluationOptions& options) {
  if (selection.per_cluster.size() != clusters.size()) {
    throw std::invalid_argument(
        "evaluate_reduced_model_cluster_mean: cluster count mismatch");
  }

  // Map each cluster to the model-state indices of its selected sensors.
  std::vector<std::vector<std::size_t>> cluster_state_idx(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (ChannelId id : selection.per_cluster[c]) {
      const auto& states = model.state_channels();
      const auto it = std::find(states.begin(), states.end(), id);
      if (it == states.end()) {
        throw std::invalid_argument(
            "evaluate_reduced_model_cluster_mean: selected sensor not a "
            "model state");
      }
      cluster_state_idx[c].push_back(
          static_cast<std::size_t>(it - states.begin()));
    }
    if (cluster_state_idx[c].empty()) {
      throw std::invalid_argument(
          "evaluate_reduced_model_cluster_mean: cluster with no selection");
    }
  }

  // Measured all-sensor mean per cluster over the whole trace.
  std::vector<linalg::Vector> cluster_means;
  cluster_means.reserve(clusters.size());
  for (const auto& members : clusters) {
    cluster_means.push_back(timeseries::row_mean(trace, members));
  }

  // Each window's open-loop simulation is independent; per-window error
  // buffers are concatenated in window order afterwards, so the pooled
  // error samples are identical at any thread count.
  std::vector<std::vector<linalg::Vector>> window_errors(windows.size());
  parallel_for(0, windows.size(), 1, [&](std::size_t w) {
    const auto wp = sysid::predict_window(model, trace, windows[w], options);
    if (!wp) return;
    auto& local = window_errors[w];
    local.resize(clusters.size());
    for (std::size_t k = 0; k < wp->predicted.rows(); ++k) {
      const std::size_t row = wp->first_row + k;
      for (std::size_t c = 0; c < clusters.size(); ++c) {
        const double target = cluster_means[c][row];
        if (std::isnan(target)) continue;
        double pred = 0.0;
        for (std::size_t s : cluster_state_idx[c]) {
          pred += wp->predicted(k, s);
        }
        pred /= static_cast<double>(cluster_state_idx[c].size());
        local[c].push_back(std::abs(pred - target));
      }
    }
  });

  selection::ClusterMeanErrors errors;
  errors.per_cluster_abs.resize(clusters.size());
  for (const auto& local : window_errors) {
    for (std::size_t c = 0; c < local.size(); ++c) {
      errors.per_cluster_abs[c].insert(errors.per_cluster_abs[c].end(),
                                       local[c].begin(), local[c].end());
    }
  }
  return errors;
}

std::vector<PipelineResult> run_strategy_sweep(
    const PipelineConfig& base, const std::vector<SweepCase>& cases,
    const timeseries::MultiTrace& trace, const hvac::Schedule& schedule,
    const DataSplit& split, const std::vector<ChannelId>& sensor_ids,
    const std::vector<ChannelId>& input_ids,
    const std::vector<ChannelId>& thermostat_ids) {
  const ThreadCountScope thread_scope(base.threads);
  std::vector<PipelineResult> results(cases.size());
  // Cases fan out across the pool; each case's own kernels then run
  // serially (nested regions are inline), which is the right granularity:
  // whole pipeline runs dwarf any single kernel.
  parallel_for(0, cases.size(), 1, [&](std::size_t i) {
    PipelineConfig config = base;
    config.strategy = cases[i].strategy;
    config.selection_seed = cases[i].seed;
    config.threads = 0;  // the sweep's scope already applied base.threads
    const ThermalModelingPipeline pipeline(config);
    results[i] = pipeline.run(trace, schedule, split, sensor_ids, input_ids,
                              thermostat_ids);
  });
  return results;
}

}  // namespace auditherm::core
