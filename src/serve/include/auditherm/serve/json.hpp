#pragma once

/// \file json.hpp
/// Minimal JSON support for the serve front-end: a strict recursive
/// parser for request bodies and an escaper for response generation.
///
/// Scope is deliberately small — serve's requests are flat objects of
/// scalars — but the parser handles the full JSON grammar (nested
/// arrays/objects, escapes, exponents) so a well-formed client is never
/// rejected on syntax. No third-party dependency: the container bakes in
/// only the C++ toolchain, and the obs exporter already writes JSON by
/// hand for the same reason.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace auditherm::serve::json {

/// Malformed JSON text; the message carries the byte offset.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed JSON value. Object members keep source order (handy for
/// deterministic error messages about unknown keys).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }

  /// Member lookup on an object; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
};

/// Parse one JSON document; trailing non-whitespace is an error.
/// Throws ParseError on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes).
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace auditherm::serve::json
