// Fig. 10: 99th-percentile cluster-mean error of SMS / SRS / RS as the
// cluster count grows from 2 to 8.
//
// Paper: clustering-aware selection (SMS, SRS) stays well below RS; the
// gap to RS widens past ~5 clusters (RS's error reflects the BETWEEN-
// cluster spread, SMS/SRS the WITHIN-cluster spread); SMS and SRS
// converge as clusters shrink toward singletons.

#include "bench_common.hpp"

using namespace auditherm;

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Fig. 10: selection error vs cluster count");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto validation = dataset.trace.filter_rows(
      core::and_masks(split.validation_mask, mode_mask));

  // One stage cache across the whole k-sweep: the training view, the
  // similarity graph, and the eigendecomposition are computed at k=2 and
  // hit for every later k; only the clustering stage rebuilds per k.
  core::StageCache cache;

  std::printf("%-10s %-10s %-10s %-10s\n", "clusters", "SMS", "SRS", "RS");
  linalg::Vector sms_curve, srs_curve, rs_curve;
  for (std::size_t k = 2; k <= 8; ++k) {
    const auto art = bench::prepare_stages(dataset, split, cache, k);
    const timeseries::TraceView& training = art.training;
    const auto& clusters = *art.clusters;

    const auto p99 = [&](const selection::Selection& sel) {
      return selection::evaluate_cluster_mean_prediction(validation, clusters,
                                                         sel)
          .percentile(99.0);
    };
    const double sms =
        p99(selection::stratified_near_mean(training, clusters));
    constexpr int kSeeds = 25;
    double srs = 0.0, rs = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      srs += p99(selection::stratified_random(
          clusters, static_cast<std::uint64_t>(seed)));
      rs += p99(selection::simple_random(training, clusters,
                                         static_cast<std::uint64_t>(seed)));
    }
    srs /= kSeeds;
    rs /= kSeeds;
    std::printf("%-10zu %-10.3f %-10.3f %-10.3f\n", k, sms, srs, rs);
    sms_curve.push_back(sms);
    srs_curve.push_back(srs);
    rs_curve.push_back(rs);
  }

  bool sms_below_rs = true, srs_below_rs = true;
  for (std::size_t i = 0; i < sms_curve.size(); ++i) {
    if (sms_curve[i] >= rs_curve[i]) sms_below_rs = false;
    if (srs_curve[i] >= rs_curve[i]) srs_below_rs = false;
  }
  const bool converge =
      std::abs(sms_curve.back() - srs_curve.back()) <
      std::abs(sms_curve.front() - srs_curve.front()) + 0.15;
  std::printf("\nshape checks: SMS always below RS: %s | SRS always below "
              "RS: %s | SMS and SRS converge at high k: %s\n",
              sms_below_rs ? "yes" : "NO", srs_below_rs ? "yes" : "NO",
              converge ? "yes" : "NO");
  bench::print_cache_stats(cache);
  return 0;
}
