// Tests for fleet scenario generation: ScenarioSpec validation and
// composition onto DatasetConfig, run_fleet's bitwise determinism across
// thread counts / spec orders / seed changes, the fleet-of-1 equivalence
// with generate_dataset, the on-disk fleet layout, and the strict JSON
// codec (round-trips and key-path errors).

#include "auditherm/sim/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "auditherm/core/parallel.hpp"
#include "auditherm/obs/trace_span.hpp"
#include "auditherm/serve/json.hpp"
#include "auditherm/serve/scenario_codec.hpp"
#include "auditherm/timeseries/csv_io.hpp"

namespace core = auditherm::core;
namespace obs = auditherm::obs;
namespace serve = auditherm::serve;
namespace json = auditherm::serve::json;
namespace sim = auditherm::sim;
namespace timeseries = auditherm::timeseries;

using sim::BuildingKind;
using sim::HvacRegime;
using sim::OccupancyRegime;
using sim::ScenarioSpec;
using sim::Season;

namespace {

/// Short runs keep the suite fast; 2 days still exercises failure-day
/// sampling, dropout windows, and the full channel set.
ScenarioSpec quick_spec(std::string name, std::uint64_t seed = 1234) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.days = 2;
  spec.failure_days = 1;
  spec.seed = seed;
  return spec;
}

std::vector<ScenarioSpec> mixed_fleet() {
  auto hall = quick_spec("hall", 1);
  auto grid = quick_spec("grid", 2);
  grid.building = BuildingKind::kGrid;
  grid.sensors = 24;
  grid.season = Season::kSummer;
  auto campus = quick_spec("campus", 3);
  campus.building = BuildingKind::kCampus;
  campus.halls = 2;
  campus.sensors_per_hall = 12;
  campus.occupancy = OccupancyRegime::kBusy;
  campus.hvac = HvacRegime::kEco;
  return {hall, grid, campus};
}

std::string csv_bytes(const timeseries::MultiTrace& trace) {
  std::ostringstream os;
  timeseries::write_csv(os, trace);
  return std::move(os).str();
}

/// A unique scratch directory under the test's working dir.
std::filesystem::path scratch_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("auditherm_scenario_" + tag);
  std::filesystem::remove_all(dir);
  return dir;
}

// --- Spec validation ------------------------------------------------------

TEST(ScenarioSpec, DefaultSpecIsThePaperRun) {
  const ScenarioSpec spec;
  EXPECT_NO_THROW(spec.validate());
  const sim::DatasetConfig config = sim::scenario_config(spec);
  const sim::DatasetConfig defaults;
  EXPECT_EQ(config.days, defaults.days);
  EXPECT_EQ(config.failure_days, defaults.failure_days);
  EXPECT_EQ(config.sensor_dropout_probability,
            defaults.sensor_dropout_probability);
  EXPECT_EQ(config.seed, defaults.seed);
  EXPECT_EQ(config.weather.start_mean_c, defaults.weather.start_mean_c);
  EXPECT_EQ(config.occupancy.class_probability,
            defaults.occupancy.class_probability);
  EXPECT_EQ(config.thermostat.setpoint_c, defaults.thermostat.setpoint_c);
  EXPECT_EQ(config.use_controller_supply, defaults.use_controller_supply);
}

TEST(ScenarioSpec, ValidateRejectsBadSpecs) {
  auto bad = [](auto&& mutate) {
    ScenarioSpec spec;
    mutate(spec);
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  };
  bad([](ScenarioSpec& s) { s.name = ""; });
  bad([](ScenarioSpec& s) { s.name = std::string(65, 'a'); });
  bad([](ScenarioSpec& s) { s.name = "has space"; });
  bad([](ScenarioSpec& s) { s.name = "quo\"te"; });
  bad([](ScenarioSpec& s) { s.days = 0; });
  bad([](ScenarioSpec& s) { s.failure_days = s.days + 1; });
  bad([](ScenarioSpec& s) { s.dropout = -0.1; });
  bad([](ScenarioSpec& s) { s.dropout = 1.5; });
  bad([](ScenarioSpec& s) {
    s.building = BuildingKind::kGrid;
    s.sensors = 0;
  });
  bad([](ScenarioSpec& s) {
    s.building = BuildingKind::kGrid;
    s.sensors = 289;
  });
  bad([](ScenarioSpec& s) {
    s.building = BuildingKind::kCampus;
    s.halls = 0;
  });
  bad([](ScenarioSpec& s) {
    s.building = BuildingKind::kCampus;
    s.halls = 10;
    s.sensors_per_hall = 30;  // 300 > 288
  });
}

TEST(ScenarioSpec, ValidateNamesTheScenario) {
  ScenarioSpec spec;
  spec.name = "office-7";
  spec.days = 0;
  try {
    spec.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("office-7"), std::string::npos);
  }
}

TEST(ScenarioSpec, PlanMatchesBuildingKind) {
  EXPECT_EQ(sim::scenario_plan(ScenarioSpec{}).sensors().size(),
            sim::FloorPlan::brauer_auditorium().sensors().size());
  ScenarioSpec grid;
  grid.building = BuildingKind::kGrid;
  grid.sensors = 24;
  EXPECT_EQ(sim::scenario_plan(grid).wireless_ids().size(), 24u);
  ScenarioSpec campus;
  campus.building = BuildingKind::kCampus;
  campus.halls = 3;
  campus.sensors_per_hall = 8;
  EXPECT_EQ(sim::scenario_plan(campus).zone_count(), 3u);
}

TEST(ScenarioSpec, PresetsReshapeTheConfig) {
  ScenarioSpec spec;
  spec.days = 30;
  spec.failure_days = 0;
  spec.season = Season::kWinter;
  spec.occupancy = OccupancyRegime::kQuiet;
  spec.hvac = HvacRegime::kEco;
  const auto config = sim::scenario_config(spec);
  EXPECT_LT(config.weather.start_mean_c, 0.0);
  // Non-paper seasons span their ramp over the scenario's own run length.
  EXPECT_EQ(config.weather.season_days, 30.0);
  EXPECT_LT(config.occupancy.class_probability, 0.3);
  EXPECT_GT(config.thermostat.setpoint_c,
            sim::DatasetConfig{}.thermostat.setpoint_c);

  spec.hvac = HvacRegime::kFixedSupply;
  EXPECT_FALSE(sim::scenario_config(spec).use_controller_supply);
}

// --- Fleet determinism ----------------------------------------------------

TEST(RunFleet, FleetOfOneMatchesGenerateDatasetBitwise) {
  const auto spec = quick_spec("solo");
  const auto outcomes = sim::run_fleet({spec});
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].dataset.has_value());

  sim::DatasetConfig config;
  config.days = spec.days;
  config.failure_days = spec.failure_days;
  config.seed = spec.seed;
  const auto reference = sim::generate_dataset(config);
  EXPECT_EQ(csv_bytes(outcomes[0].dataset->trace), csv_bytes(reference.trace));
  EXPECT_EQ(csv_bytes(outcomes[0].dataset->truth), csv_bytes(reference.truth));
}

TEST(RunFleet, BitwiseIdenticalAcrossThreadCounts) {
  const auto specs = mixed_fleet();
  std::vector<std::vector<std::uint64_t>> fingerprints;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::ThreadCountScope scope(threads);
    const auto outcomes = sim::run_fleet(specs);
    std::vector<std::uint64_t> fps;
    for (const auto& outcome : outcomes) {
      fps.push_back(outcome.trace_fingerprint);
      fps.push_back(outcome.truth_fingerprint);
    }
    fingerprints.push_back(std::move(fps));
  }
  for (std::size_t i = 1; i < fingerprints.size(); ++i) {
    EXPECT_EQ(fingerprints[i], fingerprints[0]) << "thread run " << i;
  }
}

TEST(RunFleet, SpecOrderShuffleLeavesPerBuildingOutputsIdentical) {
  auto specs = mixed_fleet();
  const auto forward = sim::run_fleet(specs);
  std::reverse(specs.begin(), specs.end());
  const auto reversed = sim::run_fleet(specs);
  ASSERT_EQ(forward.size(), reversed.size());
  for (const auto& a : forward) {
    const auto b = std::find_if(reversed.begin(), reversed.end(),
                                [&](const auto& o) {
                                  return o.spec.name == a.spec.name;
                                });
    ASSERT_NE(b, reversed.end()) << a.spec.name;
    EXPECT_EQ(a.trace_fingerprint, b->trace_fingerprint) << a.spec.name;
    EXPECT_EQ(a.truth_fingerprint, b->truth_fingerprint) << a.spec.name;
  }
}

TEST(RunFleet, ChangingOneSeedLeavesOtherBuildingsUnchanged) {
  auto specs = mixed_fleet();
  const auto before = sim::run_fleet(specs);
  specs[1].seed ^= 0xDEADBEEFull;
  const auto after = sim::run_fleet(specs);
  EXPECT_NE(after[1].trace_fingerprint, before[1].trace_fingerprint);
  EXPECT_EQ(after[0].trace_fingerprint, before[0].trace_fingerprint);
  EXPECT_EQ(after[2].trace_fingerprint, before[2].trace_fingerprint);
}

TEST(RunFleet, RejectsDuplicateNamesAndInvalidSpecs) {
  EXPECT_THROW((void)sim::run_fleet({quick_spec("twin"), quick_spec("twin")}),
               std::invalid_argument);
  auto bad = quick_spec("bad");
  bad.days = 0;
  EXPECT_THROW((void)sim::run_fleet({bad}), std::invalid_argument);
}

TEST(RunFleet, EmptyFleetYieldsEmptyManifest) {
  const auto outcomes = sim::run_fleet({});
  EXPECT_TRUE(outcomes.empty());
  const auto manifest = json::parse(sim::fleet_manifest_json(outcomes));
  EXPECT_EQ(manifest.find("buildings")->number, 0.0);
  EXPECT_TRUE(manifest.find("scenarios")->array.empty());
}

// --- Fleet output directory -----------------------------------------------

TEST(RunFleet, WritesTracesAndManifestToOutDir) {
  const auto dir = scratch_dir("outdir");
  sim::FleetOptions options;
  options.out_dir = dir.string();
  const auto specs = mixed_fleet();
  const auto outcomes = sim::run_fleet(specs, options);

  for (const auto& outcome : outcomes) {
    // Datasets are dropped once written (keep_datasets defaults false).
    EXPECT_FALSE(outcome.dataset.has_value());
    const auto trace = timeseries::read_csv_file(
        (dir / outcome.trace_file).string());
    EXPECT_EQ(trace.size(), outcome.samples);
    EXPECT_EQ(trace.channel_count(), outcome.channels);
  }

  std::ifstream f(dir / "manifest.json");
  ASSERT_TRUE(f.good());
  std::ostringstream os;
  os << f.rdbuf();
  const auto manifest = json::parse(os.str());
  EXPECT_EQ(manifest.find("schema")->string, "auditherm.fleet-manifest");
  EXPECT_EQ(manifest.find("buildings")->number,
            static_cast<double>(specs.size()));
  const auto& scenarios = manifest.find("scenarios")->array;
  ASSERT_EQ(scenarios.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(scenarios[i].find("name")->string, specs[i].name);
    // The embedded spec must round-trip through the codec.
    const auto decoded =
        serve::scenario_from_json(*scenarios[i].find("spec"));
    EXPECT_EQ(decoded, outcomes[i].spec);
  }
  std::filesystem::remove_all(dir);
}

TEST(RunFleet, KeepDatasetsRetainsDataAlongsideFiles) {
  const auto dir = scratch_dir("keep");
  sim::FleetOptions options;
  options.out_dir = dir.string();
  options.keep_datasets = true;
  const auto outcomes = sim::run_fleet({quick_spec("kept")}, options);
  EXPECT_TRUE(outcomes[0].dataset.has_value());
  std::filesystem::remove_all(dir);
}

TEST(RunFleet, UnwritableOutDirFailsBeforeSimulating) {
  sim::FleetOptions options;
  options.out_dir = "/proc/auditherm_no_such_dir";
  // 98 paper days would take seconds; the preflight probe must throw
  // immediately instead.
  ScenarioSpec spec;  // full-size default spec
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)sim::run_fleet({spec}, options), std::runtime_error);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
}

TEST(RunFleet, ManifestExcludesWallTimesSoBytesAreReproducible) {
  const auto specs = mixed_fleet();
  const auto a = sim::fleet_manifest_json(sim::run_fleet(specs));
  const auto b = sim::fleet_manifest_json(sim::run_fleet(specs));
  EXPECT_EQ(a, b);
}

// --- Observability --------------------------------------------------------

TEST(RunFleet, CountsBuildingsAndSteps) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  obs::Recorder recorder;
  std::size_t expected_steps = 0;
  {
    obs::RecorderScope scope(&recorder);
    const auto outcomes = sim::run_fleet(mixed_fleet());
    for (const auto& outcome : outcomes) {
      expected_steps += outcome.control_steps;
    }
  }
  EXPECT_EQ(recorder.metrics().counter("sim.fleet.buildings"), 3u);
  EXPECT_EQ(recorder.metrics().counter("sim.fleet.steps"), expected_steps);
}

// --- JSON codec -----------------------------------------------------------

TEST(ScenarioCodec, RoundTripsEveryFieldCombination) {
  std::vector<ScenarioSpec> specs;
  for (const auto building :
       {BuildingKind::kPaperHall, BuildingKind::kGrid, BuildingKind::kCampus}) {
    for (const auto season : {Season::kPaper, Season::kWinter, Season::kSummer,
                              Season::kShoulder}) {
      for (const auto occupancy : {OccupancyRegime::kPaper,
                                   OccupancyRegime::kQuiet,
                                   OccupancyRegime::kBusy}) {
        for (const auto hvac : {HvacRegime::kPaper, HvacRegime::kFixedSupply,
                                HvacRegime::kEco}) {
          ScenarioSpec spec;
          spec.name = "sweep_" + std::to_string(specs.size());
          spec.building = building;
          spec.sensors = 17;
          spec.halls = 3;
          spec.sensors_per_hall = 9;
          spec.season = season;
          spec.occupancy = occupancy;
          spec.hvac = hvac;
          spec.days = 5 + specs.size() % 7;
          spec.failure_days = specs.size() % 3;
          spec.dropout = 0.04 + 0.001 * static_cast<double>(specs.size() % 5);
          spec.seed = 0x9E3779B97F4A7C15ull * (specs.size() + 1);
          specs.push_back(spec);
        }
      }
    }
  }
  for (const auto& spec : specs) {
    const auto text = sim::scenario_to_json(spec);
    const auto decoded = serve::scenario_from_json(json::parse(text));
    EXPECT_EQ(decoded, spec) << text;
  }
}

TEST(ScenarioCodec, SeedsBeyondDoublePrecisionRoundTripAsStrings) {
  ScenarioSpec spec;
  spec.seed = 0xFFFFFFFFFFFFFFFFull;  // far beyond 2^53
  const auto text = sim::scenario_to_json(spec);
  EXPECT_NE(text.find("\"seed\": \"18446744073709551615\""),
            std::string::npos);
  EXPECT_EQ(serve::scenario_from_json(json::parse(text)), spec);

  // Small seeds stay plain JSON numbers.
  spec.seed = 1234;
  EXPECT_NE(sim::scenario_to_json(spec).find("\"seed\": 1234"),
            std::string::npos);
}

TEST(ScenarioCodec, DropoutSurvivesShortestRoundTripFormatting) {
  ScenarioSpec spec;
  spec.dropout = 0.04;
  EXPECT_NE(sim::scenario_to_json(spec).find("\"dropout\": 0.04"),
            std::string::npos);
  spec.dropout = 1.0 / 3.0;
  EXPECT_EQ(serve::scenario_from_json(json::parse(sim::scenario_to_json(spec)))
                .dropout,
            1.0 / 3.0);
}

void expect_codec_error(const std::string& body,
                        const std::string& needle) {
  try {
    (void)serve::scenario_from_json(json::parse(body));
    FAIL() << "expected invalid_argument for " << body;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioCodec, UnknownAndMistypedKeysNameTheOffender) {
  expect_codec_error(R"({"dayz": 3})", "unknown key 'dayz'");
  expect_codec_error(R"({"days": "three"})", "'days'");
  expect_codec_error(R"({"days": 2.5})", "'days'");
  expect_codec_error(R"({"name": 7})", "'name' must be a string");
  expect_codec_error(R"({"building": "igloo"})", "paper|grid|campus");
  expect_codec_error(R"({"season": "monsoon"})", "'season'");
  expect_codec_error(R"({"occupancy": 3})", "'occupancy'");
  expect_codec_error(R"({"hvac": "steam"})", "'hvac'");
  expect_codec_error(R"({"dropout": "lots"})", "'dropout'");
  expect_codec_error(R"({"seed": -1})", "'seed'");
  expect_codec_error(R"({"seed": 18446744073709551615})", "2^53");
  expect_codec_error(R"({"seed": "12x"})", "'seed'");
  expect_codec_error(R"([1, 2])", "JSON object");
  // Values the spec's own validate() rejects surface too.
  expect_codec_error(R"({"days": 0})", "days");
}

TEST(SimulateRequest, SingleScenarioShorthand) {
  const auto request = serve::simulate_request_from_json(
      json::parse(R"({"name": "solo", "days": 4, "failure_days": 1})"));
  ASSERT_EQ(request.specs.size(), 1u);
  EXPECT_EQ(request.specs[0].name, "solo");
  EXPECT_EQ(request.specs[0].days, 4u);
  EXPECT_EQ(request.specs[0].seed, ScenarioSpec{}.seed);
  EXPECT_TRUE(request.out_dir.empty());
}

TEST(SimulateRequest, FleetEnvelopeDerivesMissingSeeds) {
  const auto request = serve::simulate_request_from_json(json::parse(R"({
    "base_seed": 99, "out_dir": "corpus",
    "scenarios": [
      {"name": "a", "days": 2, "failure_days": 0},
      {"name": "b", "days": 2, "failure_days": 0, "seed": 5},
      {"name": "c", "days": 2, "failure_days": 0}
    ]})"));
  ASSERT_EQ(request.specs.size(), 3u);
  EXPECT_EQ(request.out_dir, "corpus");
  EXPECT_EQ(request.specs[0].seed, sim::derive_entity_seed(99, 0));
  EXPECT_EQ(request.specs[1].seed, 5u);  // explicit seed wins
  EXPECT_EQ(request.specs[2].seed, sim::derive_entity_seed(99, 2));
  EXPECT_NE(request.specs[0].seed, request.specs[2].seed);
}

TEST(SimulateRequest, FleetErrorsCarryTheScenarioIndex) {
  try {
    (void)serve::simulate_request_from_json(json::parse(
        R"({"scenarios": [{"name": "ok", "days": 1, "failure_days": 0},)"
        R"({"name": "bad", "dayz": 1}]})"));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("scenarios[1]"), std::string::npos) << what;
    EXPECT_NE(what.find("dayz"), std::string::npos) << what;
  }
}

TEST(SimulateRequest, RejectsBadEnvelopes) {
  EXPECT_THROW((void)serve::simulate_request_from_json(
                   json::parse(R"({"scenarios": {}})")),
               std::invalid_argument);
  EXPECT_THROW((void)serve::simulate_request_from_json(
                   json::parse(R"({"scenarios": []})")),
               std::invalid_argument);
  EXPECT_THROW((void)serve::simulate_request_from_json(
                   json::parse(R"({"scenarios": [], "nope": 1})")),
               std::invalid_argument);
  EXPECT_THROW((void)serve::simulate_request_from_json(json::parse("3")),
               std::invalid_argument);
}

// --- Seed derivation ------------------------------------------------------

TEST(SeedDerivation, SplitmixStreamsAreDistinctAndStable) {
  // Pinned values: the derivation contract is part of the file format —
  // a fleet file without explicit seeds must reproduce the same corpus
  // forever.
  EXPECT_EQ(sim::derive_entity_seed(0, 0), sim::splitmix64(0));
  EXPECT_NE(sim::derive_entity_seed(1, 0), sim::derive_entity_seed(0, 0));
  EXPECT_NE(sim::derive_entity_seed(0, 1), sim::derive_entity_seed(0, 0));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 64; ++i) {
    seeds.push_back(sim::derive_entity_seed(42, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

}  // namespace
