#pragma once

/// \file input_plan.hpp
/// Pluggable input sources for the identification input block u(k).
///
/// The paper identifies reduced models from u(k) = [h; o; l; w] with
/// ground-truth occupancy o(k) — a luxury no deployed building has. An
/// InputPlan replaces the raw `input_ids` convention: each slot declares
/// where its column comes from —
///
///   * ground_truth(channel)    — read the trace channel literally,
///   * co2_estimated(...)       — invert the CO2 mass balance with a
///                                Co2OccupancyEstimator calibrated on the
///                                training split only,
///   * schedule_prior(schedule) — a two-level occupancy prior from the
///                                HVAC operating schedule,
///
/// and resolution materializes each non-ground-truth slot once per run as
/// a derived TraceView column (indexed by source row, so every downstream
/// row subset reads it through the unchanged view machinery). A plan
/// containing only ground-truth slots resolves to the original channel
/// ids with no derived columns and a zero fingerprint — byte-identical
/// behavior to the pre-plan code everywhere.
///
/// The fingerprint is the cache-key contribution: it folds the plan
/// structure, every option, and — for CO2 estimation — the calibrated
/// parameter bit patterns, so stage-cache entries (spectra, fits) can
/// never alias across input sources or calibrations.

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "auditherm/hvac/schedule.hpp"
#include "auditherm/sysid/occupancy_estimation.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::sysid {

/// Where one input slot's column comes from.
enum class InputSource {
  kGroundTruth,    ///< read the trace channel literally
  kCo2Estimated,   ///< CO2 mass-balance occupancy estimate
  kSchedulePrior,  ///< two-level prior from the HVAC schedule
};

/// Channel id a derived estimated-occupancy column is published under.
/// Ids 100-199 are the reserved modality band (see DatasetChannels);
/// 150+ is carved out for derived input-plan columns.
inline constexpr timeseries::ChannelId kEstimatedOccupancyChannel = 150;
/// Channel id a derived schedule-prior column is published under.
inline constexpr timeseries::ChannelId kSchedulePriorChannel = 151;

/// One slot of the input block: a source plus its options.
struct InputSlot {
  InputSource source = InputSource::kGroundTruth;
  /// Ground truth: the trace channel to read. Derived sources: the id the
  /// materialized column is published under (must not collide with an
  /// existing trace channel).
  timeseries::ChannelId channel = 0;

  // --- co2_estimated options ---------------------------------------------
  Co2Channels co2;
  /// Round the estimate to the nearest whole occupant.
  bool round_to_integer = false;
  /// Clamp the estimate from above (NaN = no upper clamp).
  double clamp_max = std::numeric_limits<double>::quiet_NaN();

  // --- schedule_prior options --------------------------------------------
  hvac::Schedule schedule;
  double occupied_level = 1.0;
  double unoccupied_level = 0.0;

  [[nodiscard]] static InputSlot ground_truth(timeseries::ChannelId channel);
  [[nodiscard]] static InputSlot co2_estimated(
      Co2Channels co2 = {},
      timeseries::ChannelId channel = kEstimatedOccupancyChannel);
  [[nodiscard]] static InputSlot schedule_prior(
      hvac::Schedule schedule = {}, double occupied_level = 1.0,
      double unoccupied_level = 0.0,
      timeseries::ChannelId channel = kSchedulePriorChannel);
};

/// An ordered list of input slots; resolves to the identification input
/// ids in the same order.
struct InputPlan {
  std::vector<InputSlot> slots;

  /// Plan reading every listed channel literally — the pre-plan behavior.
  [[nodiscard]] static InputPlan ground_truth(
      const std::vector<timeseries::ChannelId>& ids);

  /// True when every slot is ground truth (resolution is a no-op).
  [[nodiscard]] bool pure_ground_truth() const noexcept;

  /// The channel ids the plan resolves to, in slot order.
  [[nodiscard]] std::vector<timeseries::ChannelId> channel_ids() const;
};

/// A resolved plan: final channel ids, materialized derived columns, and
/// the cache-key fingerprint. Derived columns are shared_ptr-owned so
/// artifacts holding an augmented view keep them alive.
struct ResolvedInputPlan {
  /// One materialized derived column.
  struct DerivedColumn {
    timeseries::ChannelId id = 0;
    std::shared_ptr<const linalg::Vector> column;
  };

  /// Input channel ids in slot order (ground-truth ids verbatim, derived
  /// ids as declared by their slots).
  std::vector<timeseries::ChannelId> channel_ids;
  std::vector<DerivedColumn> derived;
  /// 0 for a pure ground-truth plan; otherwise folds the plan structure,
  /// options, and calibrated estimator parameters (the calibration
  /// fingerprint). Fold into stage keys unconditionally: ground-truth
  /// runs hash an unchanged 0, so their keys — and golden pins — stay
  /// bitwise identical.
  std::uint64_t fingerprint = 0;

  /// True when resolution changed nothing (no derived columns).
  [[nodiscard]] bool pure_ground_truth() const noexcept {
    return derived.empty();
  }

  /// Attach every derived column to `base` (a view whose row count equals
  /// the source trace the plan was resolved against). Returns `base`
  /// unchanged for pure ground-truth plans.
  [[nodiscard]] timeseries::TraceView augment(
      const timeseries::TraceView& base) const;
};

/// Resolve `plan` against the full `trace`: calibrate CO2 estimation on
/// the rows `train_mask` selects (training split only — validation rows
/// never leak into calibration), materialize each derived column over all
/// rows, and compute the fingerprint. `trace` must be the full un-sliced
/// view (derived columns are indexed by its rows); train_mask.size() must
/// equal trace.size(). Throws std::invalid_argument for bad plans (empty,
/// duplicate/colliding channel ids, unknown ground-truth channels) and
/// propagates calibration errors (e.g. too few usable transitions).
[[nodiscard]] ResolvedInputPlan resolve_input_plan(
    const InputPlan& plan, const timeseries::TraceView& trace,
    const std::vector<bool>& train_mask);

}  // namespace auditherm::sysid
