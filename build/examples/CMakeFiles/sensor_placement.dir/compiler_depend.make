# Empty compiler generated dependencies file for sensor_placement.
# This may be replaced when dependencies are built.
