// Cross-module property sweeps (parameterized): identification recovers
// random stable systems at any dimension, multi-step evaluation is
// consistent with the model's own simulation, and spectral clustering
// scales over block-graph shapes.

#include <gtest/gtest.h>

#include <random>

#include "auditherm/clustering/spectral.hpp"
#include "auditherm/linalg/vector_ops.hpp"
#include "auditherm/sysid/estimator.hpp"
#include "auditherm/sysid/evaluation.hpp"

namespace sysid = auditherm::sysid;
namespace clustering = auditherm::clustering;
namespace ts = auditherm::timeseries;
namespace linalg = auditherm::linalg;
using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Estimator recovery over (state count, input count)
// ---------------------------------------------------------------------------

namespace {

struct SystemShape {
  std::size_t states;
  std::size_t inputs;
};

/// Random stable A (scaled spectral-norm bound) and random B.
std::pair<Matrix, Matrix> random_system(const SystemShape& shape,
                                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> n01(0.0, 1.0);
  Matrix a(shape.states, shape.states);
  for (std::size_t i = 0; i < shape.states; ++i)
    for (std::size_t j = 0; j < shape.states; ++j) a(i, j) = n01(rng);
  // Crude stability: scale so row sums stay below 0.95.
  double max_row = 0.0;
  for (std::size_t i = 0; i < shape.states; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < shape.states; ++j) row += std::abs(a(i, j));
    max_row = std::max(max_row, row);
  }
  a *= 0.95 / max_row;
  Matrix b(shape.states, shape.inputs);
  for (std::size_t i = 0; i < shape.states; ++i)
    for (std::size_t j = 0; j < shape.inputs; ++j) b(i, j) = n01(rng);
  return {a, b};
}

ts::MultiTrace simulate_system(const Matrix& a, const Matrix& b,
                               std::size_t n, std::uint64_t seed) {
  const std::size_t p = a.rows();
  const std::size_t q = b.cols();
  std::vector<ts::ChannelId> channels;
  for (std::size_t i = 0; i < p; ++i) channels.push_back(static_cast<int>(i + 1));
  for (std::size_t i = 0; i < q; ++i) channels.push_back(static_cast<int>(101 + i));
  ts::MultiTrace trace(ts::TimeGrid(0, 30, n), channels);

  std::mt19937_64 rng(seed);
  std::normal_distribution<double> input(0.0, 1.0);
  Vector x(p, 20.0);
  for (std::size_t k = 0; k < n; ++k) {
    Vector u(q);
    for (double& v : u) v = input(rng);
    for (std::size_t i = 0; i < p; ++i) trace.set(k, i, x[i]);
    for (std::size_t i = 0; i < q; ++i) trace.set(k, p + i, u[i]);
    Vector next = a * x;
    linalg::axpy(1.0, b * u, next);
    x = std::move(next);
  }
  return trace;
}

}  // namespace

class EstimatorRecovery : public ::testing::TestWithParam<SystemShape> {};

TEST_P(EstimatorRecovery, RecoversRandomStableSystems) {
  const auto shape = GetParam();
  const auto [a, b] = random_system(shape, 1000 + shape.states * 10 +
                                               shape.inputs);
  const auto trace =
      simulate_system(a, b, 60 * (shape.states + shape.inputs), 7);

  std::vector<ts::ChannelId> states, inputs;
  for (std::size_t i = 0; i < shape.states; ++i) states.push_back(static_cast<int>(i + 1));
  for (std::size_t i = 0; i < shape.inputs; ++i) inputs.push_back(static_cast<int>(101 + i));
  sysid::EstimationOptions opts;
  opts.ridge = 0.0;
  sysid::ModelEstimator estimator(states, inputs, sysid::ModelOrder::kFirst,
                                  opts);
  const auto model = estimator.fit(trace);
  EXPECT_TRUE(linalg::approx_equal(model.a(), a, 1e-6));
  EXPECT_TRUE(linalg::approx_equal(model.b(), b, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EstimatorRecovery,
    ::testing::Values(SystemShape{1, 1}, SystemShape{2, 1}, SystemShape{3, 2},
                      SystemShape{5, 3}, SystemShape{8, 4},
                      SystemShape{12, 7}, SystemShape{20, 7}));

// ---------------------------------------------------------------------------
// Evaluation consistency over horizons
// ---------------------------------------------------------------------------

class EvaluationHorizon : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EvaluationHorizon, PerfectModelStaysPerfectAtAnyHorizon) {
  const auto [a, b] = random_system({3, 2}, 99);
  const auto trace = simulate_system(a, b, 200, 3);
  const sysid::ThermalModel model(sysid::ModelOrder::kFirst, a, {}, b,
                                  {1, 2, 3}, {101, 102});
  sysid::EvaluationOptions opts;
  opts.horizon_samples = GetParam();
  opts.min_steps = 1;
  const auto eval = sysid::evaluate_prediction(model, trace, {{0, 200}},
                                               opts);
  ASSERT_EQ(eval.window_count, 1u);
  EXPECT_NEAR(eval.pooled_rms, 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Horizons, EvaluationHorizon,
                         ::testing::Values(1, 5, 27, 80, 199));

// ---------------------------------------------------------------------------
// Spectral clustering over block-graph shapes
// ---------------------------------------------------------------------------

namespace {

struct GraphShape {
  std::size_t blocks;
  std::size_t block_size;
};

}  // namespace

class SpectralBlocks : public ::testing::TestWithParam<GraphShape> {};

TEST_P(SpectralBlocks, RecoversPlantedPartitionAtScale) {
  const auto shape = GetParam();
  const std::size_t n = shape.blocks * shape.block_size;
  clustering::SimilarityGraph graph;
  std::mt19937_64 rng(n);
  std::uniform_real_distribution<double> jitter(-0.05, 0.05);
  graph.weights = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    graph.channels.push_back(static_cast<int>(i + 1));
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same = i / shape.block_size == j / shape.block_size;
      const double w =
          std::clamp((same ? 0.85 : 0.15) + jitter(rng), 0.0, 1.0);
      graph.weights(i, j) = w;
      graph.weights(j, i) = w;
    }
  }
  clustering::SpectralOptions opts;
  opts.cluster_count = shape.blocks;
  const auto result = clustering::spectral_cluster(graph, opts);
  // Every planted block must be label-pure.
  for (std::size_t blk = 0; blk < shape.blocks; ++blk) {
    const auto label = result.labels[blk * shape.block_size];
    for (std::size_t i = 0; i < shape.block_size; ++i) {
      EXPECT_EQ(result.labels[blk * shape.block_size + i], label)
          << "blocks=" << shape.blocks << " size=" << shape.block_size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpectralBlocks,
    ::testing::Values(GraphShape{2, 4}, GraphShape{2, 12}, GraphShape{3, 9},
                      GraphShape{4, 6}, GraphShape{5, 8}, GraphShape{6, 5}));
