#include "auditherm/linalg/least_squares.hpp"

#include <stdexcept>

#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/linalg/vector_ops.hpp"

namespace auditherm::linalg {

Matrix solve_least_squares(const Matrix& a, const Matrix& b,
                           const LeastSquaresOptions& opts) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("solve_least_squares: row count mismatch");
  }
  if (a.rows() < a.cols()) {
    throw std::invalid_argument(
        "solve_least_squares: underdetermined system (rows < cols)");
  }
  if (opts.ridge < 0.0) {
    throw std::invalid_argument("solve_least_squares: negative ridge");
  }
  if (opts.ridge == 0.0 && opts.prefer_qr) {
    return QrDecomposition(a).solve(b);
  }
  // Normal equations: (A^T A + ridge I) X = A^T B.
  Matrix ata = gram(a, a);
  double lambda = opts.ridge;
  if (opts.relative_ridge) {
    double tr = 0.0;
    for (std::size_t i = 0; i < ata.rows(); ++i) tr += ata(i, i);
    lambda *= tr / static_cast<double>(ata.rows());
  }
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += lambda;
  const Matrix atb = gram(a, b);
  return CholeskyDecomposition(ata).solve(atb);
}

Vector solve_least_squares(const Matrix& a, const Vector& b,
                           const LeastSquaresOptions& opts) {
  return solve_least_squares(a, Matrix::column(b), opts).col_vector(0);
}

double residual_norm(const Matrix& a, const Vector& x, const Vector& b) {
  return norm2(subtract(a * x, b));
}

}  // namespace auditherm::linalg
