// Ablation: model-order selection by information criteria.
//
// Table I / Fig. 3 show the second-order model predicting better over
// 13.5-hour horizons. This ablation asks whether one-step training-set
// statistics (AIC/BIC on identical transitions) agree — they do NOT,
// which is itself instructive: with ~30 usable training days the
// doubled parameter count dominates the one-step likelihood gain, so a
// practitioner must validate multi-step prediction (as the paper does)
// rather than trust one-step criteria.

#include "bench_common.hpp"

using namespace auditherm;

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Ablation: AIC/BIC order selection per HVAC mode");
  const auto dataset = bench::make_standard_dataset();

  for (auto mode : {hvac::Mode::kOccupied, hvac::Mode::kUnoccupied}) {
    const auto split = bench::standard_split(dataset, mode);
    const auto mode_mask =
        dataset.schedule.mode_mask(dataset.trace.grid(), mode);
    const auto cmp = sysid::compare_orders(
        dataset.sensor_ids(), dataset.input_ids(), dataset.trace,
        core::and_masks(split.train_mask, mode_mask));

    std::printf("--- %s mode (%zu transitions) ---\n",
                mode == hvac::Mode::kOccupied ? "occupied" : "unoccupied",
                cmp.first.transitions);
    std::printf("%-14s %-14s %-14s %-16s\n", "order", "AIC", "BIC",
                "median R^2 vs persistence");
    for (const auto& [name, diag] :
         {std::pair<const char*, const sysid::FitDiagnostics&>{
              "first", cmp.first},
          {"second", cmp.second}}) {
      linalg::Vector r2 = diag.r_squared_vs_persistence;
      std::printf("%-14s %-14.0f %-14.0f %-16.3f\n", name, diag.aic,
                  diag.bic, linalg::percentile(r2, 50.0));
    }
    std::printf("information criteria prefer: %s order\n\n",
                cmp.second_order_preferred() ? "SECOND" : "FIRST");
  }

  std::printf("reading: one-step information criteria pick FIRST order — "
              "the 2x parameter count outweighs the one-step residual "
              "gain at this data volume — yet the second-order model wins "
              "the paper's multi-step validation (Table I). Moral: order "
              "selection for building control must be validated on the "
              "prediction horizon the controller will actually use; this "
              "is the same over-parameterization tension behind the "
              "training-horizon non-monotonicity of Fig. 5.\n");
  return 0;
}
