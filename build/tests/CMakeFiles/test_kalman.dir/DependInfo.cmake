
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_kalman.cpp" "tests/CMakeFiles/test_kalman.dir/test_kalman.cpp.o" "gcc" "tests/CMakeFiles/test_kalman.dir/test_kalman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/auditherm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/auditherm_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/selection/CMakeFiles/auditherm_selection.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/auditherm_control.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/auditherm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sysid/CMakeFiles/auditherm_sysid.dir/DependInfo.cmake"
  "/root/repo/build/src/hvac/CMakeFiles/auditherm_hvac.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/auditherm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/auditherm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
