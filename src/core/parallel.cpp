#include "auditherm/core/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "auditherm/obs/trace_span.hpp"

namespace auditherm::core {

namespace {

/// Batch/task metrics, resolved once. All recording below is purely
/// observational (counters and clock reads) — it never influences the
/// chunk decomposition or task claiming, so instrumented runs stay
/// bitwise identical to uninstrumented ones.
struct ParallelMetrics {
  obs::MetricId batches = obs::counter_id("parallel.batches");
  obs::MetricId pooled_batches = obs::counter_id("parallel.pooled_batches");
  obs::MetricId tasks = obs::counter_id("parallel.tasks");
  obs::MetricId tasks_caller = obs::counter_id("parallel.tasks_caller");
  obs::MetricId tasks_helper = obs::counter_id("parallel.tasks_helper");
  obs::MetricId helper_joins = obs::counter_id("parallel.helper_joins");
  obs::MetricId threads = obs::gauge_id("parallel.threads");
  obs::MetricId batch_us = obs::histogram_id("parallel.batch_us");
  obs::MetricId task_us = obs::histogram_id("parallel.task_us");
};

const ParallelMetrics& parallel_metrics() {
  static const ParallelMetrics m;
  return m;
}

/// Upper bound on pool workers: beyond this, oversubscription only adds
/// scheduler churn on any machine we target.
constexpr std::size_t kMaxWorkers = 64;

std::size_t hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

std::size_t env_threads() {
  const char* raw = std::getenv("AUDITHERM_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || v < 0) {
    throw std::runtime_error(
        std::string("AUDITHERM_THREADS is not a non-negative integer: ") +
        raw);
  }
  return static_cast<std::size_t>(v);
}

std::atomic<std::size_t> g_override{0};

thread_local bool t_in_parallel_region = false;

/// One in-flight batch of tasks. The task decomposition is fixed before
/// any thread runs; threads only race to *claim* indices, so results are
/// thread-count independent.
struct Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* task = nullptr;
  /// Observability sink captured when the batch was posted (null = off);
  /// workers record per-task timings through it.
  obs::Recorder* recorder = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  /// Helpers currently inside run_some(); the batch may not be destroyed
  /// until this returns to zero.
  std::atomic<std::size_t> active{0};
  /// Per-task exception slots; after the batch, the lowest-index one is
  /// rethrown so failure is as deterministic as success.
  std::vector<std::exception_ptr> errors;

  void run_some(bool helper) {
    t_in_parallel_region = true;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      const std::uint64_t t0 = recorder != nullptr ? recorder->now_ns() : 0;
      try {
        (*task)(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      if (recorder != nullptr) {
        const auto& m = parallel_metrics();
        recorder->metrics().observe(
            m.task_us, static_cast<double>(recorder->now_ns() - t0) / 1e3);
        recorder->metrics().add(helper ? m.tasks_helper : m.tasks_caller);
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    }
    t_in_parallel_region = false;
  }
};

/// Lazily created worker pool. Workers park on a condition variable and
/// help with whatever batch is posted; the caller always participates, so
/// a pool of W workers serves thread counts up to W + 1.
class Pool {
 public:
  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& task,
           std::size_t max_threads) {
    obs::Recorder* rec = obs::kCompiledIn ? obs::current() : nullptr;
    // The batch span parents any span a worker thread opens while this
    // batch runs (sweep cases, duplicate stage builds); top-level batches
    // are serialized by batch_mutex, so the single ambient slot is safe.
    obs::TraceSpan span("parallel.batch");
    const std::uint64_t batch_t0 = rec != nullptr ? rec->now_ns() : 0;
    if (rec != nullptr) {
      const auto& m = parallel_metrics();
      rec->metrics().add(m.pooled_batches);
      rec->metrics().set(m.threads, static_cast<double>(max_threads));
      obs::set_ambient_parent(span.id());
    }

    Batch batch;
    batch.count = count;
    batch.task = &task;
    batch.recorder = rec;
    batch.errors.resize(count);

    ensure_workers(max_threads - 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batch_ = &batch;
      // Cap how many workers may join: determinism never depends on it,
      // but it honors thread_count() as an actual concurrency bound.
      helpers_allowed_ = max_threads - 1;
      ++generation_;
    }
    cv_.notify_all();

    batch.run_some(/*helper=*/false);
    // The caller ran out of unclaimed tasks. Retract the batch, then wait
    // for claimed tasks to finish and registered helpers to step out
    // before the batch (and `task`) leaves scope.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batch_ = nullptr;
    }
    std::size_t spins = 0;
    while (batch.done.load(std::memory_order_acquire) < count ||
           batch.active.load(std::memory_order_acquire) > 0) {
      if (++spins < 1024) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    if (rec != nullptr) {
      obs::set_ambient_parent(0);
      rec->metrics().observe(
          parallel_metrics().batch_us,
          static_cast<double>(rec->now_ns() - batch_t0) / 1e3);
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (batch.errors[i]) std::rethrow_exception(batch.errors[i]);
    }
  }

 private:
  void ensure_workers(std::size_t wanted) {
    wanted = wanted < kMaxWorkers ? wanted : kMaxWorkers;
    std::lock_guard<std::mutex> lock(mutex_);
    while (workers_.size() < wanted) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      Batch* batch = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] {
          return stopping_ || (batch_ != nullptr && generation_ != seen);
        });
        if (stopping_) return;
        seen = generation_;
        if (helpers_allowed_ == 0) continue;
        --helpers_allowed_;
        batch = batch_;
        // Register under the lock: the caller cannot have retracted the
        // batch yet, and it will wait for active to drain before
        // destroying it.
        batch->active.fetch_add(1, std::memory_order_acq_rel);
      }
      if (batch->recorder != nullptr) {
        batch->recorder->metrics().add(parallel_metrics().helper_joins);
      }
      batch->run_some(/*helper=*/true);
      batch->active.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  Batch* batch_ = nullptr;
  std::size_t helpers_allowed_ = 0;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
};

/// Meyers-style singleton, intentionally leaked so worker threads never
/// race static teardown at process exit.
Pool& pool() {
  static Pool* p = new Pool();
  return *p;
}

/// Serializes top-level batches: the pool handles one batch at a time and
/// concurrent callers queue here. Nested regions never reach this lock
/// (they run inline), so it cannot self-deadlock.
std::mutex& batch_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

std::size_t thread_count() {
  const std::size_t override_n = g_override.load(std::memory_order_relaxed);
  if (override_n > 0) return override_n;
  const std::size_t env_n = env_threads();
  if (env_n > 0) return env_n;
  return hardware_threads();
}

std::size_t set_thread_count(std::size_t n) {
  return g_override.exchange(n, std::memory_order_relaxed);
}

namespace detail {

bool in_parallel_region() noexcept { return t_in_parallel_region; }

void run_tasks(std::size_t count,
               const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  // Batch/task counts are identical at any thread count: the same
  // decomposition reaches this point whether the tasks then run inline or
  // on the pool. Timings (parallel.batch_us / task_us) cover only pooled
  // batches, where the clock reads are amortized over real work.
  if (obs::Recorder* rec = obs::kCompiledIn ? obs::current() : nullptr) {
    const auto& m = parallel_metrics();
    rec->metrics().add(m.batches);
    rec->metrics().add(m.tasks, count);
  }
  const std::size_t threads = thread_count();
  if (threads <= 1 || count == 1 || t_in_parallel_region) {
    // Serial fallback: same tasks, ascending order, no pool involved.
    // (An exception propagates immediately here; the pooled path runs
    // every task and rethrows the lowest-index failure — either way the
    // caller observes the lowest-index exception.)
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  std::lock_guard<std::mutex> lock(batch_mutex());
  pool().run(count, task, threads);
}

}  // namespace detail

}  // namespace auditherm::core
