# Empty dependencies file for auditherm_cli.
# This may be replaced when dependencies are built.
