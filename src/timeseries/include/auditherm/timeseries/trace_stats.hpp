#pragma once

/// \file trace_stats.hpp
/// Cross-channel statistics on gapped traces: correlation matrices (the
/// paper's Fig. 7/8 correlation maps and the correlation similarity graph),
/// pairwise distances, channel means, and pairwise max temperature
/// differences (Fig. 7/8 CDF metric).

#include <vector>

#include "auditherm/linalg/matrix.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::timeseries {

/// Pearson correlation matrix between all channel pairs, computed over
/// rows where *both* channels are valid (pairwise-complete). Entries with
/// fewer than 2 shared samples, or with a constant series, are 0; the
/// diagonal is 1. Result is channel_count x channel_count, ordered as
/// trace.channels().
[[nodiscard]] linalg::Matrix correlation_matrix(const TraceView& trace);

/// Sample covariance matrix between all channel pairs over pairwise-
/// complete rows; entries with fewer than 2 shared samples are 0.
/// The Gaussian-process sensor-placement baseline consumes this.
[[nodiscard]] linalg::Matrix covariance_matrix(const TraceView& trace);

/// Pairwise Euclidean distance between channel series over rows where both
/// are valid, normalized by sqrt(#shared rows) so sparsely and densely
/// covered pairs are comparable ("RMS distance"). Pairs with no shared
/// rows get +inf.
[[nodiscard]] linalg::Matrix rms_distance_matrix(const TraceView& trace);

/// Per-channel mean over valid samples; NaN for channels with no samples.
[[nodiscard]] linalg::Vector channel_means(const TraceView& trace);

/// Max over shared-valid rows of |x_i(k) - x_j(k)| for a channel pair;
/// the paper's intra-cluster "maximum temperature difference" metric.
/// Returns NaN when the pair shares no rows.
[[nodiscard]] double max_abs_difference(const TraceView& trace,
                                        ChannelId a, ChannelId b);

/// All pairwise max-abs-differences among `ids` (unordered pairs, NaN pairs
/// skipped); the sample whose CDF the paper plots per cluster.
[[nodiscard]] linalg::Vector pairwise_max_differences(
    const TraceView& trace, const std::vector<ChannelId>& ids);

}  // namespace auditherm::timeseries
