#include "auditherm/clustering/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "auditherm/linalg/decompositions.hpp"

namespace auditherm::clustering {

namespace {
/// Floor for eigenvalues entering the log: the Laplacian's zero mode would
/// otherwise dominate every gap.
constexpr double kLogFloor = 1e-10;
}  // namespace

linalg::Matrix laplacian(const linalg::Matrix& weights) {
  if (weights.rows() != weights.cols()) {
    throw std::invalid_argument("laplacian: weights not square");
  }
  const std::size_t n = weights.rows();
  linalg::Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      degree += weights(i, j);
      l(i, j) = -weights(i, j);
    }
    l(i, i) = degree;
  }
  return l;
}

linalg::Vector SpectralAnalysis::log_eigengaps() const {
  if (eigenvalues.size() < 2) return {};
  linalg::Vector gaps(eigenvalues.size() - 1);
  for (std::size_t i = 0; i + 1 < eigenvalues.size(); ++i) {
    const double lo = std::max(eigenvalues[i], kLogFloor);
    const double hi = std::max(eigenvalues[i + 1], kLogFloor);
    gaps[i] = std::log(hi) - std::log(lo);
  }
  return gaps;
}

std::size_t SpectralAnalysis::eigengap_cluster_count(std::size_t k_min,
                                                     std::size_t k_max) const {
  const auto gaps = log_eigengaps();
  if (gaps.empty()) return 1;
  k_min = std::max<std::size_t>(k_min, 1);
  k_max = std::min(k_max, gaps.size());
  if (k_min > k_max) {
    throw std::invalid_argument("eigengap_cluster_count: empty search range");
  }
  // Choosing k means the gap sits between eigenvalue index k-1 and k
  // (0-based): eigenvalues 0..k-1 are the "small" group.
  std::size_t best_k = k_min;
  double best_gap = -1.0;
  for (std::size_t k = k_min; k <= k_max; ++k) {
    if (gaps[k - 1] > best_gap) {
      best_gap = gaps[k - 1];
      best_k = k;
    }
  }
  return best_k;
}

linalg::CsrMatrix laplacian_csr(const linalg::Matrix& weights,
                                LaplacianKind kind) {
  if (weights.rows() != weights.cols()) {
    throw std::invalid_argument("laplacian_csr: weights not square");
  }
  const std::size_t n = weights.rows();
  std::vector<std::size_t> row_ptr(n + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;

  linalg::Vector inv_sqrt_deg;
  if (kind == LaplacianKind::kSymmetricNormalized) {
    inv_sqrt_deg.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double degree = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) degree += weights(i, j);
      }
      inv_sqrt_deg[i] = degree > 0.0 ? 1.0 / std::sqrt(degree) : 0.0;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    if (kind == LaplacianKind::kUnnormalized) {
      // Same ascending-j accumulation as laplacian(): skipping the zero
      // weights leaves the non-negative sum bitwise unchanged.
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) degree += weights(i, j);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      double v;
      if (i == j) {
        v = kind == LaplacianKind::kUnnormalized ? degree : 1.0;
      } else if (weights(i, j) != 0.0) {
        v = kind == LaplacianKind::kUnnormalized
                ? -weights(i, j)
                : -weights(i, j) * inv_sqrt_deg[i] * inv_sqrt_deg[j];
      } else {
        continue;
      }
      if (v == 0.0) continue;  // isolated-vertex zero diagonal
      col_idx.push_back(j);
      values.push_back(v);
    }
    row_ptr[i + 1] = values.size();
  }
  return linalg::CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                           std::move(values));
}

linalg::Matrix normalized_laplacian(const linalg::Matrix& weights) {
  if (weights.rows() != weights.cols()) {
    throw std::invalid_argument("normalized_laplacian: weights not square");
  }
  const std::size_t n = weights.rows();
  linalg::Vector inv_sqrt_deg(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) degree += weights(i, j);
    }
    inv_sqrt_deg[i] = degree > 0.0 ? 1.0 / std::sqrt(degree) : 0.0;
  }
  linalg::Matrix l = linalg::Matrix::identity(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        l(i, j) = -weights(i, j) * inv_sqrt_deg[i] * inv_sqrt_deg[j];
      }
    }
  }
  return l;
}

SpectralAnalysis analyze_spectrum(const linalg::Matrix& weights,
                                  LaplacianKind kind,
                                  linalg::EigenMethod method,
                                  std::size_t max_pairs) {
  const auto resolved = linalg::resolve_eigen_method(method, weights.rows());
  linalg::SymmetricEigen eig;
  if (resolved == linalg::EigenMethod::kLanczos && max_pairs > 0 &&
      max_pairs < weights.rows()) {
    // Sparse path: compress the Laplacian to CSR (never forming the dense
    // operator) and pull only the requested smallest pairs out of the
    // Lanczos iteration.
    eig = linalg::eigen_symmetric_smallest_sparse(laplacian_csr(weights, kind),
                                                  max_pairs);
  } else {
    const auto l = kind == LaplacianKind::kUnnormalized
                       ? laplacian(weights)
                       : normalized_laplacian(weights);
    if (resolved == linalg::EigenMethod::kTridiagonal ||
        resolved == linalg::EigenMethod::kLanczos) {
      // A Lanczos request without a usable max_pairs falls back to the
      // dense solver of the same output contract (full spectrum).
      eig = max_pairs > 0 && max_pairs < l.rows()
                ? linalg::eigen_symmetric_smallest(l, max_pairs)
                : linalg::eigen_symmetric_tridiagonal(l);
    } else {
      // Jacobi is the full-spectrum reference; max_pairs does not apply.
      eig = linalg::eigen_symmetric(l);
    }
  }
  SpectralAnalysis a;
  a.eigenvalues = std::move(eig.eigenvalues);
  a.eigenvectors = std::move(eig.eigenvectors);
  return a;
}

std::size_t needed_eigenpairs(const SpectralOptions& options, std::size_t n) {
  // The embedding uses cluster_count columns (when fixed); the eigengap
  // scan inspects gaps up to index k_max - 1, i.e. eigenvalue k_max —
  // one past it is enough for either consumer.
  return std::min(n, std::max(options.cluster_count, options.k_max + 1));
}

std::vector<std::vector<timeseries::ChannelId>> ClusteringResult::clusters()
    const {
  if (labels.size() != channels.size()) {
    throw std::out_of_range(
        "ClusteringResult::clusters: " + std::to_string(labels.size()) +
        " labels for " + std::to_string(channels.size()) + " channels");
  }
  std::vector<std::vector<timeseries::ChannelId>> out(cluster_count);
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (labels[i] >= cluster_count) {
      throw std::out_of_range(
          "ClusteringResult::clusters: label " + std::to_string(labels[i]) +
          " at index " + std::to_string(i) + " >= cluster_count " +
          std::to_string(cluster_count));
    }
    out[labels[i]].push_back(channels[i]);
  }
  return out;
}

std::size_t ClusteringResult::cluster_of(timeseries::ChannelId id) const {
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (channels[i] == id) return labels[i];
  }
  throw std::invalid_argument("ClusteringResult::cluster_of: unknown channel");
}

ClusteringResult spectral_cluster(const SimilarityGraph& graph,
                                  const SpectralOptions& options) {
  return spectral_cluster(
      graph,
      analyze_spectrum(graph.weights, options.laplacian, options.eigen_method,
                       needed_eigenpairs(options, graph.channels.size())),
      options);
}

ClusteringResult spectral_cluster(const SimilarityGraph& graph,
                                  const SpectralAnalysis& analysis,
                                  const SpectralOptions& options) {
  const std::size_t n = graph.channels.size();
  if (options.cluster_count > n) {
    throw std::invalid_argument("spectral_cluster: cluster_count > vertices");
  }
  // Accept a full (n-pair) or partial (m-pair) analysis; the embedding
  // only reads the small end of the spectrum.
  const std::size_t pairs = analysis.eigenvalues.size();
  if (pairs == 0 || pairs > n || analysis.eigenvectors.rows() != n ||
      analysis.eigenvectors.cols() != pairs) {
    throw std::invalid_argument(
        "spectral_cluster: analysis dimensions do not match the graph");
  }

  std::size_t k = options.cluster_count;
  if (k == 0) {
    k = analysis.eigengap_cluster_count(options.k_min,
                                        std::min(options.k_max, n - 1));
  }
  if (k > pairs) {
    throw std::invalid_argument(
        "spectral_cluster: analysis holds " + std::to_string(pairs) +
        " eigenpairs but k = " + std::to_string(k) + " are needed");
  }

  // Spectral embedding: rows of the k eigenvectors of smallest eigenvalue.
  linalg::Matrix embedding(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    embedding.set_col(j, analysis.eigenvectors.col_vector(j));
  }
  if (options.normalize_rows) {
    for (std::size_t i = 0; i < n; ++i) {
      double norm = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        norm += embedding(i, j) * embedding(i, j);
      }
      norm = std::sqrt(norm);
      if (norm > 0.0) {
        for (std::size_t j = 0; j < k; ++j) embedding(i, j) /= norm;
      }
    }
  }
  const auto km = kmeans(embedding, k, options.kmeans);

  ClusteringResult result;
  result.channels = graph.channels;
  result.labels = km.labels;
  result.cluster_count = k;
  result.eigenvalues = analysis.eigenvalues;
  return result;
}

}  // namespace auditherm::clustering
