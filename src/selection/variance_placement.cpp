#include "auditherm/selection/variance_placement.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "auditherm/timeseries/trace_stats.hpp"

namespace auditherm::selection {

std::vector<timeseries::ChannelId> max_variance_selection(
    const timeseries::TraceView& training,
    const std::vector<timeseries::ChannelId>& candidates, std::size_t count,
    double redundancy_cap) {
  if (count == 0 || count > candidates.size()) {
    throw std::invalid_argument(
        "max_variance_selection: count outside [1, #candidates]");
  }
  const auto sub = training.select_channels(candidates);
  const auto cov = timeseries::covariance_matrix(sub);
  const auto corr = timeseries::correlation_matrix(sub);

  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cov(a, a) > cov(b, b);
  });

  std::vector<std::size_t> chosen;
  // First pass honors the redundancy cap; a second pass tops up with the
  // highest-variance leftovers if the cap was too strict.
  for (std::size_t idx : order) {
    if (chosen.size() == count) break;
    bool redundant = false;
    for (std::size_t prev : chosen) {
      if (corr(idx, prev) > redundancy_cap) {
        redundant = true;
        break;
      }
    }
    if (!redundant) chosen.push_back(idx);
  }
  for (std::size_t idx : order) {
    if (chosen.size() == count) break;
    if (std::find(chosen.begin(), chosen.end(), idx) == chosen.end()) {
      chosen.push_back(idx);
    }
  }

  std::vector<timeseries::ChannelId> out;
  out.reserve(count);
  for (std::size_t idx : chosen) out.push_back(candidates[idx]);
  return out;
}

}  // namespace auditherm::selection
