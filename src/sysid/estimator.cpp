#include "auditherm/sysid/estimator.hpp"

#include <stdexcept>

#include "auditherm/core/parallel.hpp"
#include "auditherm/linalg/least_squares.hpp"
#include "auditherm/obs/trace_span.hpp"

namespace auditherm::sysid {

namespace {

using timeseries::Segment;

/// Rows of history a transition needs before its target: 1 for first order
/// (T(k) -> T(k+1)), 2 for second order (needs T(k-1) for dT(k)).
std::size_t history_rows(ModelOrder order) {
  return order == ModelOrder::kSecond ? 2 : 1;
}

}  // namespace

ModelEstimator::ModelEstimator(std::vector<timeseries::ChannelId> state_ids,
                               std::vector<timeseries::ChannelId> input_ids,
                               ModelOrder order, EstimationOptions options)
    : state_ids_(std::move(state_ids)),
      input_ids_(std::move(input_ids)),
      order_(order),
      options_(options) {
  if (state_ids_.empty()) {
    throw std::invalid_argument("ModelEstimator: no state channels");
  }
  if (input_ids_.empty()) {
    throw std::invalid_argument("ModelEstimator: no input channels");
  }
  if (options_.ridge < 0.0) {
    throw std::invalid_argument("ModelEstimator: negative ridge");
  }
}

std::vector<Segment> ModelEstimator::usable_segments(
    const timeseries::TraceView& trace,
    const std::vector<bool>& row_filter) const {
  std::vector<timeseries::ChannelId> required = state_ids_;
  required.insert(required.end(), input_ids_.begin(), input_ids_.end());
  auto mask = timeseries::rows_with_all_valid(trace, required);
  if (!row_filter.empty()) {
    if (row_filter.size() != trace.size()) {
      throw std::invalid_argument("ModelEstimator: row_filter size mismatch");
    }
    for (std::size_t k = 0; k < mask.size(); ++k) {
      mask[k] = mask[k] && row_filter[k];
    }
  }
  return timeseries::find_segments(mask, history_rows(order_) + 1);
}

RegressionSummary ModelEstimator::summarize(
    const timeseries::TraceView& trace,
    const std::vector<bool>& row_filter) const {
  const auto segments = usable_segments(trace, row_filter);
  RegressionSummary s;
  s.segments = segments.size();
  const std::size_t h = history_rows(order_);
  for (const auto& seg : segments) s.transitions += seg.length() - h;
  const std::size_t p = state_ids_.size();
  s.parameters = (order_ == ModelOrder::kSecond ? 2 * p : p) + input_ids_.size();
  return s;
}

ThermalModel ModelEstimator::fit(const timeseries::TraceView& trace,
                                 const std::vector<bool>& row_filter) const {
  obs::TraceSpan fit_span("sysid.fit");
  static const obs::MetricId kFitTransitions =
      obs::counter_id("sysid.fit_transitions");
  const auto segments = usable_segments(trace, row_filter);
  const std::size_t p = state_ids_.size();
  const std::size_t q = input_ids_.size();
  const std::size_t h = history_rows(order_);
  const std::size_t n_params = (order_ == ModelOrder::kSecond ? 2 * p : p) + q;

  std::size_t transitions = 0;
  for (const auto& seg : segments) transitions += seg.length() - h;
  obs::add_counter(kFitTransitions, transitions);

  std::size_t min_needed = options_.min_transitions;
  if (min_needed == 0) min_needed = std::max<std::size_t>(4 * n_params, 8);
  if (transitions < min_needed) {
    throw std::runtime_error(
        "ModelEstimator::fit: only " + std::to_string(transitions) +
        " usable transitions, need " + std::to_string(min_needed));
  }

  // Column indices resolved once.
  std::vector<std::size_t> state_cols(p);
  for (std::size_t i = 0; i < p; ++i) {
    state_cols[i] = trace.require_channel(state_ids_[i]);
  }
  std::vector<std::size_t> input_cols(q);
  for (std::size_t i = 0; i < q; ++i) {
    input_cols[i] = trace.require_channel(input_ids_[i]);
  }

  // Assemble Z (transitions x n_params) and Y (transitions x p): for each
  // in-segment transition k -> k+1, Z row = [T(k), dT(k)?, u(k)],
  // Y row = T(k+1). This is exactly the ensemble objective of eq. 4.
  // Each segment owns a precomputed disjoint row range, so segments fill
  // in parallel and the assembled regression is independent of the thread
  // count.
  std::vector<std::size_t> seg_row_offset(segments.size() + 1, 0);
  for (std::size_t si = 0; si < segments.size(); ++si) {
    seg_row_offset[si + 1] = seg_row_offset[si] + (segments[si].length() - h);
  }
  linalg::Matrix z(transitions, n_params);
  linalg::Matrix y(transitions, p);
  core::parallel_for(0, segments.size(), 1, [&](std::size_t si) {
    const auto& seg = segments[si];
    std::size_t row = seg_row_offset[si];
    for (std::size_t k = seg.first + h - 1; k + 1 < seg.last; ++k) {
      for (std::size_t i = 0; i < p; ++i) {
        z(row, i) = trace.value(k, state_cols[i]);
      }
      std::size_t offset = p;
      if (order_ == ModelOrder::kSecond) {
        for (std::size_t i = 0; i < p; ++i) {
          z(row, offset + i) = trace.value(k, state_cols[i]) -
                               trace.value(k - 1, state_cols[i]);
        }
        offset += p;
      }
      for (std::size_t i = 0; i < q; ++i) {
        z(row, offset + i) = trace.value(k, input_cols[i]);
      }
      for (std::size_t i = 0; i < p; ++i) {
        y(row, i) = trace.value(k + 1, state_cols[i]);
      }
      ++row;
    }
  });

  linalg::LeastSquaresOptions ls;
  ls.ridge = options_.ridge;
  ls.relative_ridge = options_.relative_ridge;
  ls.prefer_qr = options_.ridge == 0.0;
  // theta is n_params x p; output row i of the model is theta column i.
  const linalg::Matrix theta = linalg::solve_least_squares(z, y, ls);

  linalg::Matrix a(p, p);
  linalg::Matrix a2;
  linalg::Matrix b(p, q);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) a(i, j) = theta(j, i);
  }
  std::size_t offset = p;
  if (order_ == ModelOrder::kSecond) {
    a2 = linalg::Matrix(p, p);
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) a2(i, j) = theta(offset + j, i);
    }
    offset += p;
  }
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < q; ++j) b(i, j) = theta(offset + j, i);
  }

  return ThermalModel(order_, std::move(a), std::move(a2), std::move(b),
                      state_ids_, input_ids_);
}

}  // namespace auditherm::sysid
