// Quickstart: generate an auditorium dataset, identify thermal models,
// cluster the sensors, and run the full three-step pipeline.
//
// This walks the paper's whole workflow in ~60 lines of API calls.

#include <cstdio>

#include "auditherm/auditherm.hpp"

int main() {
  using namespace auditherm;

  // --- 1. Simulate the instrumented auditorium (14 weeks, with failures).
  sim::DatasetConfig config;
  config.days = 42;  // keep the quickstart fast; benches use the full 98
  config.failure_days = 8;
  const auto dataset = sim::generate_dataset(config);
  std::printf("dataset: %zu samples x %zu channels, coverage %.1f%%\n",
              dataset.trace.size(), dataset.trace.channel_count(),
              100.0 * dataset.trace.coverage());

  // --- 2. Split usable days into train / validation halves.
  const auto sensors = dataset.sensor_ids();
  const auto inputs = dataset.input_ids();
  auto required = sensors;
  required.insert(required.end(), inputs.begin(), inputs.end());
  const auto split = core::split_dataset(dataset.trace, required,
                                         dataset.schedule,
                                         hvac::Mode::kOccupied);
  std::printf("usable days: %zu (train %zu, validate %zu)\n",
              split.usable_days.size(), split.train_days.size(),
              split.validation_days.size());

  // --- 3. Identify a dense second-order model and check its accuracy.
  const auto mode_mask =
      dataset.schedule.mode_mask(dataset.trace.grid(), hvac::Mode::kOccupied);
  sysid::ModelEstimator estimator(sensors, inputs,
                                  sysid::ModelOrder::kSecond);
  const auto model = estimator.fit(
      dataset.trace, core::and_masks(split.train_mask, mode_mask));

  sysid::EvaluationOptions eval_opts;
  auto window_mask = core::and_masks(split.validation_mask, mode_mask);
  window_mask = core::and_masks(
      window_mask, timeseries::rows_with_all_valid(dataset.trace, inputs));
  const auto windows = timeseries::find_segments(window_mask, 2);
  const auto eval = sysid::evaluate_prediction(model, dataset.trace, windows,
                                               eval_opts);
  std::printf("dense 2nd-order model: %zu windows, pooled RMS %.3f degC, "
              "90th-pct channel RMS %.3f degC\n",
              eval.window_count, eval.pooled_rms,
              eval.channel_rms_percentile(90.0));

  // --- 4. Run the full pipeline: cluster -> select (SMS) -> reduced model.
  core::PipelineConfig pipe_config;
  const core::ThermalModelingPipeline pipeline(pipe_config);
  const auto result = pipeline.run(
      dataset.trace, dataset.schedule, split, dataset.wireless_ids(), inputs,
      core::RunOptions{.thermostat_ids = dataset.thermostat_ids()});

  std::printf("clustering: k = %zu clusters\n",
              result.clustering.cluster_count);
  const auto clusters = result.clustering.clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    std::printf("  cluster %zu (%zu sensors):", c, clusters[c].size());
    for (auto id : clusters[c]) std::printf(" %d", id);
    std::printf("  -> representative %d\n", result.selection.per_cluster[c][0]);
  }
  std::printf("reduced model cluster-mean error: 99th pct %.3f degC\n",
              result.cluster_mean_errors.percentile(99.0));
  return 0;
}
