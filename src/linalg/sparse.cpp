#include "auditherm/linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "auditherm/core/parallel.hpp"
#include "auditherm/obs/trace_span.hpp"

namespace auditherm::linalg {

// ---------------------------------------------------------------------------
// CsrMatrix
// ---------------------------------------------------------------------------

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  if (row_ptr_.size() != rows_ + 1) {
    throw std::invalid_argument("CsrMatrix: row_ptr must have rows + 1 entries");
  }
  if (row_ptr_.front() != 0 || row_ptr_.back() != values_.size() ||
      col_idx_.size() != values_.size()) {
    throw std::invalid_argument(
        "CsrMatrix: row_ptr must start at 0 and end at nnz, with col_idx and "
        "values of equal length");
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    if (row_ptr_[i] > row_ptr_[i + 1]) {
      throw std::invalid_argument("CsrMatrix: row_ptr must be non-decreasing");
    }
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      if (col_idx_[p] >= cols_) {
        throw std::invalid_argument(
            "CsrMatrix: column index " + std::to_string(col_idx_[p]) +
            " out of range in row " + std::to_string(i));
      }
      if (p > row_ptr_[i] && col_idx_[p] < col_idx_[p - 1]) {
        throw std::invalid_argument(
            "CsrMatrix: column indices must be non-decreasing within row " +
            std::to_string(i));
      }
    }
  }
}

CsrMatrix CsrMatrix::from_dense(const Matrix& a, double drop_tol) {
  CsrMatrix out;
  out.rows_ = a.rows();
  out.cols_ = a.cols();
  out.row_ptr_.assign(out.rows_ + 1, 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double v = a(i, j);
      if (v == 0.0 || std::abs(v) <= drop_tol) continue;
      out.col_idx_.push_back(j);
      out.values_.push_back(v);
    }
    out.row_ptr_[i + 1] = out.values_.size();
  }
  return out;
}

Matrix CsrMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out(i, col_idx_[p]) += values_[p];
    }
  }
  return out;
}

Vector CsrMatrix::multiply(const Vector& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("CsrMatrix::multiply: vector length " +
                                std::to_string(x.size()) +
                                " does not match cols " +
                                std::to_string(cols_));
  }
  static const obs::MetricId kSpmvCalls = obs::counter_id("linalg.spmv_calls");
  obs::add_counter(kSpmvCalls);
  Vector y(rows_, 0.0);
  if (rows_ == 0) return y;
  // Grain sized by the average row cost; it depends only on the matrix, so
  // the chunking — and hence the bitwise result — is thread-count
  // independent. Each row is a serial ascending-p accumulation.
  const std::size_t grain = core::grain_for_cost(2 * (nnz() / rows_ + 1));
  core::parallel_for(0, rows_, grain, [&](std::size_t i) {
    double sum = 0.0;
    for (std::size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      sum += values_[p] * x[col_idx_[p]];
    }
    y[i] = sum;
  });
  return y;
}

Vector operator*(const CsrMatrix& a, const Vector& x) { return a.multiply(x); }

// ---------------------------------------------------------------------------
// Lanczos partial eigensolver
// ---------------------------------------------------------------------------

namespace {

double dot(const Vector& a, const Vector& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const Vector& a) { return std::sqrt(dot(a, a)); }

/// Two classical Gram-Schmidt passes of `w` against every vector in
/// `locked` then `basis`, in index order — serial and deterministic. Two
/// passes ("twice is enough") keep the basis orthogonal to machine
/// precision, which is the full-reorthogonalization contract.
void reorthogonalize(Vector& w, const std::vector<Vector>& locked,
                     const std::vector<Vector>& basis) {
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto* set : {&locked, &basis}) {
      for (const Vector& q : *set) {
        const double d = dot(q, w);
        if (d == 0.0) continue;
        for (std::size_t i = 0; i < w.size(); ++i) w[i] -= d * q[i];
      }
    }
  }
}

/// Deterministic unit start vector orthogonal to `locked` + `basis`:
/// splitmix64 raw entries, reorthogonalized, normalized. Successive
/// attempts re-hash with a new salt when the projection collapses (the
/// raw vector lay in the span already found). Throws std::domain_error
/// when every attempt collapses — impossible while the span has a
/// complement, barring adversarial inputs.
Vector fresh_start_vector(std::size_t n, std::uint64_t salt,
                          const std::vector<Vector>& locked,
                          const std::vector<Vector>& basis) {
  for (std::uint64_t attempt = 0; attempt < 16; ++attempt) {
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = detail::hash_unit((salt * 16 + attempt) * 1000003ULL +
                               static_cast<std::uint64_t>(i)) -
             0.5;
    }
    reorthogonalize(v, locked, basis);
    const double nv = norm(v);
    if (nv > 1e-6) {
      for (double& vi : v) vi /= nv;
      return v;
    }
  }
  throw std::domain_error(
      "eigen_symmetric_smallest_sparse: could not find a start vector "
      "outside the converged subspace");
}

/// Dense copy of the Lanczos tridiagonal T_j (alpha on the diagonal,
/// beta coupling neighbors; a zero beta from a breakdown restart leaves
/// T block-diagonal, which the dense solver handles transparently).
Matrix dense_tridiagonal(const Vector& alpha, const Vector& beta) {
  const std::size_t j = alpha.size();
  Matrix t(j, j);
  for (std::size_t i = 0; i < j; ++i) {
    t(i, i) = alpha[i];
    if (i + 1 < j) {
      t(i, i + 1) = beta[i];
      t(i + 1, i) = beta[i];
    }
  }
  return t;
}

struct LanczosMetrics {
  obs::MetricId calls = obs::counter_id("linalg.eigen_lanczos_calls");
  obs::MetricId passes = obs::counter_id("linalg.eigen_lanczos_passes");
  obs::MetricId iterations =
      obs::counter_id("linalg.eigen_lanczos_iterations");
  obs::MetricId eigen_calls = obs::counter_id("linalg.eigen_calls");
};

const LanczosMetrics& lanczos_metrics() {
  static const LanczosMetrics m;
  return m;
}

/// One deflated Lanczos pass: grow a Krylov basis orthogonal to `locked`
/// until the smallest Ritz pair's residual drops below `tol` (or the
/// complement is exhausted), and return that pair. Finding only the single
/// smallest pair per pass is what makes repeated eigenvalues come out with
/// full multiplicity: a Krylov space from one start vector can hold at
/// most one direction per distinct eigenvalue, so each extra copy (e.g.
/// every zero mode of a disconnected Laplacian) must come from its own
/// deflated pass.
std::pair<double, Vector> lanczos_smallest_deflated(
    const CsrMatrix& a, const std::vector<Vector>& locked, std::uint64_t salt,
    double anorm, double tol) {
  const std::size_t n = a.rows();
  const std::size_t max_dim = n - locked.size();
  const double breakdown_tol =
      64.0 * std::numeric_limits<double>::epsilon() * anorm;
  // Re-solving T every step would be O(j^3) each; every few steps loses at
  // most that many extra SpMVs, which is cheaper.
  constexpr std::size_t kCheckInterval = 4;

  std::vector<Vector> basis;
  Vector alpha;
  Vector beta;  // beta[i] couples basis i and i+1; 0 after a breakdown
  Vector v = fresh_start_vector(n, salt, locked, basis);
  Vector v_prev(n, 0.0);
  double beta_prev = 0.0;

  for (;;) {
    Vector w = a.multiply(v);
    const double al = dot(v, w);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] -= al * v[i] + beta_prev * v_prev[i];
    }
    basis.push_back(v);
    alpha.push_back(al);
    obs::add_counter(lanczos_metrics().iterations);
    reorthogonalize(w, locked, basis);
    const double b = norm(w);
    const std::size_t j = basis.size();

    const bool exhausted = j == max_dim;
    const bool broke_down = b <= breakdown_tol;
    if (exhausted || broke_down || j % kCheckInterval == 0) {
      const auto t_eig = eigen_symmetric_tridiagonal(dense_tridiagonal(
          alpha, Vector(beta.begin(), beta.end())));
      const double theta = t_eig.eigenvalues[0];
      // Residual bound ||A x - theta x|| = |beta_j * s_j| for the Ritz
      // vector x = B s; a breakdown or exhausted complement makes the
      // pair exact up to rounding.
      const double resid = std::abs(b * t_eig.eigenvectors(j - 1, 0));
      if (exhausted || broke_down || resid <= tol) {
        Vector x(n, 0.0);
        for (std::size_t k = 0; k < j; ++k) {
          const double s = t_eig.eigenvectors(k, 0);
          for (std::size_t i = 0; i < n; ++i) x[i] += s * basis[k][i];
        }
        // Deflation leakage guard: re-project off the locked space and
        // renormalize before the pair is locked itself.
        reorthogonalize(x, locked, {});
        const double nx = norm(x);
        if (nx > 0.0) {
          for (double& xi : x) xi /= nx;
        }
        return {theta, std::move(x)};
      }
    }

    beta.push_back(b);
    v_prev = std::move(v);
    v = std::move(w);
    for (double& vi : v) vi /= b;
    beta_prev = b;
  }
}

}  // namespace

SymmetricEigen eigen_symmetric_smallest_sparse(const CsrMatrix& a,
                                               std::size_t m) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument(
        "eigen_symmetric_smallest_sparse: matrix not square");
  }
  if (m == 0) {
    throw std::invalid_argument(
        "eigen_symmetric_smallest_sparse: m must be > 0");
  }
  const std::size_t n = a.rows();
  if (m > n) {
    throw std::invalid_argument(
        "eigen_symmetric_smallest_sparse: requested " + std::to_string(m) +
        " eigenpairs from a " + std::to_string(n) + "x" + std::to_string(n) +
        " matrix (m must be <= n)");
  }
  obs::TraceSpan span("linalg.eigen_lanczos");
  obs::add_counter(lanczos_metrics().calls);
  obs::add_counter(lanczos_metrics().eigen_calls);

  SymmetricEigen out;
  if (n <= 1) {
    double a00 = 0.0;
    for (std::size_t p = a.row_ptr()[0]; n == 1 && p < a.row_ptr()[1]; ++p) {
      a00 += a.values()[p];
    }
    out.eigenvalues = n == 1 ? Vector{a00} : Vector{};
    out.eigenvectors = Matrix::identity(n);
    return out;
  }

  // Gershgorin-style infinity norm bounds |lambda| and scales every
  // tolerance; the residual target is far below the 1e-8 agreement the
  // dense cross-checks ask for.
  double anorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p) {
      row_sum += std::abs(a.values()[p]);
    }
    anorm = std::max(anorm, row_sum);
  }
  anorm = std::max(anorm, 1e-300);
  const double tol = 1e-10 * anorm;

  std::vector<Vector> locked;
  Vector eigenvalues;
  locked.reserve(m);
  eigenvalues.reserve(m);
  while (locked.size() < m) {
    obs::add_counter(lanczos_metrics().passes);
    auto [theta, x] = lanczos_smallest_deflated(
        a, locked, static_cast<std::uint64_t>(locked.size()), anorm, tol);
    eigenvalues.push_back(theta);
    locked.push_back(std::move(x));
  }

  out.eigenvalues = std::move(eigenvalues);
  out.eigenvectors = Matrix(n, m);
  for (std::size_t j = 0; j < m; ++j) {
    out.eigenvectors.set_col(j, locked[j]);
  }
  detail::pin_column_signs(out.eigenvectors);
  return out;
}

}  // namespace auditherm::linalg
