#pragma once

/// \file similarity.hpp
/// Similarity graphs over sensors (Section V.A).
///
/// Each sensor is a vertex; edge weights encode similarity of the
/// temperature traces. The paper compares two metrics: a Gaussian kernel
/// of the Euclidean distance between traces, and the Pearson correlation.

#include <vector>

#include "auditherm/linalg/matrix.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::clustering {

/// Which similarity metric builds the edge weights.
enum class SimilarityMetric {
  kEuclidean,    ///< w_ij = exp(-d_ij^2 / (2 sigma^2)), d = RMS trace distance
  kCorrelation,  ///< w_ij = max(0, corr_ij)
};

/// How the dense weight matrix is sparsified into the graph.
enum class GraphSparsification {
  /// Epsilon graph: drop edges below an absolute/quantile weight cutoff,
  /// with a per-vertex kNN floor so nothing disconnects. The paper's
  /// construction; default.
  kEpsilon,
  /// k-NN graph: keep the symmetrized union of each vertex's `knn_k`
  /// strongest edges (ties broken by lower neighbor index) and drop the
  /// rest. Edge count is O(n k), which is what keeps campus-scale
  /// Laplacians sparse enough for the CSR + Lanczos path.
  kKnn,
};

/// Graph construction options.
struct SimilarityOptions {
  SimilarityMetric metric = SimilarityMetric::kCorrelation;
  /// Kernel bandwidth for the Euclidean metric; <= 0 selects the median
  /// pairwise distance (self-tuning heuristic).
  double sigma = 0.0;
  /// Which sparsifier shapes the graph; kEpsilon keeps the paper's
  /// historical (bitwise-pinned) construction.
  GraphSparsification sparsification = GraphSparsification::kEpsilon;
  /// Edges with weight below this are removed (epsilon-graph sparsifier,
  /// absolute weight units).
  double threshold = 0.0;
  /// Quantile-based epsilon-graph: drop edges below this quantile of all
  /// edge weights (0 disables). The paper builds its similarity graph
  /// this way ("there is an edge ... if the similarity between two
  /// vertices is higher than a given threshold"); without sparsification
  /// a room full of strongly co-moving sensors yields a near-complete
  /// graph whose cuts are dominated by single low-degree vertices.
  double threshold_quantile = 0.6;
  /// Regardless of thresholds, keep each vertex's strongest `knn_floor`
  /// edges so no sensor is disconnected from the graph (epsilon mode).
  std::size_t knn_floor = 3;
  /// Neighbors kept per vertex in kKnn mode (before symmetrization).
  std::size_t knn_k = 8;
};

/// Weighted undirected similarity graph over sensor channels.
struct SimilarityGraph {
  std::vector<timeseries::ChannelId> channels;
  linalg::Matrix weights;  ///< symmetric, zero diagonal, entries in [0, 1]
  double sigma_used = 0.0; ///< resolved bandwidth (Euclidean metric only)
  // Connectivity diagnostics (filled for every sparsification mode).
  std::size_t edge_count = 0;       ///< undirected edges with weight > 0
  std::size_t component_count = 0;  ///< connected components (weight > 0)
};

/// ADL hook for the stage cache's byte accounting (core/stage_cache.hpp).
[[nodiscard]] inline std::size_t cache_footprint(
    const SimilarityGraph& g) noexcept {
  return sizeof(SimilarityGraph) +
         g.channels.capacity() * sizeof(timeseries::ChannelId) +
         g.weights.data().capacity() * sizeof(double);
}

/// Build the similarity graph for `channels` from their traces.
///
/// Distances/correlations use pairwise-complete samples (gaps skipped).
/// Throws std::invalid_argument when fewer than 2 channels are given or a
/// channel is missing from the trace, std::runtime_error when some pair
/// shares no valid samples (no similarity is defined).
[[nodiscard]] SimilarityGraph build_similarity_graph(
    const timeseries::TraceView& trace,
    const std::vector<timeseries::ChannelId>& channels,
    const SimilarityOptions& options = {});

}  // namespace auditherm::clustering
