
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selection/evaluation.cpp" "src/selection/CMakeFiles/auditherm_selection.dir/evaluation.cpp.o" "gcc" "src/selection/CMakeFiles/auditherm_selection.dir/evaluation.cpp.o.d"
  "/root/repo/src/selection/gp_placement.cpp" "src/selection/CMakeFiles/auditherm_selection.dir/gp_placement.cpp.o" "gcc" "src/selection/CMakeFiles/auditherm_selection.dir/gp_placement.cpp.o.d"
  "/root/repo/src/selection/strategies.cpp" "src/selection/CMakeFiles/auditherm_selection.dir/strategies.cpp.o" "gcc" "src/selection/CMakeFiles/auditherm_selection.dir/strategies.cpp.o.d"
  "/root/repo/src/selection/variance_placement.cpp" "src/selection/CMakeFiles/auditherm_selection.dir/variance_placement.cpp.o" "gcc" "src/selection/CMakeFiles/auditherm_selection.dir/variance_placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/auditherm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/auditherm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
