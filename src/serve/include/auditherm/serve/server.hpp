#pragma once

/// \file server.hpp
/// Minimal HTTP/1.1 front-end for the analysis service.
///
/// Endpoints:
///   POST /analyze   body: JSON AnalyzeRequest -> 200 text/plain report
///                   (byte-identical to `auditherm analyze` stdout)
///   POST /simulate  body: one scenario object or a fleet envelope (see
///                   scenario_codec.hpp) -> 200 application/json, the
///                   fleet manifest; with "out_dir" the traces land on
///                   the server's filesystem (it is a loopback-only
///                   local daemon, so the client and server share a disk)
///   GET  /metrics   -> 200 application/json, the server recorder's
///                   obs::to_json (schema "auditherm.metrics" v1)
///   GET  /healthz   -> 200 "ok\n"
///   POST /shutdown  -> 200, then the accept loop drains and exits
///
/// Transport model: one acceptor (the thread calling run()) and a fixed
/// worker pool; every connection carries one request and is closed after
/// the response (Connection: close) — the protocol stays stateless so a
/// load generator can hammer it with plain sockets. Concurrency of
/// *analysis* comes from the worker pool; per-request determinism comes
/// from the service (request-scoped RunOptions over a shared StageCache).
///
/// The server binds loopback only: it is an analysis daemon for local
/// tooling and CI, not an internet-facing endpoint.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "auditherm/obs/trace_span.hpp"
#include "auditherm/serve/service.hpp"

namespace auditherm::serve {

struct ServerConfig {
  std::uint16_t port = 0;   ///< 0 = ephemeral (read back via port())
  std::size_t workers = 2;  ///< request worker threads
};

/// One parsed HTTP request (internal, exposed for tests).
struct HttpRequest {
  std::string method;
  std::string path;
  std::string body;
};

/// Parse "METHOD PATH HTTP/1.x\r\nheaders\r\n\r\nbody" from `raw`.
/// Returns false on malformed input. Exposed for unit tests; the server
/// reads from the socket incrementally and calls this on the buffer.
[[nodiscard]] bool parse_http_request(const std::string& raw,
                                      HttpRequest& out);

class Server {
 public:
  /// `service` and `recorder` must outlive the server. `recorder` backs
  /// GET /metrics and may be null (then /metrics serves an empty
  /// recorder's JSON).
  Server(ServerConfig config, AnalysisService& service,
         const obs::Recorder* recorder);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  /// Bind and listen on 127.0.0.1; throws std::runtime_error on failure.
  void start();

  /// Port actually bound (resolves an ephemeral request). Valid after
  /// start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Accept and serve until request_stop(); joins the workers before
  /// returning. Call start() first.
  void run();

  /// Ask the accept loop to wind down. Only stores an atomic flag, so it
  /// is safe from signal handlers and from request workers (POST
  /// /shutdown).
  void request_stop() noexcept { stop_.store(true, std::memory_order_release); }

  [[nodiscard]] bool stopping() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

 private:
  void worker_loop();
  void handle_connection(int fd);
  [[nodiscard]] std::string respond(const HttpRequest& request);

  ServerConfig config_;
  AnalysisService& service_;
  const obs::Recorder* recorder_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted connections awaiting a worker
  std::vector<std::thread> workers_;
};

}  // namespace auditherm::serve
