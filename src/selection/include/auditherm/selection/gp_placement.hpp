#pragma once

/// \file gp_placement.hpp
/// Near-optimal sensor placement by greedy mutual-information maximization
/// under a Gaussian-process model (Krause, Singh & Guestrin, JMLR 2008) —
/// the statistical baseline the paper compares against in Table II.
///
/// At each step the algorithm adds the sensor y maximizing
///   sigma^2(y | A) / sigma^2(y | V \ A \ {y}),
/// i.e., most uncertain given the picks so far and most informative about
/// the rest. The GP covariance is the empirical covariance of the
/// training traces.

#include <cstddef>
#include <vector>

#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::selection {

/// GP placement options.
struct GpPlacementOptions {
  /// Jitter added to the covariance diagonal; keeps conditional variances
  /// well defined for near-duplicate sensors.
  double jitter = 1e-3;
};

/// Choose `count` sensors from `candidates` by greedy MI maximization.
/// Throws std::invalid_argument when count == 0 or count > #candidates,
/// std::domain_error when the (jittered) covariance is not positive
/// definite.
[[nodiscard]] std::vector<timeseries::ChannelId> gp_mutual_information_selection(
    const timeseries::TraceView& training,
    const std::vector<timeseries::ChannelId>& candidates, std::size_t count,
    const GpPlacementOptions& options = {});

}  // namespace auditherm::selection
