#include "auditherm/sysid/diagnostics.hpp"

#include <cmath>
#include <stdexcept>

#include "auditherm/timeseries/segmentation.hpp"

namespace auditherm::sysid {

namespace {

std::size_t history_rows(ModelOrder order) {
  return order == ModelOrder::kSecond ? 2 : 1;
}

}  // namespace

FitDiagnostics diagnose_fit(const ThermalModel& model,
                            const timeseries::TraceView& trace,
                            const std::vector<bool>& row_filter) {
  const std::size_t p = model.state_count();
  const std::size_t q = model.input_count();
  const std::size_t h = history_rows(model.order());

  std::vector<timeseries::ChannelId> required = model.state_channels();
  required.insert(required.end(), model.input_channels().begin(),
                  model.input_channels().end());
  auto mask = timeseries::rows_with_all_valid(trace, required);
  if (!row_filter.empty()) {
    if (row_filter.size() != trace.size()) {
      throw std::invalid_argument("diagnose_fit: row_filter size mismatch");
    }
    for (std::size_t k = 0; k < mask.size(); ++k) {
      mask[k] = mask[k] && row_filter[k];
    }
  }
  const auto segments = timeseries::find_segments(mask, h + 1);

  std::vector<std::size_t> state_cols(p);
  for (std::size_t i = 0; i < p; ++i) {
    state_cols[i] = trace.require_channel(model.state_channels()[i]);
  }
  std::vector<std::size_t> input_cols(q);
  for (std::size_t i = 0; i < q; ++i) {
    input_cols[i] = trace.require_channel(model.input_channels()[i]);
  }

  linalg::Vector sse(p, 0.0);      // model residual sum of squares
  linalg::Vector sst(p, 0.0);      // persistence residual sum of squares
  std::size_t transitions = 0;

  linalg::Vector temps(p), delta(p), inputs(q);
  for (const auto& seg : segments) {
    for (std::size_t k = seg.first + h - 1; k + 1 < seg.last; ++k) {
      for (std::size_t i = 0; i < p; ++i) {
        temps[i] = trace.value(k, state_cols[i]);
        delta[i] = h == 2 ? temps[i] - trace.value(k - 1, state_cols[i]) : 0.0;
      }
      for (std::size_t i = 0; i < q; ++i) {
        inputs[i] = trace.value(k, input_cols[i]);
      }
      const auto predicted = model.predict_next(temps, delta, inputs);
      for (std::size_t i = 0; i < p; ++i) {
        const double actual = trace.value(k + 1, state_cols[i]);
        const double model_err = predicted[i] - actual;
        const double persist_err = temps[i] - actual;
        sse[i] += model_err * model_err;
        sst[i] += persist_err * persist_err;
      }
      ++transitions;
    }
  }
  if (transitions == 0) {
    throw std::runtime_error("diagnose_fit: no usable transitions");
  }

  FitDiagnostics diag;
  diag.channels = model.state_channels();
  diag.transitions = transitions;
  diag.parameters = (model.order() == ModelOrder::kSecond ? 2 * p : p) + q;
  diag.residual_std.resize(p);
  diag.r_squared_vs_persistence.resize(p);
  const double n = static_cast<double>(transitions);
  double log_likelihood = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    const double variance = std::max(sse[i] / n, 1e-12);
    diag.residual_std[i] = std::sqrt(variance);
    diag.r_squared_vs_persistence[i] =
        sst[i] > 0.0 ? 1.0 - sse[i] / sst[i] : 0.0;
    // Gaussian log-likelihood of the per-channel residuals.
    log_likelihood += -0.5 * n * (std::log(2.0 * M_PI * variance) + 1.0);
  }
  const double total_params = static_cast<double>(diag.parameters * p);
  diag.aic = 2.0 * total_params - 2.0 * log_likelihood;
  diag.bic = std::log(n) * total_params - 2.0 * log_likelihood;
  return diag;
}

OrderComparison compare_orders(
    const std::vector<timeseries::ChannelId>& state_ids,
    const std::vector<timeseries::ChannelId>& input_ids,
    const timeseries::TraceView& trace, const std::vector<bool>& row_filter,
    const EstimationOptions& options) {
  // Score both orders on second-order-usable transitions so the
  // information criteria see the same data.
  std::vector<timeseries::ChannelId> required = state_ids;
  required.insert(required.end(), input_ids.begin(), input_ids.end());
  auto mask = timeseries::rows_with_all_valid(trace, required);
  if (!row_filter.empty()) {
    for (std::size_t k = 0; k < mask.size(); ++k) {
      mask[k] = mask[k] && row_filter[k];
    }
  }
  // Keep only rows belonging to runs long enough for second-order use.
  const auto segments = timeseries::find_segments(mask, 3);
  std::vector<bool> usable(trace.size(), false);
  for (const auto& seg : segments) {
    for (std::size_t k = seg.first; k < seg.last; ++k) usable[k] = true;
  }

  // For an apples-to-apples comparison, the first-order model must fit
  // and score the exact transitions the second-order model can use; drop
  // each segment's leading row from the first-order mask (the second-order
  // machinery consumes it as history).
  std::vector<bool> trimmed(trace.size(), false);
  for (const auto& seg : segments) {
    for (std::size_t k = seg.first + 1; k < seg.last; ++k) trimmed[k] = true;
  }

  OrderComparison cmp;
  const ModelEstimator first(state_ids, input_ids, ModelOrder::kFirst,
                             options);
  const ModelEstimator second(state_ids, input_ids, ModelOrder::kSecond,
                              options);
  const auto m1 = first.fit(trace, trimmed);
  const auto m2 = second.fit(trace, usable);
  cmp.first = diagnose_fit(m1, trace, trimmed);
  cmp.second = diagnose_fit(m2, trace, usable);
  return cmp;
}

}  // namespace auditherm::sysid
