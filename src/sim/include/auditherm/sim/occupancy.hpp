#pragma once

/// \file occupancy.hpp
/// Stochastic event calendar for the auditorium.
///
/// Stands in for the paper's webcam-derived occupant counts: the room is a
/// multifunction space hosting classes, seminars, group meetings and
/// occasional evening events, up to ~90 occupants. Generates a seeded
/// calendar of events and exposes the occupant-count o(t) and lighting
/// state l(t) inputs of the thermal models.

#include <cstdint>
#include <vector>

#include "auditherm/timeseries/time_grid.hpp"

namespace auditherm::sim {

/// One scheduled event with attendance ramping in/out at the boundaries.
struct Event {
  timeseries::Minutes start = 0;  ///< absolute minutes
  timeseries::Minutes end = 0;
  int attendance = 0;
};

/// Calendar generator parameters.
struct OccupancyConfig {
  int capacity = 90;
  /// Day-of-week of dataset day 0; Jan 31, 2013 was a Thursday (=4 with
  /// Sunday=0).
  int first_day_of_week = 4;
  double class_probability = 0.55;   ///< per weekday class slot
  double evening_probability = 0.15; ///< per weekday evening event
  double weekend_probability = 0.12; ///< per weekend meeting slot
  timeseries::Minutes ramp_minutes = 10;  ///< entrance/exit ramp
  std::uint64_t seed = 4242;
};

/// Seeded calendar of auditorium events.
class OccupancySchedule {
 public:
  /// Generate `days` days of events. Throws std::invalid_argument on
  /// days == 0, capacity <= 0, or probabilities outside [0, 1].
  OccupancySchedule(const OccupancyConfig& config, std::size_t days);

  [[nodiscard]] const OccupancyConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }

  /// Occupants present at absolute minute t (with entrance/exit ramps;
  /// events never overlap so the count never exceeds capacity).
  [[nodiscard]] double occupants_at(timeseries::Minutes t) const noexcept;

  /// Lighting state at t: 1 when any event is active (with a margin for
  /// setup/teardown), else 0.
  [[nodiscard]] double lighting_at(timeseries::Minutes t) const noexcept;

  /// Day-of-week (Sunday = 0) of a dataset day index.
  [[nodiscard]] int day_of_week(std::int64_t day) const noexcept;

 private:
  OccupancyConfig config_;
  std::vector<Event> events_;  ///< sorted by start, non-overlapping
};

}  // namespace auditherm::sim
