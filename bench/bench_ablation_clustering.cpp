// Ablation: spectral clustering vs traditional baselines.
//
// The paper's Section V claims spectral clustering "can derive higher
// quality results" than traditional algorithms such as k-means or single
// linkage. This bench quantifies that on the standard dataset: each
// method produces k=2 sensor clusters; quality is the SMS selection error
// those clusters enable, plus agreement with the physical front/back
// partition.

#include <set>

#include "bench_common.hpp"

using namespace auditherm;

namespace {

/// Agreement (out of 25) with the front/back ground-truth partition,
/// under the better of the two label polarities.
std::size_t front_back_agreement(const clustering::ClusteringResult& result) {
  const std::set<int> front{3, 6, 7, 8, 13, 14, 17, 23, 28, 33, 38};
  if (result.cluster_count != 2) return 0;
  std::size_t agree = 0;
  const auto anchor = result.cluster_of(3);
  for (std::size_t i = 0; i < result.channels.size(); ++i) {
    const bool expect_front = front.count(result.channels[i]) > 0;
    const bool is_front = result.labels[i] == anchor;
    agree += (expect_front == is_front) ? 1 : 0;
  }
  return std::max(agree, result.channels.size() - agree);
}

}  // namespace

int main() {
  const bench::ObsSession obs_session;
  bench::print_header(
      "Ablation: spectral vs k-means vs single-linkage clustering (k=2)");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto training = dataset.trace.filter_rows(
      core::and_masks(split.train_mask, mode_mask));
  const auto validation = dataset.trace.filter_rows(
      core::and_masks(split.validation_mask, mode_mask));

  const auto graph = clustering::build_similarity_graph(
      training, dataset.wireless_ids(), {});

  clustering::SpectralOptions spec;
  spec.cluster_count = 2;
  const auto spectral = clustering::spectral_cluster(graph, spec);
  const auto kmeans = clustering::kmeans_trace_cluster(
      training, dataset.wireless_ids(), 2);
  const auto linkage = clustering::single_linkage_cluster(graph, 2);

  std::printf("%-18s %-14s %-22s %-14s\n", "method", "front/back",
              "SMS p99 error (degC)", "cluster sizes");
  double spectral_err = 0.0, worst_err = 0.0;
  for (const auto& [name, result] :
       {std::pair<const char*, const clustering::ClusteringResult&>{
            "spectral", spectral},
        {"k-means", kmeans},
        {"single-linkage", linkage}}) {
    const auto clusters = result.clusters();
    double err = -1.0;
    bool has_empty = false;
    for (const auto& c : clusters) has_empty = has_empty || c.empty();
    if (!has_empty && clusters.size() >= 2) {
      const auto sel = selection::stratified_near_mean(training, clusters);
      err = selection::evaluate_cluster_mean_prediction(validation, clusters,
                                                        sel)
                .percentile(99.0);
    }
    std::string sizes;
    for (const auto& c : clusters) {
      sizes += std::to_string(c.size()) + " ";
    }
    std::printf("%-18s %2zu/25          %-22.3f %-14s\n", name,
                front_back_agreement(result), err, sizes.c_str());
    if (std::string(name) == "spectral") spectral_err = err;
    worst_err = std::max(worst_err, err);
  }

  std::printf("\nshape checks: spectral beats single-linkage on the "
              "physical partition: %s | spectral SMS error <= worst "
              "baseline: %s\n",
              front_back_agreement(spectral) >
                      front_back_agreement(linkage)
                  ? "yes"
                  : "NO",
              spectral_err <= worst_err + 1e-9 ? "yes" : "NO");
  std::printf("reading: single-linkage exhibits its classic chaining "
              "failure (one giant cluster + a singleton). Direct k-means "
              "does well here because our zones differ in mean level — on "
              "correlation STRUCTURE alone (levels removed) it has nothing "
              "to work with, which is where the paper's spectral choice "
              "earns its keep.\n");
  return 0;
}
