#pragma once

/// \file decompositions.hpp
/// Matrix factorizations: Householder QR, Cholesky, partial-pivot LU, and a
/// Jacobi eigensolver for symmetric matrices.
///
/// These are the direct solvers behind the paper's convex least-squares
/// identification problem (eq. 4) and the spectral-clustering Laplacian
/// eigendecomposition (Section V).

#include <cstddef>
#include <cstdint>

#include "auditherm/linalg/matrix.hpp"

namespace auditherm::linalg {

/// Householder QR factorization A = Q R of an m x n matrix with m >= n.
///
/// Stores the Householder reflectors compactly; Q is never formed unless
/// requested. The main consumer is least-squares solving.
class QrDecomposition {
 public:
  /// Factorize `a` (m x n, m >= n). Throws std::invalid_argument otherwise.
  explicit QrDecomposition(const Matrix& a);

  /// Minimum-residual solution x of A x = b (b has m entries).
  /// Throws std::domain_error if A is numerically rank-deficient.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Column-wise least-squares solve for multiple right-hand sides.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// The n x n upper-triangular factor R.
  [[nodiscard]] Matrix r() const;

  /// The m x n thin orthonormal factor Q.
  [[nodiscard]] Matrix thin_q() const;

  /// True when some |R_ii| is below `tol * max_j |R_jj|`.
  [[nodiscard]] bool rank_deficient(double tol = 1e-12) const noexcept;

 private:
  void apply_reflectors(Vector& b) const;  // b := Q^T b (length m)

  std::size_t m_ = 0;
  std::size_t n_ = 0;
  Matrix qr_;     // packed reflectors below diagonal, R on/above diagonal
  Vector rdiag_;  // diagonal of R
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
class CholeskyDecomposition {
 public:
  /// Factorize `a`; throws std::domain_error when `a` is not (numerically)
  /// positive definite, std::invalid_argument when not square.
  explicit CholeskyDecomposition(const Matrix& a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve A X = B column-wise.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Lower-triangular factor L.
  [[nodiscard]] const Matrix& l() const noexcept { return l_; }

  /// log(det A) via 2 * sum(log L_ii); useful for GP marginal likelihoods.
  [[nodiscard]] double log_determinant() const noexcept;

 private:
  Matrix l_;
};

/// Partial-pivoting LU factorization P A = L U for square systems.
class LuDecomposition {
 public:
  /// Factorize square `a`; throws std::invalid_argument when not square,
  /// std::domain_error when singular to working precision.
  explicit LuDecomposition(const Matrix& a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve A X = B column-wise.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Determinant of A (sign-corrected for row swaps).
  [[nodiscard]] double determinant() const noexcept;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int pivot_sign_ = 1;
};

/// Eigendecomposition of a symmetric matrix.
///
/// Every solver in this header returns eigenpairs in this shape, with the
/// same normalization: eigenvalues ascending, eigenvectors orthonormal,
/// and each eigenvector's sign pinned so its largest-|component| entry
/// (lowest index on ties) is positive. The sign pin is what makes cluster
/// assignments — and any other sign-sensitive consumer — stable across
/// solver choices.
struct SymmetricEigen {
  Vector eigenvalues;   ///< ascending order
  Matrix eigenvectors;  ///< column j pairs with eigenvalues[j]; orthonormal
};

/// Which symmetric eigensolver to run.
///
/// kJacobi is the original cyclic-Jacobi solver: robust, simple, and the
/// cross-check reference, but it always computes the full spectrum with
/// O(n^3) work per sweep. kTridiagonal is the dense fast path (Householder
/// tridiagonalization + implicit-shift QL, with a bisection +
/// inverse-iteration partial mode). kLanczos is the sparse partial path
/// (see sparse.hpp): the Laplacian is compressed to CSR and only the
/// requested smallest pairs come out of a Lanczos iteration — the right
/// tool once the similarity graph is k-NN sparse and dense O(n^3)
/// tridiagonalization dominates. kAuto picks Jacobi below
/// kEigenAutoThreshold rows — where Jacobi's constant wins and bitwise
/// compatibility with historical results matters — the tridiagonal path
/// up to kEigenSparseThreshold, and Lanczos at or above it.
enum class EigenMethod {
  kJacobi,       ///< full-spectrum cyclic Jacobi (reference)
  kTridiagonal,  ///< Householder + QL, partial spectrum when asked
  kAuto,         ///< Jacobi / tridiagonal / Lanczos by matrix size
  kLanczos,      ///< sparse CSR Lanczos, partial spectrum only
};

/// Matrix size at which EigenMethod::kAuto switches from Jacobi to the
/// tridiagonal path. The paper's 25-27 sensor Laplacians stay on Jacobi
/// (bitwise-identical to historical results); simulated networks of 64+
/// sensors take the asymptotically cheaper solver.
inline constexpr std::size_t kEigenAutoThreshold = 64;

/// Matrix size at which EigenMethod::kAuto switches from the dense
/// tridiagonal path to sparse Lanczos. Below it the dense partial solver's
/// O(n^3/3) tridiagonalization is still cheap; above it the Laplacian of a
/// sparsified similarity graph is mostly zeros and the O(iters x nnz)
/// Lanczos iteration wins.
inline constexpr std::size_t kEigenSparseThreshold = 512;

/// Resolve kAuto against a concrete matrix size; explicit methods pass
/// through unchanged.
[[nodiscard]] constexpr EigenMethod resolve_eigen_method(
    EigenMethod method, std::size_t n) noexcept {
  if (method != EigenMethod::kAuto) return method;
  if (n < kEigenAutoThreshold) return EigenMethod::kJacobi;
  return n < kEigenSparseThreshold ? EigenMethod::kTridiagonal
                                   : EigenMethod::kLanczos;
}

/// Compute all eigenpairs of symmetric `a` by the cyclic Jacobi method.
///
/// `a` is symmetrized as (A + A^T)/2 first, so tiny asymmetries from
/// accumulated roundoff are tolerated. Throws std::invalid_argument when
/// `a` is not square. Performs up to `max_sweeps` rotation sweeps and
/// throws std::domain_error when the off-diagonal norm still exceeds the
/// tolerance afterwards (the default budget is generous).
[[nodiscard]] SymmetricEigen eigen_symmetric(const Matrix& a,
                                             std::size_t max_sweeps = 100);

/// Compute all eigenpairs of symmetric `a` via Householder
/// tridiagonalization followed by the implicit-shift QL iteration.
///
/// Same contract and output conventions as eigen_symmetric() but roughly
/// an order of magnitude faster at a few hundred rows. Throws
/// std::invalid_argument when `a` is not square, std::domain_error when QL
/// fails to converge (pathological input).
[[nodiscard]] SymmetricEigen eigen_symmetric_tridiagonal(const Matrix& a);

/// Compute only the `m` smallest eigenpairs of symmetric `a`.
///
/// Pipeline: Householder tridiagonalization, bisection on the Sturm
/// sequence for the m smallest eigenvalues, inverse iteration for the
/// tridiagonal eigenvectors (with within-cluster reorthogonalization for
/// repeated eigenvalues, e.g. a disconnected Laplacian's zero modes), and
/// a back-transform through the stored reflectors. O(n^2 (n/3 + m)) work
/// instead of Jacobi's O(n^3) per sweep — this is the solver behind
/// spectral clustering at scale, which only ever needs the k+1 smallest
/// pairs. Throws std::invalid_argument when `a` is not square, m == 0, or
/// m > n (a partial-spectrum request must fit the matrix; silently
/// clamping hid caller sizing bugs).
[[nodiscard]] SymmetricEigen eigen_symmetric_smallest(const Matrix& a,
                                                      std::size_t m);

namespace detail {

/// splitmix64-style hash to [0, 1): the deterministic start vectors shared
/// by inverse iteration and the sparse Lanczos solver — no global RNG
/// state, so every run (and every thread count) sees the same bits.
[[nodiscard]] double hash_unit(std::uint64_t x) noexcept;

/// Pin each eigenvector column's sign so the largest-|component| entry
/// (lowest index on ties) ends up positive — the normalization every
/// solver in this header and in sparse.hpp applies before returning.
void pin_column_signs(Matrix& eigenvectors);

}  // namespace detail

}  // namespace auditherm::linalg
