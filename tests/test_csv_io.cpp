// Tests for CSV round-tripping of gapped traces.

#include "auditherm/timeseries/csv_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ts = auditherm::timeseries;
using ts::MultiTrace;
using ts::TimeGrid;

namespace {

MultiTrace make_trace() {
  MultiTrace trace(TimeGrid(30, 5, 3), {1, 42});
  trace.set(0, 0, 20.5);
  trace.set(0, 1, 21.0);
  trace.set(2, 0, 19.75);  // row 1 fully missing, row 2 channel 42 missing
  return trace;
}

/// Bitwise round-trip check: grid, channels, validity pattern, and exact
/// double equality (max_digits10 guarantees the decimal form recovers the
/// same bits).
void expect_exact_round_trip(const MultiTrace& original,
                             const MultiTrace& loaded) {
  ASSERT_EQ(loaded.grid(), original.grid());
  ASSERT_EQ(loaded.channels(), original.channels());
  for (std::size_t k = 0; k < original.size(); ++k) {
    for (std::size_t c = 0; c < original.channel_count(); ++c) {
      ASSERT_EQ(loaded.valid(k, c), original.valid(k, c))
          << "validity mismatch at row " << k << ", channel " << c;
      if (original.valid(k, c)) {
        ASSERT_EQ(loaded.value(k, c), original.value(k, c))
            << "value mismatch at row " << k << ", channel " << c;
      }
    }
  }
}

}  // namespace

TEST(CsvIo, RoundTripPreservesEverything) {
  const auto original = make_trace();
  std::stringstream ss;
  ts::write_csv(ss, original);
  const auto loaded = ts::read_csv(ss);
  expect_exact_round_trip(original, loaded);
}

TEST(CsvIo, HeaderFormat) {
  std::stringstream ss;
  ts::write_csv(ss, make_trace());
  std::string step_comment, header;
  std::getline(ss, step_comment);
  std::getline(ss, header);
  EXPECT_EQ(step_comment, "# step_minutes=5");
  EXPECT_EQ(header, "time_minutes,ch1,ch42");
}

TEST(CsvIo, FullPrecisionSurvivesRoundTrip) {
  // Values chosen to die under the old precision(10) truncation: 17
  // significant digits, irrationals, extreme magnitudes, negative zero.
  MultiTrace trace(TimeGrid(0, 30, 6), {7});
  trace.set(0, 0, 0.1 + 0.2);                   // 0.30000000000000004
  trace.set(1, 0, 3.141592653589793);           // pi to the last bit
  trace.set(2, 0, 1.0 + 1e-15);
  trace.set(3, 0, std::numeric_limits<double>::min());  // smallest normal
  trace.set(4, 0, -1.7976931348623157e308);     // -DBL_MAX
  trace.set(5, 0, 123456.78901234567);
  std::stringstream ss;
  ts::write_csv(ss, trace);
  expect_exact_round_trip(trace, ts::read_csv(ss));
}

TEST(CsvIo, RandomTracePropertyRoundTrip) {
  // Property test: any trace — random grids (including a single row),
  // random channel ids, NaN gaps, full-range values — round-trips
  // bit-for-bit through write_csv / read_csv.
  std::mt19937_64 rng(20260806);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t start =
        static_cast<std::int64_t>(rng() % 100000) - 50000;
    const std::int64_t step = 1 + static_cast<std::int64_t>(rng() % 120);
    const std::size_t rows = 1 + rng() % 40;  // single-row traces included
    const std::size_t nch = 1 + rng() % 6;
    std::vector<int> channels;
    int next_id = 1 + static_cast<int>(rng() % 5);
    for (std::size_t c = 0; c < nch; ++c) {
      channels.push_back(next_id);
      next_id += 1 + static_cast<int>(rng() % 40);
    }
    MultiTrace trace(TimeGrid(start, step, rows), channels);
    for (std::size_t k = 0; k < rows; ++k) {
      for (std::size_t c = 0; c < nch; ++c) {
        if (unit(rng) < 0.25) continue;  // leave a NaN gap
        // Full-entropy doubles over a wide range of magnitudes.
        const double magnitude = std::pow(10.0, unit(rng) * 20.0 - 10.0);
        trace.set(k, c, (unit(rng) - 0.5) * magnitude);
      }
    }
    std::stringstream ss;
    ts::write_csv(ss, trace);
    SCOPED_TRACE("trial " + std::to_string(trial));
    expect_exact_round_trip(trace, ts::read_csv(ss));
  }
}

TEST(CsvIo, SingleRowKeepsWrittenStep) {
  // Regression: a single-row trace used to read back with step 1 no
  // matter what was written; the step comment now persists the grid.
  MultiTrace trace(TimeGrid(100, 30, 1), {1});
  trace.set(0, 0, 20.0);
  std::stringstream ss;
  ts::write_csv(ss, trace);
  const auto loaded = ts::read_csv(ss);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.grid().start(), 100);
  EXPECT_EQ(loaded.grid().step(), 30);
}

TEST(CsvIo, SingleRowWithoutCommentGetsUnitStep) {
  // Backward compatibility: files from the old writer have no comment.
  std::stringstream ss("time_minutes,ch1\n100,20.0\n");
  const auto trace = ts::read_csv(ss);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.grid().start(), 100);
  EXPECT_EQ(trace.grid().step(), 1);
}

TEST(CsvIo, CrlfInputParses) {
  // CRLF line endings used to reach std::stod as "20.5\r" and throw a
  // bare std::invalid_argument.
  const auto original = make_trace();
  std::stringstream ss;
  ts::write_csv(ss, original);
  std::string crlf;
  for (char ch : ss.str()) {
    if (ch == '\n') crlf += '\r';
    crlf += ch;
  }
  std::stringstream crlf_ss(crlf);
  expect_exact_round_trip(original, ts::read_csv(crlf_ss));
}

TEST(CsvIo, StepCommentDisagreeingWithDataThrows) {
  std::stringstream ss("# step_minutes=10\ntime_minutes,ch1\n0,1.0\n5,2.0\n");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
}

TEST(CsvIo, NonPositiveStepCommentThrows) {
  std::stringstream ss("# step_minutes=0\ntime_minutes,ch1\n0,1.0\n");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
  std::stringstream ss2("# step_minutes=-5\ntime_minutes,ch1\n0,1.0\n");
  EXPECT_THROW((void)ts::read_csv(ss2), std::runtime_error);
}

TEST(CsvIo, UnknownCommentsAreIgnored) {
  std::stringstream ss(
      "# exported by auditherm\ntime_minutes,ch1\n# mid-file note\n0,1.0\n"
      "5,2.0\n");
  const auto trace = ts::read_csv(ss);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.grid().step(), 5);
}

TEST(CsvIo, BadValueReportsRowAndColumn) {
  std::stringstream ss("time_minutes,ch1,ch2\n0,1.0,2.0\n5,oops,2.5\n");
  try {
    (void)ts::read_csv(ss);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'oops'"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("column 2"), std::string::npos) << what;
  }
}

TEST(CsvIo, BadTimeReportsLine) {
  std::stringstream ss("time_minutes,ch1\nnoon,1.0\n");
  try {
    (void)ts::read_csv(ss);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'noon'"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
}

TEST(CsvIo, TrailingJunkInNumberThrows) {
  // std::stod would accept "1.5x" by parsing the prefix; full-cell
  // consumption is required.
  std::stringstream ss("time_minutes,ch1\n0,1.5x\n");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
}

TEST(CsvIo, OutOfRangeValueThrowsRuntimeError) {
  // 1e999 overflows double: std::out_of_range from stod, rewrapped.
  std::stringstream ss("time_minutes,ch1\n0,1e999\n");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
}

TEST(CsvIo, RejectsEmptyInput) {
  std::stringstream ss("");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
  // Comment-only input has no header either.
  std::stringstream ss2("# step_minutes=5\n");
  EXPECT_THROW((void)ts::read_csv(ss2), std::runtime_error);
}

TEST(CsvIo, RejectsBadHeader) {
  std::stringstream ss("time,ch1\n0,1\n");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
  std::stringstream ss2("time_minutes,foo\n0,1\n");
  EXPECT_THROW((void)ts::read_csv(ss2), std::runtime_error);
  std::stringstream ss3("time_minutes,ch1x\n0,1\n");
  EXPECT_THROW((void)ts::read_csv(ss3), std::runtime_error);
}

TEST(CsvIo, RejectsRaggedRow) {
  std::stringstream ss("time_minutes,ch1,ch2\n0,1.0\n");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
}

TEST(CsvIo, RejectsNonUniformStep) {
  std::stringstream ss("time_minutes,ch1\n0,1.0\n5,2.0\n12,3.0\n");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
}

TEST(CsvIo, RejectsNonIncreasingTime) {
  std::stringstream ss("time_minutes,ch1\n10,1.0\n10,2.0\n");
  EXPECT_THROW((void)ts::read_csv(ss), std::runtime_error);
}

TEST(CsvIo, FileRoundTrip) {
  const auto original = make_trace();
  const std::string path = ::testing::TempDir() + "/auditherm_trace.csv";
  ts::write_csv_file(path, original);
  const auto loaded = ts::read_csv_file(path);
  EXPECT_EQ(loaded.grid(), original.grid());
  EXPECT_NEAR(loaded.coverage(), original.coverage(), 1e-12);
}

TEST(CsvIo, MissingFileThrows) {
  EXPECT_THROW((void)ts::read_csv_file("/nonexistent/path.csv"),
               std::runtime_error);
  EXPECT_THROW(ts::write_csv_file("/nonexistent/dir/out.csv", make_trace()),
               std::runtime_error);
}
