#pragma once

/// \file spectral.hpp
/// Spectral clustering of sensors (Section V).
///
/// Pipeline: similarity graph -> unnormalized Laplacian L = D - W ->
/// eigendecomposition -> cluster count from the largest log-eigengap ->
/// k-means on the spectral embedding (rows of the first k eigenvectors).

#include <cstdint>
#include <vector>

#include "auditherm/clustering/kmeans.hpp"
#include "auditherm/clustering/similarity.hpp"
#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/linalg/matrix.hpp"
#include "auditherm/linalg/sparse.hpp"

namespace auditherm::clustering {

/// Which graph Laplacian drives the embedding.
///
/// The paper's text writes L = D - W (unnormalized); the tutorial it
/// builds on (von Luxburg 2007) recommends the normalized variant in
/// practice, and on densely connected sensor graphs the normalized cut is
/// what keeps single low-degree sensors from being split off as
/// singletons — so normalized is the default here.
enum class LaplacianKind {
  kUnnormalized,         ///< L = D - W (RatioCut relaxation)
  kSymmetricNormalized,  ///< L = I - D^{-1/2} W D^{-1/2} (NCut relaxation)
};

/// Unnormalized graph Laplacian L = D - W.
/// Throws std::invalid_argument when weights is not square.
[[nodiscard]] linalg::Matrix laplacian(const linalg::Matrix& weights);

/// Symmetric normalized Laplacian I - D^{-1/2} W D^{-1/2}; isolated
/// vertices get an identity row (eigenvalue 1).
/// Throws std::invalid_argument when weights is not square.
[[nodiscard]] linalg::Matrix normalized_laplacian(
    const linalg::Matrix& weights);

/// CSR Laplacian of `weights` built directly from the (sparsified) dense
/// weight matrix, entry-for-entry bitwise identical to compressing the
/// dense laplacian()/normalized_laplacian() output — the same sums in the
/// same order, just skipping stored zeros. This is the operator the
/// Lanczos path consumes. Throws std::invalid_argument when weights is
/// not square.
[[nodiscard]] linalg::CsrMatrix laplacian_csr(const linalg::Matrix& weights,
                                              LaplacianKind kind);

/// Eigenstructure of a Laplacian, with the paper's eigengap heuristic.
///
/// May hold the full spectrum (n pairs) or just the m smallest pairs from
/// the partial eigensolver; `eigenvectors` is then n x m with columns
/// pairing with `eigenvalues`. The eigengap heuristic only ever looks at
/// the small end of the spectrum, so it works unchanged on a partial
/// analysis as long as m > k_max.
struct SpectralAnalysis {
  linalg::Vector eigenvalues;  ///< ascending, >= 0 up to roundoff
  linalg::Matrix eigenvectors; ///< columns pair with eigenvalues

  /// Log-domain eigengaps: gap[i] = log lam_{i+1} - log lam_i (0-based,
  /// eigenvalues floored at a small epsilon to survive the zero mode).
  [[nodiscard]] linalg::Vector log_eigengaps() const;

  /// Cluster count chosen by the largest log-eigengap: k such that the
  /// gap between eigenvalue k-1 and k (0-based) is maximal, searched over
  /// k in [k_min, k_max]. The paper's Fig. 6 reads the same rule off its
  /// middle column ("the number of clusters is decided by the largest
  /// eigengap").
  [[nodiscard]] std::size_t eigengap_cluster_count(std::size_t k_min = 2,
                                                   std::size_t k_max = 8) const;
};

/// ADL hook for the stage cache's byte accounting (core/stage_cache.hpp).
[[nodiscard]] inline std::size_t cache_footprint(
    const SpectralAnalysis& s) noexcept {
  return sizeof(SpectralAnalysis) +
         s.eigenvalues.capacity() * sizeof(double) +
         s.eigenvectors.data().capacity() * sizeof(double);
}

/// Eigendecomposition of the (chosen) Laplacian of `weights`.
///
/// `method` selects the solver (resolved against the vertex count when
/// kAuto). `max_pairs` bounds the spectrum: 0 means the full spectrum;
/// a positive value below n computes only the `max_pairs` smallest
/// eigenpairs via the tridiagonal partial path — or, for kLanczos, via
/// the sparse CSR path that never forms the dense Laplacian. Jacobi is
/// the full-spectrum reference implementation and ignores `max_pairs`;
/// kLanczos without a usable `max_pairs` falls back to the dense
/// tridiagonal solver.
[[nodiscard]] SpectralAnalysis analyze_spectrum(
    const linalg::Matrix& weights,
    LaplacianKind kind = LaplacianKind::kSymmetricNormalized,
    linalg::EigenMethod method = linalg::EigenMethod::kAuto,
    std::size_t max_pairs = 0);

/// Final output of spectral clustering.
struct ClusteringResult {
  std::vector<timeseries::ChannelId> channels;
  std::vector<std::size_t> labels;  ///< cluster index per channel
  std::size_t cluster_count = 0;
  linalg::Vector eigenvalues;       ///< Laplacian spectrum (for Fig. 6)

  /// Channel ids grouped per cluster (cluster index = position).
  /// Throws std::out_of_range when a label is >= cluster_count (a
  /// malformed result) rather than writing out of bounds.
  [[nodiscard]] std::vector<std::vector<timeseries::ChannelId>> clusters()
      const;

  /// Cluster index of a channel; throws std::invalid_argument when absent.
  [[nodiscard]] std::size_t cluster_of(timeseries::ChannelId id) const;
};

/// ADL hook for the stage cache's byte accounting (core/stage_cache.hpp).
[[nodiscard]] inline std::size_t cache_footprint(
    const ClusteringResult& c) noexcept {
  return sizeof(ClusteringResult) +
         c.channels.capacity() * sizeof(timeseries::ChannelId) +
         c.labels.capacity() * sizeof(std::size_t) +
         c.eigenvalues.capacity() * sizeof(double);
}

/// Spectral-clustering options.
struct SpectralOptions {
  /// Number of clusters; 0 = choose by the largest eigengap.
  std::size_t cluster_count = 0;
  std::size_t k_min = 2;  ///< eigengap search range
  std::size_t k_max = 8;
  LaplacianKind laplacian = LaplacianKind::kSymmetricNormalized;
  /// Normalize each embedding row to unit length before k-means (the
  /// Ng-Jordan-Weiss step). On densely connected similarity graphs —
  /// sensors in one room are all strongly correlated — this keeps a
  /// single low-degree outlier sensor from dominating the k-means
  /// objective and hiding the spatial partition.
  bool normalize_rows = true;
  KMeansOptions kmeans;
  /// Which eigensolver computes the Laplacian spectrum. kAuto keeps the
  /// paper-scale graphs (n < linalg::kEigenAutoThreshold) on the Jacobi
  /// reference — bitwise identical to historical results — routes larger
  /// graphs through the tridiagonal partial path (only needed_eigenpairs()
  /// pairs instead of the full spectrum), and from
  /// linalg::kEigenSparseThreshold vertices up switches to the sparse
  /// CSR + Lanczos path (pair with GraphSparsification::kKnn so the
  /// Laplacian is actually sparse).
  linalg::EigenMethod eigen_method = linalg::EigenMethod::kAuto;
};

/// Number of smallest eigenpairs spectral clustering actually consumes
/// for an n-vertex graph under `options`: enough columns for the
/// embedding (cluster_count when fixed) and one past k_max so the
/// eigengap scan can see the gap at k_max; never more than n.
[[nodiscard]] std::size_t needed_eigenpairs(const SpectralOptions& options,
                                            std::size_t n);

/// Run spectral clustering on a similarity graph.
/// Throws std::invalid_argument when cluster_count exceeds the vertex
/// count.
[[nodiscard]] ClusteringResult spectral_cluster(
    const SimilarityGraph& graph, const SpectralOptions& options = {});

/// Spectral clustering from a precomputed Laplacian eigendecomposition
/// (the stage-cache split: the spectrum is the expensive operator, the
/// k-means embedding step is cheap and depends on k). `analysis` must come
/// from analyze_spectrum(graph.weights, options.laplacian, ...); partial
/// analyses are accepted as long as they carry at least the pairs the
/// chosen k needs. Results are bitwise identical to the one-shot overload.
/// Throws std::invalid_argument when cluster_count exceeds the vertex
/// count or the analysis dimensions don't match the graph.
[[nodiscard]] ClusteringResult spectral_cluster(
    const SimilarityGraph& graph, const SpectralAnalysis& analysis,
    const SpectralOptions& options = {});

}  // namespace auditherm::clustering
