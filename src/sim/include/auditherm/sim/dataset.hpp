#pragma once

/// \file dataset.hpp
/// Closed-loop simulation of the instrumented auditorium and generation of
/// the multi-modal dataset the paper's pipeline consumes.
///
/// One call to generate_dataset() produces the equivalent of the paper's
/// 14-week trace: wireless sensor temperatures (with noise, quantization
/// and dropouts), the HVAC portal log (VAV flows), occupancy, lighting and
/// ambient temperature, all aligned on one 5-minute grid, plus the
/// noise-free ground truth for validation.

#include <cstdint>
#include <vector>

#include "auditherm/hvac/schedule.hpp"
#include "auditherm/hvac/thermostat.hpp"
#include "auditherm/hvac/vav.hpp"
#include "auditherm/sim/floorplan.hpp"
#include "auditherm/sim/occupancy.hpp"
#include "auditherm/sim/plant.hpp"
#include "auditherm/sim/sensor_model.hpp"
#include "auditherm/sim/weather.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::sim {

/// Reserved channel ids for the non-temperature modalities. Sensor
/// channels use the floor-plan ids (1..41).
struct DatasetChannels {
  static constexpr timeseries::ChannelId kVavBase = 101;  ///< 101..100+m
  static constexpr timeseries::ChannelId kOccupancy = 110;
  static constexpr timeseries::ChannelId kLighting = 111;
  static constexpr timeseries::ChannelId kAmbient = 112;
  /// Supply (discharge) air temperature from the HVAC portal — the paper's
  /// BMS records "the rate and temperature of air flow blown from the
  /// HVAC". The paper's models use flows only; the control extension uses
  /// this too (see AuditoriumDataset::extended_input_ids).
  static constexpr timeseries::ChannelId kSupplyTemp = 113;
  /// Room CO2 (ppm) from the HVAC's own sensor — "the ambient temperature
  /// and CO2 concentrations are also measured and recorded by the HVAC".
  static constexpr timeseries::ChannelId kCo2 = 114;
};

/// Everything configurable about a dataset run.
struct DatasetConfig {
  std::size_t days = 98;                    ///< the paper's ~14 weeks
  /// Modeling-grid step. The paper's HVAC portal logs at 10-30 minute
  /// intervals and the wireless sensors report on change; the identified
  /// models live on a 30-minute grid aligned with the slowest source.
  timeseries::Minutes sample_step = 30;
  timeseries::Minutes hvac_log_step = 15;   ///< HVAC portal logging (10-30 min)
  double control_dt_s = 60.0;               ///< plant/controller step

  WeatherConfig weather;
  OccupancyConfig occupancy;
  PlantConfig plant;
  hvac::VavConfig vav;
  hvac::ThermostatConfig thermostat;
  SensorNoiseConfig sensor_noise;

  double idle_supply_temp_c = 21.0;  ///< tempered off-mode supply air

  /// When true (default), the thermostat loop's dual-mode supply selection
  /// (cooling at modulated flow / reheat at the ventilation floor /
  /// neutral) drives the plant — a standard single-duct VAV-with-reheat
  /// system. The supply temperature is then a function of the *measured
  /// state* (thermostat feedback), which the linear models of eq. 1-2 can
  /// partially absorb into A even though their HVAC input is flow only.
  /// When false, occupied-mode supply is the constant cooling temperature
  /// from `vav` (a fixed-discharge AHU with no reheat).
  bool use_controller_supply = true;

  /// Local-turbulence disturbance per node: stationary std (W) and time
  /// constant of the Ornstein-Uhlenbeck heat processes standing in for
  /// drafts, door openings and convection plumes. These give each sensor
  /// idiosyncratic variance; mixing diffuses them to neighbors, which is
  /// what makes spatial correlation structure emerge realistically.
  double turbulence_std_w = 40.0;
  double turbulence_tau_min = 45.0;
  /// Night scaling of the turbulence std: the disturbances are mostly
  /// activity-driven (doors, people, plumes off warm bodies), so the
  /// still unoccupied-mode room gets only this fraction of them.
  double turbulence_night_factor = 0.25;

  /// Whole-system failure days (server outages); the paper lost 34 of 98.
  std::size_t failure_days = 34;
  /// Per sensor-day probability of a multi-hour wireless dropout window.
  double sensor_dropout_probability = 0.04;

  std::uint64_t seed = 1234;
};

/// The generated dataset.
struct AuditoriumDataset {
  /// All channels on the sampling grid; NaN marks gaps.
  timeseries::MultiTrace trace;
  /// Noise-free, gap-free sensor temperatures (same grid, sensor channels
  /// only); used to validate the measurement model, never by the pipeline.
  timeseries::MultiTrace truth;

  FloorPlan plan = FloorPlan::brauer_auditorium();
  hvac::Schedule schedule;
  std::vector<std::size_t> failure_days;  ///< day indices lost to outages

  /// Wireless sensors + thermostats, in floor-plan order.
  [[nodiscard]] std::vector<timeseries::ChannelId> sensor_ids() const {
    return plan.sensor_ids();
  }
  [[nodiscard]] std::vector<timeseries::ChannelId> wireless_ids() const {
    return plan.wireless_ids();
  }
  [[nodiscard]] std::vector<timeseries::ChannelId> thermostat_ids() const {
    return plan.thermostat_ids();
  }
  /// VAV flow channels, 101..100+m.
  [[nodiscard]] std::vector<timeseries::ChannelId> vav_ids() const;
  /// The model input block [h; o; l; w] of eq. 1: VAVs then occupancy,
  /// lighting, ambient.
  [[nodiscard]] std::vector<timeseries::ChannelId> input_ids() const;
  /// Extended input block [h; s; o; l; w] including the supply-air
  /// temperature; used by the model-predictive control extension, which
  /// must distinguish cooling from reheat supply.
  [[nodiscard]] std::vector<timeseries::ChannelId> extended_input_ids() const;
};

/// Run the closed-loop simulation of the paper's auditorium and assemble
/// the dataset.
/// Throws std::invalid_argument on inconsistent configuration (zero days,
/// sample step not a multiple of the control step, failure_days > days).
[[nodiscard]] AuditoriumDataset generate_dataset(const DatasetConfig& config);

/// Same closed-loop simulation over an arbitrary floor plan (the paper
/// hall, a synthetic_grid hall, or a synthetic_campus). The plan's VAV
/// count must fit the reserved flow-channel band 101..109 (at most 9
/// VAVs — synthetic plans up to 288 sensors); throws std::invalid_argument
/// otherwise. generate_dataset(config) is exactly
/// generate_dataset(FloorPlan::brauer_auditorium(), config).
[[nodiscard]] AuditoriumDataset generate_dataset(const FloorPlan& plan,
                                                 const DatasetConfig& config);

/// A spatial snapshot (Fig. 2): per-sensor reported temperature at the
/// sample nearest to `t`, NaN for sensors in dropout.
[[nodiscard]] std::vector<std::pair<timeseries::ChannelId, double>>
snapshot_at(const AuditoriumDataset& dataset, timeseries::Minutes t);

}  // namespace auditherm::sim
