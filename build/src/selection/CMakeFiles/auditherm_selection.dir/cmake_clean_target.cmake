file(REMOVE_RECURSE
  "libauditherm_selection.a"
)
