#pragma once

/// \file schedule.hpp
/// HVAC operating-mode schedule.
///
/// The paper's auditorium HVAC switches from off to on at 6:00 and back at
/// 21:00 every day; the analysis splits the trace into an *occupied* mode
/// (6:00-21:00, HVAC actively controlling) and an *unoccupied* mode
/// (21:00-6:00, minimal airflow), and fits separate models per mode.

#include <vector>

#include "auditherm/timeseries/time_grid.hpp"

namespace auditherm::hvac {

/// HVAC operating mode.
enum class Mode {
  kOccupied,    ///< HVAC on, active temperature control
  kUnoccupied,  ///< HVAC off-mode: low constant ventilation only
};

/// Daily on/off schedule defined by switch-on and switch-off minutes.
class Schedule {
 public:
  /// Default: the paper's 6:00 on / 21:00 off program.
  Schedule() = default;

  /// Custom daily program. Both in minutes-of-day [0, 1440); on must come
  /// before off (no overnight-on programs needed for this building).
  /// Throws std::invalid_argument otherwise.
  Schedule(timeseries::Minutes on_minute, timeseries::Minutes off_minute);

  [[nodiscard]] timeseries::Minutes on_minute() const noexcept { return on_; }
  [[nodiscard]] timeseries::Minutes off_minute() const noexcept { return off_; }

  /// Mode at absolute time t.
  [[nodiscard]] Mode mode_at(timeseries::Minutes t) const noexcept;

  /// True when the HVAC is in occupied (on) mode at time t.
  [[nodiscard]] bool occupied_at(timeseries::Minutes t) const noexcept {
    return mode_at(t) == Mode::kOccupied;
  }

  /// Row mask over a grid selecting samples in the given mode.
  [[nodiscard]] std::vector<bool> mode_mask(const timeseries::TimeGrid& grid,
                                            Mode mode) const;

 private:
  timeseries::Minutes on_ = 6 * timeseries::kMinutesPerHour;
  timeseries::Minutes off_ = 21 * timeseries::kMinutesPerHour;
};

}  // namespace auditherm::hvac
