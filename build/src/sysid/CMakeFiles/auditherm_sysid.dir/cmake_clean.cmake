file(REMOVE_RECURSE
  "CMakeFiles/auditherm_sysid.dir/diagnostics.cpp.o"
  "CMakeFiles/auditherm_sysid.dir/diagnostics.cpp.o.d"
  "CMakeFiles/auditherm_sysid.dir/estimator.cpp.o"
  "CMakeFiles/auditherm_sysid.dir/estimator.cpp.o.d"
  "CMakeFiles/auditherm_sysid.dir/evaluation.cpp.o"
  "CMakeFiles/auditherm_sysid.dir/evaluation.cpp.o.d"
  "CMakeFiles/auditherm_sysid.dir/kalman.cpp.o"
  "CMakeFiles/auditherm_sysid.dir/kalman.cpp.o.d"
  "CMakeFiles/auditherm_sysid.dir/model.cpp.o"
  "CMakeFiles/auditherm_sysid.dir/model.cpp.o.d"
  "CMakeFiles/auditherm_sysid.dir/occupancy_estimation.cpp.o"
  "CMakeFiles/auditherm_sysid.dir/occupancy_estimation.cpp.o.d"
  "libauditherm_sysid.a"
  "libauditherm_sysid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auditherm_sysid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
