file(REMOVE_RECURSE
  "CMakeFiles/test_time_grid.dir/test_time_grid.cpp.o"
  "CMakeFiles/test_time_grid.dir/test_time_grid.cpp.o.d"
  "test_time_grid"
  "test_time_grid.pdb"
  "test_time_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
