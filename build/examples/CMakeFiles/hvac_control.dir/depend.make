# Empty dependencies file for hvac_control.
# This may be replaced when dependencies are built.
