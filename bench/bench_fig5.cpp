// Fig. 5: prediction error as a function of (top) the training-data
// horizon and (bottom) the prediction length.
//
// Paper: top — training horizons {13, 27, 34, 44, 58} days; MORE training
// data does not monotonically help (the 13-day model was best; the paper
// attributes the rise to over-fitting across a drifting season). bottom —
// error grows monotonically with prediction length {2.5 .. 13.5} h and
// second-order stays below first-order.

#include <algorithm>

#include "bench_common.hpp"

using namespace auditherm;

namespace {

/// p90 per-sensor RMS when training on the `horizon` most recent usable
/// days before the validation half.
double error_for_training_horizon(const sim::AuditoriumDataset& dataset,
                                  const core::DataSplit& split,
                                  const std::vector<bool>& mode_mask,
                                  sysid::ModelOrder order,
                                  std::size_t horizon_days) {
  auto days = split.train_days;
  if (horizon_days < days.size()) {
    days.erase(days.begin(),
               days.begin() + static_cast<std::ptrdiff_t>(days.size() -
                                                          horizon_days));
  }
  const auto train_mask = core::day_mask(dataset.trace.grid(), days);
  sysid::ModelEstimator estimator(dataset.sensor_ids(), dataset.input_ids(),
                                  order);
  const auto model =
      estimator.fit(dataset.trace, core::and_masks(train_mask, mode_mask));
  const auto windows = bench::evaluation_windows(dataset,
                                                 split.validation_mask,
                                                 hvac::Mode::kOccupied);
  sysid::EvaluationOptions opts;
  const auto eval =
      sysid::evaluate_prediction(model, dataset.trace, windows, opts);
  return eval.channel_rms_percentile(90.0);
}

}  // namespace

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Fig. 5: error vs training horizon / prediction length");

  // The horizon sweep needs more usable training days than the standard
  // half-split of 64 provides, so this bench uses a longer split (75%).
  const auto dataset = bench::make_standard_dataset();
  auto required = bench::required_channels(dataset);
  const auto split =
      core::split_dataset(dataset.trace, required, dataset.schedule,
                          hvac::Mode::kOccupied, 0.5, 0.75);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  std::printf("usable days: %zu (train pool %zu, validate %zu)\n\n",
              split.usable_days.size(), split.train_days.size(),
              split.validation_days.size());

  std::printf("top subfigure: 90th-pct RMS vs training horizon (days)\n");
  std::printf("%-10s %-12s %-12s\n", "days", "first", "second");
  linalg::Vector first_by_horizon, second_by_horizon;
  for (std::size_t days : {13u, 27u, 34u, 44u, 58u}) {
    const std::size_t capped = std::min(days, split.train_days.size());
    const double e1 = error_for_training_horizon(
        dataset, split, mode_mask, sysid::ModelOrder::kFirst, capped);
    const double e2 = error_for_training_horizon(
        dataset, split, mode_mask, sysid::ModelOrder::kSecond, capped);
    std::printf("%-10zu %-12.3f %-12.3f%s\n", days, e1, e2,
                capped < days ? "  (capped to available days)" : "");
    first_by_horizon.push_back(e1);
    second_by_horizon.push_back(e2);
  }
  const bool non_monotone =
      !std::is_sorted(second_by_horizon.rbegin(), second_by_horizon.rend());
  std::printf("shape check: more data is NOT monotonically better: %s\n\n",
              non_monotone ? "yes" : "NO");

  std::printf("bottom subfigure: 90th-pct RMS vs prediction length (hours)\n");
  std::printf("%-10s %-12s %-12s\n", "hours", "first", "second");
  const auto full_split = bench::standard_split(dataset);
  const auto windows = bench::evaluation_windows(dataset,
                                                 full_split.validation_mask,
                                                 hvac::Mode::kOccupied);
  const auto fit = [&](sysid::ModelOrder order) {
    sysid::ModelEstimator estimator(dataset.sensor_ids(), dataset.input_ids(),
                                    order);
    return estimator.fit(dataset.trace,
                         core::and_masks(full_split.train_mask, mode_mask));
  };
  const auto first = fit(sysid::ModelOrder::kFirst);
  const auto second = fit(sysid::ModelOrder::kSecond);

  linalg::Vector first_by_length, second_by_length;
  for (double hours : {2.5, 5.0, 7.5, 10.0, 13.5}) {
    sysid::EvaluationOptions opts;
    opts.horizon_samples = static_cast<std::size_t>(hours * 2.0);  // 30-min
    opts.min_steps = std::min<std::size_t>(opts.horizon_samples, 4);
    const auto e1 = sysid::evaluate_prediction(first, dataset.trace, windows,
                                               opts)
                        .channel_rms_percentile(90.0);
    const auto e2 = sysid::evaluate_prediction(second, dataset.trace, windows,
                                               opts)
                        .channel_rms_percentile(90.0);
    std::printf("%-10.1f %-12.3f %-12.3f\n", hours, e1, e2);
    first_by_length.push_back(e1);
    second_by_length.push_back(e2);
  }
  const bool grows = first_by_length.back() > first_by_length.front() &&
                     second_by_length.back() > second_by_length.front();
  bool second_below = true;
  for (std::size_t i = 0; i < first_by_length.size(); ++i) {
    if (second_by_length[i] >= first_by_length[i]) second_below = false;
  }
  std::printf("shape checks: error grows with prediction length: %s | "
              "second-order below first-order: %s\n",
              grows ? "yes" : "NO", second_below ? "yes" : "NO");
  return 0;
}
