#include "auditherm/sim/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace auditherm::sim {

namespace {

using timeseries::ChannelId;
using timeseries::kMinutesPerDay;
using timeseries::Minutes;

/// Sorted, per-sensor wireless outage windows in absolute minutes.
struct OutageWindow {
  Minutes start = 0;
  Minutes end = 0;
};

bool in_outage(const std::vector<OutageWindow>& windows, Minutes t) {
  for (const auto& w : windows) {
    if (t >= w.start && t < w.end) return true;
    if (w.start > t) break;
  }
  return false;
}

}  // namespace

std::vector<ChannelId> AuditoriumDataset::vav_ids() const {
  std::vector<ChannelId> ids;
  for (std::size_t v = 0; v < plan.vav_count(); ++v) {
    ids.push_back(DatasetChannels::kVavBase + static_cast<ChannelId>(v));
  }
  return ids;
}

std::vector<ChannelId> AuditoriumDataset::input_ids() const {
  auto ids = vav_ids();
  ids.push_back(DatasetChannels::kOccupancy);
  ids.push_back(DatasetChannels::kLighting);
  ids.push_back(DatasetChannels::kAmbient);
  return ids;
}

std::vector<ChannelId> AuditoriumDataset::extended_input_ids() const {
  auto ids = vav_ids();
  ids.push_back(DatasetChannels::kSupplyTemp);
  ids.push_back(DatasetChannels::kOccupancy);
  ids.push_back(DatasetChannels::kLighting);
  ids.push_back(DatasetChannels::kAmbient);
  return ids;
}

AuditoriumDataset generate_dataset(const DatasetConfig& config) {
  return generate_dataset(FloorPlan::brauer_auditorium(), config);
}

AuditoriumDataset generate_dataset(const FloorPlan& plan,
                                   const DatasetConfig& config) {
  if (config.days == 0) {
    throw std::invalid_argument("generate_dataset: days == 0");
  }
  // The flow channels live at 101..109; kOccupancy (110) starts the next
  // modality, so a plan with more VAVs would silently alias channels.
  if (plan.vav_count() >
      static_cast<std::size_t>(DatasetChannels::kOccupancy -
                               DatasetChannels::kVavBase)) {
    throw std::invalid_argument(
        "generate_dataset: plan has " + std::to_string(plan.vav_count()) +
        " VAVs but the flow-channel band 101..109 holds at most 9 "
        "(synthetic plans up to 288 sensors)");
  }
  if (config.sample_step <= 0 || config.hvac_log_step <= 0 ||
      config.control_dt_s <= 0.0) {
    throw std::invalid_argument("generate_dataset: non-positive steps");
  }
  const double sample_seconds = static_cast<double>(config.sample_step) * 60.0;
  if (std::fmod(sample_seconds, config.control_dt_s) != 0.0) {
    throw std::invalid_argument(
        "generate_dataset: sample step must be a multiple of the control step");
  }
  if (config.failure_days > config.days) {
    throw std::invalid_argument("generate_dataset: failure_days > days");
  }

  AuditoriumDataset ds;
  ds.plan = plan;
  ds.schedule = hvac::Schedule();

  const auto sensor_ids = ds.plan.sensor_ids();
  const std::size_t n_sensors = sensor_ids.size();
  const std::size_t n_vavs = ds.plan.vav_count();

  // Mix the top-level seed into the sub-model seeds so one DatasetConfig
  // seed controls the whole generation (sub-config seeds still matter for
  // users who want to vary one source independently).
  WeatherConfig weather_config = config.weather;
  weather_config.seed ^= config.seed * 0x9E3779B97F4A7C15ull;
  OccupancyConfig occupancy_config = config.occupancy;
  occupancy_config.seed ^= config.seed * 0xD1B54A32D192ED03ull;
  WeatherModel weather(weather_config, config.days);
  OccupancySchedule occupancy(occupancy_config, config.days);
  ZonalPlant plant(ds.plan, config.plant);
  hvac::ThermostatController controller(config.thermostat, ds.schedule);
  std::vector<hvac::VavBox> vavs(n_vavs, hvac::VavBox(config.vav));

  std::mt19937_64 rng(config.seed);

  // --- Failure days (server outages). ---------------------------------
  {
    std::vector<std::size_t> all_days(config.days);
    for (std::size_t d = 0; d < config.days; ++d) all_days[d] = d;
    std::shuffle(all_days.begin(), all_days.end(), rng);
    ds.failure_days.assign(all_days.begin(),
                           all_days.begin() +
                               static_cast<std::ptrdiff_t>(config.failure_days));
    std::sort(ds.failure_days.begin(), ds.failure_days.end());
  }
  std::vector<bool> day_failed(config.days, false);
  for (std::size_t d : ds.failure_days) day_failed[d] = true;

  // --- Per-sensor wireless dropout windows. ----------------------------
  std::vector<std::vector<OutageWindow>> outages(n_sensors);
  {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<Minutes> start_min(0, kMinutesPerDay - 60);
    std::uniform_int_distribution<Minutes> duration_min(60, 6 * 60);
    for (std::size_t s = 0; s < n_sensors; ++s) {
      for (std::size_t d = 0; d < config.days; ++d) {
        if (coin(rng) >= config.sensor_dropout_probability) continue;
        const Minutes day0 = static_cast<Minutes>(d) * kMinutesPerDay;
        const Minutes begin = day0 + start_min(rng);
        outages[s].push_back({begin, begin + duration_min(rng)});
      }
    }
  }

  // --- Trace containers. ------------------------------------------------
  const std::size_t samples =
      static_cast<std::size_t>(static_cast<Minutes>(config.days) *
                               kMinutesPerDay / config.sample_step);
  timeseries::TimeGrid grid(0, config.sample_step, samples);

  std::vector<ChannelId> channels = sensor_ids;
  for (std::size_t v = 0; v < n_vavs; ++v) {
    channels.push_back(DatasetChannels::kVavBase + static_cast<ChannelId>(v));
  }
  channels.push_back(DatasetChannels::kOccupancy);
  channels.push_back(DatasetChannels::kLighting);
  channels.push_back(DatasetChannels::kAmbient);
  channels.push_back(DatasetChannels::kSupplyTemp);
  channels.push_back(DatasetChannels::kCo2);

  ds.trace = timeseries::MultiTrace(grid, channels);
  ds.truth = timeseries::MultiTrace(grid, sensor_ids);

  std::vector<SensorChannel> sensor_channels(
      n_sensors, SensorChannel(config.sensor_noise));

  // Thermostat node indices for the control loop (wired, read directly).
  const auto thermostat_ids = ds.plan.thermostat_ids();

  // Per-node OU turbulence state, advanced once per control step.
  std::vector<double> turbulence(sensor_ids.size(), 0.0);
  std::normal_distribution<double> unit_normal(0.0, 1.0);
  const double turb_tau_s = config.turbulence_tau_min * 60.0;
  const auto advance_turbulence = [&](Minutes t) {
    if (config.turbulence_std_w <= 0.0) return;
    const double dt = config.control_dt_s;
    const double decay = std::exp(-dt / turb_tau_s);
    const double std_now =
        config.turbulence_std_w *
        (ds.schedule.occupied_at(t) ? 1.0 : config.turbulence_night_factor);
    const double kick = std_now * std::sqrt(1.0 - decay * decay);
    for (double& x : turbulence) {
      x = decay * x + kick * unit_normal(rng);
    }
  };

  const auto plant_inputs = [&](Minutes t,
                                const std::vector<double>& flows) {
    PlantInputs u;
    u.vav_flows_m3_s = flows;
    // Occupied: either the fixed AHU discharge setpoint or the thermostat
    // loop's dual-mode selection; off-mode the AHU delivers unconditioned
    // tempered air.
    if (ds.schedule.occupied_at(t)) {
      u.supply_temp_c = config.use_controller_supply
                            ? controller.supply_temp_c()
                            : config.vav.supply_temp_c;
    } else {
      u.supply_temp_c = config.idle_supply_temp_c;
    }
    u.occupants = occupancy.occupants_at(t);
    u.lighting = occupancy.lighting_at(t);
    u.ambient_c = weather.temperature_at(t);
    if (config.turbulence_std_w > 0.0) u.extra_node_heat_w = turbulence;
    return u;
  };

  const auto control_step = [&](Minutes t) {
    advance_turbulence(t);
    std::vector<double> thermostat_temps;
    thermostat_temps.reserve(thermostat_ids.size());
    for (ChannelId id : thermostat_ids) {
      thermostat_temps.push_back(plant.air_temp_of(id));
    }
    controller.update(vavs, thermostat_temps, t, config.control_dt_s);
    std::vector<double> flows(n_vavs);
    for (std::size_t v = 0; v < n_vavs; ++v) {
      flows[v] = vavs[v].step(config.control_dt_s).flow_m3_s;
    }
    plant.step(plant_inputs(t, flows), config.control_dt_s);
    return flows;
  };

  if (std::fmod(config.control_dt_s, 60.0) != 0.0) {
    throw std::invalid_argument(
        "generate_dataset: control step must be whole minutes");
  }
  const auto control_minutes = static_cast<Minutes>(config.control_dt_s / 60.0);

  // --- Warm-up: one unrecorded day to settle the thermal mass. ---------
  for (Minutes t = -kMinutesPerDay; t < 0; t += control_minutes) {
    (void)control_step(t);
  }

  // --- Main closed-loop run. -------------------------------------------
  std::vector<double> last_logged_flows(n_vavs, vavs[0].flow());
  std::size_t next_sample = 0;
  for (Minutes t = 0; t < static_cast<Minutes>(config.days) * kMinutesPerDay;
       t += control_minutes) {
    const auto flows = control_step(t);
    if (timeseries::minute_of_day(t) % config.hvac_log_step == 0) {
      last_logged_flows = flows;
    }

    const Minutes t_next = t + control_minutes;
    if (next_sample < samples && grid[next_sample] <= t_next) {
      const std::size_t k = next_sample++;
      const Minutes ts = grid[k];
      const auto day = static_cast<std::size_t>(timeseries::day_of(ts));
      const bool failed = day < day_failed.size() && day_failed[day];

      for (std::size_t s = 0; s < n_sensors; ++s) {
        const double truth = plant.air_temps()[s];
        ds.truth.set(k, s, truth);
        if (failed || in_outage(outages[s], ts)) continue;  // stays NaN
        ds.trace.set(k, s, sensor_channels[s].observe(truth, rng));
      }
      if (!failed) {
        for (std::size_t v = 0; v < n_vavs; ++v) {
          ds.trace.set(k, n_sensors + v, last_logged_flows[v]);
        }
        ds.trace.set(k, n_sensors + n_vavs + 0, occupancy.occupants_at(ts));
        ds.trace.set(k, n_sensors + n_vavs + 1, occupancy.lighting_at(ts));
        ds.trace.set(k, n_sensors + n_vavs + 2, weather.temperature_at(ts));
        ds.trace.set(k, n_sensors + n_vavs + 3,
                     plant_inputs(ts, flows).supply_temp_c);
        ds.trace.set(k, n_sensors + n_vavs + 4, plant.co2_ppm());
      }
    }
  }
  return ds;
}

std::vector<std::pair<ChannelId, double>> snapshot_at(
    const AuditoriumDataset& dataset, Minutes t) {
  const auto& grid = dataset.trace.grid();
  if (grid.empty()) return {};
  std::size_t k = grid.index_at_or_after(t);
  if (k >= grid.size()) k = grid.size() - 1;
  std::vector<std::pair<ChannelId, double>> out;
  for (ChannelId id : dataset.sensor_ids()) {
    const std::size_t c = dataset.trace.require_channel(id);
    out.emplace_back(id, dataset.trace.value(k, c));
  }
  return out;
}

}  // namespace auditherm::sim
