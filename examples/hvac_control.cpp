// Model-based HVAC control: the paper's motivating application.
//
// 1. Simulate a pilot season with the dense sensor network.
// 2. Run the paper's pipeline: cluster -> SMS selection -> reduced
//    second-order model over the selected sensors (with the extended
//    input set including the supply-air temperature).
// 3. Control the auditorium with a receding-horizon controller planning
//    on that reduced model, and compare comfort/energy against the
//    building's existing thermostat rule.

#include <cstdio>

#include "auditherm/auditherm.hpp"

using namespace auditherm;

int main() {
  // --- 1. Pilot dataset. -------------------------------------------------
  sim::DatasetConfig data_config;
  data_config.days = 56;
  data_config.failure_days = 10;
  const auto dataset = sim::generate_dataset(data_config);

  auto required = dataset.sensor_ids();
  const auto inputs = dataset.extended_input_ids();
  required.insert(required.end(), inputs.begin(), inputs.end());
  const auto split = core::split_dataset(dataset.trace, required,
                                         dataset.schedule,
                                         hvac::Mode::kOccupied);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto training = dataset.trace.filter_rows(
      core::and_masks(split.train_mask, mode_mask));

  // --- 2. Cluster, select, identify the reduced model. -------------------
  const auto graph = clustering::build_similarity_graph(
      training, dataset.wireless_ids(), {});
  const auto clusters = clustering::spectral_cluster(graph).clusters();
  const auto selection = selection::stratified_near_mean(training, clusters);
  const auto sensors = selection.flattened();
  std::printf("zones: %zu | selected sensors:", clusters.size());
  for (auto id : sensors) std::printf(" %d", id);
  std::printf("\n");

  sysid::ModelEstimator estimator(sensors, inputs,
                                  sysid::ModelOrder::kSecond);
  const auto model = estimator.fit(
      dataset.trace, core::and_masks(split.train_mask, mode_mask));
  std::printf("reduced model: %zu states, %zu inputs, spectral radius %.3f\n",
              model.state_count(), model.input_count(),
              model.spectral_radius_bound());

  // --- 3. Closed-loop comparison on fresh weather/occupancy. ------------
  control::ClosedLoopConfig loop;
  loop.days = 14;
  loop.seed = 2026;
  loop.weather.seed = 99;    // different season draw than the pilot
  loop.occupancy.seed = 77;
  loop.comfort_zones = clusters;

  const double t_neutral = hvac::neutral_temperature(loop.comfort_model);
  std::printf("PMV-neutral temperature for this audience: %.2f degC\n",
              t_neutral);
  control::MpcOptions mpc_options;
  mpc_options.objective.setpoint_c = t_neutral;
  control::RuleBasedController rule(hvac::ThermostatConfig{}, loop.schedule,
                                    dataset.thermostat_ids());
  control::ModelPredictiveController mpc(model, dataset.plan.vav_count(),
                                         loop.schedule, mpc_options);

  const auto rule_metrics = control::run_closed_loop(loop, rule, t_neutral);
  const auto mpc_metrics = control::run_closed_loop(loop, mpc, t_neutral);

  const auto show = [](const char* name,
                       const control::ClosedLoopMetrics& m) {
    std::printf("%-22s comfort violations %5.1f%% | mean |T - set| %.2f degC "
                "| coil %.0f kWh + fan %.0f kWh = %.0f kWh\n",
                name, 100.0 * m.comfort_violation_fraction,
                m.mean_abs_deviation_c, m.coil_energy_kwh, m.fan_energy_kwh,
                m.total_energy_kwh());
  };
  std::printf("\n14-day closed-loop comparison (2 thermal zones):\n");
  show("thermostat rule:", rule_metrics);
  show("MPC on reduced model:", mpc_metrics);

  const bool better_comfort = mpc_metrics.comfort_violation_fraction <=
                              rule_metrics.comfort_violation_fraction;
  std::printf("\nMPC %s comfort (%s energy).\n",
              better_comfort ? "improves" : "does not improve",
              mpc_metrics.total_energy_kwh() <=
                      rule_metrics.total_energy_kwh() * 1.05
                  ? "comparable"
                  : "higher");
  return 0;
}
