#include "auditherm/linalg/vector_ops.hpp"

#include <cmath>
#include <stdexcept>

namespace auditherm::linalg {

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& a) noexcept {
  double s = 0.0;
  for (double x : a) s += x * x;
  return std::sqrt(s);
}

double norm_inf(const Vector& a) noexcept {
  double m = 0.0;
  for (double x : a) m = std::max(m, std::abs(x));
  return m;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector add(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("add: size mismatch");
  Vector c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
  return c;
}

Vector subtract(const Vector& a, const Vector& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("subtract: size mismatch");
  Vector c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] - b[i];
  return c;
}

Vector scale(double alpha, Vector a) noexcept {
  for (double& x : a) x *= alpha;
  return a;
}

Vector concat(const Vector& a, const Vector& b) {
  Vector c;
  c.reserve(a.size() + b.size());
  c.insert(c.end(), a.begin(), a.end());
  c.insert(c.end(), b.begin(), b.end());
  return c;
}

double distance(const Vector& a, const Vector& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("distance: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace auditherm::linalg
