#pragma once

/// \file trace_span.hpp
/// RAII tracing spans and the per-run Recorder they feed.
///
/// A Recorder bundles a MetricsRegistry with a span log for one pipeline
/// run (or bench, or CLI invocation). Installing it with RecorderScope
/// makes it the process-wide *current* recorder; every TraceSpan and every
/// hot-path helper below records into it. With no recorder installed the
/// cost of an instrumentation site is one relaxed atomic load and a
/// predictable branch; building with -DAUDITHERM_OBS=OFF compiles the
/// sites out entirely (see kCompiledIn in metrics.hpp).
///
/// Span trees and determinism: spans only *observe* — they read the
/// steady clock and append a record, never feeding anything back into the
/// computation they wrap — so instrumented runs are bitwise identical to
/// uninstrumented ones (pinned by test_obs). Parent linkage is a
/// thread-local stack; spans opened on pool worker threads (whose stacks
/// are empty) attach to the *ambient parent* the parallel runtime sets
/// around each batch, which is race-free because top-level batches are
/// serialized.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "auditherm/obs/metrics.hpp"

namespace auditherm::obs {

/// One closed span. `start_ns` is measured from the recorder's creation;
/// `thread` is a dense per-recorder ordinal (0 = first thread seen).
struct SpanRecord {
  std::uint64_t id = 0;      ///< 1-based; ids increase construction order
  std::uint64_t parent = 0;  ///< 0 = root
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t thread = 0;
};

/// Per-run observability sink: metrics + span log.
class Recorder {
 public:
  /// Spans beyond this are dropped (counted in the `obs.dropped_spans`
  /// counter) so a runaway loop can't balloon the log.
  static constexpr std::size_t kMaxSpans = 65536;

  Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// Closed spans, ordered by id (== construction order).
  [[nodiscard]] std::vector<SpanRecord> spans() const;

  // -- TraceSpan internals (public so the parallel runtime can batch) ----
  [[nodiscard]] std::uint64_t next_span_id() noexcept;
  [[nodiscard]] std::uint64_t now_ns() const noexcept;
  void append(SpanRecord&& record);

 private:
  [[nodiscard]] std::uint32_t thread_ordinal();

  MetricsRegistry metrics_;
  std::uint64_t origin_ns_;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::unordered_map<std::thread::id, std::uint32_t> thread_ordinals_;
};

/// The process-wide current recorder (nullptr = observability off).
[[nodiscard]] Recorder* current() noexcept;

/// True when some recorder is installed.
[[nodiscard]] inline bool enabled() noexcept { return current() != nullptr; }

/// RAII installation of a recorder as the process-wide current one.
/// A null or already-current recorder makes the scope a no-op, so nested
/// pipeline layers can all pass their RunOptions sink without fighting
/// (the sweep installs once; per-case runs see it already current).
/// Concurrent scopes installing *different* recorders are unsupported.
class RecorderScope {
 public:
  explicit RecorderScope(Recorder* recorder) noexcept;
  ~RecorderScope();
  RecorderScope(const RecorderScope&) = delete;
  RecorderScope& operator=(const RecorderScope&) = delete;

 private:
  bool active_;
  Recorder* previous_ = nullptr;
};

/// Parent span id for spans opened on threads with an empty span stack
/// (pool workers). Set by the parallel runtime around each batch; 0
/// clears it. Top-level batches are serialized, so one global suffices.
void set_ambient_parent(std::uint64_t span_id) noexcept;

#if defined(AUDITHERM_NO_OBS)

/// Compile-time no-op span: the name argument is evaluated but nothing is
/// recorded and no clock is read.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view) noexcept {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  [[nodiscard]] std::uint64_t id() const noexcept { return 0; }
};

inline void add_counter(MetricId, std::uint64_t = 1) noexcept {}
inline void set_gauge(MetricId, double) noexcept {}
inline void observe(MetricId, double) noexcept {}
inline void add_counter(std::string_view, std::uint64_t = 1) noexcept {}

#else

/// RAII scoped timer: opens on construction, appends a SpanRecord to the
/// current recorder on destruction. Free when no recorder is installed.
/// Must not outlive the recorder that was current at its construction.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// This span's id, or 0 when recording is disabled.
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  Recorder* recorder_ = nullptr;  ///< captured at construction
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_ns_ = 0;
  std::string name_;
};

/// Record into the current recorder, if any. MetricId overloads are the
/// hot-path form; resolve the id once with a function-local static.
inline void add_counter(MetricId id, std::uint64_t delta = 1) noexcept {
  if (Recorder* r = current()) r->metrics().add(id, delta);
}
inline void set_gauge(MetricId id, double value) {
  if (Recorder* r = current()) r->metrics().set(id, value);
}
inline void observe(MetricId id, double value) noexcept {
  if (Recorder* r = current()) r->metrics().observe(id, value);
}
inline void add_counter(std::string_view name, std::uint64_t delta = 1) {
  if (Recorder* r = current()) r->metrics().add_counter(name, delta);
}

#endif  // AUDITHERM_NO_OBS

}  // namespace auditherm::obs
