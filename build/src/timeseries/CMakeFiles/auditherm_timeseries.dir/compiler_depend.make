# Empty compiler generated dependencies file for auditherm_timeseries.
# This may be replaced when dependencies are built.
