file(REMOVE_RECURSE
  "CMakeFiles/hvac_control.dir/hvac_control.cpp.o"
  "CMakeFiles/hvac_control.dir/hvac_control.cpp.o.d"
  "hvac_control"
  "hvac_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hvac_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
