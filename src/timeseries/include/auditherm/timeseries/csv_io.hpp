#pragma once

/// \file csv_io.hpp
/// CSV persistence for MultiTrace: one row per sample (`time_minutes`
/// column first, then one column per channel id), empty cells for gaps.
/// This is the interchange format for exporting simulated datasets and for
/// loading a real building trace into the pipeline.

#include <iosfwd>
#include <string>

#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::timeseries {

/// Write the trace as CSV to a stream.
void write_csv(std::ostream& os, const MultiTrace& trace);

/// Write the trace to a file; throws std::runtime_error on I/O failure.
void write_csv_file(const std::string& path, const MultiTrace& trace);

/// Parse a trace from CSV; the grid step is inferred from the first two
/// rows (a single-row file gets step 1). Throws std::runtime_error on
/// malformed input (bad header, ragged rows, non-uniform time steps).
[[nodiscard]] MultiTrace read_csv(std::istream& is);

/// Read a trace from a file; throws std::runtime_error on I/O failure.
[[nodiscard]] MultiTrace read_csv_file(const std::string& path);

}  // namespace auditherm::timeseries
