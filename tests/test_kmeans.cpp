// Tests for k-means with k-means++ seeding.

#include "auditherm/clustering/kmeans.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <stdexcept>

namespace clustering = auditherm::clustering;
namespace linalg = auditherm::linalg;
using linalg::Matrix;

namespace {

/// Three well-separated 2-D blobs of 10 points each.
Matrix three_blobs(std::uint64_t seed = 1) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.3);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  Matrix points(30, 2);
  for (std::size_t i = 0; i < 30; ++i) {
    points(i, 0) = centers[i / 10][0] + noise(rng);
    points(i, 1) = centers[i / 10][1] + noise(rng);
  }
  return points;
}

}  // namespace

TEST(KMeans, RecoversSeparatedBlobs) {
  const auto points = three_blobs();
  const auto result = clustering::kmeans(points, 3);
  // All points of a blob share a label, and blobs get distinct labels.
  std::set<std::size_t> labels;
  for (std::size_t blob = 0; blob < 3; ++blob) {
    const std::size_t label = result.labels[blob * 10];
    labels.insert(label);
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(result.labels[blob * 10 + i], label);
    }
  }
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_LT(result.inertia, 30.0 * 0.3 * 0.3 * 10.0);
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  Matrix points{{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}, {2.0, 2.0}};
  const auto result = clustering::kmeans(points, 1);
  EXPECT_DOUBLE_EQ(result.centroids(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(result.centroids(0, 1), 1.0);
  for (auto l : result.labels) EXPECT_EQ(l, 0u);
}

TEST(KMeans, KEqualsNSeparatesEveryPoint) {
  Matrix points{{0.0}, {5.0}, {10.0}};
  const auto result = clustering::kmeans(points, 3);
  std::set<std::size_t> labels(result.labels.begin(), result.labels.end());
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, DeterministicForSameSeed) {
  const auto points = three_blobs();
  clustering::KMeansOptions options;
  options.seed = 5;
  const auto a = clustering::kmeans(points, 3, options);
  const auto b = clustering::kmeans(points, 3, options);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, NoEmptyClusters) {
  // Duplicated points invite empty clusters; the reseeding logic must
  // still return k non-empty groups.
  Matrix points(12, 1);
  for (std::size_t i = 0; i < 12; ++i) points(i, 0) = (i < 11) ? 0.0 : 100.0;
  const auto result = clustering::kmeans(points, 2);
  std::size_t count0 = 0, count1 = 0;
  for (auto l : result.labels) (l == 0 ? count0 : count1)++;
  EXPECT_GT(count0, 0u);
  EXPECT_GT(count1, 0u);
}

/// Inertia must not increase with k (given the same data and seeding).
class KMeansInertia : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KMeansInertia, DecreasesWithK) {
  const auto points = three_blobs(7);
  const std::size_t k = GetParam();
  clustering::KMeansOptions options;
  options.restarts = 20;
  const auto with_k = clustering::kmeans(points, k, options);
  const auto with_k1 = clustering::kmeans(points, k + 1, options);
  EXPECT_LE(with_k1.inertia, with_k.inertia + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansInertia, ::testing::Values(1, 2, 3, 4, 5));

TEST(KMeans, Validation) {
  Matrix points{{1.0}, {2.0}};
  EXPECT_THROW((void)clustering::kmeans(points, 0), std::invalid_argument);
  EXPECT_THROW((void)clustering::kmeans(points, 3), std::invalid_argument);
  EXPECT_THROW((void)clustering::kmeans(Matrix(), 1), std::invalid_argument);
  clustering::KMeansOptions bad;
  bad.restarts = 0;
  EXPECT_THROW((void)clustering::kmeans(points, 1, bad),
               std::invalid_argument);
}
