// Performance benchmarks for the end-to-end machinery (google-benchmark):
// dataset generation, similarity graphs, spectral clustering, model
// identification, multi-step evaluation, and the full pipeline.

#include <benchmark/benchmark.h>

#include "auditherm/auditherm.hpp"

using namespace auditherm;

namespace {

/// Shared 28-day dataset; generated once.
const sim::AuditoriumDataset& dataset() {
  static const sim::AuditoriumDataset ds = [] {
    sim::DatasetConfig config;
    config.days = 28;
    config.failure_days = 4;
    return sim::generate_dataset(config);
  }();
  return ds;
}

const core::DataSplit& split() {
  static const core::DataSplit s = [] {
    auto required = dataset().sensor_ids();
    const auto inputs = dataset().input_ids();
    required.insert(required.end(), inputs.begin(), inputs.end());
    return core::split_dataset(dataset().trace, required, dataset().schedule,
                               hvac::Mode::kOccupied);
  }();
  return s;
}

const std::vector<bool>& occupied_mask() {
  static const std::vector<bool> m = dataset().schedule.mode_mask(
      dataset().trace.grid(), hvac::Mode::kOccupied);
  return m;
}

void BM_GenerateDataset(benchmark::State& state) {
  sim::DatasetConfig config;
  config.days = static_cast<std::size_t>(state.range(0));
  config.failure_days = config.days / 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::generate_dataset(config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(config.days));
}
BENCHMARK(BM_GenerateDataset)->Arg(7)->Arg(28)->Unit(benchmark::kMillisecond);

void BM_SimilarityGraph(benchmark::State& state) {
  const auto training = dataset().trace.filter_rows(
      core::and_masks(split().train_mask, occupied_mask()));
  const auto metric = state.range(0) == 0
                          ? clustering::SimilarityMetric::kCorrelation
                          : clustering::SimilarityMetric::kEuclidean;
  clustering::SimilarityOptions opts;
  opts.metric = metric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::build_similarity_graph(
        training, dataset().wireless_ids(), opts));
  }
}
BENCHMARK(BM_SimilarityGraph)->Arg(0)->Arg(1);

void BM_SpectralCluster(benchmark::State& state) {
  const auto training = dataset().trace.filter_rows(
      core::and_masks(split().train_mask, occupied_mask()));
  const auto graph = clustering::build_similarity_graph(
      training, dataset().wireless_ids(), {});
  clustering::SpectralOptions opts;
  opts.cluster_count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering::spectral_cluster(graph, opts));
  }
}
BENCHMARK(BM_SpectralCluster)->Arg(2)->Arg(4)->Arg(8);

void BM_FitModel(benchmark::State& state) {
  const auto order = state.range(0) == 1 ? sysid::ModelOrder::kFirst
                                         : sysid::ModelOrder::kSecond;
  sysid::ModelEstimator estimator(dataset().sensor_ids(),
                                  dataset().input_ids(), order);
  const auto mask = core::and_masks(split().train_mask, occupied_mask());
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.fit(dataset().trace, mask));
  }
}
BENCHMARK(BM_FitModel)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_EvaluatePrediction(benchmark::State& state) {
  sysid::ModelEstimator estimator(dataset().sensor_ids(),
                                  dataset().input_ids(),
                                  sysid::ModelOrder::kSecond);
  const auto model = estimator.fit(
      dataset().trace, core::and_masks(split().train_mask, occupied_mask()));
  auto mask = core::and_masks(split().validation_mask, occupied_mask());
  mask = core::and_masks(mask, timeseries::rows_with_all_valid(
                                   dataset().trace, dataset().input_ids()));
  const auto windows = timeseries::find_segments(mask, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sysid::evaluate_prediction(model, dataset().trace, windows, {}));
  }
}
BENCHMARK(BM_EvaluatePrediction);

void BM_GpPlacement(benchmark::State& state) {
  const auto training = dataset().trace.filter_rows(
      core::and_masks(split().train_mask, occupied_mask()));
  const auto count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(selection::gp_mutual_information_selection(
        training, dataset().wireless_ids(), count));
  }
}
BENCHMARK(BM_GpPlacement)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  core::PipelineConfig config;
  const core::ThermalModelingPipeline pipeline(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.run(
        dataset().trace, dataset().schedule, split(),
        dataset().wireless_ids(), dataset().input_ids(),
        dataset().thermostat_ids()));
  }
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
