#include "auditherm/core/cli.hpp"

#include <algorithm>
#include <cstring>

namespace auditherm::core::cli {

bool ParsedOptions::has(std::string_view name) const {
  return values_.find(std::string(name)) != values_.end();
}

std::optional<std::string> ParsedOptions::get(std::string_view name) const {
  const auto it = values_.find(std::string(name));
  return it == values_.end() ? std::nullopt
                             : std::optional<std::string>(it->second);
}

std::string ParsedOptions::require(std::string_view name) const {
  const auto v = get(name);
  if (!v) throw UsageError("missing required --" + std::string(name));
  return *v;
}

long ParsedOptions::get_long(std::string_view name, long fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    std::size_t consumed = 0;
    const long parsed = std::stol(*v, &consumed);
    if (consumed != v->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw UsageError("--" + std::string(name) + " expects an integer, got '" +
                     *v + "'");
  }
}

double ParsedOptions::get_double(std::string_view name,
                                 double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*v, &consumed);
    if (consumed != v->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw UsageError("--" + std::string(name) + " expects a number, got '" +
                     *v + "'");
  }
}

OptionSet::OptionSet(std::string command, std::vector<OptionSpec> specs)
    : command_(std::move(command)), specs_(std::move(specs)) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    for (std::size_t j = i + 1; j < specs_.size(); ++j) {
      if (specs_[i].name == specs_[j].name) {
        throw std::invalid_argument("OptionSet: duplicate spec --" +
                                    specs_[i].name);
      }
    }
  }
}

const OptionSpec* OptionSet::find(std::string_view name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

ParsedOptions OptionSet::parse(int argc, const char* const* argv,
                               int first) const {
  ParsedOptions out;
  for (int i = first; i < argc; ++i) {
    const char* raw = argv[i];
    if (std::strncmp(raw, "--", 2) != 0) {
      throw UsageError(std::string("expected --flag, got '") + raw + "'");
    }
    // Split --name=value before lookup so both spellings share the
    // validation below.
    std::string name(raw + 2);
    std::optional<std::string> inline_value;
    if (const std::size_t eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.resize(eq);
    }
    const OptionSpec* spec = find(name);
    if (spec == nullptr) {
      throw UsageError("unknown flag --" + name + " for '" + command_ + "'");
    }
    if (out.values_.find(name) != out.values_.end()) {
      throw UsageError("duplicate flag --" + name +
                       " (each flag may be given once)");
    }
    std::string value;
    if (spec->takes_value) {
      if (inline_value) {
        value = std::move(*inline_value);
      } else {
        // A following token that is itself a flag means the value was
        // forgotten — consuming it would silently misparse
        // `--metrics-out --trace` into metrics_out = "--trace".
        if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
          throw UsageError("--" + name + " expects a value");
        }
        value = argv[++i];
      }
    } else if (inline_value) {
      throw UsageError("--" + name + " does not take a value");
    }
    out.values_.emplace(name, std::move(value));
  }
  for (const auto& spec : specs_) {
    if (spec.required && !out.has(spec.name)) {
      throw UsageError("missing required --" + spec.name);
    }
  }
  return out;
}

std::string OptionSet::usage() const {
  std::string text = "usage: auditherm " + command_;
  for (const auto& spec : specs_) {
    text += ' ';
    if (!spec.required) text += '[';
    text += "--" + spec.name;
    if (spec.takes_value) {
      text += ' ';
      text += spec.value_name.empty() ? "VALUE" : spec.value_name;
    }
    if (!spec.required) text += ']';
  }
  text += '\n';
  for (const auto& spec : specs_) {
    std::string flag = "  --" + spec.name;
    if (spec.takes_value) {
      flag += ' ';
      flag += spec.value_name.empty() ? "VALUE" : spec.value_name;
    }
    constexpr std::size_t kHelpColumn = 26;
    if (flag.size() < kHelpColumn) flag.append(kHelpColumn - flag.size(), ' ');
    text += flag + ' ' + spec.help + '\n';
  }
  return text;
}

std::vector<OptionSpec> common_options() {
  return {
      {"threads", true, false, "N",
       "worker threads (0 = auto); results identical at any value"},
      {"cache", true, false, "on|off",
       "stage cache for repeated pipeline stages (default on)"},
      {"metrics-out", true, false, "FILE",
       "write run metrics and tracing spans as JSON"},
      {"trace", false, false, "",
       "print the span tree and counters to stderr"},
  };
}

CommonOptions parse_common(const ParsedOptions& options) {
  CommonOptions common;
  const long threads = options.get_long("threads", 0);
  if (threads < 0) throw UsageError("--threads must be >= 0");
  common.threads = static_cast<std::size_t>(threads);
  if (const auto cache = options.get("cache")) {
    if (*cache == "on") {
      common.cache = true;
    } else if (*cache == "off") {
      common.cache = false;
    } else {
      throw UsageError("--cache expects on|off, got '" + *cache + "'");
    }
  }
  if (const auto out = options.get("metrics-out")) common.metrics_out = *out;
  common.trace = options.has("trace");
  return common;
}

}  // namespace auditherm::core::cli
