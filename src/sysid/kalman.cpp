#include "auditherm/sysid/kalman.hpp"

#include <stdexcept>

#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/obs/trace_span.hpp"

namespace auditherm::sysid {

namespace {

/// Augmented transition for [T; dT]:
///   T(k+1)  = A1 T + A2 dT + B u
///   dT(k+1) = T(k+1) - T(k) = (A1 - I) T + A2 dT + B u
linalg::Matrix augmented_transition(const ThermalModel& model) {
  const std::size_t p = model.state_count();
  if (model.order() == ModelOrder::kFirst) return model.a();
  linalg::Matrix t(2 * p, 2 * p);
  t.set_block(0, 0, model.a());
  t.set_block(0, p, model.a2());
  linalg::Matrix a1_minus_i = model.a();
  for (std::size_t i = 0; i < p; ++i) a1_minus_i(i, i) -= 1.0;
  t.set_block(p, 0, a1_minus_i);
  t.set_block(p, p, model.a2());
  return t;
}

linalg::Matrix augmented_input_map(const ThermalModel& model) {
  const std::size_t p = model.state_count();
  if (model.order() == ModelOrder::kFirst) return model.b();
  linalg::Matrix b(2 * p, model.input_count());
  b.set_block(0, 0, model.b());
  b.set_block(p, 0, model.b());  // dT(k+1) includes the same B u term
  return b;
}

}  // namespace

KalmanFilter::KalmanFilter(ThermalModel model, KalmanOptions options)
    : model_(std::move(model)),
      options_(options),
      transition_(augmented_transition(model_)),
      input_map_(augmented_input_map(model_)) {
  if (options.process_noise <= 0.0 || options.measurement_noise <= 0.0 ||
      options.initial_variance <= 0.0) {
    throw std::invalid_argument("KalmanFilter: non-positive noise variance");
  }
}

std::size_t KalmanFilter::augmented_size() const noexcept {
  return model_.order() == ModelOrder::kSecond ? 2 * model_.state_count()
                                               : model_.state_count();
}

void KalmanFilter::reset(const linalg::Vector& initial_temps) {
  const std::size_t p = model_.state_count();
  if (initial_temps.size() != p) {
    throw std::invalid_argument("KalmanFilter::reset: size mismatch");
  }
  const std::size_t n = augmented_size();
  state_.assign(n, 0.0);
  for (std::size_t i = 0; i < p; ++i) state_[i] = initial_temps[i];
  covariance_ = linalg::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    covariance_(i, i) = options_.initial_variance;
  }
  initialized_ = true;
}

void KalmanFilter::predict(const linalg::Vector& inputs) {
  obs::TraceSpan span("sysid.kalman.predict");
  static const obs::MetricId kPredicts =
      obs::counter_id("sysid.kalman.predicts");
  obs::add_counter(kPredicts);
  if (!initialized_) {
    throw std::invalid_argument("KalmanFilter::predict: reset() first");
  }
  if (inputs.size() != model_.input_count()) {
    throw std::invalid_argument("KalmanFilter::predict: input size mismatch");
  }
  // x = A x + B u.
  linalg::Vector next = transition_ * state_;
  const linalg::Vector bu = input_map_ * inputs;
  for (std::size_t i = 0; i < next.size(); ++i) next[i] += bu[i];
  state_ = std::move(next);

  // P = A P A^T + Q (process noise enters the temperature block).
  covariance_ = transition_ * covariance_ * transition_.transposed();
  for (std::size_t i = 0; i < model_.state_count(); ++i) {
    covariance_(i, i) += options_.process_noise;
  }
  // A touch of noise on the delta block keeps it observable too.
  for (std::size_t i = model_.state_count(); i < augmented_size(); ++i) {
    covariance_(i, i) += options_.process_noise;
  }
}

void KalmanFilter::update(const std::vector<std::size_t>& measured_states,
                          const linalg::Vector& measurements) {
  obs::TraceSpan span("sysid.kalman.update");
  static const obs::MetricId kUpdates =
      obs::counter_id("sysid.kalman.updates");
  obs::add_counter(kUpdates);
  if (!initialized_) {
    throw std::invalid_argument("KalmanFilter::update: reset() first");
  }
  if (measured_states.size() != measurements.size()) {
    throw std::invalid_argument("KalmanFilter::update: size mismatch");
  }
  if (measured_states.empty()) return;
  const std::size_t p = model_.state_count();
  const std::size_t n = augmented_size();
  const std::size_t m = measured_states.size();
  for (std::size_t idx : measured_states) {
    if (idx >= p) {
      throw std::invalid_argument("KalmanFilter::update: bad state index");
    }
  }

  // Innovation S = H P H^T + R and cross term P H^T, with H selecting rows.
  linalg::Matrix pht(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      pht(i, j) = covariance_(i, measured_states[j]);
    }
  }
  linalg::Matrix s(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      s(i, j) = covariance_(measured_states[i], measured_states[j]);
    }
    s(i, i) += options_.measurement_noise;
  }

  // Gain K = P H^T S^{-1}: solve S K^T = (P H^T)^T column-wise.
  const linalg::CholeskyDecomposition chol(s);
  const linalg::Matrix k_t = chol.solve(pht.transposed());  // m x n
  const linalg::Matrix gain = k_t.transposed();             // n x m

  // Innovation.
  linalg::Vector innovation(m);
  for (std::size_t j = 0; j < m; ++j) {
    innovation[j] = measurements[j] - state_[measured_states[j]];
  }
  const linalg::Vector correction = gain * innovation;
  for (std::size_t i = 0; i < n; ++i) state_[i] += correction[i];

  // P = (I - K H) P.
  linalg::Matrix kh(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      kh(i, measured_states[j]) += gain(i, j);
    }
  }
  linalg::Matrix i_minus_kh = linalg::Matrix::identity(n) - kh;
  covariance_ = i_minus_kh * covariance_;
  // Symmetrize against roundoff drift.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (covariance_(i, j) + covariance_(j, i));
      covariance_(i, j) = v;
      covariance_(j, i) = v;
    }
  }
}

linalg::Vector KalmanFilter::temperatures() const {
  const std::size_t p = model_.state_count();
  return linalg::Vector(state_.begin(),
                        state_.begin() + static_cast<std::ptrdiff_t>(p));
}

linalg::Vector KalmanFilter::temperature_variances() const {
  const std::size_t p = model_.state_count();
  linalg::Vector v(p);
  for (std::size_t i = 0; i < p; ++i) v[i] = covariance_(i, i);
  return v;
}

}  // namespace auditherm::sysid
