#pragma once

/// \file floorplan.hpp
/// Geometry of the instrumented auditorium.
///
/// Reconstructs the paper's testbed (Brauer Hall basement auditorium,
/// ~90 seats): the 25 reliable ground-level temperature sensors with the
/// paper's IDs, the two HVAC thermostats (IDs 40/41) on the front wall,
/// the two front air outlets fed by four VAVs, and the seating region.
/// Exact coordinates are our reconstruction from the paper's Fig. 1/2
/// (the true survey is not published); what matters downstream is the
/// front/back topology, which drives every spatial result in the paper.

#include <cstddef>
#include <vector>

#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::sim {

/// A 2-D position in meters; origin at the front-left corner, x across the
/// room, y from the front (podium) wall toward the back.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two positions.
[[nodiscard]] double distance(const Position& a, const Position& b) noexcept;

/// A linear supply-air diffuser. The paper notes the auditorium has four
/// VAVs but only two air outlets "which span the entire auditorium" —
/// long ceiling diffusers, not point jets.
struct Diffuser {
  Position start;
  Position end;
};

/// Distance from a point to the diffuser segment.
[[nodiscard]] double distance(const Position& p, const Diffuser& d) noexcept;

/// One installed sensor.
struct SensorSite {
  timeseries::ChannelId id = 0;
  Position position;
  bool is_thermostat = false;  ///< one of the HVAC's own wall thermostats
  /// Thermal zone (hall index on a campus plan). Single-hall plans leave
  /// every site in zone 0.
  std::size_t zone = 0;
};

/// The auditorium floor plan.
class FloorPlan {
 public:
  /// The paper's auditorium: 25 sensors + 2 thermostats, 2 outlets, 4 VAVs.
  [[nodiscard]] static FloorPlan brauer_auditorium();

  /// A synthetic scaled-up hall for benchmarks beyond the paper's testbed:
  /// `sensor_count` wireless sensors on a ~2 m near-square grid behind a
  /// front HVAC band, plus the two wall thermostats (ids 40/41, matching
  /// the library convention; wireless ids count up from 1, skipping
  /// 40/41). Room size grows with the grid, so 128-1024 sensor plans stay
  /// geometrically plausible. Throws std::invalid_argument when
  /// sensor_count == 0.
  [[nodiscard]] static FloorPlan synthetic_grid(std::size_t sensor_count);

  /// A campus of `hall_count` copies of the synthetic hall laid out
  /// side-by-side along x with a corridor between neighbors. Each hall is
  /// its own thermal zone (SensorSite::zone = hall index) with its own
  /// grid of `sensors_per_hall` wireless sensors and its own pair of
  /// diffusers; ids count up across halls skipping the thermostat ids
  /// 40/41 and the reserved 100..199 modality band (campus-scale counts
  /// continue in the extended range >= 200, per the CLI channel
  /// conventions), with the thermostats at the campus's front corners
  /// (zones 0 and hall_count - 1). synthetic_grid(n) is exactly
  /// synthetic_campus(1, n). Throws std::invalid_argument when either
  /// count is 0.
  [[nodiscard]] static FloorPlan synthetic_campus(std::size_t hall_count,
                                                  std::size_t sensors_per_hall);

  /// Construct a custom plan. Throws std::invalid_argument on empty
  /// sensors, duplicate ids, non-positive dimensions, or sites/outlets
  /// outside the room.
  FloorPlan(double width_m, double depth_m, std::vector<SensorSite> sensors,
            std::vector<Diffuser> air_outlets, std::size_t vav_count,
            double seating_front_y, double seating_back_y);

  [[nodiscard]] double width() const noexcept { return width_; }
  [[nodiscard]] double depth() const noexcept { return depth_; }
  [[nodiscard]] const std::vector<SensorSite>& sensors() const noexcept {
    return sensors_;
  }
  [[nodiscard]] const std::vector<Diffuser>& air_outlets() const noexcept {
    return outlets_;
  }
  [[nodiscard]] std::size_t vav_count() const noexcept { return vav_count_; }

  /// Sensor ids in site order (the plant's node order).
  [[nodiscard]] std::vector<timeseries::ChannelId> sensor_ids() const;

  /// Ids of the non-thermostat wireless sensors.
  [[nodiscard]] std::vector<timeseries::ChannelId> wireless_ids() const;

  /// Ids of the HVAC thermostats (40/41 in the paper).
  [[nodiscard]] std::vector<timeseries::ChannelId> thermostat_ids() const;

  /// Site lookup by id; throws std::invalid_argument when absent.
  [[nodiscard]] const SensorSite& site(timeseries::ChannelId id) const;

  /// Number of thermal zones: 1 + the largest zone label in use.
  [[nodiscard]] std::size_t zone_count() const noexcept;

  /// Zone label of a sensor; throws std::invalid_argument when absent.
  [[nodiscard]] std::size_t zone_of(timeseries::ChannelId id) const;

  /// True when the position lies in the audience seating rows.
  [[nodiscard]] bool in_seating(const Position& p) const noexcept;

  /// Distance from a position to the nearest wall.
  [[nodiscard]] double wall_distance(const Position& p) const noexcept;

 private:
  double width_ = 0.0;
  double depth_ = 0.0;
  std::vector<SensorSite> sensors_;
  std::vector<Diffuser> outlets_;
  std::size_t vav_count_ = 0;
  double seating_front_y_ = 0.0;
  double seating_back_y_ = 0.0;
};

}  // namespace auditherm::sim
