# Empty compiler generated dependencies file for bench_ablation_eigengap.
# This may be replaced when dependencies are built.
