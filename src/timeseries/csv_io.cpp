#include "auditherm/timeseries/csv_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace auditherm::timeseries {

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

void write_csv(std::ostream& os, const MultiTrace& trace) {
  os << "time_minutes";
  for (ChannelId id : trace.channels()) os << ",ch" << id;
  os << '\n';
  os.precision(10);
  for (std::size_t k = 0; k < trace.size(); ++k) {
    os << trace.grid()[k];
    for (std::size_t c = 0; c < trace.channel_count(); ++c) {
      os << ',';
      if (trace.valid(k, c)) os << trace.value(k, c);
    }
    os << '\n';
  }
}

void write_csv_file(const std::string& path, const MultiTrace& trace) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(f, trace);
  if (!f) throw std::runtime_error("write_csv_file: write failed for " + path);
}

MultiTrace read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("read_csv: empty input");
  }
  const auto header = split_csv_line(line);
  if (header.empty() || header[0] != "time_minutes") {
    throw std::runtime_error("read_csv: bad header, expected time_minutes");
  }
  std::vector<ChannelId> channels;
  for (std::size_t c = 1; c < header.size(); ++c) {
    const auto& h = header[c];
    if (h.size() < 3 || h.compare(0, 2, "ch") != 0) {
      throw std::runtime_error("read_csv: bad channel header '" + h + "'");
    }
    channels.push_back(std::stoi(h.substr(2)));
  }

  std::vector<Minutes> times;
  std::vector<std::vector<std::string>> rows;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto cells = split_csv_line(line);
    if (cells.size() != header.size()) {
      throw std::runtime_error("read_csv: ragged row");
    }
    times.push_back(static_cast<Minutes>(std::stoll(cells[0])));
    rows.push_back(std::move(cells));
  }

  Minutes start = times.empty() ? 0 : times.front();
  Minutes step = 1;
  if (times.size() >= 2) {
    step = times[1] - times[0];
    if (step <= 0) throw std::runtime_error("read_csv: non-increasing time");
    for (std::size_t k = 1; k < times.size(); ++k) {
      if (times[k] - times[k - 1] != step) {
        throw std::runtime_error("read_csv: non-uniform time step");
      }
    }
  }

  MultiTrace trace(TimeGrid(start, step, rows.size()), channels);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    for (std::size_t c = 0; c < channels.size(); ++c) {
      const std::string& cell = rows[k][c + 1];
      if (!cell.empty()) trace.set(k, c, std::stod(cell));
    }
  }
  return trace;
}

MultiTrace read_csv_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(f);
}

}  // namespace auditherm::timeseries
