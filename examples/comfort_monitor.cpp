// Comfort monitoring: evaluate occupant thermal comfort (Fanger PMV/PPD)
// across the auditorium's thermal zones, and show why a single thermostat
// misjudges it — the paper's Section V motivation, quantified.
//
// A 2 degC spatial spread moves PMV by ~0.5, enough to push part of the
// audience out of the ASHRAE-55 comfort band while the thermostat reads
// "comfortable".

#include <cstdio>

#include "auditherm/auditherm.hpp"

using namespace auditherm;

namespace {

hvac::ComfortInputs seated_audience(double temp_c) {
  hvac::ComfortInputs in;
  in.air_temp_c = temp_c;
  in.mean_radiant_temp_c = temp_c;
  in.air_velocity_m_s = 0.12;
  in.relative_humidity = 0.45;
  in.metabolic_rate_met = 1.0;  // seated, listening
  in.clothing_clo = 1.0;        // winter indoor clothing
  return in;
}

}  // namespace

int main() {
  sim::DatasetConfig config;
  config.days = 35;
  config.failure_days = 5;
  const auto dataset = sim::generate_dataset(config);

  // Zone the room as in the paper.
  auto required = dataset.sensor_ids();
  const auto inputs = dataset.input_ids();
  required.insert(required.end(), inputs.begin(), inputs.end());
  const auto split = core::split_dataset(dataset.trace, required,
                                         dataset.schedule,
                                         hvac::Mode::kOccupied);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto occupied = dataset.trace.filter_rows(
      core::and_masks(split.train_mask, mode_mask));
  const auto graph = clustering::build_similarity_graph(
      occupied, dataset.wireless_ids(), {});
  const auto clusters = clustering::spectral_cluster(graph).clusters();

  std::printf("PMV sensitivity at 21 degC (seated audience): %.2f per K\n",
              hvac::pmv_temperature_sensitivity(seated_audience(21.0)));

  // Scan occupied samples: per-zone comfort vs the thermostat's opinion.
  const auto occ_col =
      dataset.trace.require_channel(sim::DatasetChannels::kOccupancy);
  std::size_t samples = 0;
  std::size_t zones_disagree = 0;
  std::size_t thermostat_misjudges = 0;
  double max_pmv_spread = 0.0;
  std::vector<double> zone_pmv_sum(clusters.size(), 0.0);
  double thermostat_pmv_sum = 0.0;

  for (std::size_t k = 0; k < dataset.trace.size(); ++k) {
    const auto t = dataset.trace.grid()[k];
    if (!dataset.schedule.occupied_at(t)) continue;
    if (!dataset.trace.valid(k, occ_col) ||
        dataset.trace.value(k, occ_col) < 20.0) {
      continue;  // want moments with a real audience
    }
    const auto thermostat_mean =
        timeseries::row_mean(dataset.trace, dataset.thermostat_ids())[k];
    if (std::isnan(thermostat_mean)) continue;

    const auto thermostat_comfort =
        hvac::predicted_mean_vote(seated_audience(thermostat_mean));
    thermostat_pmv_sum += thermostat_comfort.pmv;
    bool any_zone_uncomfortable = false;
    bool any_zone_comfortable = false;
    double pmv_lo = 10.0, pmv_hi = -10.0;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      const double zone_temp =
          timeseries::row_mean(dataset.trace, clusters[c])[k];
      if (std::isnan(zone_temp)) continue;
      const auto zone_comfort =
          hvac::predicted_mean_vote(seated_audience(zone_temp));
      zone_pmv_sum[c] += zone_comfort.pmv;
      pmv_lo = std::min(pmv_lo, zone_comfort.pmv);
      pmv_hi = std::max(pmv_hi, zone_comfort.pmv);
      if (hvac::within_comfort_band(zone_comfort)) {
        any_zone_comfortable = true;
      } else {
        any_zone_uncomfortable = true;
      }
    }
    max_pmv_spread = std::max(max_pmv_spread, pmv_hi - pmv_lo);
    if (any_zone_comfortable && any_zone_uncomfortable) ++zones_disagree;
    if (hvac::within_comfort_band(thermostat_comfort) &&
        any_zone_uncomfortable) {
      ++thermostat_misjudges;
    }
    ++samples;
  }

  if (samples == 0) {
    std::printf("no occupied samples with an audience found\n");
    return 1;
  }
  std::printf("\nanalyzed %zu occupied samples with >= 20 occupants\n",
              samples);
  std::printf("mean PMV at the thermostats: %+.2f\n",
              thermostat_pmv_sum / static_cast<double>(samples));
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const double pmv = zone_pmv_sum[c] / static_cast<double>(samples);
    std::printf("mean PMV in zone %zu: %+.2f (%s)\n", c + 1, pmv,
                std::abs(pmv) <= 0.5 ? "inside ASHRAE-55 band"
                                     : "OUTSIDE ASHRAE-55 band");
  }
  std::printf("\nlargest PMV spread across zones in one moment: %.2f "
              "(the paper's Section V argument: ~2 degC of spatial spread "
              "moves PMV by ~0.5)\n",
              max_pmv_spread);
  std::printf("samples where zones DISAGREED about comfort: %zu of %zu "
              "(%.0f%%)\n",
              zones_disagree, samples,
              100.0 * static_cast<double>(zones_disagree) /
                  static_cast<double>(samples));
  std::printf("samples where the thermostat judged the room comfortable "
              "while some zone was not: %zu of %zu (%.0f%%)\n",
              thermostat_misjudges, samples,
              100.0 * static_cast<double>(thermostat_misjudges) /
                  static_cast<double>(samples));
  std::printf("-> zone-level sensing (the paper's pipeline) is what makes "
              "comfort-aware control possible.\n");
  return 0;
}
