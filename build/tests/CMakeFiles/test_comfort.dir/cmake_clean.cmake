file(REMOVE_RECURSE
  "CMakeFiles/test_comfort.dir/test_comfort.cpp.o"
  "CMakeFiles/test_comfort.dir/test_comfort.cpp.o.d"
  "test_comfort"
  "test_comfort.pdb"
  "test_comfort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comfort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
