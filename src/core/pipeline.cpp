#include "auditherm/core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace auditherm::core {

namespace {

using timeseries::ChannelId;

/// Deduplicate while preserving order (a sensor may represent two
/// clusters under the thermostat baseline).
std::vector<ChannelId> unique_ordered(const std::vector<ChannelId>& ids) {
  std::vector<ChannelId> out;
  for (ChannelId id : ids) {
    if (std::find(out.begin(), out.end(), id) == out.end()) {
      out.push_back(id);
    }
  }
  return out;
}

void add_similarity_options(StageKeyHasher& h,
                            const clustering::SimilarityOptions& o) {
  h.add(static_cast<std::uint64_t>(o.metric));
  h.add(o.sigma);
  h.add(o.threshold);
  h.add(o.threshold_quantile);
  h.add(static_cast<std::uint64_t>(o.knn_floor));
  h.add(static_cast<std::uint64_t>(o.sparsification));
  h.add(static_cast<std::uint64_t>(o.knn_k));
}

/// Everything spectral_cluster consumes *beyond* the spectrum itself
/// (the Laplacian kind is folded into the spectrum stage's key).
void add_spectral_options(StageKeyHasher& h,
                          const clustering::SpectralOptions& o) {
  h.add(static_cast<std::uint64_t>(o.cluster_count));
  h.add(static_cast<std::uint64_t>(o.k_min));
  h.add(static_cast<std::uint64_t>(o.k_max));
  h.add(o.normalize_rows);
  h.add(static_cast<std::uint64_t>(o.kmeans.max_iterations));
  h.add(static_cast<std::uint64_t>(o.kmeans.restarts));
  h.add(o.kmeans.seed);
}

/// Pipeline-level metrics, resolved once. Purely observational: counts
/// and clock reads never feed back into the computation.
struct PipelineMetrics {
  obs::MetricId runs = obs::counter_id("pipeline.runs");
  obs::MetricId prepares = obs::counter_id("pipeline.prepares");
  obs::MetricId sweep_cases = obs::counter_id("pipeline.sweep_cases");
  obs::MetricId run_us = obs::histogram_id("pipeline.run_us");
};

const PipelineMetrics& pipeline_metrics() {
  static const PipelineMetrics m;
  return m;
}

/// Span name for a cached stage ("stage." + name); tiny and off any hot
/// loop — prepare() runs once per pipeline run.
std::string stage_span_name(std::string_view name) {
  std::string s;
  s.reserve(6 + name.size());
  s.append("stage.");
  s.append(name);
  return s;
}

}  // namespace

ThermalModelingPipeline::ThermalModelingPipeline(PipelineConfig config)
    : config_(std::move(config)) {
  if (config_.sensors_per_cluster == 0) {
    throw std::invalid_argument(
        "ThermalModelingPipeline: sensors_per_cluster == 0");
  }
}

StageArtifacts ThermalModelingPipeline::prepare(
    const timeseries::MultiTrace& trace, const hvac::Schedule& schedule,
    const DataSplit& split, const std::vector<ChannelId>& sensor_ids,
    const std::vector<ChannelId>& input_ids, StageCache* cache,
    const sysid::InputPlan* input_plan) const {
  obs::TraceSpan prepare_span("pipeline.prepare");
  obs::add_counter(pipeline_metrics().prepares);
  const ThreadCountScope thread_scope(config_.threads);
  const auto mode_mask = schedule.mode_mask(trace.grid(), config_.mode);

  StageArtifacts art;
  art.train_mode_mask = and_masks(split.train_mask, mode_mask);

  // --- Input-plan resolution (not cached: calibration is cheap and its
  // result is what the fingerprint below keys everything else on). -------
  if (input_plan != nullptr) {
    art.inputs = std::make_shared<const sysid::ResolvedInputPlan>(
        sysid::resolve_input_plan(*input_plan, trace, split.train_mask));
  }
  const std::vector<ChannelId>& effective_inputs =
      art.inputs != nullptr ? art.inputs->channel_ids : input_ids;
  // 0 with no plan or a pure ground-truth one — folded unconditionally so
  // ground-truth runs all key identically while any non-trivial plan (or
  // recalibration) re-keys the whole chain.
  const std::uint64_t inputs_fp =
      art.inputs != nullptr ? art.inputs->fingerprint : 0;

  // Runs a stage through the cache, or builds it inline when uncached;
  // both paths execute the same builder, which is what makes cached and
  // uncached results bitwise identical. The stage span covers the cache
  // probe too, so a hit shows up as a near-zero-duration stage.
  const auto run_stage = [&](std::string_view name, std::uint64_t key,
                             auto build) {
    obs::TraceSpan stage_span(stage_span_name(name));
    using T = std::remove_cvref_t<decltype(build())>;
    if (cache != nullptr) return cache->get_or_build<T>(name, key, build);
    return std::shared_ptr<const T>(std::make_shared<const T>(build()));
  };

  // Keys chain: each stage folds its upstream key with the options it
  // newly consumes, so editing one knob invalidates exactly the suffix
  // that depends on it. Strategy and seed never enter any key.
  const std::uint64_t fp = trace_fingerprint(trace);

  // --- Training view: train days in mode, rows reindexed. ----------------
  // Uncached, this is a pure index mapping over the caller's trace — no
  // samples are copied and the artifacts borrow the trace's lifetime.
  // Cached, the view must outlive the caller, so the cache stores a
  // materialized copy (built by the same filter, so identical bits) and
  // the view reads that.
  StageKeyHasher train_h;
  train_h.add(fp);
  train_h.add(inputs_fp);
  train_h.add(split.train_mask);
  train_h.add(mode_mask);
  const std::uint64_t train_key = train_h.value();
  {
    obs::TraceSpan stage_span(stage_span_name(stage::kTrainingView));
    if (cache != nullptr) {
      art.training_store = cache->get_or_build<timeseries::MultiTrace>(
          stage::kTrainingView, train_key,
          [&] { return trace.filter_rows(art.train_mode_mask); });
      art.training = timeseries::TraceView(*art.training_store);
    } else {
      art.training =
          timeseries::TraceView(trace).filter_rows(art.train_mode_mask);
    }
  }

  // --- Similarity graph over the dense network. --------------------------
  StageKeyHasher graph_h;
  graph_h.add(train_key);
  graph_h.add(sensor_ids);
  add_similarity_options(graph_h, config_.similarity);
  const std::uint64_t graph_key = graph_h.value();
  art.graph = run_stage(stage::kSimilarityGraph, graph_key, [&] {
    return clustering::build_similarity_graph(art.training, sensor_ids,
                                              config_.similarity);
  });

  // --- Laplacian eigendecomposition (the expensive operator). ------------
  // The key folds in the resolved solver and the partial-spectrum width so
  // a partial artifact can never be mistaken for a full one. On the Jacobi
  // path (paper-scale graphs under kAuto) the pair count is 0 = full
  // spectrum, so sweep cases with different k keep sharing one spectrum
  // artifact exactly as before this knob existed.
  const std::size_t vertex_count = art.graph->weights.rows();
  const auto eigen_method = linalg::resolve_eigen_method(
      config_.spectral.eigen_method, vertex_count);
  const std::size_t eigen_pairs =
      eigen_method == linalg::EigenMethod::kTridiagonal ||
              eigen_method == linalg::EigenMethod::kLanczos
          ? clustering::needed_eigenpairs(config_.spectral, vertex_count)
          : 0;
  StageKeyHasher spectrum_h;
  spectrum_h.add(graph_key);
  spectrum_h.add(static_cast<std::uint64_t>(config_.spectral.laplacian));
  spectrum_h.add(static_cast<std::uint64_t>(eigen_method));
  spectrum_h.add(static_cast<std::uint64_t>(eigen_pairs));
  const std::uint64_t spectrum_key = spectrum_h.value();
  art.spectrum = run_stage(stage::kSpectrum, spectrum_key, [&] {
    return clustering::analyze_spectrum(art.graph->weights,
                                        config_.spectral.laplacian,
                                        eigen_method, eigen_pairs);
  });

  // --- Clustering: eigengap + k-means on the spectral embedding. ---------
  StageKeyHasher cluster_h;
  cluster_h.add(spectrum_key);
  add_spectral_options(cluster_h, config_.spectral);
  const std::uint64_t cluster_key = cluster_h.value();
  art.clustering = run_stage(stage::kClustering, cluster_key, [&] {
    return clustering::spectral_cluster(*art.graph, *art.spectrum,
                                        config_.spectral);
  });
  art.clusters = run_stage(stage::kClusterSets, cluster_key, [&] {
    return art.clustering->clusters();
  });

  // --- Measured all-sensor mean per cluster over the whole trace. --------
  art.cluster_means = run_stage(stage::kClusterMeans, cluster_key, [&] {
    std::vector<linalg::Vector> means;
    means.reserve(art.clusters->size());
    for (const auto& members : *art.clusters) {
      means.push_back(timeseries::row_mean(trace, members));
    }
    return means;
  });

  // --- Evaluation windows on the validation days. ------------------------
  // Input validity is checked on the plan-augmented view: a derived input
  // (estimated occupancy) has its own gaps, so the windows — like every
  // downstream fit — see exactly the columns the model will consume.
  StageKeyHasher windows_h;
  windows_h.add(fp);
  windows_h.add(inputs_fp);
  windows_h.add(split.validation_mask);
  windows_h.add(mode_mask);
  windows_h.add(effective_inputs);
  windows_h.add(static_cast<std::uint64_t>(config_.evaluation.min_steps));
  art.windows = run_stage(stage::kWindows, windows_h.value(), [&] {
    const timeseries::TraceView full =
        art.inputs != nullptr ? art.inputs->augment(trace)
                              : timeseries::TraceView(trace);
    auto window_mask = and_masks(split.validation_mask, mode_mask);
    window_mask = and_masks(
        window_mask, timeseries::rows_with_all_valid(full, effective_inputs));
    return timeseries::find_segments(
        window_mask, std::max<std::size_t>(config_.evaluation.min_steps, 2));
  });

  return art;
}

PipelineResult ThermalModelingPipeline::run_from(
    const StageArtifacts& artifacts, const timeseries::MultiTrace& trace,
    const std::vector<ChannelId>& sensor_ids,
    const std::vector<ChannelId>& input_ids,
    const std::vector<ChannelId>& thermostat_ids) const {
  const ThreadCountScope thread_scope(config_.threads);
  const timeseries::TraceView& training = artifacts.training;
  const auto& clusters = *artifacts.clusters;

  // Resolved input plan (when present) supersedes the raw input ids: the
  // fit and every evaluation read the plan-augmented view, whose derived
  // columns the artifacts keep alive. Without a plan `full` is the plain
  // whole-trace view — the exact object the implicit conversions below
  // used to build.
  const std::vector<ChannelId>& effective_inputs =
      artifacts.inputs != nullptr ? artifacts.inputs->channel_ids : input_ids;
  const timeseries::TraceView full = artifacts.inputs != nullptr
                                         ? artifacts.inputs->augment(trace)
                                         : timeseries::TraceView(trace);

  PipelineResult result;
  result.clustering = *artifacts.clustering;

  // --- Step 2: representative selection. --------------------------------
  {
    obs::TraceSpan select_span("pipeline.select");
    switch (config_.strategy) {
      case SelectionStrategy::kStratifiedNearMean:
        result.selection = selection::stratified_near_mean(
            training, clusters, config_.sensors_per_cluster);
        break;
      case SelectionStrategy::kStratifiedRandom:
        result.selection = selection::stratified_random(
            clusters, config_.selection_seed, config_.sensors_per_cluster);
        break;
      case SelectionStrategy::kSimpleRandom:
        result.selection = selection::simple_random(
            training, clusters, config_.selection_seed,
            config_.sensors_per_cluster);
        break;
      case SelectionStrategy::kThermostats:
        result.selection =
            selection::thermostat_baseline(thermostat_ids, clusters.size());
        break;
      case SelectionStrategy::kGaussianProcess: {
        const auto chosen = selection::gp_mutual_information_selection(
            training, sensor_ids,
            std::min(config_.sensors_per_cluster * clusters.size(),
                     sensor_ids.size()));
        result.selection = selection::assign_to_clusters(
            training, clusters, chosen, config_.sensors_per_cluster);
        break;
      }
    }
  }

  // --- Step 3: identify the reduced model over the selected sensors. ----
  {
    obs::TraceSpan identify_span("pipeline.identify");
    const auto states = unique_ordered(result.selection.flattened());
    const sysid::ModelEstimator estimator(states, effective_inputs,
                                          config_.order, config_.estimation);
    result.reduced_model = estimator.fit(full, artifacts.train_mode_mask);
  }

  // --- Evaluation on the validation days. --------------------------------
  {
    obs::TraceSpan evaluate_span("pipeline.evaluate");
    result.reduced_eval = sysid::evaluate_prediction(
        result.reduced_model, full, *artifacts.windows, config_.evaluation);
    result.cluster_mean_errors = evaluate_reduced_model_cluster_mean(
        result.reduced_model, full, clusters, result.selection,
        *artifacts.windows, *artifacts.cluster_means, config_.evaluation);
  }
  return result;
}

PipelineResult ThermalModelingPipeline::run(
    const timeseries::MultiTrace& trace, const hvac::Schedule& schedule,
    const DataSplit& split, const std::vector<ChannelId>& sensor_ids,
    const std::vector<ChannelId>& input_ids,
    const RunOptions& options) const {
  // Install the caller's sink (no-op when null or already current) so
  // every span/counter below this point lands in it.
  const obs::RecorderScope obs_scope(options.metrics);
  obs::Recorder* rec = obs::kCompiledIn ? obs::current() : nullptr;
  obs::TraceSpan run_span("pipeline.run");
  const std::uint64_t t0 = rec != nullptr ? rec->now_ns() : 0;
  if (rec != nullptr) rec->metrics().add(pipeline_metrics().runs);

  const ThreadCountScope thread_scope(config_.threads);
  PipelineResult result;
  if (options.artifacts != nullptr) {
    result = run_from(*options.artifacts, trace, sensor_ids, input_ids,
                      options.thermostat_ids);
  } else {
    const auto artifacts = prepare(trace, schedule, split, sensor_ids,
                                   input_ids, options.cache,
                                   options.input_plan);
    result = run_from(artifacts, trace, sensor_ids, input_ids,
                      options.thermostat_ids);
  }
  if (rec != nullptr) {
    rec->metrics().observe(pipeline_metrics().run_us,
                           static_cast<double>(rec->now_ns() - t0) / 1e3);
  }
  return result;
}

selection::ClusterMeanErrors evaluate_reduced_model_cluster_mean(
    const sysid::ThermalModel& model, const timeseries::TraceView& trace,
    const selection::ClusterSets& clusters,
    const selection::Selection& selection,
    const std::vector<timeseries::Segment>& windows,
    const sysid::EvaluationOptions& options) {
  // Measured all-sensor mean per cluster over the whole trace.
  std::vector<linalg::Vector> cluster_means;
  cluster_means.reserve(clusters.size());
  for (const auto& members : clusters) {
    cluster_means.push_back(timeseries::row_mean(trace, members));
  }
  return evaluate_reduced_model_cluster_mean(model, trace, clusters, selection,
                                             windows, cluster_means, options);
}

selection::ClusterMeanErrors evaluate_reduced_model_cluster_mean(
    const sysid::ThermalModel& model, const timeseries::TraceView& trace,
    const selection::ClusterSets& clusters,
    const selection::Selection& selection,
    const std::vector<timeseries::Segment>& windows,
    const std::vector<linalg::Vector>& cluster_means,
    const sysid::EvaluationOptions& options) {
  if (selection.per_cluster.size() != clusters.size()) {
    throw std::invalid_argument(
        "evaluate_reduced_model_cluster_mean: cluster count mismatch");
  }
  if (cluster_means.size() != clusters.size()) {
    throw std::invalid_argument(
        "evaluate_reduced_model_cluster_mean: cluster mean count mismatch");
  }

  // Map each cluster to the model-state indices of its selected sensors.
  std::vector<std::vector<std::size_t>> cluster_state_idx(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (ChannelId id : selection.per_cluster[c]) {
      const auto& states = model.state_channels();
      const auto it = std::find(states.begin(), states.end(), id);
      if (it == states.end()) {
        throw std::invalid_argument(
            "evaluate_reduced_model_cluster_mean: selected sensor not a "
            "model state");
      }
      cluster_state_idx[c].push_back(
          static_cast<std::size_t>(it - states.begin()));
    }
    if (cluster_state_idx[c].empty()) {
      throw std::invalid_argument(
          "evaluate_reduced_model_cluster_mean: cluster with no selection");
    }
  }

  // Each window's open-loop simulation is independent; per-window error
  // buffers are concatenated in window order afterwards, so the pooled
  // error samples are identical at any thread count.
  std::vector<std::vector<linalg::Vector>> window_errors(windows.size());
  parallel_for(0, windows.size(), 1, [&](std::size_t w) {
    const auto wp = sysid::predict_window(model, trace, windows[w], options);
    if (!wp) return;
    auto& local = window_errors[w];
    local.resize(clusters.size());
    for (std::size_t k = 0; k < wp->predicted.rows(); ++k) {
      const std::size_t row = wp->first_row + k;
      for (std::size_t c = 0; c < clusters.size(); ++c) {
        const double target = cluster_means[c][row];
        if (std::isnan(target)) continue;
        double pred = 0.0;
        for (std::size_t s : cluster_state_idx[c]) {
          pred += wp->predicted(k, s);
        }
        pred /= static_cast<double>(cluster_state_idx[c].size());
        local[c].push_back(std::abs(pred - target));
      }
    }
  });

  selection::ClusterMeanErrors errors;
  errors.per_cluster_abs.resize(clusters.size());
  for (const auto& local : window_errors) {
    for (std::size_t c = 0; c < local.size(); ++c) {
      errors.per_cluster_abs[c].insert(errors.per_cluster_abs[c].end(),
                                       local[c].begin(), local[c].end());
    }
  }
  return errors;
}

std::vector<PipelineResult> run_strategy_sweep(
    const PipelineConfig& base, const std::vector<SweepCase>& cases,
    const timeseries::MultiTrace& trace, const hvac::Schedule& schedule,
    const DataSplit& split, const std::vector<ChannelId>& sensor_ids,
    const std::vector<ChannelId>& input_ids, const RunOptions& options) {
  // One recorder for the whole sweep: per-case run() calls pass no sink
  // of their own and see this one already current.
  const obs::RecorderScope obs_scope(options.metrics);
  obs::TraceSpan sweep_span("pipeline.sweep");
  obs::add_counter(pipeline_metrics().sweep_cases, cases.size());

  const ThreadCountScope thread_scope(base.threads);
  StageCache local_cache;
  StageCache& shared = options.cache != nullptr ? *options.cache : local_cache;

  // Compute (or fetch) the shared Step-1 prefix exactly once, before the
  // fan-out: every case resolves to the same keys because strategy and
  // seed are not part of them. With precomputed artifacts the prefix (and
  // the cache) is skipped outright.
  if (options.artifacts == nullptr) {
    const ThermalModelingPipeline prefix(base);
    (void)prefix.prepare(trace, schedule, split, sensor_ids, input_ids,
                         &shared, options.input_plan);
  }

  std::vector<PipelineResult> results(cases.size());
  // Cases fan out across the pool; each case's own kernels then run
  // serially (nested regions are inline), which is the right granularity:
  // whole pipeline runs dwarf any single kernel. Each case takes the
  // cache's hit path for the Step-1 stages and computes only Step 2 +
  // Step 3 + evaluation.
  parallel_for(0, cases.size(), 1, [&](std::size_t i) {
    obs::TraceSpan case_span("sweep.case");
    PipelineConfig config = base;
    config.strategy = cases[i].strategy;
    config.selection_seed = cases[i].seed;
    config.threads = 0;  // the sweep's scope already applied base.threads
    const ThermalModelingPipeline pipeline(config);
    RunOptions case_options;
    case_options.thermostat_ids = options.thermostat_ids;
    case_options.artifacts = options.artifacts;
    case_options.input_plan = options.input_plan;
    if (options.artifacts == nullptr) case_options.cache = &shared;
    results[i] = pipeline.run(trace, schedule, split, sensor_ids, input_ids,
                              case_options);
  });
  return results;
}

StreamingRunResult run_streaming_identification(
    const timeseries::TraceView& trace,
    const std::vector<timeseries::ChannelId>& state_ids,
    const std::vector<timeseries::ChannelId>& input_ids,
    const StreamingRunConfig& config, const std::vector<bool>& row_filter) {
  const obs::RecorderScope obs_scope(config.metrics);
  obs::TraceSpan span("pipeline.streaming");
  sysid::StreamingEstimator estimator(state_ids, input_ids, config.order,
                                      config.streaming);
  estimator.push_trace(trace, row_filter);
  StreamingRunResult result;
  result.stats = estimator.stats();
  result.window_transitions = estimator.window_transitions();
  result.drift_events = estimator.drift_events();
  result.cusum = estimator.cusum_statistic();
  result.has_model = estimator.has_model();
  if (result.has_model) {
    result.model = estimator.model();
    result.aic = estimator.aic();
  }
  return result;
}

}  // namespace auditherm::core
