// Extension experiment E1 (beyond the paper's evaluation): does the
// modeling pipeline actually pay off for control, as the paper's
// conclusion argues? Closed-loop comparison over the same 21 simulated
// days:
//   * the building's thermostat rule (status quo baseline),
//   * MPC on a reduced model over SMS-selected sensors (the pipeline),
//   * MPC on a model identified from the two thermostats only
//     (what you could do WITHOUT the dense pilot + clustering).
//
// Expected shape: pipeline-MPC beats the thermostat rule on comfort at
// comparable or lower energy, and beats thermostat-only MPC because its
// sensors actually span the room's thermal zones.

#include "bench_common.hpp"

using namespace auditherm;

namespace {

sysid::ThermalModel identify(const sim::AuditoriumDataset& dataset,
                             const core::DataSplit& split,
                             const std::vector<timeseries::ChannelId>& states) {
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  sysid::ModelEstimator estimator(states, dataset.extended_input_ids(),
                                  sysid::ModelOrder::kSecond);
  return estimator.fit(dataset.trace,
                       core::and_masks(split.train_mask, mode_mask));
}

void show(const char* name, const control::ClosedLoopMetrics& m) {
  std::printf("%-26s violations %5.1f%% | mean |dT| %.2f degC | coil %5.0f "
              "kWh | fan %4.1f kWh\n",
              name, 100.0 * m.comfort_violation_fraction,
              m.mean_abs_deviation_c, m.coil_energy_kwh, m.fan_energy_kwh);
}

}  // namespace

int main() {
  const bench::ObsSession obs_session;
  bench::print_header(
      "Extension E1: closed-loop control value of the pipeline");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto training = dataset.trace.filter_rows(
      core::and_masks(split.train_mask, mode_mask));

  // The pipeline's sensors and zones.
  const auto graph = clustering::build_similarity_graph(
      training, dataset.wireless_ids(), {});
  const auto clusters = clustering::spectral_cluster(graph).clusters();
  const auto selection = selection::stratified_near_mean(training, clusters);
  std::printf("zones: %zu | SMS sensors:", clusters.size());
  for (auto id : selection.flattened()) std::printf(" %d", id);
  std::printf("\n\n");

  const auto pipeline_model = identify(dataset, split, selection.flattened());
  const auto thermostat_model =
      identify(dataset, split, dataset.thermostat_ids());

  control::ClosedLoopConfig loop;
  loop.days = 21;
  loop.seed = 31337;
  loop.weather.seed = 555;  // fresh season, not the identification data
  loop.occupancy.seed = 556;
  loop.comfort_zones = clusters;

  // Comfort-aware setpoint: the PMV-neutral temperature of this audience.
  const double t_neutral = hvac::neutral_temperature(loop.comfort_model);
  std::printf("PMV-neutral temperature: %.2f degC\n\n", t_neutral);
  control::MpcOptions mpc_options;
  mpc_options.objective.setpoint_c = t_neutral;

  control::RuleBasedController rule(hvac::ThermostatConfig{}, loop.schedule,
                                    dataset.thermostat_ids());
  control::ModelPredictiveController pipeline_mpc(
      pipeline_model, dataset.plan.vav_count(), loop.schedule, mpc_options);
  control::ModelPredictiveController thermostat_mpc(
      thermostat_model, dataset.plan.vav_count(), loop.schedule, mpc_options);

  const auto rule_m = control::run_closed_loop(loop, rule, t_neutral);
  const auto pipe_m = control::run_closed_loop(loop, pipeline_mpc, t_neutral);
  const auto thermo_m =
      control::run_closed_loop(loop, thermostat_mpc, t_neutral);

  show("thermostat rule", rule_m);
  show("MPC (thermostats only)", thermo_m);
  show("MPC (pipeline sensors)", pipe_m);

  std::printf("\nshape checks: pipeline-MPC comfort <= rule: %s | "
              "pipeline-MPC comfort <= thermostat-MPC: %s | energy within "
              "25%% of rule: %s\n",
              pipe_m.comfort_violation_fraction <=
                      rule_m.comfort_violation_fraction + 1e-9
                  ? "yes"
                  : "NO",
              pipe_m.comfort_violation_fraction <=
                      thermo_m.comfort_violation_fraction + 1e-9
                  ? "yes"
                  : "NO",
              pipe_m.total_energy_kwh() <=
                      1.25 * rule_m.total_energy_kwh()
                  ? "yes"
                  : "NO");
  return 0;
}
