file(REMOVE_RECURSE
  "libauditherm_hvac.a"
)
