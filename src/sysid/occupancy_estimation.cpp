#include "auditherm/sysid/occupancy_estimation.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "auditherm/linalg/least_squares.hpp"
#include "auditherm/obs/trace_span.hpp"

namespace auditherm::sysid {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Row-level regressor snapshot for the mass-balance inversion over the
/// interval [k, k+1): derivative in ppm/s, flow in m^3/s, CO2 in ppm.
struct Co2Row {
  double dc_dt = 0.0;
  double flow = 0.0;
  double co2 = 0.0;
  bool valid = false;
};

std::vector<Co2Row> build_rows(const timeseries::TraceView& trace,
                               const Co2Channels& channels) {
  const auto co2_col = trace.require_channel(channels.co2);
  std::vector<std::size_t> flow_cols;
  for (auto id : channels.vav_flows) {
    flow_cols.push_back(trace.require_channel(id));
  }
  const double dt_s = static_cast<double>(trace.grid().step()) * 60.0;

  std::vector<Co2Row> rows(trace.size());
  for (std::size_t k = 0; k + 1 < trace.size(); ++k) {
    if (!trace.valid(k, co2_col) || !trace.valid(k + 1, co2_col)) continue;
    Co2Row row;
    row.dc_dt = (trace.value(k + 1, co2_col) - trace.value(k, co2_col)) / dt_s;
    row.co2 = trace.value(k, co2_col);
    bool flows_ok = true;
    for (auto col : flow_cols) {
      if (!trace.valid(k, col)) {
        flows_ok = false;
        break;
      }
      row.flow += trace.value(k, col);
    }
    if (!flows_ok) continue;
    row.valid = true;
    rows[k] = row;
  }
  return rows;
}

}  // namespace

Co2OccupancyEstimator::Co2OccupancyEstimator(Co2Channels channels)
    : channels_(std::move(channels)) {}

void Co2OccupancyEstimator::calibrate(const timeseries::TraceView& training) {
  obs::TraceSpan span("sysid.occupancy.calibrate");
  const auto rows = build_rows(training, channels_);
  const auto occ_col = training.require_channel(channels_.occupancy);

  std::vector<std::size_t> usable;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    if (rows[k].valid && training.valid(k, occ_col)) usable.push_back(k);
  }
  if (usable.size() < 32) {
    throw std::runtime_error(
        "Co2OccupancyEstimator::calibrate: too few usable transitions");
  }
  static const obs::MetricId kTransitionsUsed =
      obs::counter_id("sysid.occupancy.transitions_used");
  obs::add_counter(kTransitionsUsed, usable.size());

  // o = a dC/dt + b (Q C) + d Q  with  d = -b * C_out.
  linalg::Matrix z(usable.size(), 3);
  linalg::Vector y(usable.size());
  for (std::size_t i = 0; i < usable.size(); ++i) {
    const auto& row = rows[usable[i]];
    z(i, 0) = row.dc_dt;
    z(i, 1) = row.flow * row.co2;
    z(i, 2) = row.flow;
    y[i] = training.value(usable[i], occ_col);
  }
  linalg::LeastSquaresOptions opts;
  opts.ridge = 1e-9;
  opts.relative_ridge = true;
  opts.prefer_qr = false;
  const auto theta = linalg::solve_least_squares(z, y, opts);
  a_ = theta[0];
  b_ = theta[1];
  c_ = std::abs(b_) > 1e-15 ? -theta[2] / b_ : 420.0;
  calibrated_ = true;
}

linalg::Vector Co2OccupancyEstimator::estimate(
    const timeseries::TraceView& trace) const {
  if (!calibrated_) {
    throw std::logic_error("Co2OccupancyEstimator: calibrate() first");
  }
  obs::TraceSpan span("sysid.occupancy.estimate");
  static const obs::MetricId kRowsEstimated =
      obs::counter_id("sysid.occupancy.rows_estimated");
  obs::add_counter(kRowsEstimated, trace.size());
  const auto rows = build_rows(trace, channels_);
  linalg::Vector raw(trace.size(), kNaN);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    if (!rows[k].valid) continue;
    const double o =
        a_ * rows[k].dc_dt + b_ * rows[k].flow * (rows[k].co2 - c_);
    raw[k] = std::max(0.0, o);
  }
  // Short trailing mean: the finite-difference derivative is noisy.
  linalg::Vector smoothed(trace.size(), kNaN);
  for (std::size_t k = 0; k < raw.size(); ++k) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t back = 0; back < 2 && back <= k; ++back) {
      if (!std::isnan(raw[k - back])) {
        sum += raw[k - back];
        ++n;
      }
    }
    if (n > 0) smoothed[k] = sum / static_cast<double>(n);
  }
  return smoothed;
}

double occupancy_mae(const timeseries::TraceView& trace,
                     timeseries::ChannelId occupancy_channel,
                     const linalg::Vector& estimate) {
  if (estimate.size() != trace.size()) {
    throw std::invalid_argument("occupancy_mae: estimate size mismatch");
  }
  const auto occ_col = trace.require_channel(occupancy_channel);
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t k = 0; k < trace.size(); ++k) {
    if (std::isnan(estimate[k]) || !trace.valid(k, occ_col)) continue;
    total += std::abs(estimate[k] - trace.value(k, occ_col));
    ++n;
  }
  if (n == 0) throw std::runtime_error("occupancy_mae: no overlapping rows");
  return total / static_cast<double>(n);
}

}  // namespace auditherm::sysid
