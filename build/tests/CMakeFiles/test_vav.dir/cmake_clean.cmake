file(REMOVE_RECURSE
  "CMakeFiles/test_vav.dir/test_vav.cpp.o"
  "CMakeFiles/test_vav.dir/test_vav.cpp.o.d"
  "test_vav"
  "test_vav.pdb"
  "test_vav[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
