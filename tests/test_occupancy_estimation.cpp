// Tests for CO2 dynamics in the plant and the mass-balance occupancy
// estimator.

#include "auditherm/sysid/occupancy_estimation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "auditherm/core/split.hpp"
#include "auditherm/sim/dataset.hpp"

namespace sysid = auditherm::sysid;
namespace sim = auditherm::sim;
namespace ts = auditherm::timeseries;
namespace linalg = auditherm::linalg;

namespace {

sim::PlantInputs inputs_with(double occupants, double flow) {
  sim::PlantInputs u;
  u.vav_flows_m3_s.assign(4, flow);
  u.occupants = occupants;
  u.ambient_c = 20.0;
  return u;
}

const sim::AuditoriumDataset& dataset() {
  static const sim::AuditoriumDataset ds = [] {
    sim::DatasetConfig config;
    config.days = 42;
    config.failure_days = 6;
    return sim::generate_dataset(config);
  }();
  return ds;
}

}  // namespace

// ---------------------------------------------------------------------------
// Plant CO2 dynamics
// ---------------------------------------------------------------------------

TEST(PlantCo2, RisesWithOccupantsAndDecaysWithVentilation) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::ZonalPlant plant(plan, sim::PlantConfig{});
  EXPECT_DOUBLE_EQ(plant.co2_ppm(), 420.0);

  // Full house, minimal ventilation: CO2 climbs well above outdoor.
  for (int i = 0; i < 90; ++i) plant.step(inputs_with(90.0, 0.05), 60.0);
  const double after_event = plant.co2_ppm();
  EXPECT_GT(after_event, 800.0);

  // Everyone leaves, dampers open: CO2 relaxes back toward outdoor.
  for (int i = 0; i < 180; ++i) plant.step(inputs_with(0.0, 0.5), 60.0);
  EXPECT_LT(plant.co2_ppm(), 450.0);
  EXPECT_GE(plant.co2_ppm(), 420.0 - 1e-9);
}

TEST(PlantCo2, EquilibriumMatchesMassBalance) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::PlantConfig config;
  sim::ZonalPlant plant(plan, config);
  const double occupants = 60.0;
  const double flow = 0.25;  // per VAV, 1.0 total
  for (int i = 0; i < 24 * 60; ++i) plant.step(inputs_with(occupants, flow), 60.0);
  const double expected =
      config.co2_outdoor_ppm +
      occupants * config.co2_per_person_m3_s * 1e6 / (4.0 * flow);
  EXPECT_NEAR(plant.co2_ppm(), expected, 1.0);
}

TEST(PlantCo2, ZeroFlowIntegratesGeneration) {
  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::PlantConfig config;
  sim::ZonalPlant plant(plan, config);
  sim::PlantInputs u = inputs_with(90.0, 0.0);
  plant.step(u, 600.0);
  const double expected =
      config.initial_co2_ppm +
      90.0 * config.co2_per_person_m3_s * 1e6 / config.room_volume_m3 * 600.0;
  EXPECT_NEAR(plant.co2_ppm(), expected, 1e-6);
}

TEST(PlantCo2, DatasetRecordsTheChannel) {
  const auto& ds = dataset();
  const auto col = ds.trace.channel_index(sim::DatasetChannels::kCo2);
  ASSERT_TRUE(col.has_value());
  double lo = 1e9, hi = -1e9;
  for (std::size_t k = 0; k < ds.trace.size(); ++k) {
    if (!ds.trace.valid(k, *col)) continue;
    lo = std::min(lo, ds.trace.value(k, *col));
    hi = std::max(hi, ds.trace.value(k, *col));
  }
  EXPECT_GT(lo, 400.0);
  EXPECT_GT(hi, 600.0);   // events visibly raise CO2
  EXPECT_LT(hi, 5000.0);  // but ventilation bounds it
}

// ---------------------------------------------------------------------------
// Occupancy estimation
// ---------------------------------------------------------------------------

TEST(Co2Occupancy, CalibratesAndEstimatesOnHeldOutDays) {
  const auto& ds = dataset();
  auto required = std::vector<ts::ChannelId>{sim::DatasetChannels::kCo2,
                                             sim::DatasetChannels::kOccupancy};
  const auto split = auditherm::core::split_dataset(
      ds.trace, required, ds.schedule, auditherm::hvac::Mode::kOccupied);
  const auto training = ds.trace.filter_rows(split.train_mask);
  const auto validation = ds.trace.filter_rows(split.validation_mask);

  sysid::Co2OccupancyEstimator estimator;
  EXPECT_FALSE(estimator.calibrated());
  estimator.calibrate(training);
  EXPECT_TRUE(estimator.calibrated());
  // Calibrated parameters should be physically sensible.
  EXPECT_GT(estimator.volume_over_generation(), 0.0);
  EXPECT_GT(estimator.flow_gain(), 0.0);
  EXPECT_GT(estimator.outdoor_ppm(), 300.0);
  EXPECT_LT(estimator.outdoor_ppm(), 550.0);

  const auto estimate = estimator.estimate(validation);
  const double mae = sysid::occupancy_mae(
      validation, sim::DatasetChannels::kOccupancy, estimate);
  // The room seats 90; a camera-free estimate within a handful of people
  // on held-out days is the win.
  EXPECT_LT(mae, 8.0);

  // Sanity against a constant-zero baseline.
  linalg::Vector zeros(validation.size(), 0.0);
  const double zero_mae = sysid::occupancy_mae(
      validation, sim::DatasetChannels::kOccupancy, zeros);
  EXPECT_LT(mae, zero_mae);
}

TEST(Co2Occupancy, EstimateBeforeCalibrateThrows) {
  sysid::Co2OccupancyEstimator estimator;
  EXPECT_THROW((void)estimator.estimate(dataset().trace), std::logic_error);
}

TEST(Co2Occupancy, CalibrationNeedsEnoughData) {
  const auto& ds = dataset();
  const auto tiny = ds.trace.slice_rows(0, 10);
  sysid::Co2OccupancyEstimator estimator;
  EXPECT_THROW(estimator.calibrate(tiny), std::runtime_error);
}

TEST(Co2Occupancy, MissingChannelsThrow) {
  const auto& ds = dataset();
  const auto no_co2 = ds.trace.select_channels(
      {1, 3, sim::DatasetChannels::kOccupancy});
  sysid::Co2OccupancyEstimator estimator;
  EXPECT_THROW(estimator.calibrate(no_co2), std::invalid_argument);
}

TEST(Co2Occupancy, MaeValidation) {
  const auto& ds = dataset();
  EXPECT_THROW((void)sysid::occupancy_mae(
                   ds.trace, sim::DatasetChannels::kOccupancy,
                   linalg::Vector(3, 0.0)),
               std::invalid_argument);
}
