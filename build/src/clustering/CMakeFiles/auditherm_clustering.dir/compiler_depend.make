# Empty compiler generated dependencies file for auditherm_clustering.
# This may be replaced when dependencies are built.
