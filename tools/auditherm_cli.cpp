// auditherm command-line tool.
//
//   auditherm simulate --out trace.csv [--days N] [--failure-days N]
//       [--seed S] [--truth truth.csv]
//   auditherm analyze --data trace.csv [--metric correlation|euclidean]
//       [--clusters K] [--order 1|2] [--per-cluster N] [--sweep SEEDS]
//       [--eigen jacobi|tridiagonal|lanczos|auto] [--graph epsilon|knn]
//       [--knn K]
//
// Every subcommand also accepts the shared flags (--threads, --cache,
// --metrics-out, --trace); see core/cli.hpp. Observability output goes to
// stderr / the JSON file, so stdout stays byte-identical with the flags
// off.
//
// The CSV uses the library's channel conventions: ids < 100 are
// temperature sensors (40/41 the HVAC thermostats), 101..100+m the VAV
// flows, 110 occupancy, 111 lighting, 112 ambient, 113 supply temperature.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "auditherm/auditherm.hpp"

using namespace auditherm;
namespace cli = auditherm::core::cli;

namespace {

/// Observability lifecycle for one CLI invocation: installs a recorder
/// when --trace / --metrics-out asked for one and writes the requested
/// outputs when the command finishes.
class ObsRun {
 public:
  explicit ObsRun(const cli::CommonOptions& common)
      : common_(common),
        recorder_(common.observability_enabled() ? new obs::Recorder
                                                 : nullptr),
        scope_(recorder_.get()) {}

  ObsRun(const ObsRun&) = delete;
  ObsRun& operator=(const ObsRun&) = delete;

  ~ObsRun() {
    if (recorder_ == nullptr) return;
    if (common_.trace) obs::write_summary(stderr, *recorder_);
    if (!common_.metrics_out.empty() &&
        !obs::write_json_file(common_.metrics_out, *recorder_)) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   common_.metrics_out.c_str());
    }
  }

  [[nodiscard]] obs::Recorder* recorder() const noexcept {
    return recorder_.get();
  }

 private:
  cli::CommonOptions common_;
  std::unique_ptr<obs::Recorder> recorder_;
  obs::RecorderScope scope_;
};

cli::OptionSet simulate_options() {
  std::vector<cli::OptionSpec> specs = {
      {"out", true, true, "FILE", "write the simulated trace CSV here"},
      {"days", true, false, "N", "days to simulate (default 98)"},
      {"failure-days", true, false, "N",
       "days with injected sensor failures (default 34)"},
      {"seed", true, false, "S", "simulation seed (default 1234)"},
      {"truth", true, false, "FILE", "also write the noise-free truth CSV"},
  };
  for (auto& spec : cli::common_options()) specs.push_back(std::move(spec));
  return cli::OptionSet("simulate", std::move(specs));
}

cli::OptionSet analyze_options() {
  std::vector<cli::OptionSpec> specs = {
      {"data", true, true, "FILE", "trace CSV to analyze"},
      {"metric", true, false, "correlation|euclidean",
       "similarity metric (default correlation)"},
      {"clusters", true, false, "K", "cluster count (0 = eigengap choice)"},
      {"order", true, false, "1|2", "model order (default 2)"},
      {"per-cluster", true, false, "N",
       "representative sensors per cluster (default 1)"},
      {"sweep", true, false, "SEEDS",
       "compare strategies over SEEDS seeds, reusing cached stages"},
      {"eigen", true, false, "jacobi|tridiagonal|lanczos|auto",
       "Laplacian eigensolver (default auto: Jacobi below 64 sensors, "
       "tridiagonal partial spectrum above, sparse Lanczos from 512)"},
      {"graph", true, false, "epsilon|knn",
       "similarity-graph sparsifier (default epsilon: the paper's "
       "quantile threshold; knn keeps each sensor's K strongest edges)"},
      {"knn", true, false, "K",
       "neighbors per sensor for --graph knn (default 8)"},
  };
  for (auto& spec : cli::common_options()) specs.push_back(std::move(spec));
  return cli::OptionSet("analyze", std::move(specs));
}

int usage() {
  std::fprintf(stderr, "usage: auditherm <simulate|analyze> [flags]\n\n%s\n%s",
               simulate_options().usage().c_str(),
               analyze_options().usage().c_str());
  return 2;
}

int cmd_simulate(const cli::ParsedOptions& args,
                 const cli::CommonOptions& common) {
  const ObsRun obs_run(common);
  obs::TraceSpan span("cli.simulate");

  sim::DatasetConfig config;
  config.days = static_cast<std::size_t>(args.get_long("days", 98));
  config.failure_days =
      static_cast<std::size_t>(args.get_long("failure-days", 34));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 1234));
  const auto out = args.require("out");

  std::printf("simulating %zu days (seed %llu)...\n", config.days,
              static_cast<unsigned long long>(config.seed));
  const auto dataset = sim::generate_dataset(config);
  timeseries::write_csv_file(out, dataset.trace);
  std::printf("wrote %s: %zu samples x %zu channels, coverage %.1f%%\n",
              out.c_str(), dataset.trace.size(),
              dataset.trace.channel_count(),
              100.0 * dataset.trace.coverage());
  if (const auto truth = args.get("truth")) {
    timeseries::write_csv_file(*truth, dataset.truth);
    std::printf("wrote %s (noise-free ground truth)\n", truth->c_str());
  }
  return 0;
}

/// Partition a loaded trace's channels by the library conventions.
struct ChannelSets {
  std::vector<timeseries::ChannelId> sensors;      // wireless, < 100, not 40/41
  std::vector<timeseries::ChannelId> thermostats;  // 40 / 41
  std::vector<timeseries::ChannelId> inputs;       // [flows, occ, light, amb]
};

const char* strategy_name(core::SelectionStrategy strategy) {
  switch (strategy) {
    case core::SelectionStrategy::kStratifiedNearMean: return "near-mean";
    case core::SelectionStrategy::kStratifiedRandom: return "stratified-random";
    case core::SelectionStrategy::kSimpleRandom: return "simple-random";
    case core::SelectionStrategy::kThermostats: return "thermostats";
    case core::SelectionStrategy::kGaussianProcess: return "gaussian-process";
  }
  return "?";
}

ChannelSets classify_channels(const timeseries::MultiTrace& trace) {
  ChannelSets sets;
  std::vector<timeseries::ChannelId> flows;
  for (auto id : trace.channels()) {
    if (id == 40 || id == 41) {
      sets.thermostats.push_back(id);
    } else if (id < 100) {
      sets.sensors.push_back(id);
    } else if (id >= sim::DatasetChannels::kVavBase &&
               id < sim::DatasetChannels::kOccupancy) {
      flows.push_back(id);
    }
  }
  sets.inputs = flows;
  for (auto id : {sim::DatasetChannels::kOccupancy,
                  sim::DatasetChannels::kLighting,
                  sim::DatasetChannels::kAmbient}) {
    if (trace.channel_index(id)) sets.inputs.push_back(id);
  }
  if (sets.sensors.size() < 2 || sets.inputs.size() < 2) {
    throw std::runtime_error(
        "analyze: trace lacks sensor (<100) or input (>=101) channels");
  }
  return sets;
}

int cmd_analyze(const cli::ParsedOptions& args,
                const cli::CommonOptions& common) {
  const ObsRun obs_run(common);
  obs::TraceSpan span("cli.analyze");

  const auto path = args.require("data");
  std::printf("loading %s...\n", path.c_str());
  const auto trace = timeseries::read_csv_file(path);
  const auto sets = classify_channels(trace);
  std::printf("channels: %zu sensors, %zu thermostats, %zu inputs; %zu "
              "samples at %lld-minute steps\n",
              sets.sensors.size(), sets.thermostats.size(),
              sets.inputs.size(), trace.size(),
              static_cast<long long>(trace.grid().step()));

  // Split.
  hvac::Schedule schedule;
  auto required = sets.sensors;
  required.insert(required.end(), sets.thermostats.begin(),
                  sets.thermostats.end());
  required.insert(required.end(), sets.inputs.begin(), sets.inputs.end());
  const auto split = core::split_dataset(trace, required, schedule,
                                         hvac::Mode::kOccupied);
  std::printf("usable days: %zu (train %zu / validate %zu)\n",
              split.usable_days.size(), split.train_days.size(),
              split.validation_days.size());

  // Pipeline.
  core::PipelineConfig config;
  if (const auto metric = args.get("metric")) {
    config.similarity.metric = *metric == "euclidean"
                                   ? clustering::SimilarityMetric::kEuclidean
                                   : clustering::SimilarityMetric::kCorrelation;
  }
  config.spectral.cluster_count =
      static_cast<std::size_t>(args.get_long("clusters", 0));
  if (const auto eigen = args.get("eigen")) {
    if (*eigen == "jacobi") {
      config.spectral.eigen_method = linalg::EigenMethod::kJacobi;
    } else if (*eigen == "tridiagonal") {
      config.spectral.eigen_method = linalg::EigenMethod::kTridiagonal;
    } else if (*eigen == "lanczos") {
      config.spectral.eigen_method = linalg::EigenMethod::kLanczos;
    } else if (*eigen == "auto") {
      config.spectral.eigen_method = linalg::EigenMethod::kAuto;
    } else {
      std::fprintf(stderr, "analyze: unknown --eigen value '%s'\n",
                   eigen->c_str());
      return 2;
    }
  }
  if (const auto graph = args.get("graph")) {
    if (*graph == "epsilon") {
      config.similarity.sparsification =
          clustering::GraphSparsification::kEpsilon;
    } else if (*graph == "knn") {
      config.similarity.sparsification = clustering::GraphSparsification::kKnn;
    } else {
      std::fprintf(stderr, "analyze: unknown --graph value '%s'\n",
                   graph->c_str());
      return 2;
    }
  }
  if (const long knn = args.get_long("knn", 0); knn > 0) {
    config.similarity.knn_k = static_cast<std::size_t>(knn);
  }
  config.order = args.get_long("order", 2) == 1 ? sysid::ModelOrder::kFirst
                                                : sysid::ModelOrder::kSecond;
  config.sensors_per_cluster =
      static_cast<std::size_t>(args.get_long("per-cluster", 1));
  config.threads = common.threads;

  // All Step-1 artifacts (similarity graph, eigendecomposition, windows)
  // are shared through the cache; the sweep below reuses them for free.
  core::StageCache cache;
  const core::ThermalModelingPipeline pipeline(config);
  core::RunOptions run_options;
  run_options.thermostat_ids = sets.thermostats;
  if (common.cache) run_options.cache = &cache;
  const auto result = pipeline.run(trace, schedule, split, sets.sensors,
                                   sets.inputs, run_options);

  std::printf("\nclusters (%zu):\n", result.clustering.cluster_count);
  const auto clusters = result.clustering.clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    std::printf("  cluster %zu:", c + 1);
    for (auto id : clusters[c]) std::printf(" %d", id);
    std::printf("   -> keep:");
    for (auto id : result.selection.per_cluster[c]) std::printf(" %d", id);
    std::printf("\n");
  }
  std::printf("\nreduced %s-order model over %zu sensors:\n",
              config.order == sysid::ModelOrder::kFirst ? "first" : "second",
              result.reduced_model.state_count());
  std::printf("  spectral radius: %.4f\n",
              result.reduced_model.spectral_radius_bound());
  std::printf("  validation pooled RMS (own sensors): %.3f degC\n",
              result.reduced_eval.pooled_rms);
  std::printf("  cluster-mean 99th-pct error: %.3f degC\n",
              result.cluster_mean_errors.percentile(99.0));

  const auto seeds = args.get_long("sweep", 0);
  if (seeds > 0) {
    std::vector<core::SweepCase> cases;
    for (long s = 1; s <= seeds; ++s) {
      const auto seed = static_cast<std::uint64_t>(s);
      cases.push_back({core::SelectionStrategy::kStratifiedNearMean, seed});
      cases.push_back({core::SelectionStrategy::kStratifiedRandom, seed});
      cases.push_back({core::SelectionStrategy::kSimpleRandom, seed});
    }
    if (!sets.thermostats.empty()) {
      cases.push_back({core::SelectionStrategy::kThermostats, 1});
    }
    const auto sweep = core::run_strategy_sweep(
        config, cases, trace, schedule, split, sets.sensors, sets.inputs,
        run_options);
    std::printf("\nstrategy sweep (%zu cases, %ld seeds):\n", cases.size(),
                seeds);
    for (std::size_t i = 0; i < cases.size(); ++i) {
      std::printf("  %-22s seed %-3llu  pooled RMS %.3f  p99 %.3f\n",
                  strategy_name(cases[i].strategy),
                  static_cast<unsigned long long>(cases[i].seed),
                  sweep[i].reduced_eval.pooled_rms,
                  sweep[i].cluster_mean_errors.percentile(99.0));
    }
    const auto totals = cache.totals();
    std::printf("stage cache: %zu hits / %zu misses (%zu artifacts)\n",
                totals.hits, totals.misses, cache.size());
  }
  return 0;
}

using Command = std::function<int(const cli::ParsedOptions&,
                                  const cli::CommonOptions&)>;

int run_command(const cli::OptionSet& options, int argc, char** argv,
                const Command& command) {
  cli::ParsedOptions args;
  cli::CommonOptions common;
  try {
    args = options.parse(argc, argv, 2);
    common = cli::parse_common(args);
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "error: %s\n\n%s", e.what(),
                 options.usage().c_str());
    return 2;
  }
  if (common.threads > 0) core::set_thread_count(common.threads);
  try {
    return command(args, common);
  } catch (const cli::UsageError& e) {
    std::fprintf(stderr, "error: %s\n\n%s", e.what(),
                 options.usage().c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "simulate") {
    return run_command(simulate_options(), argc, argv, cmd_simulate);
  }
  if (command == "analyze") {
    return run_command(analyze_options(), argc, argv, cmd_analyze);
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return usage();
}
