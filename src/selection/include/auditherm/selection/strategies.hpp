#pragma once

/// \file strategies.hpp
/// Representative-sensor selection strategies (Section VI.A).
///
/// Given the sensor clusters from spectral clustering, pick sensors whose
/// readings stand in for each cluster's thermal mean:
///  * SMS (stratified near-mean): the sensor(s) whose trace is closest to
///    the cluster-mean trace — the paper's best strategy;
///  * SRS (stratified random): uniform draw within each cluster;
///  * RS  (simple random): baseline ignoring clusters entirely;
///  * thermostats: the HVAC's own two wall thermostats;
///  * GP placement lives in gp_placement.hpp.

#include <cstdint>
#include <vector>

#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::selection {

/// Sensors grouped by cluster index.
using ClusterSets = std::vector<std::vector<timeseries::ChannelId>>;

/// Chosen representatives, aligned with the cluster indices.
struct Selection {
  ClusterSets per_cluster;  ///< chosen sensor(s) for each cluster

  /// All chosen sensors in cluster order.
  [[nodiscard]] std::vector<timeseries::ChannelId> flattened() const;
};

/// SMS: pick the `per_cluster` sensors whose training traces are closest
/// (RMS distance over shared-valid rows) to the cluster-mean trace.
/// Throws std::invalid_argument on empty clusters or per_cluster == 0;
/// clusters smaller than per_cluster contribute all their sensors.
[[nodiscard]] Selection stratified_near_mean(
    const timeseries::TraceView& training, const ClusterSets& clusters,
    std::size_t per_cluster = 1);

/// SRS: uniform random draw (without replacement) inside each cluster.
[[nodiscard]] Selection stratified_random(const ClusterSets& clusters,
                                          std::uint64_t seed,
                                          std::size_t per_cluster = 1);

/// RS: draw `per_cluster * #clusters` sensors uniformly from the union of
/// all clusters, ignoring the grouping, then assign them to clusters by
/// best match against the cluster-mean training traces (the paper's
/// baseline: the draw may still land every sensor in one physical zone,
/// which is what makes RS lose).
[[nodiscard]] Selection simple_random(const timeseries::TraceView& training,
                                      const ClusterSets& clusters,
                                      std::uint64_t seed,
                                      std::size_t per_cluster = 1);

/// Thermostat baseline: assign the HVAC's own thermostats to the clusters
/// round-robin (both sit in the cool front zone, which is the point of the
/// comparison). Throws std::invalid_argument when no thermostats given.
[[nodiscard]] Selection thermostat_baseline(
    const std::vector<timeseries::ChannelId>& thermostat_ids,
    std::size_t cluster_count);

/// Assign externally chosen sensors (e.g., GP placement output) to
/// clusters: each cluster greedily receives the unassigned sensor whose
/// training trace best matches the cluster-mean trace. Chosen sensors
/// that are left over after every cluster has `per_cluster` members are
/// dropped.
[[nodiscard]] Selection assign_to_clusters(
    const timeseries::TraceView& training, const ClusterSets& clusters,
    const std::vector<timeseries::ChannelId>& chosen,
    std::size_t per_cluster = 1);

}  // namespace auditherm::selection
