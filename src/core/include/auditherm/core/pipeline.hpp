#pragma once

/// \file pipeline.hpp
/// The paper's three-step modeling method (Section VII):
///   1. cluster the dense sensor network from training data,
///   2. select representative sensor(s) per cluster,
///   3. identify a simplified dynamic model over the selected sensors,
/// plus the evaluation of the reduced model against measured cluster means
/// (Fig. 11).

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "auditherm/clustering/spectral.hpp"
#include "auditherm/core/parallel.hpp"
#include "auditherm/core/split.hpp"
#include "auditherm/core/stage_cache.hpp"
#include "auditherm/obs/trace_span.hpp"
#include "auditherm/selection/evaluation.hpp"
#include "auditherm/selection/gp_placement.hpp"
#include "auditherm/selection/strategies.hpp"
#include "auditherm/sysid/estimator.hpp"
#include "auditherm/sysid/evaluation.hpp"
#include "auditherm/sysid/input_plan.hpp"
#include "auditherm/sysid/streaming.hpp"

namespace auditherm::core {

/// Which representative-selection strategy step 2 uses.
enum class SelectionStrategy {
  kStratifiedNearMean,  ///< SMS — the paper's recommendation
  kStratifiedRandom,    ///< SRS
  kSimpleRandom,        ///< RS baseline
  kThermostats,         ///< the HVAC's own thermostats
  kGaussianProcess,     ///< Krause et al. MI placement
};

/// Pipeline configuration.
struct PipelineConfig {
  clustering::SimilarityOptions similarity;  ///< correlation metric default
  clustering::SpectralOptions spectral;      ///< eigengap-chosen k default
  SelectionStrategy strategy = SelectionStrategy::kStratifiedNearMean;
  std::size_t sensors_per_cluster = 1;
  std::uint64_t selection_seed = 7;          ///< SRS / RS draws
  sysid::ModelOrder order = sysid::ModelOrder::kSecond;
  sysid::EstimationOptions estimation;
  sysid::EvaluationOptions evaluation;
  hvac::Mode mode = hvac::Mode::kOccupied;
  /// Threads for the pipeline's parallel kernels; 0 inherits the global
  /// setting (AUDITHERM_THREADS, else hardware concurrency). Results are
  /// bitwise identical at any value — see parallel.hpp.
  std::size_t threads = 0;
};

/// StageCache stage names used by the pipeline (for stats() queries; see
/// DESIGN.md for the key-chaining rules).
namespace stage {
inline constexpr std::string_view kTrainingView = "training_view";
inline constexpr std::string_view kSimilarityGraph = "similarity_graph";
inline constexpr std::string_view kSpectrum = "spectrum";
inline constexpr std::string_view kClustering = "clustering";
inline constexpr std::string_view kClusterSets = "cluster_sets";
inline constexpr std::string_view kClusterMeans = "cluster_means";
inline constexpr std::string_view kWindows = "evaluation_windows";
}  // namespace stage

/// The strategy/seed-independent Step-1 artifacts a sweep's cases share:
/// everything the pipeline computes before representative selection.
/// Obtained from ThermalModelingPipeline::prepare(); fields are shared
/// pointers so cache hits alias the stored artifacts without copying.
struct StageArtifacts {
  /// Training days in the configured mode, rows reindexed — a zero-copy
  /// view. On the uncached path it views the caller's source trace (the
  /// artifacts must not outlive it); on the cached path it views the
  /// materialized copy owned by `training_store`. Either way every
  /// consumer reads identical bits.
  timeseries::TraceView training;
  /// Owns the materialized training trace when a StageCache is in play
  /// (cache entries must outlive the source trace); null on the zero-copy
  /// uncached path.
  std::shared_ptr<const timeseries::MultiTrace> training_store;
  std::shared_ptr<const clustering::SimilarityGraph> graph;
  /// Laplacian eigendecomposition of the graph (reused across cluster
  /// counts — only the cheap k-means embedding depends on k).
  std::shared_ptr<const clustering::SpectralAnalysis> spectrum;
  std::shared_ptr<const clustering::ClusteringResult> clustering;
  std::shared_ptr<const selection::ClusterSets> clusters;
  /// Validation evaluation windows (mode rows with valid inputs).
  std::shared_ptr<const std::vector<timeseries::Segment>> windows;
  /// Measured all-sensor mean per cluster over the whole trace.
  std::shared_ptr<const std::vector<linalg::Vector>> cluster_means;
  /// Train-day AND mode rows on the source trace (cheap, never cached).
  std::vector<bool> train_mode_mask;
  /// Resolved input plan (null when the run uses raw input_ids — the
  /// ground-truth default). Owns the derived columns, so augmented views
  /// built from it stay valid as long as the artifacts are.
  std::shared_ptr<const sysid::ResolvedInputPlan> inputs;
};

/// Per-call knobs for the unified run() / run_strategy_sweep() entry
/// points. Every field is optional; a default-constructed RunOptions
/// reproduces the plain uncached run. The struct only points at caller
/// resources — it owns nothing but the thermostat id list.
struct RunOptions {
  /// HVAC thermostat channels; read only by the kThermostats strategy
  /// (may stay empty otherwise).
  std::vector<timeseries::ChannelId> thermostat_ids;
  /// Stage cache to fetch/store the Step-1 artifacts through (null =
  /// build them inline). Results are bitwise identical either way.
  StageCache* cache = nullptr;
  /// Precomputed Step-1 artifacts (from prepare()); when set, the run
  /// skips prepare() entirely and `cache` is not consulted. Must outlive
  /// the call.
  const StageArtifacts* artifacts = nullptr;
  /// Observability sink for this call: installed as the current recorder
  /// for the duration (a no-op when null or already current), so every
  /// TraceSpan, counter, and histogram the run touches lands in it.
  /// Instrumentation only observes — results are bitwise identical with
  /// or without a sink (pinned by test_obs).
  obs::Recorder* metrics = nullptr;
  /// Input-source plan for the identification input block. Null (the
  /// default) reads the passed input_ids literally — the pre-plan
  /// behavior, bit for bit. When set, the plan's resolved channel ids
  /// replace input_ids and its fingerprint enters the stage keys, so
  /// cached artifacts never alias across input sources. Ignored when
  /// `artifacts` is set (the artifacts carry their own resolved plan).
  const sysid::InputPlan* input_plan = nullptr;
};

/// Everything the pipeline produces.
struct PipelineResult {
  clustering::ClusteringResult clustering;
  selection::Selection selection;
  sysid::ThermalModel reduced_model;
  /// Reduced-model prediction errors vs the selected sensors' own readings.
  sysid::PredictionEvaluation reduced_eval;
  /// Reduced-model predictions vs measured cluster means (Fig. 11 metric).
  selection::ClusterMeanErrors cluster_mean_errors;
};

/// The three-step pipeline.
class ThermalModelingPipeline {
 public:
  /// Throws std::invalid_argument when sensors_per_cluster == 0.
  explicit ThermalModelingPipeline(PipelineConfig config);

  [[nodiscard]] const PipelineConfig& config() const noexcept {
    return config_;
  }

  /// Run on one trace with a prepared split — the single entry point.
  ///
  /// `sensor_ids` are the dense-network temperature channels, `input_ids`
  /// the [h; o; l; w] block; everything optional (thermostats, stage
  /// cache, precomputed artifacts, observability sink) rides in
  /// `options`. Caching and instrumentation never change the result:
  /// every combination of options is bitwise identical on the same
  /// inputs. Safe to call concurrently when sharing one cache.
  [[nodiscard]] PipelineResult run(
      const timeseries::MultiTrace& trace, const hvac::Schedule& schedule,
      const DataSplit& split,
      const std::vector<timeseries::ChannelId>& sensor_ids,
      const std::vector<timeseries::ChannelId>& input_ids,
      const RunOptions& options) const;

  /// Build (or fetch, when `cache` is non-null) the Step-1 artifacts:
  /// resolved input plan, training view, similarity graph, spectrum,
  /// clustering, cluster sets, evaluation windows, and measured cluster
  /// means. Strategy and seed do not enter the cache keys, so every case
  /// of a sweep resolves to the same entries. A non-null `input_plan` is
  /// resolved against the training split and its fingerprint folded into
  /// every stage key; null keeps the raw input_ids path bit for bit.
  [[nodiscard]] StageArtifacts prepare(
      const timeseries::MultiTrace& trace, const hvac::Schedule& schedule,
      const DataSplit& split,
      const std::vector<timeseries::ChannelId>& sensor_ids,
      const std::vector<timeseries::ChannelId>& input_ids,
      StageCache* cache = nullptr,
      const sysid::InputPlan* input_plan = nullptr) const;

 private:
  /// Steps 2 + 3 + evaluation on prepared Step-1 artifacts.
  [[nodiscard]] PipelineResult run_from(
      const StageArtifacts& artifacts, const timeseries::MultiTrace& trace,
      const std::vector<timeseries::ChannelId>& sensor_ids,
      const std::vector<timeseries::ChannelId>& input_ids,
      const std::vector<timeseries::ChannelId>& thermostat_ids) const;

  PipelineConfig config_;
};

/// One case of a strategy sweep: a selection strategy plus the seed its
/// random draws use (ignored by the deterministic strategies).
struct SweepCase {
  SelectionStrategy strategy = SelectionStrategy::kStratifiedNearMean;
  std::uint64_t seed = 7;
};

/// Run the pipeline once per case (the per-strategy × per-seed evaluation
/// sweeps behind Tables I-II and Figs 8-11), parallelized over cases with
/// the deterministic runtime: results arrive in case order and each case
/// equals a standalone run() with that strategy/seed. `base` supplies
/// every other configuration field, including `threads`.
///
/// The strategy/seed-independent Step-1 prefix (training view, similarity
/// graph, eigendecomposition, clustering, windows, cluster means) is
/// computed exactly once and shared by every case; only Step 2 + Step 3 +
/// evaluation fan out. Set `options.cache` to share the prefix across
/// successive sweeps too (e.g. per-k sweeps reuse the spectrum); leave it
/// null for a sweep-local cache. Set `options.artifacts` to skip the
/// prefix computation entirely. `options.metrics` is installed for the
/// whole sweep, so per-case spans/counters aggregate into one recorder.
/// Results stay bitwise identical to per-case run() at any thread count
/// and under any option combination.
[[nodiscard]] std::vector<PipelineResult> run_strategy_sweep(
    const PipelineConfig& base, const std::vector<SweepCase>& cases,
    const timeseries::MultiTrace& trace, const hvac::Schedule& schedule,
    const DataSplit& split,
    const std::vector<timeseries::ChannelId>& sensor_ids,
    const std::vector<timeseries::ChannelId>& input_ids,
    const RunOptions& options);

/// Configuration for the streaming-identification entry point.
struct StreamingRunConfig {
  sysid::ModelOrder order = sysid::ModelOrder::kSecond;
  /// Window / re-anchoring / drift-detector knobs. The default
  /// EstimationOptions inside match the batch pipeline's.
  sysid::StreamingOptions streaming;
  /// Observability sink for this call, RunOptions::metrics semantics.
  obs::Recorder* metrics = nullptr;
};

/// What one streaming pass produced.
struct StreamingRunResult {
  sysid::StreamingStats stats;
  /// Transitions inside the window when the stream ended.
  std::size_t window_transitions = 0;
  std::vector<sysid::DriftEvent> drift_events;
  /// Largest one-sided CUSUM statistic at end of stream (sigma units).
  double cusum = 0.0;
  bool has_model = false;
  /// Final-window model + its pooled AIC; meaningful when has_model.
  sysid::ThermalModel model;
  double aic = 0.0;
};

/// Run streaming identification over `trace` row by row (ROADMAP item 4:
/// the online counterpart of the batch Step-3 fit). `state_ids` are the
/// temperature channels to model, `input_ids` the [h; o; l; w] block;
/// `row_filter`, when non-empty, must match trace.size() and excluded rows
/// count as gaps. Deterministic at any thread count: the pass is one
/// serial sweep whose result depends only on the trace and config.
[[nodiscard]] StreamingRunResult run_streaming_identification(
    const timeseries::TraceView& trace,
    const std::vector<timeseries::ChannelId>& state_ids,
    const std::vector<timeseries::ChannelId>& input_ids,
    const StreamingRunConfig& config,
    const std::vector<bool>& row_filter = {});

/// Evaluate a reduced model's cluster-mean predictions (Fig. 11 metric):
/// simulate the model over each window, average the predicted selected
/// sensors per cluster, and compare against the measured all-sensor
/// cluster mean wherever it exists.
[[nodiscard]] selection::ClusterMeanErrors evaluate_reduced_model_cluster_mean(
    const sysid::ThermalModel& model, const timeseries::TraceView& trace,
    const selection::ClusterSets& clusters,
    const selection::Selection& selection,
    const std::vector<timeseries::Segment>& windows,
    const sysid::EvaluationOptions& options);

/// Same, with the measured per-cluster means precomputed (the stage-cache
/// path: the means depend only on trace and clustering, so a sweep
/// computes them once). `cluster_means[c]` must be row-aligned with
/// `trace`; throws std::invalid_argument on count mismatch.
[[nodiscard]] selection::ClusterMeanErrors evaluate_reduced_model_cluster_mean(
    const sysid::ThermalModel& model, const timeseries::TraceView& trace,
    const selection::ClusterSets& clusters,
    const selection::Selection& selection,
    const std::vector<timeseries::Segment>& windows,
    const std::vector<linalg::Vector>& cluster_means,
    const sysid::EvaluationOptions& options);

}  // namespace auditherm::core
