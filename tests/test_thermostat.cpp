// Tests for the PI thermostat controller.

#include "auditherm/hvac/thermostat.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace hvac = auditherm::hvac;

namespace {

constexpr auto kNoon = 12 * 60;       // occupied
constexpr auto kMidnight = 0;         // unoccupied

std::vector<hvac::VavBox> make_boxes(std::size_t n = 2) {
  return std::vector<hvac::VavBox>(n, hvac::VavBox(hvac::VavConfig{}));
}

}  // namespace

TEST(Thermostat, WarmRoomOpensDampers) {
  hvac::ThermostatController controller{hvac::ThermostatConfig{}};
  auto boxes = make_boxes();
  // 2 K above setpoint: flow command should exceed the base flow.
  controller.update(boxes, {23.0, 23.0}, kNoon, 60.0);
  for (auto& box : boxes) {
    for (int i = 0; i < 200; ++i) box.step(60.0);
    EXPECT_GT(box.flow(), controller.config().base_flow_m3_s - 1e-9);
  }
}

TEST(Thermostat, ColdRoomSwitchesToHeatingSupply) {
  hvac::ThermostatController controller{hvac::ThermostatConfig{}};
  auto boxes = make_boxes();
  controller.update(boxes, {17.0, 17.0}, kNoon, 60.0);
  EXPECT_DOUBLE_EQ(controller.supply_temp_c(),
                   controller.config().heating_supply_c);
  for (auto& box : boxes) {
    for (int i = 0; i < 200; ++i) box.step(60.0);
    EXPECT_GT(box.flow(), controller.config().base_flow_m3_s - 1e-9);
  }
}

TEST(Thermostat, WarmRoomSelectsCoolingSupply) {
  hvac::ThermostatController controller{hvac::ThermostatConfig{}};
  auto boxes = make_boxes();
  controller.update(boxes, {24.0, 24.0}, kNoon, 60.0);
  EXPECT_DOUBLE_EQ(controller.supply_temp_c(),
                   controller.config().cooling_supply_c);
}

TEST(Thermostat, DeadbandHoldsBaseFlowAndNeutralSupply) {
  hvac::ThermostatController controller{hvac::ThermostatConfig{}};
  auto boxes = make_boxes();
  const double setpoint = controller.config().setpoint_c;
  controller.update(boxes, {setpoint + 0.1}, kNoon, 60.0);
  EXPECT_DOUBLE_EQ(controller.supply_temp_c(),
                   controller.config().neutral_supply_c);
  for (auto& box : boxes) {
    for (int i = 0; i < 200; ++i) box.step(60.0);
    EXPECT_NEAR(box.flow(), controller.config().base_flow_m3_s, 1e-6);
  }
}

TEST(Thermostat, ModeSwitchResetsIntegrator) {
  hvac::ThermostatConfig config;
  config.ki = 1e-4;
  hvac::ThermostatController controller{config};
  auto boxes = make_boxes();
  for (int i = 0; i < 50; ++i) controller.update(boxes, {25.0}, kNoon, 60.0);
  EXPECT_GT(controller.integrator(), 0.01);
  controller.update(boxes, {17.0}, kNoon, 60.0);  // cooling -> heating
  // The integrator restarts from zero; heating holds the base airflow
  // (the reheat coil, not the damper, does the work), so it stays zero.
  EXPECT_DOUBLE_EQ(controller.integrator(), 0.0);
  EXPECT_DOUBLE_EQ(controller.supply_temp_c(),
                   controller.config().heating_supply_c);
}

TEST(Thermostat, UnoccupiedForcesMinimumRegardlessOfTemp) {
  hvac::ThermostatController controller{hvac::ThermostatConfig{}};
  auto boxes = make_boxes();
  controller.update(boxes, {30.0, 30.0}, kMidnight, 60.0);
  for (auto& box : boxes) {
    for (int i = 0; i < 200; ++i) box.step(60.0);
    EXPECT_NEAR(box.flow(), box.config().min_flow_m3_s, 1e-6);
  }
  EXPECT_DOUBLE_EQ(controller.integrator(), 0.0);
}

TEST(Thermostat, IntegratorAccumulatesAndClamps) {
  hvac::ThermostatConfig config;
  config.ki = 0.01;
  config.integrator_limit = 0.2;
  hvac::ThermostatController controller{config};
  auto boxes = make_boxes();
  for (int i = 0; i < 1000; ++i) {
    controller.update(boxes, {25.0}, kNoon, 60.0);
  }
  EXPECT_NEAR(controller.integrator(), 0.2, 1e-12);  // clamped
  controller.reset();
  EXPECT_DOUBLE_EQ(controller.integrator(), 0.0);
}

TEST(Thermostat, MeanOfReadingsDrivesLoop) {
  hvac::ThermostatController controller{hvac::ThermostatConfig{}};
  auto hot_boxes = make_boxes(1);
  auto mixed_boxes = make_boxes(1);
  controller.update(hot_boxes, {25.0, 25.0}, kNoon, 60.0);
  hvac::ThermostatController controller2{hvac::ThermostatConfig{}};
  // Mean of (29, 21) equals 25: same command.
  controller2.update(mixed_boxes, {29.0, 21.0}, kNoon, 60.0);
  for (int i = 0; i < 100; ++i) {
    hot_boxes[0].step(60.0);
    mixed_boxes[0].step(60.0);
  }
  EXPECT_NEAR(hot_boxes[0].flow(), mixed_boxes[0].flow(), 1e-9);
}

TEST(Thermostat, Validation) {
  hvac::ThermostatConfig bad;
  bad.kp = 0.0;
  EXPECT_THROW(hvac::ThermostatController{bad}, std::invalid_argument);
  bad = {};
  bad.base_flow_m3_s = -1.0;
  EXPECT_THROW(hvac::ThermostatController{bad}, std::invalid_argument);
  bad = {};
  bad.cooling_supply_c = 30.0;  // cooling must be colder than heating
  EXPECT_THROW(hvac::ThermostatController{bad}, std::invalid_argument);
  bad = {};
  bad.deadband_c = -0.1;
  EXPECT_THROW(hvac::ThermostatController{bad}, std::invalid_argument);

  hvac::ThermostatController controller{hvac::ThermostatConfig{}};
  auto boxes = make_boxes();
  EXPECT_THROW(controller.update(boxes, {}, kNoon, 60.0),
               std::invalid_argument);
  EXPECT_THROW(controller.update(boxes, {21.0}, kNoon, 0.0),
               std::invalid_argument);
}
