file(REMOVE_RECURSE
  "CMakeFiles/auditherm_hvac.dir/comfort.cpp.o"
  "CMakeFiles/auditherm_hvac.dir/comfort.cpp.o.d"
  "CMakeFiles/auditherm_hvac.dir/schedule.cpp.o"
  "CMakeFiles/auditherm_hvac.dir/schedule.cpp.o.d"
  "CMakeFiles/auditherm_hvac.dir/thermostat.cpp.o"
  "CMakeFiles/auditherm_hvac.dir/thermostat.cpp.o.d"
  "CMakeFiles/auditherm_hvac.dir/vav.cpp.o"
  "CMakeFiles/auditherm_hvac.dir/vav.cpp.o.d"
  "libauditherm_hvac.a"
  "libauditherm_hvac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auditherm_hvac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
