file(REMOVE_RECURSE
  "CMakeFiles/auditherm_cli.dir/auditherm_cli.cpp.o"
  "CMakeFiles/auditherm_cli.dir/auditherm_cli.cpp.o.d"
  "auditherm"
  "auditherm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auditherm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
