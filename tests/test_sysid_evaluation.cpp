// Tests for multi-step prediction evaluation: window enumeration, start
// scanning, and the error statistics behind Table I / Figs. 3-5.

#include "auditherm/sysid/evaluation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "auditherm/sysid/estimator.hpp"

namespace sysid = auditherm::sysid;
namespace ts = auditherm::timeseries;
namespace hvac = auditherm::hvac;
namespace linalg = auditherm::linalg;
using linalg::Matrix;
using linalg::Vector;

namespace {

/// A perfectly identified scalar system so prediction errors are zero,
/// plus a trace that follows it exactly.
struct PerfectSetup {
  sysid::ThermalModel model;
  ts::MultiTrace trace;
};

PerfectSetup make_perfect(std::size_t n = 60) {
  const double a = 0.9, b = 0.5;
  sysid::ThermalModel model(sysid::ModelOrder::kFirst, Matrix{{a}}, {},
                            Matrix{{b}}, {1}, {101});
  ts::MultiTrace trace(ts::TimeGrid(0, 30, n), {1, 101});
  double x = 20.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double u = (k % 7 == 0) ? 1.0 : 0.2;
    trace.set(k, 0, x);
    trace.set(k, 1, u);
    x = a * x + b * u;
  }
  return {std::move(model), std::move(trace)};
}

sysid::EvaluationOptions quick_options() {
  sysid::EvaluationOptions opts;
  opts.horizon_samples = 20;
  opts.min_steps = 2;
  return opts;
}

}  // namespace

TEST(ModeWindows, SplitsByModeAndValidity) {
  // Two days on a 30-min grid; channel 101 is valid except one occupied
  // sample on day 0.
  ts::MultiTrace trace(ts::TimeGrid(0, 30, 96), {101});
  for (std::size_t k = 0; k < 96; ++k) trace.set(k, 0, 1.0);
  trace.clear(30, 0);  // 15:00 day 0, inside the occupied window
  hvac::Schedule schedule;
  const auto occupied = sysid::mode_windows(trace, schedule,
                                            hvac::Mode::kOccupied, {101});
  // Day 0 splits in two; day 1 is whole: 3 windows.
  ASSERT_EQ(occupied.size(), 3u);
  // Occupied window is 6:00-21:00 = 30 samples/day.
  EXPECT_EQ(occupied[0].length() + occupied[1].length(), 29u);
  EXPECT_EQ(occupied[2].length(), 30u);

  const auto unoccupied = sysid::mode_windows(trace, schedule,
                                              hvac::Mode::kUnoccupied, {101});
  // Night runs: day0 00:00-06:00, day0 21:00-day1 06:00, day1 21:00-end.
  ASSERT_EQ(unoccupied.size(), 3u);
}

TEST(PredictWindow, PerfectModelZeroError) {
  const auto setup = make_perfect();
  const ts::Segment window{0, 60};
  const auto wp = sysid::predict_window(setup.model, setup.trace, window,
                                        quick_options());
  ASSERT_TRUE(wp.has_value());
  EXPECT_EQ(wp->first_row, 1u);
  EXPECT_EQ(wp->predicted.rows(), 20u);
  for (std::size_t k = 0; k < wp->predicted.rows(); ++k) {
    EXPECT_NEAR(wp->predicted(k, 0), setup.trace.value(wp->first_row + k, 0),
                1e-10);
  }
}

TEST(PredictWindow, ScansPastMissingInitialState) {
  auto setup = make_perfect();
  setup.trace.clear(0, 0);
  setup.trace.clear(1, 0);
  const ts::Segment window{0, 60};
  const auto wp = sysid::predict_window(setup.model, setup.trace, window,
                                        quick_options());
  ASSERT_TRUE(wp.has_value());
  EXPECT_EQ(wp->first_row, 3u);  // starts after the first valid state row
}

TEST(PredictWindow, GivesUpWhenScanExhausted) {
  auto setup = make_perfect();
  for (std::size_t k = 0; k < 30; ++k) setup.trace.clear(k, 0);
  auto opts = quick_options();
  opts.max_start_scan = 5;
  const auto wp =
      sysid::predict_window(setup.model, setup.trace, {0, 60}, opts);
  EXPECT_FALSE(wp.has_value());
}

TEST(PredictWindow, RespectsMinSteps) {
  const auto setup = make_perfect();
  auto opts = quick_options();
  opts.min_steps = 50;
  const auto wp =
      sysid::predict_window(setup.model, setup.trace, {0, 10}, opts);
  EXPECT_FALSE(wp.has_value());
}

TEST(PredictWindow, SecondOrderNeedsTwoValidRows) {
  const double a1 = 0.9, a2 = -0.1, b = 0.5;
  sysid::ThermalModel model(sysid::ModelOrder::kSecond, Matrix{{a1}},
                            Matrix{{a2}}, Matrix{{b}}, {1}, {101});
  ts::MultiTrace trace(ts::TimeGrid(0, 30, 20), {1, 101});
  double prev = 20.0, curr = 20.2;
  for (std::size_t k = 0; k < 20; ++k) {
    trace.set(k, 0, curr);
    trace.set(k, 1, 0.5);
    const double next = a1 * curr + a2 * (curr - prev) + b * 0.5;
    prev = curr;
    curr = next;
  }
  const auto wp =
      sysid::predict_window(model, trace, {0, 20}, quick_options());
  ASSERT_TRUE(wp.has_value());
  EXPECT_EQ(wp->first_row, 2u);  // rows 0 and 1 consumed as history
  for (std::size_t k = 0; k < wp->predicted.rows(); ++k) {
    EXPECT_NEAR(wp->predicted(k, 0), trace.value(wp->first_row + k, 0),
                1e-9);
  }
}

TEST(EvaluatePrediction, PerfectModelYieldsZeroRms) {
  const auto setup = make_perfect();
  const auto eval = sysid::evaluate_prediction(
      setup.model, setup.trace, {{0, 30}, {30, 60}}, quick_options());
  EXPECT_EQ(eval.window_count, 2u);
  EXPECT_NEAR(eval.pooled_rms, 0.0, 1e-10);
  EXPECT_NEAR(eval.channel_rms[0], 0.0, 1e-10);
}

TEST(EvaluatePrediction, BiasedModelHasExpectedError) {
  auto setup = make_perfect();
  // Bias the model's input gain: predictions drift from the trace.
  sysid::ThermalModel biased(sysid::ModelOrder::kFirst, Matrix{{0.9}}, {},
                             Matrix{{0.6}}, {1}, {101});
  const auto eval = sysid::evaluate_prediction(biased, setup.trace, {{0, 60}},
                                               quick_options());
  EXPECT_GT(eval.pooled_rms, 0.05);
  EXPECT_GT(eval.channel_abs_errors[0].size(), 10u);
  // 90th percentile of |err| must be >= the median.
  const auto p90 = eval.channel_abs_percentile(90.0);
  const auto p50 = eval.channel_abs_percentile(50.0);
  EXPECT_GE(p90[0], p50[0]);
}

TEST(EvaluatePrediction, SkipsMissingComparisons) {
  auto setup = make_perfect();
  // Punch measurement gaps inside the window; evaluation should still
  // produce (zero-error) statistics from the remaining samples, since the
  // state channel is only needed at the start and for comparisons.
  for (std::size_t k = 10; k < 15; ++k) setup.trace.clear(k, 0);
  const auto eval = sysid::evaluate_prediction(setup.model, setup.trace,
                                               {{0, 30}}, quick_options());
  EXPECT_EQ(eval.window_count, 1u);
  EXPECT_NEAR(eval.pooled_rms, 0.0, 1e-10);
}

TEST(EvaluatePrediction, ChannelRmsPercentileOrdering) {
  // Two channels, one with double the error of the other.
  sysid::ThermalModel model(sysid::ModelOrder::kFirst,
                            Matrix{{0.0, 0.0}, {0.0, 0.0}}, {},
                            Matrix{{1.0}, {1.0}}, {1, 2}, {101});
  ts::MultiTrace trace(ts::TimeGrid(0, 30, 20), {1, 2, 101});
  for (std::size_t k = 0; k < 20; ++k) {
    trace.set(k, 0, 1.1);  // model predicts exactly 1.0: error 0.1
    trace.set(k, 1, 1.2);  // error 0.2
    trace.set(k, 2, 1.0);
  }
  const auto eval = sysid::evaluate_prediction(model, trace, {{0, 20}},
                                               quick_options());
  EXPECT_NEAR(eval.channel_rms[0], 0.1, 1e-9);
  EXPECT_NEAR(eval.channel_rms[1], 0.2, 1e-9);
  EXPECT_NEAR(eval.channel_rms_percentile(100.0), 0.2, 1e-9);
  EXPECT_NEAR(eval.channel_rms_percentile(0.0), 0.1, 1e-9);
}

TEST(EvaluatePrediction, NoWindowsMeansNoSamples) {
  const auto setup = make_perfect();
  const auto eval = sysid::evaluate_prediction(setup.model, setup.trace, {},
                                               quick_options());
  EXPECT_EQ(eval.window_count, 0u);
  EXPECT_TRUE(std::isnan(eval.pooled_rms));
  EXPECT_THROW((void)eval.channel_rms_percentile(90.0), std::runtime_error);
}
