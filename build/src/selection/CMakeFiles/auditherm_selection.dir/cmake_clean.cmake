file(REMOVE_RECURSE
  "CMakeFiles/auditherm_selection.dir/evaluation.cpp.o"
  "CMakeFiles/auditherm_selection.dir/evaluation.cpp.o.d"
  "CMakeFiles/auditherm_selection.dir/gp_placement.cpp.o"
  "CMakeFiles/auditherm_selection.dir/gp_placement.cpp.o.d"
  "CMakeFiles/auditherm_selection.dir/strategies.cpp.o"
  "CMakeFiles/auditherm_selection.dir/strategies.cpp.o.d"
  "CMakeFiles/auditherm_selection.dir/variance_placement.cpp.o"
  "CMakeFiles/auditherm_selection.dir/variance_placement.cpp.o.d"
  "libauditherm_selection.a"
  "libauditherm_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auditherm_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
