#include "auditherm/timeseries/resample.hpp"

#include <stdexcept>

namespace auditherm::timeseries {

MultiTrace downsample(const MultiTrace& trace, std::size_t factor,
                      ResampleMethod method) {
  if (factor == 0) {
    throw std::invalid_argument("downsample: factor == 0");
  }
  if (factor == 1) return trace;
  const std::size_t out_rows = trace.size() / factor;
  TimeGrid grid(trace.grid().start(),
                trace.grid().step() * static_cast<Minutes>(factor), out_rows);
  MultiTrace out(grid, trace.channels());
  for (std::size_t r = 0; r < out_rows; ++r) {
    for (std::size_t c = 0; c < trace.channel_count(); ++c) {
      double sum = 0.0;
      double last = 0.0;
      std::size_t count = 0;
      for (std::size_t j = 0; j < factor; ++j) {
        const std::size_t k = r * factor + j;
        if (!trace.valid(k, c)) continue;
        sum += trace.value(k, c);
        last = trace.value(k, c);
        ++count;
      }
      if (count == 0) continue;
      out.set(r, c,
              method == ResampleMethod::kMean
                  ? sum / static_cast<double>(count)
                  : last);
    }
  }
  return out;
}

MultiTrace forward_fill(const MultiTrace& trace, std::size_t max_fill) {
  MultiTrace out = trace;
  for (std::size_t c = 0; c < trace.channel_count(); ++c) {
    bool have_value = false;
    double last = 0.0;
    std::size_t run = 0;
    for (std::size_t k = 0; k < trace.size(); ++k) {
      if (trace.valid(k, c)) {
        have_value = true;
        last = trace.value(k, c);
        run = 0;
      } else if (have_value) {
        ++run;
        if (max_fill == 0 || run <= max_fill) {
          out.set(k, c, last);
        }
      }
    }
  }
  return out;
}

}  // namespace auditherm::timeseries
