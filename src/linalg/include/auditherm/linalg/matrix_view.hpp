#pragma once

/// \file matrix_view.hpp
/// Non-owning strided views over dense row-major data.
///
/// A MatrixView (and its one-dimensional sibling VectorView) references
/// someone else's storage — typically a Matrix, or a rectangular window of
/// one — without copying it. Views carry a row stride, so a column slice,
/// a row slice, or a view into a wider parent matrix all read through the
/// same two indices. They are the substrate for timeseries::TraceView:
/// every trace subset the pipeline used to materialize now reads through
/// one of these.
///
/// Lifetime: a view never owns. It is valid exactly as long as the viewed
/// storage is alive and unmodified in shape; the viewer is responsible for
/// that (see DESIGN.md §"View ownership and lifetime").

#include <cstddef>

#include "auditherm/linalg/matrix.hpp"

namespace auditherm::linalg {

/// Non-owning strided view of `size` doubles spaced `stride` apart.
class VectorView {
 public:
  constexpr VectorView() = default;
  constexpr VectorView(const double* data, std::size_t size,
                       std::size_t stride = 1) noexcept
      : data_(data), size_(size), stride_(stride) {}

  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] constexpr std::size_t stride() const noexcept {
    return stride_;
  }

  /// Unchecked element access.
  [[nodiscard]] constexpr double operator[](std::size_t i) const noexcept {
    return data_[i * stride_];
  }

  /// Materialize into an owning Vector.
  [[nodiscard]] Vector to_vector() const {
    Vector out(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] = (*this)[i];
    return out;
  }

 private:
  const double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t stride_ = 1;
};

/// Non-owning rows x cols view over row-major storage whose physical row
/// pitch is `row_stride` (>= cols; equal for a whole-matrix view).
class MatrixView {
 public:
  constexpr MatrixView() = default;

  /// View of an entire Matrix. Implicit on purpose: any Matrix reads as a
  /// view wherever one is expected.
  MatrixView(const Matrix& m) noexcept  // NOLINT(google-explicit-constructor)
      : data_(m.data().data()),
        rows_(m.rows()),
        cols_(m.cols()),
        row_stride_(m.cols()) {}

  constexpr MatrixView(const double* data, std::size_t rows, std::size_t cols,
                       std::size_t row_stride) noexcept
      : data_(data), rows_(rows), cols_(cols), row_stride_(row_stride) {}

  [[nodiscard]] constexpr std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] constexpr std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] constexpr std::size_t row_stride() const noexcept {
    return row_stride_;
  }
  [[nodiscard]] constexpr bool empty() const noexcept {
    return rows_ == 0 || cols_ == 0;
  }

  /// Unchecked element access.
  [[nodiscard]] constexpr double operator()(std::size_t i,
                                            std::size_t j) const noexcept {
    return data_[i * row_stride_ + j];
  }

  /// Row i as a contiguous VectorView.
  [[nodiscard]] constexpr VectorView row_view(std::size_t i) const noexcept {
    return {data_ + i * row_stride_, cols_, 1};
  }

  /// Column j as a strided VectorView.
  [[nodiscard]] constexpr VectorView col_view(std::size_t j) const noexcept {
    return {data_ + j, rows_, row_stride_};
  }

  /// View of the sub-block rows [r0, r0+nr) x cols [c0, c0+nc); the caller
  /// guarantees the block fits.
  [[nodiscard]] constexpr MatrixView block_view(
      std::size_t r0, std::size_t c0, std::size_t nr,
      std::size_t nc) const noexcept {
    return {data_ + r0 * row_stride_ + c0, nr, nc, row_stride_};
  }

  /// Materialize into an owning Matrix.
  [[nodiscard]] Matrix to_matrix() const {
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) out(i, j) = (*this)(i, j);
    }
    return out;
  }

 private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t row_stride_ = 0;
};

}  // namespace auditherm::linalg
