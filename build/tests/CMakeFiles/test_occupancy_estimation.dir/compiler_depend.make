# Empty compiler generated dependencies file for test_occupancy_estimation.
# This may be replaced when dependencies are built.
