// Ablation: ridge regularization of the identification problem.
//
// DESIGN.md calls out the relative ridge as a design choice: thermal
// regressors are dominated by a ~20 degC DC component and the four VAVs
// move in unison, so the unregularized normal equations sit close to
// singular. This sweep shows prediction error and the stability of the
// identified dynamics across ridge strengths for both model orders.

#include "bench_common.hpp"

using namespace auditherm;

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Ablation: ridge strength for model identification");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto windows = bench::evaluation_windows(dataset,
                                                 split.validation_mask,
                                                 hvac::Mode::kOccupied);

  std::printf("%-12s %-26s %-26s\n", "ridge", "first (p90 / spec.radius)",
              "second (p90 / spec.radius)");
  double best_first = 1e9, best_second = 1e9;
  for (double ridge : {0.0, 1e-9, 1e-7, 1e-5, 1e-3, 1e-1}) {
    std::printf("%-12g", ridge);
    for (auto order : {sysid::ModelOrder::kFirst, sysid::ModelOrder::kSecond}) {
      sysid::EstimationOptions opts;
      opts.ridge = ridge;
      sysid::ModelEstimator estimator(dataset.sensor_ids(),
                                      dataset.input_ids(), order, opts);
      double p90 = -1.0, radius = -1.0;
      try {
        const auto model = estimator.fit(
            dataset.trace, core::and_masks(split.train_mask, mode_mask));
        radius = model.spectral_radius_bound();
        const auto eval = sysid::evaluate_prediction(model, dataset.trace,
                                                     windows, {});
        p90 = eval.channel_rms_percentile(90.0);
      } catch (const std::exception&) {
        std::printf(" %-26s", "(solver failed)");
        continue;
      }
      std::printf(" %8.3f / %-14.4f", p90, radius);
      auto& best = order == sysid::ModelOrder::kFirst ? best_first
                                                      : best_second;
      best = std::min(best, p90);
    }
    std::printf("\n");
  }
  std::printf("\nbest p90: first %.3f, second %.3f — a small relative ridge "
              "(1e-9..1e-5) is the safe operating region; heavy ridge biases "
              "the dynamics, zero ridge risks instability.\n",
              best_first, best_second);
  return 0;
}
