// Tests for the representative-sensor selection strategies.

#include "auditherm/selection/strategies.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace selection = auditherm::selection;
namespace ts = auditherm::timeseries;
using ts::MultiTrace;
using ts::TimeGrid;

namespace {

/// Cluster A = {1, 2, 3} near 20 degC (2 sits exactly on the mean),
/// cluster B = {4, 5} near 23 degC (5 on the mean).
MultiTrace make_training() {
  MultiTrace trace(TimeGrid(0, 30, 40), {1, 2, 3, 4, 5});
  for (std::size_t k = 0; k < 40; ++k) {
    trace.set(k, 0, 19.6);
    trace.set(k, 1, 20.0);  // the near-mean sensor of cluster A
    trace.set(k, 2, 20.4);
    trace.set(k, 3, 22.6);
    trace.set(k, 4, 23.0 - 0.2);  // mean of {4,5} = 22.7; 5 is closer
  }
  return trace;
}

const selection::ClusterSets kClusters{{1, 2, 3}, {4, 5}};

}  // namespace

TEST(Selection, FlattenedConcatenatesClusters) {
  selection::Selection sel;
  sel.per_cluster = {{1, 2}, {5}};
  EXPECT_EQ(sel.flattened(), (std::vector<int>{1, 2, 5}));
}

TEST(Sms, PicksNearMeanSensor) {
  const auto training = make_training();
  const auto sel = selection::stratified_near_mean(training, kClusters);
  ASSERT_EQ(sel.per_cluster.size(), 2u);
  EXPECT_EQ(sel.per_cluster[0], (std::vector<int>{2}));
  EXPECT_EQ(sel.per_cluster[1], (std::vector<int>{5}));
}

TEST(Sms, MultipleSensorsRankedByDistance) {
  const auto training = make_training();
  const auto sel = selection::stratified_near_mean(training, kClusters, 2);
  EXPECT_EQ(sel.per_cluster[0].size(), 2u);
  EXPECT_EQ(sel.per_cluster[0][0], 2);  // best first
  // Cluster of 2 can only supply 2.
  EXPECT_EQ(sel.per_cluster[1].size(), 2u);
}

TEST(Srs, SelectsWithinOwnCluster) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto sel = selection::stratified_random(kClusters, seed);
    for (std::size_t c = 0; c < kClusters.size(); ++c) {
      ASSERT_EQ(sel.per_cluster[c].size(), 1u);
      EXPECT_NE(std::find(kClusters[c].begin(), kClusters[c].end(),
                          sel.per_cluster[c][0]),
                kClusters[c].end());
    }
  }
}

TEST(Srs, DrawsWithoutReplacement) {
  const auto sel = selection::stratified_random(kClusters, 3, 3);
  std::set<int> unique(sel.per_cluster[0].begin(), sel.per_cluster[0].end());
  EXPECT_EQ(unique.size(), sel.per_cluster[0].size());
}

TEST(Srs, DeterministicPerSeed) {
  const auto a = selection::stratified_random(kClusters, 11);
  const auto b = selection::stratified_random(kClusters, 11);
  EXPECT_EQ(a.per_cluster, b.per_cluster);
}

TEST(Rs, CanCrossClusters) {
  // RS ignores the grouping; across seeds it must sometimes pick both
  // representatives from the same original cluster.
  const auto training = make_training();
  bool crossed = false;
  for (std::uint64_t seed = 0; seed < 50 && !crossed; ++seed) {
    const auto sel = selection::simple_random(training, kClusters, seed);
    const auto chosen = sel.flattened();
    const bool both_in_a =
        std::count_if(chosen.begin(), chosen.end(),
                      [](int id) { return id <= 3; }) == 2;
    if (both_in_a) crossed = true;
  }
  EXPECT_TRUE(crossed);
}

TEST(Rs, SelectionCountMatchesClusters) {
  const auto training = make_training();
  const auto sel = selection::simple_random(training, kClusters, 1);
  EXPECT_EQ(sel.flattened().size(), 2u);
}

TEST(Thermostats, RoundRobinAssignment) {
  const auto sel = selection::thermostat_baseline({40, 41}, 3);
  ASSERT_EQ(sel.per_cluster.size(), 3u);
  EXPECT_EQ(sel.per_cluster[0], (std::vector<int>{40}));
  EXPECT_EQ(sel.per_cluster[1], (std::vector<int>{41}));
  EXPECT_EQ(sel.per_cluster[2], (std::vector<int>{40}));
  EXPECT_THROW((void)selection::thermostat_baseline({}, 2),
               std::invalid_argument);
  EXPECT_THROW((void)selection::thermostat_baseline({40}, 0),
               std::invalid_argument);
}

TEST(AssignToClusters, BestMatchAssignment) {
  const auto training = make_training();
  // Chosen: one cool-zone sensor (1) and one warm-zone sensor (4); they
  // must land on their own clusters regardless of input order.
  const auto sel =
      selection::assign_to_clusters(training, kClusters, {4, 1});
  EXPECT_EQ(sel.per_cluster[0], (std::vector<int>{1}));
  EXPECT_EQ(sel.per_cluster[1], (std::vector<int>{4}));
}

TEST(AssignToClusters, BothFromOneZoneStillCoversAllClusters) {
  const auto training = make_training();
  const auto sel =
      selection::assign_to_clusters(training, kClusters, {1, 3});
  EXPECT_EQ(sel.per_cluster[0].size(), 1u);
  EXPECT_EQ(sel.per_cluster[1].size(), 1u);  // gets a cool sensor anyway
}

TEST(AssignToClusters, Validation) {
  const auto training = make_training();
  EXPECT_THROW(
      (void)selection::assign_to_clusters(training, kClusters, {}),
      std::invalid_argument);
}

TEST(Selection, CommonValidation) {
  const auto training = make_training();
  EXPECT_THROW((void)selection::stratified_near_mean(training, {}),
               std::invalid_argument);
  EXPECT_THROW((void)selection::stratified_near_mean(training, kClusters, 0),
               std::invalid_argument);
  const selection::ClusterSets with_empty{{1}, {}};
  EXPECT_THROW((void)selection::stratified_random(with_empty, 1),
               std::invalid_argument);
}
