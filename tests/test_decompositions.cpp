// Unit + property tests for QR, Cholesky, LU and the Jacobi eigensolver.

#include "auditherm/linalg/decompositions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

#include "auditherm/linalg/least_squares.hpp"
#include "auditherm/linalg/vector_ops.hpp"

namespace linalg = auditherm::linalg;
using linalg::Matrix;
using linalg::Vector;

namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = dist(rng);
  return m;
}

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  const auto a = random_matrix(n + 3, n, seed);
  auto spd = linalg::gram(a, a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
  return spd;
}

}  // namespace

// ---------------------------------------------------------------------------
// QR
// ---------------------------------------------------------------------------

TEST(Qr, ReconstructsMatrix) {
  const auto a = random_matrix(8, 5, 42);
  linalg::QrDecomposition qr(a);
  const auto reconstructed = qr.thin_q() * qr.r();
  EXPECT_TRUE(linalg::approx_equal(reconstructed, a, 1e-10));
}

TEST(Qr, ThinQHasOrthonormalColumns) {
  const auto a = random_matrix(10, 4, 7);
  linalg::QrDecomposition qr(a);
  const auto q = qr.thin_q();
  const auto qtq = linalg::gram(q, q);
  EXPECT_TRUE(linalg::approx_equal(qtq, Matrix::identity(4), 1e-10));
}

TEST(Qr, SolvesSquareSystemExactly) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x_true{1.0, -2.0};
  const Vector b = a * x_true;
  linalg::QrDecomposition qr(a);
  const Vector x = qr.solve(b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
}

TEST(Qr, LeastSquaresResidualOrthogonalToColumns) {
  const auto a = random_matrix(20, 3, 11);
  const auto b = random_matrix(20, 1, 12).col_vector(0);
  linalg::QrDecomposition qr(a);
  const Vector x = qr.solve(b);
  // Optimality: A^T (A x - b) = 0.
  const Vector r = linalg::subtract(a * x, b);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(linalg::dot(a.col_vector(j), r), 0.0, 1e-9);
  }
}

TEST(Qr, RejectsWideMatrix) {
  EXPECT_THROW(linalg::QrDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(Qr, DetectsRankDeficiency) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // dependent column
  }
  linalg::QrDecomposition qr(a);
  EXPECT_TRUE(qr.rank_deficient());
  EXPECT_THROW((void)qr.solve(Vector(4, 1.0)), std::domain_error);
}

TEST(Qr, RhsLengthMismatchThrows) {
  linalg::QrDecomposition qr(random_matrix(5, 2, 3));
  EXPECT_THROW((void)qr.solve(Vector(4, 1.0)), std::invalid_argument);
}

TEST(Qr, MultipleRhsMatchesSingle) {
  const auto a = random_matrix(9, 4, 21);
  const auto b = random_matrix(9, 3, 22);
  linalg::QrDecomposition qr(a);
  const auto x = qr.solve(b);
  for (std::size_t j = 0; j < 3; ++j) {
    const auto xj = qr.solve(b.col_vector(j));
    for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x(i, j), xj[i], 1e-12);
  }
}

TEST(Qr, QtTimesMatchesThinQ) {
  const auto a = random_matrix(9, 4, 91);
  const auto b = random_matrix(9, 3, 92);
  linalg::QrDecomposition qr(a);
  const auto qtb = qr.qt_times(b);
  ASSERT_EQ(qtb.rows(), 9u);
  ASSERT_EQ(qtb.cols(), 3u);
  // The first n rows must match thin-Q^T b (the reflectors produce R with
  // rdiag signs, so compare through R x = qtb against the known LS solve).
  const auto x = qr.solve(b);
  const auto r = qr.r();
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < 4; ++i) {
      double s = 0.0;
      for (std::size_t k = i; k < 4; ++k) s += r(i, k) * x(k, j);
      EXPECT_NEAR(s, qtb(i, j), 1e-10);
    }
  }
  // The tail rows carry the residual: their column sumsq equals ||Ax-b||^2.
  for (std::size_t j = 0; j < 3; ++j) {
    double tail = 0.0;
    for (std::size_t i = 4; i < 9; ++i) tail += qtb(i, j) * qtb(i, j);
    const double res =
        linalg::residual_norm(a, x.col_vector(j), b.col_vector(j));
    EXPECT_NEAR(tail, res * res, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// UpdatableQr
// ---------------------------------------------------------------------------

namespace {

/// Max |difference| between two solutions, relative to the larger scale.
double max_param_diff(const Matrix& a, const Matrix& b) {
  double diff = 0.0;
  double scale = 1.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      diff = std::max(diff, std::abs(a(i, j) - b(i, j)));
      scale = std::max(scale, std::abs(a(i, j)));
    }
  }
  return diff / scale;
}

}  // namespace

TEST(UpdatableQr, AppendsMatchBatchQr) {
  const auto a = random_matrix(20, 6, 1);
  const auto b = random_matrix(20, 2, 2);
  linalg::UpdatableQr inc(6, 2);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    Vector za(6), yb(2);
    for (std::size_t j = 0; j < 6; ++j) za[j] = a(i, j);
    for (std::size_t j = 0; j < 2; ++j) yb[j] = b(i, j);
    inc.append(za, yb);
  }
  EXPECT_EQ(inc.rows(), 20u);
  const auto batch = linalg::QrDecomposition(a).solve(b);
  EXPECT_LT(max_param_diff(inc.solve(), batch), 1e-10);
  // R^T R must equal A^T A regardless of the rotation order.
  const auto rtr = linalg::gram(inc.r(), inc.r());
  EXPECT_TRUE(linalg::approx_equal(rtr, linalg::gram(a, a), 1e-8));
}

TEST(UpdatableQr, SeedConstructorMatchesSequentialAppends) {
  const auto a = random_matrix(15, 5, 3);
  const auto b = random_matrix(15, 1, 4);
  linalg::UpdatableQr seeded(a, b);
  linalg::UpdatableQr appended(5, 1);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    Vector za(5), yb(1);
    for (std::size_t j = 0; j < 5; ++j) za[j] = a(i, j);
    yb[0] = b(i, 0);
    appended.append(za, yb);
  }
  EXPECT_LT(max_param_diff(seeded.solve(), appended.solve()), 1e-10);
  EXPECT_TRUE(linalg::approx_equal(seeded.r(), appended.r(), 1e-9));
  EXPECT_NEAR(seeded.gram_trace(), appended.gram_trace(), 1e-8);
  EXPECT_NEAR(seeded.residual_sumsq()[0], appended.residual_sumsq()[0], 1e-8);
}

TEST(UpdatableQr, DowndateRemovesRowExactly) {
  const auto a = random_matrix(18, 4, 5);
  const auto b = random_matrix(18, 2, 6);
  linalg::UpdatableQr inc(a, b);
  // Remove the first 6 rows; the survivors are rows 6..17.
  for (std::size_t i = 0; i < 6; ++i) {
    Vector za(4), yb(2);
    for (std::size_t j = 0; j < 4; ++j) za[j] = a(i, j);
    for (std::size_t j = 0; j < 2; ++j) yb[j] = b(i, j);
    ASSERT_TRUE(inc.downdate(za, yb));
  }
  EXPECT_EQ(inc.rows(), 12u);
  Matrix rest_a(12, 4), rest_b(12, 2);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 4; ++j) rest_a(i, j) = a(i + 6, j);
    for (std::size_t j = 0; j < 2; ++j) rest_b(i, j) = b(i + 6, j);
  }
  const auto batch = linalg::QrDecomposition(rest_a).solve(rest_b);
  EXPECT_LT(max_param_diff(inc.solve(), batch), 1e-9);
}

TEST(UpdatableQr, GuardRejectionLeavesFactorizationUntouched) {
  const auto a = random_matrix(8, 3, 7);
  const auto b = random_matrix(8, 1, 8);
  linalg::UpdatableQr inc(a, b);
  const auto before_x = inc.solve();
  const auto before_r = inc.r();
  // A row far larger than anything folded in: the hyperbolic rotation
  // would need |R_00| < |z_0| and must refuse.
  const Vector huge{1e6, 0.0, 0.0};
  const Vector huge_y{0.0};
  EXPECT_FALSE(inc.downdate(huge, huge_y));
  EXPECT_EQ(inc.rows(), 8u);
  EXPECT_TRUE(linalg::approx_equal(inc.r(), before_r, 0.0));
  EXPECT_TRUE(linalg::approx_equal(inc.solve(), before_x, 0.0));
}

TEST(UpdatableQr, SolveRidgeMatchesAugmentedBatch) {
  const auto a = random_matrix(12, 4, 9);
  const auto b = random_matrix(12, 2, 10);
  linalg::UpdatableQr inc(a, b);
  const double lambda = 1e-3;
  // Reference: QR of [A; sqrt(lambda) I] with stacked zero rhs.
  Matrix aug(16, 4);
  Matrix baug(16, 2);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 4; ++j) aug(i, j) = a(i, j);
    for (std::size_t j = 0; j < 2; ++j) baug(i, j) = b(i, j);
  }
  for (std::size_t j = 0; j < 4; ++j) aug(12 + j, j) = std::sqrt(lambda);
  const auto batch = linalg::QrDecomposition(aug).solve(baug);
  EXPECT_LT(max_param_diff(inc.solve_ridge(lambda), batch), 1e-10);
}

TEST(UpdatableQr, ArgumentChecks) {
  EXPECT_THROW(linalg::UpdatableQr(0, 1), std::invalid_argument);
  EXPECT_THROW(linalg::UpdatableQr(3, 0), std::invalid_argument);
  linalg::UpdatableQr inc(3, 1);
  EXPECT_THROW(inc.append(Vector{1.0, 2.0}, Vector{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)inc.downdate(Vector{1.0, 2.0, 3.0}, Vector{}),
               std::invalid_argument);
  EXPECT_THROW((void)inc.solve_ridge(0.0), std::invalid_argument);
  // Empty factorization is rank deficient.
  EXPECT_THROW((void)inc.solve(), std::domain_error);
  // Downdating an empty factorization reports failure, not UB.
  EXPECT_FALSE(inc.downdate(Vector{1.0, 0.0, 0.0}, Vector{0.0}));
}

/// The satellite property sweep: 40+ seeds comparing incremental
/// update/downdate against a from-scratch Householder factorization across
/// tall, square, and near-rank-deficient windows.
TEST(UpdatableQr, PropertySweepAcrossShapesAndSeeds) {
  for (std::uint64_t seed = 1; seed <= 42; ++seed) {
    // --- Tall window: 24 appends, 8 downdates -> 16 x 5 survivors.
    {
      const auto a = random_matrix(24, 5, 1000 + seed);
      const auto b = random_matrix(24, 2, 2000 + seed);
      linalg::UpdatableQr inc(5, 2);
      Vector za(5), yb(2);
      for (std::size_t i = 0; i < 24; ++i) {
        for (std::size_t j = 0; j < 5; ++j) za[j] = a(i, j);
        for (std::size_t j = 0; j < 2; ++j) yb[j] = b(i, j);
        inc.append(za, yb);
      }
      for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 5; ++j) za[j] = a(i, j);
        for (std::size_t j = 0; j < 2; ++j) yb[j] = b(i, j);
        ASSERT_TRUE(inc.downdate(za, yb)) << "seed " << seed;
      }
      Matrix rest_a(16, 5), rest_b(16, 2);
      for (std::size_t i = 0; i < 16; ++i) {
        for (std::size_t j = 0; j < 5; ++j) rest_a(i, j) = a(i + 8, j);
        for (std::size_t j = 0; j < 2; ++j) rest_b(i, j) = b(i + 8, j);
      }
      const auto batch = linalg::QrDecomposition(rest_a).solve(rest_b);
      EXPECT_LT(max_param_diff(inc.solve(), batch), 1e-8) << "seed " << seed;
    }
    // --- Square window: downdates shrink 10 x 5 to exactly 5 x 5.
    {
      const auto a = random_matrix(10, 5, 3000 + seed);
      const auto b = random_matrix(10, 1, 4000 + seed);
      linalg::UpdatableQr inc(a, b);
      Vector za(5), yb(1);
      for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 5; ++j) za[j] = a(i, j);
        yb[0] = b(i, 0);
        ASSERT_TRUE(inc.downdate(za, yb)) << "seed " << seed;
      }
      Matrix rest_a(5, 5), rest_b(5, 1);
      for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 5; ++j) rest_a(i, j) = a(i + 5, j);
        rest_b(i, 0) = b(i + 5, 0);
      }
      const auto batch = linalg::QrDecomposition(rest_a).solve(rest_b);
      EXPECT_LT(max_param_diff(inc.solve(), batch), 1e-7) << "seed " << seed;
    }
    // --- Near-rank-deficient window: two almost-collinear columns; the
    // plain solve is ill-posed, so compare the ridge solve against the
    // augmented-system reference.
    {
      auto a = random_matrix(20, 4, 5000 + seed);
      for (std::size_t i = 0; i < 20; ++i) {
        a(i, 1) = a(i, 0) + 1e-9 * a(i, 1);
      }
      const auto b = random_matrix(20, 1, 6000 + seed);
      linalg::UpdatableQr inc(4, 1);
      Vector za(4), yb(1);
      for (std::size_t i = 0; i < 20; ++i) {
        for (std::size_t j = 0; j < 4; ++j) za[j] = a(i, j);
        yb[0] = b(i, 0);
        inc.append(za, yb);
      }
      for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) za[j] = a(i, j);
        yb[0] = b(i, 0);
        ASSERT_TRUE(inc.downdate(za, yb)) << "seed " << seed;
      }
      const double lambda = 1e-6;
      Matrix aug(20, 4);
      Matrix baug(20, 1);
      for (std::size_t i = 0; i < 16; ++i) {
        for (std::size_t j = 0; j < 4; ++j) aug(i, j) = a(i + 4, j);
        baug(i, 0) = b(i + 4, 0);
      }
      for (std::size_t j = 0; j < 4; ++j) aug(16 + j, j) = std::sqrt(lambda);
      const auto batch = linalg::QrDecomposition(aug).solve(baug);
      EXPECT_LT(max_param_diff(inc.solve_ridge(lambda), batch), 1e-6)
          << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Cholesky
// ---------------------------------------------------------------------------

TEST(Cholesky, FactorReconstructs) {
  const auto a = random_spd(6, 5);
  linalg::CholeskyDecomposition chol(a);
  const auto l = chol.l();
  const auto reconstructed = linalg::outer_product(l, l);  // L L^T
  EXPECT_TRUE(linalg::approx_equal(reconstructed, a, 1e-9));
}

TEST(Cholesky, SolveMatchesDirectCheck) {
  const auto a = random_spd(5, 9);
  const Vector x_true{1.0, -1.0, 2.0, 0.5, -0.25};
  const Vector b = a * x_true;
  linalg::CholeskyDecomposition chol(a);
  const Vector x = chol.solve(b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Cholesky, LogDeterminantMatchesLu) {
  const auto a = random_spd(4, 13);
  linalg::CholeskyDecomposition chol(a);
  linalg::LuDecomposition lu(a);
  EXPECT_NEAR(chol.log_determinant(), std::log(lu.determinant()), 1e-9);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(linalg::CholeskyDecomposition(Matrix(2, 3)),
               std::invalid_argument);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  EXPECT_THROW(linalg::CholeskyDecomposition{a}, std::domain_error);
}

TEST(Cholesky, RhsMismatchThrows) {
  linalg::CholeskyDecomposition chol(random_spd(3, 1));
  EXPECT_THROW((void)chol.solve(Vector(4, 0.0)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------------

TEST(Lu, SolvesGeneralSquareSystem) {
  Matrix a{{0.0, 2.0, 1.0}, {1.0, -2.0, -3.0}, {-1.0, 1.0, 2.0}};
  const Vector x_true{1.0, 2.0, 3.0};
  const Vector b = a * x_true;
  linalg::LuDecomposition lu(a);
  const Vector x = lu.solve(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Lu, DeterminantKnownValue) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_NEAR(linalg::LuDecomposition(a).determinant(), 6.0, 1e-12);
  Matrix swap{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(linalg::LuDecomposition(swap).determinant(), -1.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(linalg::LuDecomposition{a}, std::domain_error);
}

TEST(Lu, RejectsNonSquare) {
  EXPECT_THROW(linalg::LuDecomposition(Matrix(2, 3)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Symmetric eigensolver
// ---------------------------------------------------------------------------

TEST(EigenSymmetric, DiagonalMatrix) {
  const auto eig = linalg::eigen_symmetric(Matrix::diagonal({3.0, 1.0, 2.0}));
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0, 1e-12);
}

TEST(EigenSymmetric, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  const auto eig = linalg::eigen_symmetric(a);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-10);
}

TEST(EigenSymmetric, EmptyAndSingle) {
  EXPECT_TRUE(linalg::eigen_symmetric(Matrix()).eigenvalues.empty());
  const auto one = linalg::eigen_symmetric(Matrix{{5.0}});
  ASSERT_EQ(one.eigenvalues.size(), 1u);
  EXPECT_DOUBLE_EQ(one.eigenvalues[0], 5.0);
}

TEST(EigenSymmetric, RejectsNonSquare) {
  EXPECT_THROW(linalg::eigen_symmetric(Matrix(2, 3)), std::invalid_argument);
}

TEST(EigenSymmetric, ConvergesOnLastAllowedSweep) {
  // A 2x2 needs exactly one sweep (one rotation annihilates the only
  // off-diagonal pair). Regression for the off-by-one that threw one sweep
  // early: max_sweeps = 1 must succeed, not report non-convergence.
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  const auto eig = linalg::eigen_symmetric(a, /*max_sweeps=*/1);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-12);
}

TEST(EigenSymmetric, ThrowsWhenSweepBudgetExhausted) {
  // Zero sweeps cannot diagonalize a coupled matrix.
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  EXPECT_THROW((void)linalg::eigen_symmetric(a, /*max_sweeps=*/0),
               std::domain_error);
}

TEST(EigenSymmetric, SignConventionPinsLargestComponentPositive) {
  const auto a = random_spd(9, 31);
  const auto eig = linalg::eigen_symmetric(a);
  for (std::size_t j = 0; j < 9; ++j) {
    const Vector v = eig.eigenvectors.col_vector(j);
    std::size_t arg = 0;
    for (std::size_t i = 1; i < 9; ++i)
      if (std::abs(v[i]) > std::abs(v[arg])) arg = i;
    EXPECT_GE(v[arg], 0.0) << "column " << j;
  }
}

/// Property sweep: random symmetric matrices of several sizes must satisfy
/// A v = lambda v, orthonormal eigenvectors, ascending eigenvalues, and
/// trace preservation.
class EigenProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenProperty, SatisfiesEigenEquations) {
  const std::size_t n = GetParam();
  const auto base = random_matrix(n, n, 100 + n);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = 0.5 * (base(i, j) + base(j, i));

  const auto eig = linalg::eigen_symmetric(a);

  double trace = 0.0;
  double eig_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a(i, i);
    eig_sum += eig.eigenvalues[i];
    if (i > 0) {
      EXPECT_LE(eig.eigenvalues[i - 1], eig.eigenvalues[i] + 1e-12);
    }
  }
  EXPECT_NEAR(trace, eig_sum, 1e-8 * std::max(1.0, std::abs(trace)));

  const auto vtv = linalg::gram(eig.eigenvectors, eig.eigenvectors);
  EXPECT_TRUE(linalg::approx_equal(vtv, Matrix::identity(n), 1e-9));

  for (std::size_t j = 0; j < n; ++j) {
    const Vector v = eig.eigenvectors.col_vector(j);
    const Vector av = a * v;
    const Vector lv = linalg::scale(eig.eigenvalues[j], v);
    EXPECT_NEAR(linalg::norm2(linalg::subtract(av, lv)), 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 27, 40));
