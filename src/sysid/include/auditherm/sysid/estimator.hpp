#pragma once

/// \file estimator.hpp
/// Piecewise least-squares identification of thermal models (Section IV.B).
///
/// The dataset has gaps (wireless dropouts, server outages), so the paper
/// minimizes the ensemble objective (eq. 4) over continuous sampling
/// intervals: a transition T(k) -> T(k+1) contributes only when every
/// required channel is valid across it. We assemble exactly those
/// transitions into one regression and solve it directly (the objective
/// is an ordinary linear least squares; CVX/SeDuMi in the paper computes
/// the same global optimum).

#include <vector>

#include "auditherm/sysid/model.hpp"
#include "auditherm/timeseries/multi_trace.hpp"
#include "auditherm/timeseries/segmentation.hpp"

namespace auditherm::sysid {

/// Estimation options.
struct EstimationOptions {
  /// Ridge penalty on the coefficient matrix, relative to the regressor
  /// scale (see LeastSquaresOptions::relative_ridge). A small positive
  /// value keeps the normal equations well posed when regressors are
  /// near-collinear (e.g., four VAVs commanded in unison by the same
  /// controller, or low-noise temperature channels that track each other).
  double ridge = 1e-7;
  /// Interpret `ridge` relative to the regressor Gram diagonal.
  bool relative_ridge = true;
  /// Minimum number of usable transitions; fit() throws std::runtime_error
  /// below this (an over-parameterized fit would be meaningless).
  std::size_t min_transitions = 0;  ///< 0 = max(4 * #parameters per row, 8)
};

/// Summary of the assembled regression, for diagnostics and tests.
struct RegressionSummary {
  std::size_t transitions = 0;  ///< rows in the regression
  std::size_t segments = 0;     ///< continuous intervals contributing
  std::size_t parameters = 0;   ///< unknowns per output row
};

/// Identifies ThermalModels from gapped traces.
class ModelEstimator {
 public:
  /// `state_ids` are the temperature channels (the paper's 25 sensors + 2
  /// thermostats), `input_ids` the [h; o; l; w] block. Throws
  /// std::invalid_argument on empty state or input lists.
  ModelEstimator(std::vector<timeseries::ChannelId> state_ids,
                 std::vector<timeseries::ChannelId> input_ids,
                 ModelOrder order, EstimationOptions options = {});

  [[nodiscard]] ModelOrder order() const noexcept { return order_; }

  /// Fit a model on all usable transitions of `trace`. `row_filter`, when
  /// non-empty, restricts which rows may participate (the mode filter:
  /// occupied vs unoccupied); it must match trace.size().
  /// Throws std::runtime_error when fewer than min_transitions usable
  /// transitions exist.
  [[nodiscard]] ThermalModel fit(const timeseries::TraceView& trace,
                                 const std::vector<bool>& row_filter = {}) const;

  /// The regression dimensions fit() would use, without solving.
  [[nodiscard]] RegressionSummary summarize(
      const timeseries::TraceView& trace,
      const std::vector<bool>& row_filter = {}) const;

 private:
  /// Segments of rows where all required channels are valid and the filter
  /// passes, long enough to yield at least one transition.
  [[nodiscard]] std::vector<timeseries::Segment> usable_segments(
      const timeseries::TraceView& trace,
      const std::vector<bool>& row_filter) const;

  std::vector<timeseries::ChannelId> state_ids_;
  std::vector<timeseries::ChannelId> input_ids_;
  ModelOrder order_;
  EstimationOptions options_;
};

}  // namespace auditherm::sysid
