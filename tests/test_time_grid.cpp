// Tests for TimeGrid and time helpers.

#include "auditherm/timeseries/time_grid.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ts = auditherm::timeseries;

TEST(TimeHelpers, DayOf) {
  EXPECT_EQ(ts::day_of(0), 0);
  EXPECT_EQ(ts::day_of(1439), 0);
  EXPECT_EQ(ts::day_of(1440), 1);
  EXPECT_EQ(ts::day_of(-1), -1);
  EXPECT_EQ(ts::day_of(-1440), -1);
  EXPECT_EQ(ts::day_of(-1441), -2);
}

TEST(TimeHelpers, MinuteOfDay) {
  EXPECT_EQ(ts::minute_of_day(0), 0);
  EXPECT_EQ(ts::minute_of_day(1441), 1);
  EXPECT_EQ(ts::minute_of_day(6 * 60 + 3 * 1440), 360);
  EXPECT_EQ(ts::minute_of_day(-1), 1439);
}

TEST(TimeHelpers, FormatTime) {
  EXPECT_EQ(ts::format_time(0), "d0 00:00");
  EXPECT_EQ(ts::format_time(1440 + 6 * 60 + 5), "d1 06:05");
  EXPECT_EQ(ts::format_time(2 * 1440 + 21 * 60 + 30), "d2 21:30");
}

TEST(TimeGrid, BasicsAndIndexing) {
  ts::TimeGrid grid(100, 5, 10);
  EXPECT_EQ(grid.start(), 100);
  EXPECT_EQ(grid.step(), 5);
  EXPECT_EQ(grid.size(), 10u);
  EXPECT_FALSE(grid.empty());
  EXPECT_EQ(grid[0], 100);
  EXPECT_EQ(grid[9], 145);
  EXPECT_EQ(grid.end(), 150);
  EXPECT_EQ(grid.at(3), 115);
  EXPECT_THROW((void)grid.at(10), std::out_of_range);
}

TEST(TimeGrid, RejectsBadStep) {
  EXPECT_THROW(ts::TimeGrid(0, 0, 5), std::invalid_argument);
  EXPECT_THROW(ts::TimeGrid(0, -5, 5), std::invalid_argument);
}

TEST(TimeGrid, IndexAtOrAfter) {
  ts::TimeGrid grid(100, 5, 10);
  EXPECT_EQ(grid.index_at_or_after(0), 0u);
  EXPECT_EQ(grid.index_at_or_after(100), 0u);
  EXPECT_EQ(grid.index_at_or_after(101), 1u);
  EXPECT_EQ(grid.index_at_or_after(105), 1u);
  EXPECT_EQ(grid.index_at_or_after(145), 9u);
  EXPECT_EQ(grid.index_at_or_after(146), 10u);  // past the end
  EXPECT_EQ(grid.index_at_or_after(9999), 10u);
}

TEST(TimeGrid, EqualityAndDefault) {
  EXPECT_EQ(ts::TimeGrid(0, 5, 3), ts::TimeGrid(0, 5, 3));
  EXPECT_NE(ts::TimeGrid(0, 5, 3), ts::TimeGrid(0, 5, 4));
  EXPECT_TRUE(ts::TimeGrid().empty());
}
