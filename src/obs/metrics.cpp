#include "auditherm/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace auditherm::obs {

namespace {

/// Process-wide intern table: metric names -> dense indices. Grows only;
/// intentionally leaked so late metric recording (e.g. static destructors)
/// never races teardown.
struct InternTable {
  struct Info {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::size_t hist_slot = MetricId{}.histogram_slot();
  };

  std::mutex mutex;
  std::vector<Info> infos;
  std::unordered_map<std::string, std::size_t> by_name;
  std::size_t histogram_count = 0;
};

InternTable& interns() {
  static InternTable* t = new InternTable();
  return *t;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::atomic<std::uint64_t> g_registry_epoch{1};

}  // namespace

std::size_t HistogramLayout::bucket_of(double value) noexcept {
  if (!(value > 1.0)) return 0;  // NaN and everything <= 1 land in bucket 0
  const double b = std::ceil(std::log2(value));
  const auto idx = b < 0.0 ? std::size_t{0} : static_cast<std::size_t>(b);
  return idx < kBucketCount ? idx : kBucketCount - 1;
}

MetricId intern_metric(std::string_view name, MetricKind kind) {
  auto& table = interns();
  const std::lock_guard<std::mutex> lock(table.mutex);
  const auto it = table.by_name.find(std::string(name));
  if (it != table.by_name.end()) {
    const auto& info = table.infos[it->second];
    if (info.kind != kind) {
      throw std::invalid_argument("intern_metric: '" + std::string(name) +
                                  "' already interned as " +
                                  kind_name(info.kind));
    }
    return MetricId(it->second, info.hist_slot);
  }
  if (table.infos.size() >= MetricsRegistry::kMaxMetrics) {
    throw std::length_error("intern_metric: metric capacity exhausted");
  }
  InternTable::Info info;
  info.name = std::string(name);
  info.kind = kind;
  if (kind == MetricKind::kHistogram) {
    if (table.histogram_count >= MetricsRegistry::kMaxHistograms) {
      throw std::length_error("intern_metric: histogram capacity exhausted");
    }
    info.hist_slot = table.histogram_count++;
  }
  const std::size_t index = table.infos.size();
  table.by_name.emplace(info.name, index);
  table.infos.push_back(std::move(info));
  return MetricId(index, table.infos.back().hist_slot);
}

/// Per-thread slice of a registry. Writes come only from the owning
/// thread; relaxed atomics make concurrent snapshot reads tear-free.
struct MetricsRegistry::Shard {
  struct Hist {
    std::array<std::atomic<std::uint64_t>, HistogramLayout::kBucketCount>
        buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};  ///< bit-cast double
    std::atomic<std::uint64_t> max_bits{0};  ///< bit-cast double
  };

  std::array<std::atomic<std::uint64_t>, kMaxMetrics> counters{};
  std::array<Hist, kMaxHistograms> hists{};
};

namespace {

/// Thread-local shard cache: a handful of (registry epoch, shard) pairs so
/// alternating between a few registries (a run recorder plus per-cache
/// stats) stays lock-free. Epochs are process-unique, so a dead registry
/// can never be confused with a live one.
struct ShardCacheEntry {
  std::uint64_t epoch = 0;
  void* shard = nullptr;
};
constexpr std::size_t kShardCacheSize = 4;
thread_local std::array<ShardCacheEntry, kShardCacheSize> t_shard_cache{};
thread_local std::size_t t_shard_cache_next = 0;

}  // namespace

MetricsRegistry::MetricsRegistry()
    : epoch_(g_registry_epoch.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() noexcept {
  for (const auto& entry : t_shard_cache) {
    if (entry.epoch == epoch_) return *static_cast<Shard*>(entry.shard);
  }
  return register_shard();
}

MetricsRegistry::Shard& MetricsRegistry::register_shard() {
  Shard* shard = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = shard_by_thread_[std::this_thread::get_id()];
    if (slot == nullptr) {
      shards_.push_back(std::make_unique<Shard>());
      slot = shards_.back().get();
    }
    shard = slot;
  }
  t_shard_cache[t_shard_cache_next] = {epoch_, shard};
  t_shard_cache_next = (t_shard_cache_next + 1) % kShardCacheSize;
  return *shard;
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) noexcept {
  if (!id.valid()) return;
  local_shard().counters[id.index()].fetch_add(delta,
                                               std::memory_order_relaxed);
}

void MetricsRegistry::set(MetricId id, double value) {
  if (!id.valid()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[id.index()] = value;
}

void MetricsRegistry::observe(MetricId id, double value) noexcept {
  if (!id.valid() || id.histogram_slot() == MetricId{}.histogram_slot()) {
    return;
  }
  auto& hist = local_shard().hists[id.histogram_slot()];
  hist.buckets[HistogramLayout::bucket_of(value)].fetch_add(
      1, std::memory_order_relaxed);
  hist.count.fetch_add(1, std::memory_order_relaxed);
  // Owner-thread-only writes: plain load + store, atomics only guard
  // against torn reads from a concurrent snapshot.
  const double clamped = std::isnan(value) ? 0.0 : value;
  const double sum =
      std::bit_cast<double>(hist.sum_bits.load(std::memory_order_relaxed)) +
      clamped;
  hist.sum_bits.store(std::bit_cast<std::uint64_t>(sum),
                      std::memory_order_relaxed);
  const double prev_max =
      std::bit_cast<double>(hist.max_bits.load(std::memory_order_relaxed));
  if (clamped > prev_max) {
    hist.max_bits.store(std::bit_cast<std::uint64_t>(clamped),
                        std::memory_order_relaxed);
  }
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  add(counter_id(name), delta);
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  set(gauge_id(name), value);
}

void MetricsRegistry::observe_histogram(std::string_view name, double value) {
  observe(histogram_id(name), value);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  std::size_t index = 0;
  {
    auto& table = interns();
    const std::lock_guard<std::mutex> lock(table.mutex);
    const auto it = table.by_name.find(std::string(name));
    if (it == table.by_name.end()) return 0;
    index = it->second;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->counters[index].load(std::memory_order_relaxed);
  }
  return total;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Copy the intern metadata first (its mutex never nests inside ours).
  std::vector<InternTable::Info> infos;
  {
    auto& table = interns();
    const std::lock_guard<std::mutex> lock(table.mutex);
    infos = table.infos;
  }

  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < infos.size(); ++i) {
    const auto& info = infos[i];
    switch (info.kind) {
      case MetricKind::kCounter: {
        std::uint64_t total = 0;
        for (const auto& shard : shards_) {
          total += shard->counters[i].load(std::memory_order_relaxed);
        }
        if (total != 0) snap.counters.emplace_back(info.name, total);
        break;
      }
      case MetricKind::kGauge: {
        const auto it = gauges_.find(i);
        if (it != gauges_.end()) snap.gauges.emplace_back(info.name, it->second);
        break;
      }
      case MetricKind::kHistogram: {
        HistogramSnapshot h;
        h.name = info.name;
        // Shards merge in registration order: bucket/count sums are
        // integer (order-independent); the double `sum` folds in that
        // fixed order.
        for (const auto& shard : shards_) {
          const auto& sh = shard->hists[info.hist_slot];
          h.count += sh.count.load(std::memory_order_relaxed);
          h.sum += std::bit_cast<double>(
              sh.sum_bits.load(std::memory_order_relaxed));
          h.max = std::max(h.max, std::bit_cast<double>(sh.max_bits.load(
                                      std::memory_order_relaxed)));
          for (std::size_t b = 0; b < HistogramLayout::kBucketCount; ++b) {
            h.buckets[b] += sh.buckets[b].load(std::memory_order_relaxed);
          }
        }
        if (h.count != 0) snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

}  // namespace auditherm::obs
