#include "auditherm/linalg/decompositions.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

#include "auditherm/core/parallel.hpp"
#include "auditherm/obs/trace_span.hpp"

namespace auditherm::linalg {

// ---------------------------------------------------------------------------
// QR
// ---------------------------------------------------------------------------

QrDecomposition::QrDecomposition(const Matrix& a)
    : m_(a.rows()), n_(a.cols()), qr_(a), rdiag_(a.cols(), 0.0) {
  if (m_ < n_) {
    throw std::invalid_argument("QrDecomposition: requires rows >= cols");
  }
  for (std::size_t k = 0; k < n_; ++k) {
    // Householder vector for column k: reflect x to -sign(x0)*||x|| e1.
    double nrm = 0.0;
    for (std::size_t i = k; i < m_; ++i) nrm = std::hypot(nrm, qr_(i, k));
    if (nrm != 0.0) {
      if (qr_(k, k) < 0.0) nrm = -nrm;
      for (std::size_t i = k; i < m_; ++i) qr_(i, k) /= nrm;
      qr_(k, k) += 1.0;
      // Apply reflector to remaining columns.
      for (std::size_t j = k + 1; j < n_; ++j) {
        double s = 0.0;
        for (std::size_t i = k; i < m_; ++i) s += qr_(i, k) * qr_(i, j);
        s = -s / qr_(k, k);
        for (std::size_t i = k; i < m_; ++i) qr_(i, j) += s * qr_(i, k);
      }
    }
    rdiag_[k] = -nrm;
  }
}

bool QrDecomposition::rank_deficient(double tol) const noexcept {
  double dmax = 0.0;
  for (double d : rdiag_) dmax = std::max(dmax, std::abs(d));
  if (dmax == 0.0) return true;
  for (double d : rdiag_) {
    if (std::abs(d) <= tol * dmax) return true;
  }
  return false;
}

void QrDecomposition::apply_reflectors(Vector& b) const {
  for (std::size_t k = 0; k < n_; ++k) {
    if (qr_(k, k) == 0.0) continue;
    double s = 0.0;
    for (std::size_t i = k; i < m_; ++i) s += qr_(i, k) * b[i];
    s = -s / qr_(k, k);
    for (std::size_t i = k; i < m_; ++i) b[i] += s * qr_(i, k);
  }
}

Vector QrDecomposition::solve(const Vector& b) const {
  if (b.size() != m_) {
    throw std::invalid_argument("QrDecomposition::solve: rhs length mismatch");
  }
  if (rank_deficient()) {
    throw std::domain_error("QrDecomposition::solve: rank-deficient matrix");
  }
  Vector y = b;
  apply_reflectors(y);  // y = Q^T b
  Vector x(n_);
  for (std::size_t kk = n_; kk-- > 0;) {
    double s = y[kk];
    for (std::size_t j = kk + 1; j < n_; ++j) s -= qr_(kk, j) * x[j];
    x[kk] = s / rdiag_[kk];
  }
  return x;
}

Matrix QrDecomposition::solve(const Matrix& b) const {
  if (b.rows() != m_) {
    throw std::invalid_argument("QrDecomposition::solve: rhs rows mismatch");
  }
  Matrix x(n_, b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    x.set_col(j, solve(b.col_vector(j)));
  }
  return x;
}

Matrix QrDecomposition::r() const {
  Matrix r(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    r(i, i) = rdiag_[i];
    for (std::size_t j = i + 1; j < n_; ++j) r(i, j) = qr_(i, j);
  }
  return r;
}

Matrix QrDecomposition::qt_times(const Matrix& b) const {
  if (b.rows() != m_) {
    throw std::invalid_argument("QrDecomposition::qt_times: rows mismatch");
  }
  Matrix qtb(m_, b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    Vector col = b.col_vector(j);
    apply_reflectors(col);
    qtb.set_col(j, col);
  }
  return qtb;
}

Matrix QrDecomposition::thin_q() const {
  Matrix q(m_, n_);
  for (std::size_t col = n_; col-- > 0;) {
    Vector e(m_, 0.0);
    e[col] = 1.0;
    // q_col = H_0 H_1 ... H_{n-1} e_col applied in reverse order.
    for (std::size_t k = n_; k-- > 0;) {
      if (qr_(k, k) == 0.0) continue;
      double s = 0.0;
      for (std::size_t i = k; i < m_; ++i) s += qr_(i, k) * e[i];
      s = -s / qr_(k, k);
      for (std::size_t i = k; i < m_; ++i) e[i] += s * qr_(i, k);
    }
    q.set_col(col, e);
  }
  return q;
}

// ---------------------------------------------------------------------------
// UpdatableQr
// ---------------------------------------------------------------------------

namespace {

/// Fold one row [z | y] into the upper-triangular system [r | u] with a
/// sequence of Givens rotations, one per column. Keeps r's diagonal >= 0
/// (std::hypot never returns a negative). On exit z is zero to working
/// precision and y holds the row's residual component.
void givens_fold_row(Matrix& r, Matrix& u, Vector& z, Vector& y) {
  const std::size_t n = r.rows();
  const std::size_t k = u.cols();
  for (std::size_t i = 0; i < n; ++i) {
    const double zi = z[i];
    if (zi == 0.0) continue;
    const double rii = r(i, i);
    const double rho = std::hypot(rii, zi);
    const double c = rii / rho;
    const double s = zi / rho;
    r(i, i) = rho;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double t = r(i, j);
      r(i, j) = c * t + s * z[j];
      z[j] = c * z[j] - s * t;
    }
    for (std::size_t j = 0; j < k; ++j) {
      const double t = u(i, j);
      u(i, j) = c * t + s * y[j];
      y[j] = c * y[j] - s * t;
    }
  }
}

/// Back-substitute R X = U for upper-triangular r with the UpdatableQr
/// diagonal convention (diagonal stored in r itself).
Matrix upper_back_substitute(const Matrix& r, const Matrix& u) {
  const std::size_t n = r.rows();
  const std::size_t k = u.cols();
  Matrix x(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t ii = n; ii-- > 0;) {
      double s = u(ii, j);
      for (std::size_t jj = ii + 1; jj < n; ++jj) s -= r(ii, jj) * x(jj, j);
      x(ii, j) = s / r(ii, ii);
    }
  }
  return x;
}

bool upper_rank_deficient(const Matrix& r, double tol) {
  double dmax = 0.0;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    dmax = std::max(dmax, std::abs(r(i, i)));
  }
  if (dmax == 0.0) return true;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    if (std::abs(r(i, i)) <= tol * dmax) return true;
  }
  return false;
}

}  // namespace

UpdatableQr::UpdatableQr(std::size_t cols, std::size_t rhs_cols)
    : n_(cols),
      k_(rhs_cols),
      r_(cols, cols),
      u_(cols, rhs_cols),
      rss_(rhs_cols, 0.0),
      z_(cols, 0.0),
      y_(rhs_cols, 0.0) {
  if (n_ == 0 || k_ == 0) {
    throw std::invalid_argument("UpdatableQr: zero-sized system");
  }
}

UpdatableQr::UpdatableQr(const Matrix& a, const Matrix& b)
    : UpdatableQr(a.cols(), b.cols()) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("UpdatableQr: row count mismatch");
  }
  const QrDecomposition qr(a);
  const Matrix rfull = qr.r();
  const Matrix qtb = qr.qt_times(b);
  for (std::size_t i = 0; i < n_; ++i) {
    // Canonicalize to R_ii >= 0 (Q absorbs the sign; R^T R is unchanged),
    // the convention the Givens append path maintains.
    const double sign = rfull(i, i) < 0.0 ? -1.0 : 1.0;
    for (std::size_t j = i; j < n_; ++j) r_(i, j) = sign * rfull(i, j);
    for (std::size_t j = 0; j < k_; ++j) u_(i, j) = sign * qtb(i, j);
  }
  for (std::size_t j = 0; j < k_; ++j) {
    double ss = 0.0;
    for (std::size_t i = n_; i < a.rows(); ++i) ss += qtb(i, j) * qtb(i, j);
    rss_[j] = ss;
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < n_; ++j) gram_trace_ += a(i, j) * a(i, j);
  }
  rows_ = a.rows();
}

void UpdatableQr::append(const double* a_row, const double* b_row) {
  static const obs::MetricId kUpdateCalls =
      obs::counter_id("linalg.qr_update_calls");
  obs::add_counter(kUpdateCalls);
  for (std::size_t j = 0; j < n_; ++j) {
    z_[j] = a_row[j];
    gram_trace_ += a_row[j] * a_row[j];
  }
  for (std::size_t j = 0; j < k_; ++j) y_[j] = b_row[j];
  givens_fold_row(r_, u_, z_, y_);
  for (std::size_t j = 0; j < k_; ++j) rss_[j] += y_[j] * y_[j];
  ++rows_;
}

void UpdatableQr::append(const Vector& a_row, const Vector& b_row) {
  if (a_row.size() != n_ || b_row.size() != k_) {
    throw std::invalid_argument("UpdatableQr::append: row size mismatch");
  }
  append(a_row.data(), b_row.data());
}

bool UpdatableQr::downdate(const double* a_row, const double* b_row) {
  static const obs::MetricId kDowndateCalls =
      obs::counter_id("linalg.qr_downdate_calls");
  obs::add_counter(kDowndateCalls);
  if (rows_ == 0) return false;
  // Work on copies and commit on success: a guard rejection mid-sweep must
  // leave the factorization untouched. The copy is O(n (n + k)) — the same
  // order as the rotations themselves.
  r_scratch_ = r_;
  u_scratch_ = u_;
  for (std::size_t j = 0; j < n_; ++j) z_[j] = a_row[j];
  for (std::size_t j = 0; j < k_; ++j) y_[j] = b_row[j];
  for (std::size_t i = 0; i < n_; ++i) {
    const double zi = z_[i];
    if (zi == 0.0) continue;
    const double rii = r_scratch_(i, i);
    const double d = (rii - zi) * (rii + zi);
    // Refuse when the downdated diagonal loses nearly all of its
    // magnitude (also catches rii == 0 and NaN rows).
    if (!(d > kDowndateGuard * rii * rii)) return false;
    const double rho = std::sqrt(d);
    const double ch = rii / rho;
    const double sh = zi / rho;
    r_scratch_(i, i) = rho;
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double t = r_scratch_(i, j);
      r_scratch_(i, j) = ch * t - sh * z_[j];
      z_[j] = ch * z_[j] - sh * t;
    }
    for (std::size_t j = 0; j < k_; ++j) {
      const double t = u_scratch_(i, j);
      u_scratch_(i, j) = ch * t - sh * y_[j];
      y_[j] = ch * y_[j] - sh * t;
    }
  }
  r_ = r_scratch_;
  u_ = u_scratch_;
  for (std::size_t j = 0; j < k_; ++j) {
    rss_[j] = std::max(0.0, rss_[j] - y_[j] * y_[j]);
  }
  double row_ss = 0.0;
  for (std::size_t j = 0; j < n_; ++j) row_ss += a_row[j] * a_row[j];
  gram_trace_ = std::max(0.0, gram_trace_ - row_ss);
  --rows_;
  return true;
}

bool UpdatableQr::downdate(const Vector& a_row, const Vector& b_row) {
  if (a_row.size() != n_ || b_row.size() != k_) {
    throw std::invalid_argument("UpdatableQr::downdate: row size mismatch");
  }
  return downdate(a_row.data(), b_row.data());
}

Matrix UpdatableQr::solve() const {
  if (rank_deficient()) {
    throw std::domain_error("UpdatableQr::solve: rank-deficient system");
  }
  return upper_back_substitute(r_, u_);
}

Matrix UpdatableQr::solve_ridge(double lambda) const {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("UpdatableQr::solve_ridge: lambda <= 0");
  }
  // Fold the n rows of sqrt(lambda) I into a copy of [R | U]; ridge row i
  // is sqrt(lambda) e_i with a zero right-hand side. The copy lives in the
  // downdate scratch so the per-refit solve allocates nothing but the
  // result.
  r_scratch_ = r_;
  u_scratch_ = u_;
  const double s = std::sqrt(lambda);
  for (std::size_t i = 0; i < n_; ++i) {
    std::fill(z_.begin(), z_.end(), 0.0);
    std::fill(y_.begin(), y_.end(), 0.0);
    z_[i] = s;
    givens_fold_row(r_scratch_, u_scratch_, z_, y_);
  }
  if (upper_rank_deficient(r_scratch_, 1e-12)) {
    throw std::domain_error("UpdatableQr::solve_ridge: rank-deficient system");
  }
  return upper_back_substitute(r_scratch_, u_scratch_);
}

bool UpdatableQr::rank_deficient(double tol) const noexcept {
  return upper_rank_deficient(r_, tol);
}

// ---------------------------------------------------------------------------
// Cholesky
// ---------------------------------------------------------------------------

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("CholeskyDecomposition: matrix not square");
  }
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (d <= 0.0 || !std::isfinite(d)) {
      throw std::domain_error(
          "CholeskyDecomposition: matrix not positive definite");
    }
    l_(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

Vector CholeskyDecomposition::solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("CholeskyDecomposition::solve: rhs mismatch");
  }
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Matrix CholeskyDecomposition::solve(const Matrix& b) const {
  if (b.rows() != l_.rows()) {
    throw std::invalid_argument("CholeskyDecomposition::solve: rhs mismatch");
  }
  Matrix x(l_.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) x.set_col(j, solve(b.col_vector(j)));
  return x;
}

double CholeskyDecomposition::log_determinant() const noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

// ---------------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------------

LuDecomposition::LuDecomposition(const Matrix& a) : lu_(a), perm_(a.rows()) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuDecomposition: matrix not square");
  }
  const std::size_t n = a.rows();
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(lu_(i, k)) > std::abs(lu_(p, k))) p = i;
    }
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(p, j), lu_(k, j));
      std::swap(perm_[p], perm_[k]);
      pivot_sign_ = -pivot_sign_;
    }
    if (lu_(k, k) == 0.0) {
      throw std::domain_error("LuDecomposition: singular matrix");
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      lu_(i, k) /= lu_(k, k);
      const double f = lu_(i, k);
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= f * lu_(k, j);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("LuDecomposition::solve: rhs mismatch");
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) x[i] -= lu_(i, k) * x[k];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) x[ii] -= lu_(ii, k) * x[k];
    x[ii] /= lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  if (b.rows() != lu_.rows()) {
    throw std::invalid_argument("LuDecomposition::solve: rhs mismatch");
  }
  Matrix x(lu_.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) x.set_col(j, solve(b.col_vector(j)));
  return x;
}

double LuDecomposition::determinant() const noexcept {
  double d = pivot_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

// ---------------------------------------------------------------------------
// Symmetric eigensolvers
// ---------------------------------------------------------------------------

namespace detail {

// The sign pin makes eigenvectors — and hence cluster embeddings —
// comparable across solvers; k-means output is bitwise-invariant under
// the flip because only squared distances and row means of the embedding
// enter, and (-x)*(-x) == x*x exactly in IEEE.
void pin_column_signs(Matrix& vecs) {
  for (std::size_t j = 0; j < vecs.cols(); ++j) {
    std::size_t lead = 0;
    double lead_abs = -1.0;
    for (std::size_t i = 0; i < vecs.rows(); ++i) {
      const double mag = std::abs(vecs(i, j));
      if (mag > lead_abs) {
        lead_abs = mag;
        lead = i;
      }
    }
    if (vecs(lead, j) < 0.0) {
      for (std::size_t i = 0; i < vecs.rows(); ++i) vecs(i, j) = -vecs(i, j);
    }
  }
}

double hash_unit(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace detail

namespace {

using detail::pin_column_signs;

// (A + A^T)/2: every solver tolerates the tiny asymmetries that upstream
// products accumulate.
Matrix symmetrized(const Matrix& a) {
  const std::size_t n = a.rows();
  Matrix s(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) s(i, j) = 0.5 * (a(i, j) + a(j, i));
  return s;
}

// Householder reduction A = Q T Q^T to symmetric tridiagonal form. The
// unit reflectors are kept (column k holds v_k in rows k+1..n-1) instead
// of accumulating Q eagerly, so the partial-spectrum path can back-apply
// them to just the m eigenvectors it needs in O(n^2 m).
struct HouseholderTridiagonal {
  Vector diag;        // T diagonal, size n
  Vector off;         // off[i] = T(i, i+1); off[n-1] = 0
  Matrix reflectors;  // n x n; unit reflector k in rows k+1.. of column k
};

HouseholderTridiagonal tridiagonalize(Matrix s) {
  const std::size_t n = s.rows();
  HouseholderTridiagonal t;
  t.diag.resize(n);
  t.off.assign(n, 0.0);
  t.reflectors = Matrix(n, n);
  Vector v(n, 0.0);
  Vector w(n, 0.0);
  for (std::size_t k = 0; k + 2 < n; ++k) {
    double nrm = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) nrm = std::hypot(nrm, s(i, k));
    if (nrm == 0.0) continue;  // column already tridiagonal here
    const double alpha = s(k + 1, k) >= 0.0 ? -nrm : nrm;
    for (std::size_t i = k + 1; i < n; ++i) v[i] = s(i, k);
    v[k + 1] -= alpha;
    double vnorm = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) vnorm = std::hypot(vnorm, v[i]);
    t.off[k] = alpha;
    if (vnorm == 0.0) continue;  // x == alpha e1: nothing to reflect
    for (std::size_t i = k + 1; i < n; ++i) v[i] /= vnorm;
    // Rank-2 update S -= v w^T + w v^T with w = 2 S v - (v . 2 S v) v
    // applies H S H in one pass over the trailing block. Rows are
    // independent and each row's inner loop is a serial ascending-j
    // accumulation, so the result is bitwise identical at any thread
    // count (the PR-1 determinism contract).
    const std::size_t grain = core::grain_for_cost(n - k);
    core::parallel_for(k + 1, n, grain, [&](std::size_t i) {
      double sum = 0.0;
      for (std::size_t j = k + 1; j < n; ++j) sum += s(i, j) * v[j];
      w[i] = 2.0 * sum;
    });
    double vw = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) vw += v[i] * w[i];
    for (std::size_t i = k + 1; i < n; ++i) w[i] -= vw * v[i];
    core::parallel_for(k + 1, n, grain, [&](std::size_t i) {
      const double vi = v[i];
      const double wi = w[i];
      for (std::size_t j = k + 1; j < n; ++j) {
        s(i, j) -= vi * w[j] + wi * v[j];
      }
    });
    for (std::size_t i = k + 1; i < n; ++i) t.reflectors(i, k) = v[i];
  }
  if (n >= 2) t.off[n - 2] = s(n - 1, n - 2);
  for (std::size_t i = 0; i < n; ++i) t.diag[i] = s(i, i);
  return t;
}

// z := Q z for one tridiagonal-basis eigenvector: apply the stored
// reflectors in reverse order (H_0 ... H_{n-3} z).
void back_transform(const HouseholderTridiagonal& t, Vector& z) {
  const std::size_t n = t.diag.size();
  if (n < 3) return;
  for (std::size_t k = n - 2; k-- > 0;) {
    double dot = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) dot += t.reflectors(i, k) * z[i];
    if (dot == 0.0) continue;  // includes skipped (all-zero) reflectors
    const double f = 2.0 * dot;
    for (std::size_t i = k + 1; i < n; ++i) z[i] -= f * t.reflectors(i, k);
  }
}

// Dense Q = H_0 H_1 ... H_{n-3} for the full-spectrum QL path, which then
// rotates Q's columns into eigenvectors in place.
Matrix accumulate_q(const HouseholderTridiagonal& t) {
  const std::size_t n = t.diag.size();
  Matrix q = Matrix::identity(n);
  if (n < 3) return q;
  Vector u(n, 0.0);
  const std::size_t grain = core::grain_for_cost(n);
  for (std::size_t k = n - 2; k-- > 0;) {
    // u^T = v_k^T Q accumulated serially ascending in i; the row-parallel
    // rank-1 update below then has no cross-row dependence, keeping the
    // result thread-count independent.
    std::fill(u.begin(), u.end(), 0.0);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double vi = t.reflectors(i, k);
      if (vi == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) u[j] += vi * q(i, j);
    }
    core::parallel_for(k + 1, n, grain, [&](std::size_t i) {
      const double f = 2.0 * t.reflectors(i, k);
      if (f == 0.0) return;
      for (std::size_t j = 0; j < n; ++j) q(i, j) -= f * u[j];
    });
  }
  return q;
}

// Implicit-shift QL iteration on the tridiagonal (d, e), rotating the
// columns of z along so they end up as eigenvectors of the original
// matrix (classic EISPACK tql2 recurrence; e[i] couples d[i] and d[i+1],
// e[n-1] unused). Eigenvalues land in d, unsorted.
void ql_implicit_shift(Vector& d, Vector& e, Matrix& z) {
  const std::size_t n = d.size();
  if (n == 0) return;
  const double eps = std::numeric_limits<double>::epsilon();
  e[n - 1] = 0.0;
  for (std::size_t l = 0; l < n; ++l) {
    std::size_t iterations = 0;
    for (;;) {
      // Find the block [l, m]: m is the first index whose off-diagonal is
      // negligible against its neighbors.
      std::size_t m = l;
      while (m + 1 < n) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= eps * dd) break;
        ++m;
      }
      if (m == l) break;
      if (++iterations > 50) {
        throw std::domain_error(
            "eigen_symmetric_tridiagonal: QL iteration did not converge");
      }
      // Wilkinson shift from the 2x2 at the l end.
      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      bool deflated_early = false;
      for (std::size_t i = m; i-- > l;) {
        double f = s * e[i];
        const double b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          d[i + 1] -= p;
          e[m] = 0.0;
          deflated_early = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        for (std::size_t row = 0; row < z.rows(); ++row) {
          f = z(row, i + 1);
          z(row, i + 1) = s * z(row, i) + c * f;
          z(row, i) = c * z(row, i) - s * f;
        }
      }
      if (deflated_early) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    }
  }
}

using detail::hash_unit;

// Sturm-sequence count of eigenvalues of the tridiagonal (d, e) strictly
// below x.
std::size_t count_below(const Vector& d, const Vector& e, double x,
                        double pivot_floor) {
  std::size_t count = 0;
  double q = d[0] - x;
  if (q < 0.0) ++count;
  for (std::size_t i = 1; i < d.size(); ++i) {
    double denom = q;
    if (denom == 0.0) denom = pivot_floor;
    q = d[i] - x - e[i - 1] * e[i - 1] / denom;
    if (q < 0.0) ++count;
  }
  return count;
}

// LU factorization of (T - lambda I) with partial pivoting; a row swap
// can fill a second superdiagonal, hence three U bands.
struct ShiftedTridiagonalLu {
  Vector u0, u1, u2;        // rows of U: diagonal, first and second super
  Vector mult;              // elimination multipliers
  std::vector<char> swaps;  // 1 where rows i and i+1 were exchanged
};

ShiftedTridiagonalLu factor_shifted(const Vector& d, const Vector& e,
                                    double lambda, double pivot_floor) {
  const std::size_t n = d.size();
  ShiftedTridiagonalLu f;
  f.u0.assign(n, 0.0);
  f.u1.assign(n, 0.0);
  f.u2.assign(n, 0.0);
  f.mult.assign(n, 0.0);
  f.swaps.assign(n, 0);
  // (p0, p1, p2) is the current pivot row at columns (i, i+1, i+2); row
  // i+1 enters fresh from the tridiagonal each step.
  double p0 = d[0] - lambda;
  double p1 = n > 1 ? e[0] : 0.0;
  double p2 = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    double q0 = e[i];
    double q1 = d[i + 1] - lambda;
    double q2 = i + 2 < n ? e[i + 1] : 0.0;
    if (std::abs(q0) > std::abs(p0)) {
      std::swap(p0, q0);
      std::swap(p1, q1);
      std::swap(p2, q2);
      f.swaps[i] = 1;
    }
    if (p0 == 0.0) p0 = pivot_floor;  // shift sits on an exact eigenvalue
    const double m = q0 / p0;
    f.u0[i] = p0;
    f.u1[i] = p1;
    f.u2[i] = p2;
    f.mult[i] = m;
    p0 = q1 - m * p1;
    p1 = q2 - m * p2;
    p2 = 0.0;
  }
  if (p0 == 0.0) p0 = pivot_floor;
  f.u0[n - 1] = p0;
  return f;
}

void solve_shifted(const ShiftedTridiagonalLu& f, Vector& x) {
  const std::size_t n = f.u0.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (f.swaps[i]) std::swap(x[i], x[i + 1]);
    x[i + 1] -= f.mult[i] * x[i];
  }
  for (std::size_t i = n; i-- > 0;) {
    double s = x[i];
    if (i + 1 < n) s -= f.u1[i] * x[i + 1];
    if (i + 2 < n) s -= f.u2[i] * x[i + 2];
    x[i] = s / f.u0[i];
  }
}

SymmetricEigen trivial_eigen(const Matrix& a) {
  SymmetricEigen out;
  out.eigenvalues = a.rows() == 1 ? Vector{a(0, 0)} : Vector{};
  out.eigenvectors = Matrix::identity(a.rows());
  return out;
}

}  // namespace

SymmetricEigen eigen_symmetric(const Matrix& a, std::size_t max_sweeps) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("eigen_symmetric: matrix not square");
  }
  obs::TraceSpan eigen_span("linalg.eigen_symmetric");
  const std::size_t n = a.rows();
  if (n <= 1) return trivial_eigen(a);
  Matrix s = symmetrized(a);
  Matrix v = Matrix::identity(n);

  const double scale = std::max(s.max_abs(), 1e-300);
  // Row grains: the off-norm is an ordered reduction over row chunks (chunk
  // boundaries depend only on n, so the grouping — and hence the float
  // result — is identical at any thread count); the rotations update each
  // row/column element independently. Both stay serial below a few
  // thousand rows, where pool latency would dwarf the O(n) work.
  const std::size_t row_grain = core::grain_for_cost(n);
  const std::size_t rot_grain = core::grain_for_cost(6);
  std::size_t sweeps_done = 0;
  bool converged = false;
  // max_sweeps rotation sweeps at most, with a convergence check before
  // each and one after the last — so a matrix that converges exactly on
  // the final allowed sweep succeeds instead of throwing.
  for (std::size_t sweep = 0; sweep <= max_sweeps; ++sweep) {
    const double off = core::parallel_reduce(
        std::size_t{0}, n, row_grain, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double local = 0.0;
          for (std::size_t i = lo; i < hi; ++i)
            for (std::size_t j = i + 1; j < n; ++j) local += s(i, j) * s(i, j);
          return local;
        },
        [](double acc, double part) { return acc + part; });
    if (std::sqrt(off) <= 1e-14 * scale * static_cast<double>(n)) {
      converged = true;
      break;
    }
    if (sweep == max_sweeps) break;  // budget spent, off-norm still large
    for (std::size_t p = 0; p < n - 1; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = s(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (s(q, q) - s(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double sn = t * c;
        // Rotate rows/cols p and q of S; each k is independent.
        core::parallel_for(0, n, rot_grain, [&](std::size_t k) {
          const double skp = s(k, p);
          const double skq = s(k, q);
          s(k, p) = c * skp - sn * skq;
          s(k, q) = sn * skp + c * skq;
        });
        core::parallel_for(0, n, rot_grain, [&](std::size_t k) {
          const double spk = s(p, k);
          const double sqk = s(q, k);
          s(p, k) = c * spk - sn * sqk;
          s(q, k) = sn * spk + c * sqk;
        });
        core::parallel_for(0, n, rot_grain, [&](std::size_t k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - sn * vkq;
          v(k, q) = sn * vkp + c * vkq;
        });
      }
    }
    ++sweeps_done;
  }
  if (!converged) {
    throw std::domain_error("eigen_symmetric: Jacobi did not converge");
  }
  // Convergence behavior per call, visible in --metrics-out output; the
  // counts are thread-count independent because the reduction grouping is.
  static const obs::MetricId kJacobiSweeps =
      obs::counter_id("linalg.jacobi_sweeps");
  static const obs::MetricId kEigenCalls =
      obs::counter_id("linalg.eigen_calls");
  obs::add_counter(kEigenCalls);
  obs::add_counter(kJacobiSweeps, sweeps_done);

  // Sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return s(i, i) < s(j, j); });

  SymmetricEigen out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = s(order[j], order[j]);
    out.eigenvectors.set_col(j, v.col_vector(order[j]));
  }
  pin_column_signs(out.eigenvectors);
  return out;
}

SymmetricEigen eigen_symmetric_tridiagonal(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument(
        "eigen_symmetric_tridiagonal: matrix not square");
  }
  obs::TraceSpan span("linalg.eigen_tridiagonal");
  const std::size_t n = a.rows();
  if (n <= 1) return trivial_eigen(a);
  static const obs::MetricId kTridiagonalCalls =
      obs::counter_id("linalg.eigen_tridiagonal_calls");
  static const obs::MetricId kEigenCalls =
      obs::counter_id("linalg.eigen_calls");
  obs::add_counter(kTridiagonalCalls);
  obs::add_counter(kEigenCalls);

  HouseholderTridiagonal t = tridiagonalize(symmetrized(a));
  Matrix z = accumulate_q(t);
  Vector d = t.diag;
  Vector e = t.off;
  ql_implicit_shift(d, e, z);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d[i] < d[j]; });

  SymmetricEigen out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = d[order[j]];
    out.eigenvectors.set_col(j, z.col_vector(order[j]));
  }
  pin_column_signs(out.eigenvectors);
  return out;
}

SymmetricEigen eigen_symmetric_smallest(const Matrix& a, std::size_t m) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("eigen_symmetric_smallest: matrix not square");
  }
  if (m == 0) {
    throw std::invalid_argument("eigen_symmetric_smallest: m must be > 0");
  }
  const std::size_t n = a.rows();
  if (m > n) {
    throw std::invalid_argument(
        "eigen_symmetric_smallest: requested " + std::to_string(m) +
        " eigenpairs from a " + std::to_string(n) + "x" + std::to_string(n) +
        " matrix (m must be <= n)");
  }
  obs::TraceSpan span("linalg.eigen_symmetric_smallest");
  if (n <= 1) return trivial_eigen(a);
  static const obs::MetricId kPartialCalls =
      obs::counter_id("linalg.eigen_partial_calls");
  static const obs::MetricId kPartialPairs =
      obs::counter_id("linalg.eigen_partial_pairs");
  static const obs::MetricId kEigenCalls =
      obs::counter_id("linalg.eigen_calls");
  obs::add_counter(kPartialCalls);
  obs::add_counter(kPartialPairs, m);
  obs::add_counter(kEigenCalls);

  HouseholderTridiagonal t = tridiagonalize(symmetrized(a));
  const Vector& d = t.diag;
  const Vector& e = t.off;

  // Gershgorin interval of T bounds every eigenvalue and sets the scale
  // for all tolerances below.
  double glo = std::numeric_limits<double>::infinity();
  double ghi = -glo;
  for (std::size_t i = 0; i < n; ++i) {
    const double radius = (i > 0 ? std::abs(e[i - 1]) : 0.0) +
                          (i + 1 < n ? std::abs(e[i]) : 0.0);
    glo = std::min(glo, d[i] - radius);
    ghi = std::max(ghi, d[i] + radius);
  }
  const double eps = std::numeric_limits<double>::epsilon();
  const double anorm = std::max({std::abs(glo), std::abs(ghi), 1e-300});
  const double pivot_floor = eps * anorm;
  glo -= pivot_floor;
  ghi += pivot_floor;

  // Bisection on the Sturm count: lambda_j is the infimum of x with
  // count(x) >= j+1. Fully deterministic, O(n) per probe. Each bracket
  // starts at the previous eigenvalue's lower bound since the spectrum is
  // sorted.
  Vector evals(m);
  double lower = glo;
  for (std::size_t j = 0; j < m; ++j) {
    double lo = lower;
    double hi = ghi;
    for (std::size_t it = 0;
         it < 200 &&
         hi - lo > 2.0 * eps * (std::abs(lo) + std::abs(hi)) + pivot_floor;
         ++it) {
      const double mid = 0.5 * (lo + hi);
      if (count_below(d, e, mid, pivot_floor) >= j + 1) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    evals[j] = 0.5 * (lo + hi);
    lower = lo;
  }

  // Inverse iteration in the tridiagonal basis. Eigenvalues closer than
  // cluster_tol form one multiplet: each member gets a slightly offset
  // shift and is reorthogonalized against the members before it, which is
  // what keeps repeated eigenvalues (e.g. the zero modes of a
  // rank-deficient Laplacian) from collapsing onto a single vector.
  const double cluster_tol = 1e-7 * anorm;
  std::vector<Vector> tri(m);
  std::size_t cluster_start = 0;
  for (std::size_t j = 0; j < m; ++j) {
    if (j > 0 && evals[j] - evals[j - 1] > cluster_tol) cluster_start = j;
    const double shift =
        evals[j] +
        static_cast<double>(j - cluster_start) * pivot_floor * 64.0;
    const ShiftedTridiagonalLu lu = factor_shifted(d, e, shift, pivot_floor);
    Vector z(n);
    for (std::size_t attempt = 0; attempt < 4; ++attempt) {
      for (std::size_t i = 0; i < n; ++i) {
        z[i] = hash_unit(static_cast<std::uint64_t>(j) * 1000003ULL +
                         static_cast<std::uint64_t>(attempt) * 7919ULL +
                         static_cast<std::uint64_t>(i)) -
               0.5;
      }
      bool collapsed = false;
      for (std::size_t iter = 0; iter < 3; ++iter) {
        solve_shifted(lu, z);
        for (std::size_t p = cluster_start; p < j; ++p) {
          double dot = 0.0;
          for (std::size_t i = 0; i < n; ++i) dot += tri[p][i] * z[i];
          for (std::size_t i = 0; i < n; ++i) z[i] -= dot * tri[p][i];
        }
        double norm = 0.0;
        for (double zi : z) norm += zi * zi;
        norm = std::sqrt(norm);
        if (norm < 1e-12) {
          collapsed = true;  // start vector lay in the span already found
          break;
        }
        for (double& zi : z) zi /= norm;
      }
      if (!collapsed) break;
    }
    tri[j] = std::move(z);
  }

  // Back-transform through the stored reflectors; vectors are independent
  // so the row of work per j is deterministic regardless of thread count.
  core::parallel_for(0, m, core::grain_for_cost(n * n), [&](std::size_t j) {
    back_transform(t, tri[j]);
  });

  SymmetricEigen out;
  out.eigenvalues = std::move(evals);
  out.eigenvectors = Matrix(n, m);
  for (std::size_t j = 0; j < m; ++j) out.eigenvectors.set_col(j, tri[j]);
  pin_column_signs(out.eigenvectors);
  return out;
}

}  // namespace auditherm::linalg
