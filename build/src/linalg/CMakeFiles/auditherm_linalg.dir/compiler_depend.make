# Empty compiler generated dependencies file for auditherm_linalg.
# This may be replaced when dependencies are built.
