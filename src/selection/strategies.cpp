#include "auditherm/selection/strategies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

namespace auditherm::selection {

namespace {

using timeseries::ChannelId;

void validate(const ClusterSets& clusters, std::size_t per_cluster) {
  if (clusters.empty()) {
    throw std::invalid_argument("selection: no clusters");
  }
  if (per_cluster == 0) {
    throw std::invalid_argument("selection: per_cluster == 0");
  }
  for (const auto& c : clusters) {
    if (c.empty()) throw std::invalid_argument("selection: empty cluster");
  }
}

/// RMS distance between a channel and the mean trace of a cluster, over
/// rows where both are defined.
double distance_to_cluster_mean(const timeseries::TraceView& trace,
                                ChannelId id,
                                const linalg::Vector& mean_series) {
  const std::size_t col = trace.require_channel(id);
  double sq = 0.0;
  std::size_t n = 0;
  for (std::size_t k = 0; k < trace.size(); ++k) {
    if (!trace.valid(k, col) || std::isnan(mean_series[k])) continue;
    const double d = trace.value(k, col) - mean_series[k];
    sq += d * d;
    ++n;
  }
  if (n == 0) return std::numeric_limits<double>::infinity();
  return std::sqrt(sq / static_cast<double>(n));
}

}  // namespace

std::vector<ChannelId> Selection::flattened() const {
  std::vector<ChannelId> out;
  for (const auto& c : per_cluster) out.insert(out.end(), c.begin(), c.end());
  return out;
}

Selection stratified_near_mean(const timeseries::TraceView& training,
                               const ClusterSets& clusters,
                               std::size_t per_cluster) {
  validate(clusters, per_cluster);
  Selection sel;
  sel.per_cluster.resize(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const auto mean_series = timeseries::row_mean(training, clusters[c]);
    std::vector<std::pair<double, ChannelId>> ranked;
    ranked.reserve(clusters[c].size());
    for (ChannelId id : clusters[c]) {
      ranked.emplace_back(distance_to_cluster_mean(training, id, mean_series),
                          id);
    }
    std::sort(ranked.begin(), ranked.end());
    const std::size_t take = std::min(per_cluster, ranked.size());
    for (std::size_t i = 0; i < take; ++i) {
      sel.per_cluster[c].push_back(ranked[i].second);
    }
  }
  return sel;
}

Selection stratified_random(const ClusterSets& clusters, std::uint64_t seed,
                            std::size_t per_cluster) {
  validate(clusters, per_cluster);
  std::mt19937_64 rng(seed);
  Selection sel;
  sel.per_cluster.resize(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    auto pool = clusters[c];
    std::shuffle(pool.begin(), pool.end(), rng);
    const std::size_t take = std::min(per_cluster, pool.size());
    sel.per_cluster[c].assign(pool.begin(),
                              pool.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return sel;
}

Selection simple_random(const timeseries::TraceView& training,
                        const ClusterSets& clusters, std::uint64_t seed,
                        std::size_t per_cluster) {
  validate(clusters, per_cluster);
  std::mt19937_64 rng(seed);
  std::vector<ChannelId> pool;
  for (const auto& c : clusters) pool.insert(pool.end(), c.begin(), c.end());
  std::shuffle(pool.begin(), pool.end(), rng);
  const std::size_t take =
      std::min(per_cluster * clusters.size(), pool.size());
  pool.resize(take);
  return assign_to_clusters(training, clusters, pool, per_cluster);
}

Selection thermostat_baseline(const std::vector<ChannelId>& thermostat_ids,
                              std::size_t cluster_count) {
  if (thermostat_ids.empty()) {
    throw std::invalid_argument("thermostat_baseline: no thermostats");
  }
  if (cluster_count == 0) {
    throw std::invalid_argument("thermostat_baseline: no clusters");
  }
  Selection sel;
  sel.per_cluster.resize(cluster_count);
  for (std::size_t c = 0; c < cluster_count; ++c) {
    sel.per_cluster[c].push_back(thermostat_ids[c % thermostat_ids.size()]);
  }
  return sel;
}

Selection assign_to_clusters(const timeseries::TraceView& training,
                             const ClusterSets& clusters,
                             const std::vector<ChannelId>& chosen,
                             std::size_t per_cluster) {
  validate(clusters, per_cluster);
  if (chosen.empty()) {
    throw std::invalid_argument("assign_to_clusters: nothing chosen");
  }
  std::vector<linalg::Vector> means;
  means.reserve(clusters.size());
  for (const auto& c : clusters) {
    means.push_back(timeseries::row_mean(training, c));
  }

  Selection sel;
  sel.per_cluster.resize(clusters.size());
  std::vector<bool> used(chosen.size(), false);
  for (std::size_t round = 0; round < per_cluster; ++round) {
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_i = chosen.size();
      for (std::size_t i = 0; i < chosen.size(); ++i) {
        if (used[i]) continue;
        const double d = distance_to_cluster_mean(training, chosen[i],
                                                  means[c]);
        if (d < best) {
          best = d;
          best_i = i;
        }
      }
      if (best_i == chosen.size()) break;  // ran out of chosen sensors
      used[best_i] = true;
      sel.per_cluster[c].push_back(chosen[best_i]);
    }
  }
  return sel;
}

}  // namespace auditherm::selection
