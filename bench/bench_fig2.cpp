// Fig. 2: spatial temperature snapshot during a fully-occupied seminar
// with active HVAC.
//
// Paper: Fri Mar 22, 2013 12:30pm — roughly 2 degC between the warmest
// sensor (27, back seating) and the coolest readings (the front-wall
// thermostats 40/41); the front of the room runs cool, the back warm.

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace auditherm;

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Fig. 2: occupied-seminar spatial snapshot");
  const auto dataset = bench::make_standard_dataset();

  // Find the best-attended Friday noon on a clean day (the analogue of the
  // paper's seminar snapshot).
  const auto occ_col = dataset.trace.require_channel(
      sim::DatasetChannels::kOccupancy);
  timeseries::Minutes best_time = -1;
  double best_occupancy = -1.0;
  for (std::size_t k = 0; k < dataset.trace.size(); ++k) {
    const auto t = dataset.trace.grid()[k];
    if (timeseries::minute_of_day(t) != 12 * 60 + 30) continue;
    if (!dataset.trace.valid(k, occ_col)) continue;
    const double occ = dataset.trace.value(k, occ_col);
    if (occ > best_occupancy) {
      best_occupancy = occ;
      best_time = t;
    }
  }
  std::printf("snapshot at %s with %.0f occupants\n",
              timeseries::format_time(best_time).c_str(), best_occupancy);

  const auto snapshot = sim::snapshot_at(dataset, best_time);
  double lo = 1e9, hi = -1e9;
  timeseries::ChannelId lo_id = 0, hi_id = 0;
  std::printf("%-8s %-14s %-10s\n", "sensor", "position(m)", "temp(degC)");
  for (const auto& [id, temp] : snapshot) {
    const auto& site = dataset.plan.site(id);
    if (std::isnan(temp)) {
      std::printf("%-8d (%4.1f, %4.1f)   (dropout)\n", id, site.position.x,
                  site.position.y);
      continue;
    }
    std::printf("%-8d (%4.1f, %4.1f)   %6.2f%s\n", id, site.position.x,
                site.position.y, temp, site.is_thermostat ? "  [thermostat]"
                                                          : "");
    if (temp < lo) {
      lo = temp;
      lo_id = id;
    }
    if (temp > hi) {
      hi = temp;
      hi_id = id;
    }
  }

  std::printf("\nspread: %.2f degC (sensor %d at %.2f .. sensor %d at %.2f)\n",
              hi - lo, lo_id, lo, hi_id, hi);
  bench::print_row("max-min spread (degC)", 2.0, hi - lo);
  const auto& hi_site = dataset.plan.site(hi_id);
  const auto& lo_site = dataset.plan.site(lo_id);
  std::printf("shape checks: warmest sensor in the back half: %s | "
              "coolest in the front half: %s\n",
              hi_site.position.y > 6.0 ? "yes" : "NO",
              lo_site.position.y < 6.0 ? "yes" : "NO");
  return 0;
}
