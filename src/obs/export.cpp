#include "auditherm/obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <map>
#include <vector>

namespace auditherm::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  // Shortest representation that round-trips; JSON has no inf/nan.
  if (v != v || v > 1.7e308 || v < -1.7e308) {
    out += "null";
    return;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string to_json(const Recorder& recorder) {
  const MetricsSnapshot snap = recorder.metrics().snapshot();
  const std::vector<SpanRecord> spans = recorder.spans();

  std::string j;
  j.reserve(4096 + spans.size() * 96);
  j += "{\n  \"schema\": \"";
  j += kJsonSchema;
  j += "\",\n  \"schema_version\": ";
  append_u64(j, static_cast<std::uint64_t>(kJsonSchemaVersion));
  j += ",\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    j += i == 0 ? "\n" : ",\n";
    j += "    \"";
    append_escaped(j, snap.counters[i].first);
    j += "\": ";
    append_u64(j, snap.counters[i].second);
  }
  j += snap.counters.empty() ? "},\n" : "\n  },\n";

  j += "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    j += i == 0 ? "\n" : ",\n";
    j += "    \"";
    append_escaped(j, snap.gauges[i].first);
    j += "\": ";
    append_double(j, snap.gauges[i].second);
  }
  j += snap.gauges.empty() ? "},\n" : "\n  },\n";

  j += "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    \"";
    append_escaped(j, h.name);
    j += "\": {\"count\": ";
    append_u64(j, h.count);
    j += ", \"sum\": ";
    append_double(j, h.sum);
    j += ", \"max\": ";
    append_double(j, h.max);
    j += ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < HistogramLayout::kBucketCount; ++b) {
      if (h.buckets[b] == 0) continue;  // sparse: empty buckets omitted
      if (!first) j += ", ";
      first = false;
      j += "{\"le\": ";
      if (b + 1 == HistogramLayout::kBucketCount) {
        j += "null";
      } else {
        append_double(j, HistogramLayout::upper_bound(b));
      }
      j += ", \"count\": ";
      append_u64(j, h.buckets[b]);
      j += "}";
    }
    j += "]}";
  }
  j += snap.histograms.empty() ? "},\n" : "\n  },\n";

  j += "  \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& s = spans[i];
    j += i == 0 ? "\n" : ",\n";
    j += "    {\"id\": ";
    append_u64(j, s.id);
    j += ", \"parent\": ";
    append_u64(j, s.parent);
    j += ", \"name\": \"";
    append_escaped(j, s.name);
    j += "\", \"thread\": ";
    append_u64(j, s.thread);
    j += ", \"start_us\": ";
    append_double(j, static_cast<double>(s.start_ns) / 1e3);
    j += ", \"duration_us\": ";
    append_double(j, static_cast<double>(s.duration_ns) / 1e3);
    j += "}";
  }
  j += spans.empty() ? "]\n" : "\n  ]\n";
  j += "}\n";
  return j;
}

bool write_json_file(const std::string& path, const Recorder& recorder) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string j = to_json(recorder);
  const bool ok = std::fwrite(j.data(), 1, j.size(), f) == j.size();
  return std::fclose(f) == 0 && ok;
}

void write_summary(std::FILE* out, const Recorder& recorder) {
  const auto spans = recorder.spans();
  const MetricsSnapshot snap = recorder.metrics().snapshot();

  if (!spans.empty()) {
    std::fprintf(out, "-- spans -------------------------------------------\n");
    // Children grouped under parents; unknown parents print as roots.
    std::map<std::uint64_t, std::vector<std::size_t>> children;
    std::map<std::uint64_t, std::size_t> by_id;
    for (std::size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (spans[i].parent != 0 && by_id.count(spans[i].parent) != 0) {
        children[spans[i].parent].push_back(i);
      } else {
        roots.push_back(i);
      }
    }
    const auto by_start = [&](std::size_t a, std::size_t b) {
      return spans[a].start_ns != spans[b].start_ns
                 ? spans[a].start_ns < spans[b].start_ns
                 : spans[a].id < spans[b].id;
    };
    std::sort(roots.begin(), roots.end(), by_start);
    for (auto& [id, kids] : children) std::sort(kids.begin(), kids.end(), by_start);

    // Iterative depth-first print (explicit stack; span trees are shallow
    // but worker fan-outs can be wide).
    std::vector<std::pair<std::size_t, int>> stack;
    for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
      stack.emplace_back(*it, 0);
    }
    while (!stack.empty()) {
      const auto [idx, depth] = stack.back();
      stack.pop_back();
      const auto& s = spans[idx];
      std::fprintf(out, "%*s%-*s %10.3f ms  [t%u]\n", 2 * depth, "",
                   std::max(1, 44 - 2 * depth), s.name.c_str(),
                   static_cast<double>(s.duration_ns) / 1e6, s.thread);
      const auto it = children.find(s.id);
      if (it != children.end()) {
        for (auto kid = it->second.rbegin(); kid != it->second.rend(); ++kid) {
          stack.emplace_back(*kid, depth + 1);
        }
      }
    }
  }

  if (!snap.counters.empty()) {
    std::fprintf(out, "-- counters ----------------------------------------\n");
    for (const auto& [name, value] : snap.counters) {
      std::fprintf(out, "%-44s %12" PRIu64 "\n", name.c_str(), value);
    }
  }
  if (!snap.gauges.empty()) {
    std::fprintf(out, "-- gauges ------------------------------------------\n");
    for (const auto& [name, value] : snap.gauges) {
      std::fprintf(out, "%-44s %12.3f\n", name.c_str(), value);
    }
  }
  if (!snap.histograms.empty()) {
    std::fprintf(out, "-- histograms (us) ---------------------------------\n");
    for (const auto& h : snap.histograms) {
      std::fprintf(out, "%-44s count %8" PRIu64 "  mean %10.1f  max %10.1f\n",
                   h.name.c_str(), h.count, h.mean(), h.max);
    }
  }
}

}  // namespace auditherm::obs
