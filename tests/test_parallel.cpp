// Tests for the deterministic thread-pool runtime (core/parallel.hpp):
// correctness of parallel_for / parallel_reduce, bitwise determinism
// across thread counts, pool edge cases (empty ranges, fewer items than
// threads, exception propagation), nesting, and thread-count resolution.

#include "auditherm/core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

namespace core = auditherm::core;

namespace {

/// Run `body` under a forced thread count.
template <typename Fn>
auto with_threads(std::size_t n, Fn&& body) {
  core::ThreadCountScope scope(n);
  return body();
}

std::vector<double> random_doubles(std::size_t n, std::uint32_t seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(gen);
  return v;
}

}  // namespace

TEST(Parallel, ThreadCountScopeOverridesAndRestores) {
  const std::size_t ambient = core::thread_count();
  {
    core::ThreadCountScope scope(3);
    EXPECT_EQ(core::thread_count(), 3u);
    {
      core::ThreadCountScope inner(8);
      EXPECT_EQ(core::thread_count(), 8u);
      // A zero scope inherits rather than overriding.
      core::ThreadCountScope noop(0);
      EXPECT_EQ(core::thread_count(), 8u);
    }
    EXPECT_EQ(core::thread_count(), 3u);
  }
  EXPECT_EQ(core::thread_count(), ambient);
}

TEST(Parallel, EnvVariableFeedsThreadCount) {
  ASSERT_EQ(setenv("AUDITHERM_THREADS", "5", 1), 0);
  EXPECT_EQ(core::thread_count(), 5u);
  // An explicit override still wins over the environment.
  {
    core::ThreadCountScope scope(2);
    EXPECT_EQ(core::thread_count(), 2u);
  }
  ASSERT_EQ(setenv("AUDITHERM_THREADS", "bogus", 1), 0);
  EXPECT_THROW((void)core::thread_count(), std::runtime_error);
  ASSERT_EQ(unsetenv("AUDITHERM_THREADS"), 0);
  EXPECT_GE(core::thread_count(), 1u);
}

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    with_threads(threads, [&] {
      std::vector<std::atomic<int>> hits(1000);
      core::parallel_for(0, hits.size(), 7,
                         [&](std::size_t i) { ++hits[i]; });
      for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
      return 0;
    });
  }
}

TEST(Parallel, ForHandlesZeroItems) {
  for (std::size_t threads : {1u, 8u}) {
    with_threads(threads, [&] {
      std::atomic<int> calls{0};
      core::parallel_for(0, 0, 4, [&](std::size_t) { ++calls; });
      core::parallel_for(5, 5, 4, [&](std::size_t) { ++calls; });
      // An inverted range is empty, not an error.
      core::parallel_for(5, 3, 4, [&](std::size_t) { ++calls; });
      EXPECT_EQ(calls.load(), 0);
      return 0;
    });
  }
}

TEST(Parallel, ForHandlesFewerItemsThanThreads) {
  with_threads(8, [&] {
    std::vector<std::atomic<int>> hits(3);
    core::parallel_for(0, hits.size(), 1, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    return 0;
  });
}

TEST(Parallel, ForRespectsOffsetRanges) {
  with_threads(4, [&] {
    std::vector<int> hits(20, 0);
    core::parallel_for(5, 15, 3, [&](std::size_t i) { hits[i] = 1; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i], (i >= 5 && i < 15) ? 1 : 0) << "index " << i;
    }
    return 0;
  });
}

TEST(Parallel, ChunkBoundariesDependOnlyOnRangeAndGrain) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    const auto chunks = with_threads(threads, [&] {
      std::vector<std::pair<std::size_t, std::size_t>> seen(4);
      core::parallel_for_chunks(0, 10, 3,
                                [&](std::size_t lo, std::size_t hi) {
                                  seen[lo / 3] = {lo, hi};
                                });
      return seen;
    });
    const std::vector<std::pair<std::size_t, std::size_t>> expected{
        {0, 3}, {3, 6}, {6, 9}, {9, 10}};
    EXPECT_EQ(chunks, expected) << "threads=" << threads;
  }
}

TEST(Parallel, ReduceIsBitwiseIdenticalAcrossThreadCounts) {
  const auto data = random_doubles(10007, 42);
  const auto sum_at = [&](std::size_t threads, std::size_t grain) {
    return with_threads(threads, [&] {
      return core::parallel_reduce(
          std::size_t{0}, data.size(), grain, 0.0,
          [&](std::size_t lo, std::size_t hi) {
            double s = 0.0;
            for (std::size_t i = lo; i < hi; ++i) s += data[i];
            return s;
          },
          [](double acc, double part) { return acc + part; });
    });
  };
  for (std::size_t grain : {1u, 64u, 1000u, 20000u}) {
    const double serial = sum_at(1, grain);
    // Reference: explicit chunked fold in ascending order.
    double expected = 0.0;
    for (std::size_t lo = 0; lo < data.size(); lo += grain) {
      const std::size_t hi = std::min(lo + grain, data.size());
      double part = 0.0;
      for (std::size_t i = lo; i < hi; ++i) part += data[i];
      expected += part;
    }
    ASSERT_EQ(serial, expected) << "grain=" << grain;
    for (std::size_t threads : {2u, 3u, 8u}) {
      EXPECT_EQ(sum_at(threads, grain), serial)
          << "grain=" << grain << " threads=" << threads;
    }
  }
}

TEST(Parallel, ReduceEmptyRangeReturnsIdentity) {
  with_threads(8, [&] {
    const double r = core::parallel_reduce(
        std::size_t{0}, std::size_t{0}, 4, 123.5,
        [](std::size_t, std::size_t) { return 1.0; },
        [](double a, double b) { return a + b; });
    EXPECT_EQ(r, 123.5);
    return 0;
  });
}

TEST(Parallel, ExceptionPropagatesOutOfATask) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    with_threads(threads, [&] {
      EXPECT_THROW(
          core::parallel_for(0, 100, 1,
                             [&](std::size_t i) {
                               if (i == 37) {
                                 throw std::runtime_error("task 37 failed");
                               }
                             }),
          std::runtime_error);
      return 0;
    });
  }
}

TEST(Parallel, LowestIndexExceptionWins) {
  // With several failing tasks, the caller must observe the lowest-index
  // failure regardless of execution order.
  for (std::size_t threads : {1u, 8u}) {
    with_threads(threads, [&] {
      std::string what;
      try {
        core::parallel_for(0, 64, 1, [&](std::size_t i) {
          if (i % 2 == 1) {
            throw std::runtime_error("task " + std::to_string(i));
          }
        });
      } catch (const std::runtime_error& e) {
        what = e.what();
      }
      EXPECT_EQ(what, "task 1") << "threads=" << threads;
      return 0;
    });
  }
}

TEST(Parallel, PoolStaysUsableAfterAnException) {
  with_threads(8, [&] {
    EXPECT_THROW(core::parallel_for(0, 16, 1,
                                    [](std::size_t) {
                                      throw std::runtime_error("boom");
                                    }),
                 std::runtime_error);
    std::atomic<int> calls{0};
    core::parallel_for(0, 16, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 16);
    return 0;
  });
}

TEST(Parallel, NestedRegionsRunInlineWithoutDeadlock) {
  with_threads(8, [&] {
    std::vector<std::atomic<int>> hits(64);
    core::parallel_for(0, 8, 1, [&](std::size_t outer) {
      EXPECT_TRUE(core::detail::in_parallel_region() ||
                  core::thread_count() == 1);
      core::parallel_for(0, 8, 1, [&](std::size_t inner) {
        ++hits[outer * 8 + inner];
      });
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    return 0;
  });
}

TEST(Parallel, ManyConsecutiveRegionsReuseThePool) {
  with_threads(4, [&] {
    std::atomic<long> total{0};
    for (int round = 0; round < 200; ++round) {
      core::parallel_for(0, 32, 1, [&](std::size_t) { ++total; });
    }
    EXPECT_EQ(total.load(), 200L * 32L);
    return 0;
  });
}

TEST(Parallel, GrainForCostScalesInverselyWithItemCost) {
  EXPECT_EQ(core::grain_for_cost(16384), 1u);
  EXPECT_EQ(core::grain_for_cost(100000), 1u);  // never below 1
  EXPECT_EQ(core::grain_for_cost(1), 16384u);
  EXPECT_EQ(core::grain_for_cost(0), 16384u);  // zero cost treated as 1
  EXPECT_EQ(core::grain_for_cost(16), 1024u);
}
