// Load generator for `auditherm serve`: hammers a daemon with a mixed
// fleet of synthetic buildings (64 / 256 / 1024 sensors) from concurrent
// client threads and reports cache hit rate, request latency percentiles
// (p50/p99), and eviction behavior to BENCH_serve.json.
//
//   bench_serve [--requests N] [--clients N] [--workers N]
//               [--budget-mb MB] [--days N] [--connect PORT] [--out FILE]
//
// By default the bench runs an in-process server on an ephemeral loopback
// port (so CI needs no daemon choreography) and reads cache statistics
// straight from the service. With --connect PORT it acts as a pure load
// client against an already running `auditherm serve` on this machine —
// the daemon reads the same generated CSVs — and recovers the cache
// counters from GET /metrics instead.
//
// The building generator uses the CLI channel conventions (see
// tools/auditherm_cli.cpp): sensor ids 1..99 skipping the 40/41
// thermostats, then the extended range >= 200 for campus-scale counts;
// VAV flows at 101..104; occupancy/lighting/ambient at 110/111/112.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "auditherm/serve/json.hpp"
#include "auditherm/serve/server.hpp"
#include "auditherm/serve/service.hpp"
#include "bench_common.hpp"

using namespace auditherm;

namespace {

constexpr std::size_t kPerDay = 48;  // 30-minute steps

/// Deterministic synthetic building with `sensor_count` temperature
/// sensors under the CLI channel-id conventions. Zones differ in gain and
/// phase so clustering has real structure to find; everything is a pure
/// function of (channel, sample), so regenerated files are byte-identical
/// and repeated requests key to the same cache entries.
timeseries::MultiTrace make_building(std::size_t sensor_count,
                                     std::size_t days) {
  std::vector<timeseries::ChannelId> channels;
  channels.reserve(sensor_count + 9);
  for (std::size_t i = 0, id = 1; i < sensor_count; ++i, ++id) {
    while (id == 40 || id == 41) ++id;  // thermostat ids
    if (id >= 100 && id < 200) id = 200;  // reserved band -> extended range
    channels.push_back(static_cast<timeseries::ChannelId>(id));
  }
  const std::vector<timeseries::ChannelId> rest = {
      40, 41, 101, 102, 103, 104, sim::DatasetChannels::kOccupancy,
      sim::DatasetChannels::kLighting, sim::DatasetChannels::kAmbient};
  channels.insert(channels.end(), rest.begin(), rest.end());

  timeseries::MultiTrace trace(timeseries::TimeGrid(0, 30, days * kPerDay),
                               std::move(channels));
  const std::size_t zones = 4;
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const double hour = static_cast<double>(k % kPerDay) / 2.0;
    const bool occupied = hour >= 8.0 && hour < 18.0;
    const double daily = std::sin((hour - 6.0) * M_PI / 12.0);
    const double occupancy = occupied ? 0.5 + 0.4 * daily : 0.0;
    const double ambient = 10.0 + 8.0 * daily;
    for (std::size_t c = 0; c < trace.channel_count(); ++c) {
      const auto id = trace.channels()[c];
      double v = 0.0;
      if (id == sim::DatasetChannels::kOccupancy) {
        v = occupancy;
      } else if (id == sim::DatasetChannels::kLighting) {
        v = occupied ? 0.8 : 0.1;
      } else if (id == sim::DatasetChannels::kAmbient) {
        v = ambient;
      } else if (id >= 101 && id <= 104) {
        v = occupied ? 0.4 + 0.1 * static_cast<double>(id - 101) : 0.05;
      } else {
        // Thermostats and sensors: zone-shaped response plus a small
        // deterministic per-channel ripple so no two sensors are equal.
        const std::size_t zone = c % zones;
        const double gain = 1.0 + 0.5 * static_cast<double>(zone);
        const double phase = 0.3 * static_cast<double>(zone);
        v = 21.0 + gain * occupancy * 2.0 + 0.2 * ambient / 10.0 +
            0.05 * std::sin(static_cast<double>(k) * 0.37 +
                            static_cast<double>(c) * 0.11 + phase);
      }
      trace.set(k, c, v);
    }
  }
  return trace;
}

std::string data_dir() {
  const char* tmp = std::getenv("TMPDIR");
  return (tmp != nullptr && *tmp != '\0' ? std::string(tmp) : "/tmp") +
         "/bench_serve_data";
}

/// Write the fleet's CSVs (idempotent) and return path per size.
std::vector<std::pair<std::size_t, std::string>> write_fleet(
    const std::vector<std::size_t>& sizes, std::size_t days) {
  const std::string dir = data_dir();
  (void)::system(("mkdir -p '" + dir + "'").c_str());
  std::vector<std::pair<std::size_t, std::string>> fleet;
  for (const std::size_t sensors : sizes) {
    const std::string path =
        dir + "/building_" + std::to_string(sensors) + ".csv";
    timeseries::write_csv_file(path, make_building(sensors, days));
    fleet.emplace_back(sensors, path);
  }
  return fleet;
}

/// Minimal HTTP client: one request per connection, reads to close.
std::string http_exchange(std::uint16_t port, const std::string& method,
                          const std::string& path, const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = method + " " + path + " HTTP/1.1\r\n" +
                              "Host: 127.0.0.1\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

struct WorkItem {
  std::string body;
  std::size_t sensors = 0;
};

/// Mixed request schedule: repeats dominate (that is what a cache is
/// for), weighted toward the small buildings the way a fleet dashboard
/// polls, with option variants salted in so distinct prefix keys compete
/// for budget.
std::vector<WorkItem> make_schedule(
    const std::vector<std::pair<std::size_t, std::string>>& fleet,
    std::size_t total) {
  const auto item = [](const std::pair<std::size_t, std::string>& b,
                       const std::string& extra) {
    return WorkItem{R"({"data": ")" + serve::json::escape(b.second) +
                        R"(", "clusters": 4)" + extra + "}",
                    b.first};
  };
  std::vector<WorkItem> items;
  std::size_t i = 0;
  while (items.size() < total) {
    // 8-slot round: 4x smallest, 2x middle, 2x largest (one variant).
    items.push_back(item(fleet[0], ""));
    items.push_back(item(fleet[0], R"(, "order": 1)"));
    items.push_back(item(fleet[0], ""));
    items.push_back(item(fleet[0], R"(, "per_cluster": 2)"));
    items.push_back(item(fleet[1 % fleet.size()], ""));
    items.push_back(item(fleet[1 % fleet.size()], R"(, "order": 1)"));
    items.push_back(item(fleet[2 % fleet.size()], ""));
    items.push_back(
        item(fleet[2 % fleet.size()],
             i % 2 == 0 ? R"(, "metric": "euclidean")" : ""));
    ++i;
  }
  items.resize(total);
  return items;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Sum counters matching `prefix` from a parsed /metrics document.
std::uint64_t sum_counters(const serve::json::Value& metrics,
                           std::string_view prefix) {
  const auto* counters = metrics.find("counters");
  if (counters == nullptr || !counters->is_object()) return 0;
  std::uint64_t total = 0;
  for (const auto& [name, value] : counters->object) {
    if (name.starts_with(prefix)) {
      total += static_cast<std::uint64_t>(value.number);
    }
  }
  return total;
}

long long arg_long(int argc, char** argv, const char* name,
                   long long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

const char* arg_str(int argc, char** argv, const char* name,
                    const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const auto requests =
      static_cast<std::size_t>(arg_long(argc, argv, "--requests", 48));
  const auto clients =
      static_cast<std::size_t>(arg_long(argc, argv, "--clients", 4));
  const auto workers =
      static_cast<std::size_t>(arg_long(argc, argv, "--workers", 4));
  const auto budget_mb = arg_long(argc, argv, "--budget-mb", 16);
  const auto days = static_cast<std::size_t>(arg_long(argc, argv, "--days", 10));
  const auto connect_port = arg_long(argc, argv, "--connect", 0);
  const std::string out_path = arg_str(argc, argv, "--out", "BENCH_serve.json");

  bench::print_header("auditherm serve: concurrent load, budgeted cache");

  std::printf("generating fleet (64 / 256 / 1024 sensors, %zu days)...\n",
              days);
  const auto fleet = write_fleet({64, 256, 1024}, days);
  const auto schedule = make_schedule(fleet, requests);

  // In-process daemon unless --connect points at an external one.
  serve::ServiceConfig service_config;
  service_config.cache_budget.bytes =
      static_cast<std::size_t>(budget_mb) * 1024 * 1024;
  serve::AnalysisService service(service_config);
  obs::Recorder recorder;
  const obs::RecorderScope scope(&recorder);
  std::unique_ptr<serve::Server> server;
  std::thread runner;
  std::uint16_t port = 0;
  if (connect_port > 0) {
    port = static_cast<std::uint16_t>(connect_port);
    std::printf("load-client mode against 127.0.0.1:%u\n", port);
  } else {
    serve::ServerConfig server_config;
    server_config.port = 0;
    server_config.workers = workers;
    server = std::make_unique<serve::Server>(server_config, service,
                                             &recorder);
    server->start();
    port = server->port();
    runner = std::thread([&] { server->run(); });
    std::printf("in-process daemon on 127.0.0.1:%u (%zu workers, "
                "budget %lld MB)\n",
                port, workers, budget_mb);
  }

  // Fire the schedule from concurrent clients pulling a shared queue.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> errors{0};
  std::mutex latency_mutex;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(schedule.size());
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= schedule.size()) return;
        const auto start = std::chrono::steady_clock::now();
        const auto response =
            http_exchange(port, "POST", "/analyze", schedule[i].body);
        const auto stop = std::chrono::steady_clock::now();
        if (response.find("HTTP/1.1 200") != 0) {
          errors.fetch_add(1);
          continue;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        const std::lock_guard<std::mutex> lock(latency_mutex);
        latencies_ms.push_back(ms);
      }
    });
  }
  for (auto& t : pool) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  // Cache statistics: straight from the service in-process, recovered
  // from GET /metrics when driving an external daemon.
  std::uint64_t hits = 0, misses = 0, evictions = 0, evicted_bytes = 0;
  std::size_t resident = 0, budget_bytes = 0;
  if (connect_port > 0) {
    const auto metrics_response = http_exchange(port, "GET", "/metrics", "");
    const auto body_at = metrics_response.find("\r\n\r\n");
    if (body_at != std::string::npos) {
      try {
        const auto metrics =
            serve::json::parse(metrics_response.substr(body_at + 4));
        hits = sum_counters(metrics, "stage_cache.hit.");
        misses = sum_counters(metrics, "stage_cache.miss.");
        evictions = sum_counters(metrics, "stage_cache.eviction.");
        evicted_bytes = sum_counters(metrics, "stage_cache.evicted_bytes");
      } catch (const serve::json::ParseError& e) {
        std::fprintf(stderr, "warning: /metrics unparsable: %s\n", e.what());
      }
    }
  } else {
    const auto totals = service.cache().totals();
    hits = totals.hits;
    misses = totals.misses;
    evictions = service.cache().eviction_count();
    evicted_bytes = service.cache().evicted_bytes();
    resident = service.cache().resident_bytes();
    budget_bytes = service.cache().budget_bytes();
    (void)http_exchange(port, "POST", "/shutdown", "");
    runner.join();
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = percentile(latencies_ms, 50.0);
  const double p99 = percentile(latencies_ms, 99.0);
  const double hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;

  std::printf("\n%zu requests over %zu clients in %.2f s (%zu errors)\n",
              schedule.size(), clients, wall_s, errors.load());
  std::printf("latency p50 %.1f ms, p99 %.1f ms\n", p50, p99);
  std::printf("stage cache: %llu hits / %llu misses (hit rate %.3f)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), hit_rate);
  std::printf("evictions: %llu (%llu bytes); resident %zu / budget %zu\n",
              static_cast<unsigned long long>(evictions),
              static_cast<unsigned long long>(evicted_bytes), resident,
              budget_bytes);

  bench::JsonObject json;
  json.add("schema", std::string("auditherm.bench_serve"));
  json.add("schema_version", static_cast<long long>(1));
  json.add("requests", schedule.size());
  json.add("clients", clients);
  json.add("errors", errors.load());
  json.add("wall_seconds", wall_s);
  json.add("latency_p50_ms", p50);
  json.add("latency_p99_ms", p99);
  json.add("cache_hits", static_cast<std::size_t>(hits));
  json.add("cache_misses", static_cast<std::size_t>(misses));
  json.add("cache_hit_rate", hit_rate);
  json.add("evictions", static_cast<std::size_t>(evictions));
  json.add("evicted_bytes", static_cast<std::size_t>(evicted_bytes));
  json.add("resident_bytes", resident);
  json.add("budget_bytes", budget_bytes);
  json.add("within_budget",
           budget_bytes == 0 || resident <= budget_bytes);
  if (!json.write_file(out_path)) {
    std::fprintf(stderr, "warning: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return errors.load() == 0 ? 0 : 1;
}
