// Fig. 3: empirical CDF over sensors of the per-sensor RMS prediction
// error, first- vs second-order models, occupied mode, 13.5 h windows.
//
// Paper: first-order per-sensor errors span 0.31-0.99 degC with an
// all-sensor RMS of 0.68 at the 90th percentile; second-order spans
// 0.18-0.63 with 0.48. The second-order CDF lies to the LEFT of the
// first-order one.

#include <algorithm>

#include "bench_common.hpp"

using namespace auditherm;

namespace {

linalg::Vector channel_rms_for(const sim::AuditoriumDataset& dataset,
                               sysid::ModelOrder order) {
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  sysid::ModelEstimator estimator(dataset.sensor_ids(), dataset.input_ids(),
                                  order);
  const auto model = estimator.fit(
      dataset.trace, core::and_masks(split.train_mask, mode_mask));
  const auto windows = bench::evaluation_windows(dataset,
                                                 split.validation_mask,
                                                 hvac::Mode::kOccupied);
  sysid::EvaluationOptions opts;  // 27 samples = 13.5 h
  const auto eval =
      sysid::evaluate_prediction(model, dataset.trace, windows, opts);
  linalg::Vector finite;
  for (double v : eval.channel_rms) {
    if (!std::isnan(v)) finite.push_back(v);
  }
  return finite;
}

}  // namespace

int main() {
  const bench::ObsSession obs_session;
  bench::print_header(
      "Fig. 3: CDF over sensors of per-sensor RMS error (occupied)");
  const auto dataset = bench::make_standard_dataset();

  const auto first = channel_rms_for(dataset, sysid::ModelOrder::kFirst);
  const auto second = channel_rms_for(dataset, sysid::ModelOrder::kSecond);
  const auto cdf1 = linalg::empirical_cdf(first);
  const auto cdf2 = linalg::empirical_cdf(second);

  std::printf("%-10s %-12s %-12s\n", "RMS(degC)", "CDF first", "CDF second");
  for (double x = 0.1; x <= 1.301; x += 0.1) {
    std::printf("%-10.1f %-12.2f %-12.2f\n", x, linalg::cdf_at(cdf1, x),
                linalg::cdf_at(cdf2, x));
  }

  const double min1 = *std::min_element(first.begin(), first.end());
  const double max1 = *std::max_element(first.begin(), first.end());
  const double min2 = *std::min_element(second.begin(), second.end());
  const double max2 = *std::max_element(second.begin(), second.end());
  std::printf("\nper-sensor RMS range: first %.2f-%.2f (paper 0.31-0.99), "
              "second %.2f-%.2f (paper 0.18-0.63)\n",
              min1, max1, min2, max2);
  bench::print_row("first-order 90th pct", 0.68,
                   linalg::percentile(first, 90.0));
  bench::print_row("second-order 90th pct", 0.48,
                   linalg::percentile(second, 90.0));

  // Stochastic-dominance check: the second-order CDF is never to the
  // right of the first-order CDF by more than a small slack.
  bool dominated = true;
  for (double x = 0.1; x <= 1.3; x += 0.05) {
    if (linalg::cdf_at(cdf2, x) + 0.08 < linalg::cdf_at(cdf1, x)) {
      dominated = false;
    }
  }
  std::printf("shape check: second-order CDF left of first-order: %s\n",
              dominated ? "yes" : "NO");
  return 0;
}
