file(REMOVE_RECURSE
  "CMakeFiles/auditherm_timeseries.dir/csv_io.cpp.o"
  "CMakeFiles/auditherm_timeseries.dir/csv_io.cpp.o.d"
  "CMakeFiles/auditherm_timeseries.dir/multi_trace.cpp.o"
  "CMakeFiles/auditherm_timeseries.dir/multi_trace.cpp.o.d"
  "CMakeFiles/auditherm_timeseries.dir/resample.cpp.o"
  "CMakeFiles/auditherm_timeseries.dir/resample.cpp.o.d"
  "CMakeFiles/auditherm_timeseries.dir/segmentation.cpp.o"
  "CMakeFiles/auditherm_timeseries.dir/segmentation.cpp.o.d"
  "CMakeFiles/auditherm_timeseries.dir/time_grid.cpp.o"
  "CMakeFiles/auditherm_timeseries.dir/time_grid.cpp.o.d"
  "CMakeFiles/auditherm_timeseries.dir/trace_stats.cpp.o"
  "CMakeFiles/auditherm_timeseries.dir/trace_stats.cpp.o.d"
  "libauditherm_timeseries.a"
  "libauditherm_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auditherm_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
