#include "auditherm/linalg/decompositions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "auditherm/core/parallel.hpp"
#include "auditherm/obs/trace_span.hpp"

namespace auditherm::linalg {

// ---------------------------------------------------------------------------
// QR
// ---------------------------------------------------------------------------

QrDecomposition::QrDecomposition(const Matrix& a)
    : m_(a.rows()), n_(a.cols()), qr_(a), rdiag_(a.cols(), 0.0) {
  if (m_ < n_) {
    throw std::invalid_argument("QrDecomposition: requires rows >= cols");
  }
  for (std::size_t k = 0; k < n_; ++k) {
    // Householder vector for column k: reflect x to -sign(x0)*||x|| e1.
    double nrm = 0.0;
    for (std::size_t i = k; i < m_; ++i) nrm = std::hypot(nrm, qr_(i, k));
    if (nrm != 0.0) {
      if (qr_(k, k) < 0.0) nrm = -nrm;
      for (std::size_t i = k; i < m_; ++i) qr_(i, k) /= nrm;
      qr_(k, k) += 1.0;
      // Apply reflector to remaining columns.
      for (std::size_t j = k + 1; j < n_; ++j) {
        double s = 0.0;
        for (std::size_t i = k; i < m_; ++i) s += qr_(i, k) * qr_(i, j);
        s = -s / qr_(k, k);
        for (std::size_t i = k; i < m_; ++i) qr_(i, j) += s * qr_(i, k);
      }
    }
    rdiag_[k] = -nrm;
  }
}

bool QrDecomposition::rank_deficient(double tol) const noexcept {
  double dmax = 0.0;
  for (double d : rdiag_) dmax = std::max(dmax, std::abs(d));
  if (dmax == 0.0) return true;
  for (double d : rdiag_) {
    if (std::abs(d) <= tol * dmax) return true;
  }
  return false;
}

void QrDecomposition::apply_reflectors(Vector& b) const {
  for (std::size_t k = 0; k < n_; ++k) {
    if (qr_(k, k) == 0.0) continue;
    double s = 0.0;
    for (std::size_t i = k; i < m_; ++i) s += qr_(i, k) * b[i];
    s = -s / qr_(k, k);
    for (std::size_t i = k; i < m_; ++i) b[i] += s * qr_(i, k);
  }
}

Vector QrDecomposition::solve(const Vector& b) const {
  if (b.size() != m_) {
    throw std::invalid_argument("QrDecomposition::solve: rhs length mismatch");
  }
  if (rank_deficient()) {
    throw std::domain_error("QrDecomposition::solve: rank-deficient matrix");
  }
  Vector y = b;
  apply_reflectors(y);  // y = Q^T b
  Vector x(n_);
  for (std::size_t kk = n_; kk-- > 0;) {
    double s = y[kk];
    for (std::size_t j = kk + 1; j < n_; ++j) s -= qr_(kk, j) * x[j];
    x[kk] = s / rdiag_[kk];
  }
  return x;
}

Matrix QrDecomposition::solve(const Matrix& b) const {
  if (b.rows() != m_) {
    throw std::invalid_argument("QrDecomposition::solve: rhs rows mismatch");
  }
  Matrix x(n_, b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    x.set_col(j, solve(b.col_vector(j)));
  }
  return x;
}

Matrix QrDecomposition::r() const {
  Matrix r(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    r(i, i) = rdiag_[i];
    for (std::size_t j = i + 1; j < n_; ++j) r(i, j) = qr_(i, j);
  }
  return r;
}

Matrix QrDecomposition::thin_q() const {
  Matrix q(m_, n_);
  for (std::size_t col = n_; col-- > 0;) {
    Vector e(m_, 0.0);
    e[col] = 1.0;
    // q_col = H_0 H_1 ... H_{n-1} e_col applied in reverse order.
    for (std::size_t k = n_; k-- > 0;) {
      if (qr_(k, k) == 0.0) continue;
      double s = 0.0;
      for (std::size_t i = k; i < m_; ++i) s += qr_(i, k) * e[i];
      s = -s / qr_(k, k);
      for (std::size_t i = k; i < m_; ++i) e[i] += s * qr_(i, k);
    }
    q.set_col(col, e);
  }
  return q;
}

// ---------------------------------------------------------------------------
// Cholesky
// ---------------------------------------------------------------------------

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("CholeskyDecomposition: matrix not square");
  }
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (d <= 0.0 || !std::isfinite(d)) {
      throw std::domain_error(
          "CholeskyDecomposition: matrix not positive definite");
    }
    l_(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

Vector CholeskyDecomposition::solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("CholeskyDecomposition::solve: rhs mismatch");
  }
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Matrix CholeskyDecomposition::solve(const Matrix& b) const {
  if (b.rows() != l_.rows()) {
    throw std::invalid_argument("CholeskyDecomposition::solve: rhs mismatch");
  }
  Matrix x(l_.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) x.set_col(j, solve(b.col_vector(j)));
  return x;
}

double CholeskyDecomposition::log_determinant() const noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

// ---------------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------------

LuDecomposition::LuDecomposition(const Matrix& a) : lu_(a), perm_(a.rows()) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuDecomposition: matrix not square");
  }
  const std::size_t n = a.rows();
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(lu_(i, k)) > std::abs(lu_(p, k))) p = i;
    }
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(p, j), lu_(k, j));
      std::swap(perm_[p], perm_[k]);
      pivot_sign_ = -pivot_sign_;
    }
    if (lu_(k, k) == 0.0) {
      throw std::domain_error("LuDecomposition: singular matrix");
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      lu_(i, k) /= lu_(k, k);
      const double f = lu_(i, k);
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= f * lu_(k, j);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("LuDecomposition::solve: rhs mismatch");
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) x[i] -= lu_(i, k) * x[k];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) x[ii] -= lu_(ii, k) * x[k];
    x[ii] /= lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  if (b.rows() != lu_.rows()) {
    throw std::invalid_argument("LuDecomposition::solve: rhs mismatch");
  }
  Matrix x(lu_.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) x.set_col(j, solve(b.col_vector(j)));
  return x;
}

double LuDecomposition::determinant() const noexcept {
  double d = pivot_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

// ---------------------------------------------------------------------------
// Jacobi eigensolver
// ---------------------------------------------------------------------------

SymmetricEigen eigen_symmetric(const Matrix& a, std::size_t max_sweeps) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("eigen_symmetric: matrix not square");
  }
  obs::TraceSpan eigen_span("linalg.eigen_symmetric");
  const std::size_t n = a.rows();
  // Symmetrize to absorb roundoff asymmetry from upstream products.
  Matrix s(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) s(i, j) = 0.5 * (a(i, j) + a(j, i));

  Matrix v = Matrix::identity(n);
  if (n <= 1) {
    SymmetricEigen out;
    out.eigenvalues = n == 1 ? Vector{s(0, 0)} : Vector{};
    out.eigenvectors = v;
    return out;
  }

  const double scale = std::max(s.max_abs(), 1e-300);
  // Row grains: the off-norm is an ordered reduction over row chunks (chunk
  // boundaries depend only on n, so the grouping — and hence the float
  // result — is identical at any thread count); the rotations update each
  // row/column element independently. Both stay serial below a few
  // thousand rows, where pool latency would dwarf the O(n) work.
  const std::size_t row_grain = core::grain_for_cost(n);
  const std::size_t rot_grain = core::grain_for_cost(6);
  std::size_t sweeps_done = 0;
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    const double off = core::parallel_reduce(
        std::size_t{0}, n, row_grain, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double local = 0.0;
          for (std::size_t i = lo; i < hi; ++i)
            for (std::size_t j = i + 1; j < n; ++j) local += s(i, j) * s(i, j);
          return local;
        },
        [](double acc, double part) { return acc + part; });
    if (std::sqrt(off) <= 1e-14 * scale * static_cast<double>(n)) break;
    if (sweep + 1 == max_sweeps) {
      throw std::domain_error("eigen_symmetric: Jacobi did not converge");
    }
    for (std::size_t p = 0; p < n - 1; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = s(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (s(q, q) - s(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double sn = t * c;
        // Rotate rows/cols p and q of S; each k is independent.
        core::parallel_for(0, n, rot_grain, [&](std::size_t k) {
          const double skp = s(k, p);
          const double skq = s(k, q);
          s(k, p) = c * skp - sn * skq;
          s(k, q) = sn * skp + c * skq;
        });
        core::parallel_for(0, n, rot_grain, [&](std::size_t k) {
          const double spk = s(p, k);
          const double sqk = s(q, k);
          s(p, k) = c * spk - sn * sqk;
          s(q, k) = sn * spk + c * sqk;
        });
        core::parallel_for(0, n, rot_grain, [&](std::size_t k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - sn * vkq;
          v(k, q) = sn * vkp + c * vkq;
        });
      }
    }
    ++sweeps_done;
  }
  // Convergence behavior per call, visible in --metrics-out output; the
  // counts are thread-count independent because the reduction grouping is.
  static const obs::MetricId kJacobiSweeps =
      obs::counter_id("linalg.jacobi_sweeps");
  static const obs::MetricId kEigenCalls =
      obs::counter_id("linalg.eigen_calls");
  obs::add_counter(kEigenCalls);
  obs::add_counter(kJacobiSweeps, sweeps_done);

  // Sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return s(i, i) < s(j, j); });

  SymmetricEigen out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = s(order[j], order[j]);
    out.eigenvectors.set_col(j, v.col_vector(order[j]));
  }
  return out;
}

}  // namespace auditherm::linalg
