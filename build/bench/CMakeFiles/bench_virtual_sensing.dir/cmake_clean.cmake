file(REMOVE_RECURSE
  "CMakeFiles/bench_virtual_sensing.dir/bench_virtual_sensing.cpp.o"
  "CMakeFiles/bench_virtual_sensing.dir/bench_virtual_sensing.cpp.o.d"
  "bench_virtual_sensing"
  "bench_virtual_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtual_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
