#include "auditherm/sysid/input_plan.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "auditherm/obs/trace_span.hpp"

namespace auditherm::sysid {

namespace {

/// Local FNV-1a so the fingerprint needs no dependency on core's
/// StageKeyHasher (sysid sits below core). Same bit-pattern conventions:
/// doubles hash by bits with every NaN collapsed to one sentinel.
class PlanHasher {
 public:
  void add(std::uint64_t v) noexcept {
    unsigned char bytes[sizeof(v)];
    std::memcpy(bytes, &v, sizeof(v));
    for (unsigned char b : bytes) {
      state_ ^= b;
      state_ *= 0x100000001b3ull;  // FNV prime
    }
  }
  void add(double v) noexcept {
    std::uint64_t bits;
    if (std::isnan(v)) {
      bits = 0x7ff8000000000000ull;
    } else {
      std::memcpy(&bits, &v, sizeof(bits));
    }
    add(bits);
  }
  void add(std::int64_t v) noexcept { add(static_cast<std::uint64_t>(v)); }
  void add(int v) noexcept { add(static_cast<std::uint64_t>(v)); }
  void add(bool v) noexcept { add(static_cast<std::uint64_t>(v ? 1 : 2)); }

  [[nodiscard]] std::uint64_t value() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

void count_source(InputSource source) {
  static const obs::MetricId kGroundTruth =
      obs::counter_id("sysid.input_plan.ground_truth");
  static const obs::MetricId kCo2Estimated =
      obs::counter_id("sysid.input_plan.co2_estimated");
  static const obs::MetricId kSchedulePrior =
      obs::counter_id("sysid.input_plan.schedule_prior");
  switch (source) {
    case InputSource::kGroundTruth: obs::add_counter(kGroundTruth); break;
    case InputSource::kCo2Estimated: obs::add_counter(kCo2Estimated); break;
    case InputSource::kSchedulePrior: obs::add_counter(kSchedulePrior); break;
  }
}

std::shared_ptr<const linalg::Vector> materialize_co2(
    const InputSlot& slot, const timeseries::TraceView& trace,
    const std::vector<bool>& train_mask, PlanHasher& hasher) {
  Co2OccupancyEstimator estimator(slot.co2);
  estimator.calibrate(trace.filter_rows(train_mask));
  linalg::Vector column = estimator.estimate(trace);
  for (double& v : column) {
    if (std::isnan(v)) continue;
    if (!std::isnan(slot.clamp_max) && v > slot.clamp_max) v = slot.clamp_max;
    if (slot.round_to_integer) v = std::round(v);
  }
  // The calibration fingerprint: re-calibrating (different training rows,
  // different sensor noise) re-keys every downstream stage.
  hasher.add(estimator.volume_over_generation());
  hasher.add(estimator.flow_gain());
  hasher.add(estimator.outdoor_ppm());
  return std::make_shared<const linalg::Vector>(std::move(column));
}

std::shared_ptr<const linalg::Vector> materialize_schedule(
    const InputSlot& slot, const timeseries::TraceView& trace) {
  linalg::Vector column(trace.size());
  for (std::size_t k = 0; k < trace.size(); ++k) {
    column[k] = slot.schedule.occupied_at(trace.grid()[k])
                    ? slot.occupied_level
                    : slot.unoccupied_level;
  }
  return std::make_shared<const linalg::Vector>(std::move(column));
}

}  // namespace

InputSlot InputSlot::ground_truth(timeseries::ChannelId channel) {
  InputSlot slot;
  slot.source = InputSource::kGroundTruth;
  slot.channel = channel;
  return slot;
}

InputSlot InputSlot::co2_estimated(Co2Channels co2,
                                   timeseries::ChannelId channel) {
  InputSlot slot;
  slot.source = InputSource::kCo2Estimated;
  slot.channel = channel;
  slot.co2 = std::move(co2);
  return slot;
}

InputSlot InputSlot::schedule_prior(hvac::Schedule schedule,
                                    double occupied_level,
                                    double unoccupied_level,
                                    timeseries::ChannelId channel) {
  InputSlot slot;
  slot.source = InputSource::kSchedulePrior;
  slot.channel = channel;
  slot.schedule = schedule;
  slot.occupied_level = occupied_level;
  slot.unoccupied_level = unoccupied_level;
  return slot;
}

InputPlan InputPlan::ground_truth(
    const std::vector<timeseries::ChannelId>& ids) {
  InputPlan plan;
  plan.slots.reserve(ids.size());
  for (auto id : ids) plan.slots.push_back(InputSlot::ground_truth(id));
  return plan;
}

bool InputPlan::pure_ground_truth() const noexcept {
  for (const auto& slot : slots) {
    if (slot.source != InputSource::kGroundTruth) return false;
  }
  return true;
}

std::vector<timeseries::ChannelId> InputPlan::channel_ids() const {
  std::vector<timeseries::ChannelId> ids;
  ids.reserve(slots.size());
  for (const auto& slot : slots) ids.push_back(slot.channel);
  return ids;
}

timeseries::TraceView ResolvedInputPlan::augment(
    const timeseries::TraceView& base) const {
  timeseries::TraceView out = base;
  for (const auto& d : derived) out = out.with_channel(d.id, d.column);
  return out;
}

ResolvedInputPlan resolve_input_plan(const InputPlan& plan,
                                     const timeseries::TraceView& trace,
                                     const std::vector<bool>& train_mask) {
  if (plan.slots.empty()) {
    throw std::invalid_argument("resolve_input_plan: empty plan");
  }
  if (train_mask.size() != trace.size()) {
    throw std::invalid_argument(
        "resolve_input_plan: train_mask size mismatch");
  }
  obs::TraceSpan span("sysid.input_plan.resolve");

  std::unordered_set<timeseries::ChannelId> seen;
  for (const auto& slot : plan.slots) {
    if (!seen.insert(slot.channel).second) {
      throw std::invalid_argument(
          "resolve_input_plan: duplicate input channel id " +
          std::to_string(slot.channel));
    }
  }

  ResolvedInputPlan resolved;
  resolved.channel_ids.reserve(plan.slots.size());

  // Fingerprint: stays 0 for pure ground-truth plans (the bitwise no-op
  // contract); otherwise folds the whole plan structure plus — inside the
  // materializers — the calibrated parameters.
  PlanHasher hasher;
  const bool pure = plan.pure_ground_truth();
  if (!pure) hasher.add(std::uint64_t{plan.slots.size()});

  for (const auto& slot : plan.slots) {
    count_source(slot.source);
    if (!pure) {
      hasher.add(static_cast<std::uint64_t>(slot.source));
      hasher.add(slot.channel);
    }
    switch (slot.source) {
      case InputSource::kGroundTruth:
        (void)trace.require_channel(slot.channel);
        break;
      case InputSource::kCo2Estimated: {
        if (trace.channel_index(slot.channel)) {
          throw std::invalid_argument(
              "resolve_input_plan: derived channel id " +
              std::to_string(slot.channel) + " collides with a trace channel");
        }
        hasher.add(slot.co2.co2);
        for (auto id : slot.co2.vav_flows) hasher.add(id);
        hasher.add(slot.co2.occupancy);
        hasher.add(slot.round_to_integer);
        hasher.add(slot.clamp_max);
        resolved.derived.push_back(
            {slot.channel, materialize_co2(slot, trace, train_mask, hasher)});
        break;
      }
      case InputSource::kSchedulePrior: {
        if (trace.channel_index(slot.channel)) {
          throw std::invalid_argument(
              "resolve_input_plan: derived channel id " +
              std::to_string(slot.channel) + " collides with a trace channel");
        }
        hasher.add(slot.schedule.on_minute());
        hasher.add(slot.schedule.off_minute());
        hasher.add(slot.occupied_level);
        hasher.add(slot.unoccupied_level);
        resolved.derived.push_back(
            {slot.channel, materialize_schedule(slot, trace)});
        break;
      }
    }
    resolved.channel_ids.push_back(slot.channel);
  }

  resolved.fingerprint = pure ? 0 : hasher.value();
  return resolved;
}

}  // namespace auditherm::sysid
