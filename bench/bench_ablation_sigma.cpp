// Ablation: Gaussian-kernel bandwidth for Euclidean similarity graphs.
//
// The Euclidean metric needs a bandwidth sigma; the library defaults to
// the median pairwise distance. This sweep shows how the eigengap's
// cluster count and the tightness of the resulting clusters react to
// sigma, justifying the self-tuning default.

#include "bench_common.hpp"

using namespace auditherm;

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Ablation: Euclidean similarity bandwidth sigma");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto training = dataset.trace.filter_rows(
      core::and_masks(split.train_mask, mode_mask));

  // Resolve the median heuristic once.
  clustering::SimilarityOptions base;
  base.metric = clustering::SimilarityMetric::kEuclidean;
  const auto ref = clustering::build_similarity_graph(
      training, dataset.wireless_ids(), base);
  const double sigma_star = ref.sigma_used;
  std::printf("median-heuristic sigma* = %.3f degC\n\n", sigma_star);

  std::printf("%-14s %-12s %-22s\n", "sigma/sigma*", "eigengap k",
              "tightest k=3 cluster p95 (degC)");
  for (double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    clustering::SimilarityOptions opts = base;
    opts.sigma = factor * sigma_star;
    const auto graph = clustering::build_similarity_graph(
        training, dataset.wireless_ids(), opts);
    const auto analysis = clustering::analyze_spectrum(graph.weights);
    const auto k = analysis.eigengap_cluster_count();

    clustering::SpectralOptions spec;
    spec.cluster_count = 3;
    const auto result = clustering::spectral_cluster(graph, spec);
    double tightest = 1e9;
    for (const auto& cluster : result.clusters()) {
      const auto diffs =
          timeseries::pairwise_max_differences(training, cluster);
      if (!diffs.empty()) {
        tightest = std::min(tightest, linalg::percentile(diffs, 95.0));
      }
    }
    std::printf("%-14.2f %-12zu %-22.3f\n", factor, k, tightest);
  }
  std::printf("\nreading: with the quantile sparsifier + kNN floor the "
              "clustering is insensitive to sigma across a 16x range — the "
              "median heuristic needs no tuning. (Without sparsification, "
              "small sigma fragments the graph and large sigma washes the "
              "structure out.)\n");
  return 0;
}
