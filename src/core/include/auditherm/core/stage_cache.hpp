#pragma once

/// \file stage_cache.hpp
/// Content-keyed memoization of the modeling pipeline's expensive stages.
///
/// The paper's evaluation sweeps (Tables I-II, Figs 8-11) rerun the
/// pipeline across selection strategies and seeds over a *fixed*
/// clustering: the training view, similarity graph, Laplacian spectrum,
/// k-means labels, evaluation windows, and measured cluster means never
/// depend on strategy or seed. A StageCache memoizes those artifacts under
/// a cheap structural hash of everything they *do* depend on, so a sweep
/// over N cases performs the Step-1 work exactly once (amgcl's
/// setup/solve split: build the expensive operator once, reuse it across
/// many solves).
///
/// Key rules (see DESIGN.md §"Stage cache"):
///   * Keys are chained: each stage's key folds its upstream stage's key
///     with the options that stage newly consumes. Changing, say, the
///     spectral options invalidates the clustering but still reuses the
///     similarity graph.
///   * Trace content enters keys via trace_fingerprint(): grid, channel
///     ids, and every sample's bit pattern (NaN gaps normalized to one
///     pattern). Two bitwise-equal traces share cache entries; any edit
///     misses.
///   * Hits return shared_ptr aliases of the stored artifact — callers
///     never copy, and a cached run is bitwise identical to an uncached
///     one because both execute the same builder code on the same inputs.
///
/// Memory budget: a long-running cache (the `auditherm serve` daemon
/// shares one across every request) is constructed with a CacheBudget;
/// completed artifacts are byte-accounted through the sized_artifact
/// trait and evicted least-recently-used once the resident set exceeds
/// the budget. Eviction only ever removes *completed* entries — an entry
/// with a builder in flight has no value (and no bytes) and is skipped,
/// as is clear(): in-flight entries are generation-tagged instead, so a
/// builder that outlives a clear() hands its artifact to its caller but
/// never republishes it into the post-clear table, and waiters parked on
/// it are woken to rebuild. Hits keep their shared_ptr aliases alive
/// across eviction, so eviction is always safe; it only costs a rebuild
/// on the next touch of that key.
///
/// Thread safety: get_or_build() may be called concurrently from the
/// sweep's worker threads or from serve's request threads. One mutex
/// guards the table; builders run with NO cache lock held (a builder may
/// itself fan out over the thread pool, so holding a lock across build()
/// would order it against the pool's batch mutex — a lock-order inversion
/// TSan rejects). Hit/miss/eviction bookkeeping is likewise mirrored into
/// the current obs recorder only *after* mutex_ is released, so the cache
/// lock never couples with the recorder's shard locks (serve installs a
/// long-lived recorder that every request thread records into). A key's
/// first toucher marks it building and later publishes; concurrent
/// touchers park on a condition variable — except inside a parallel
/// region, where parking would stall the pool, so they build a duplicate
/// and the first publish wins. Outside parallel regions a key is built
/// exactly once.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "auditherm/obs/metrics.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::core {

/// Incremental FNV-1a (64-bit) over the structural content of cache-key
/// inputs. Not cryptographic — keys are a memoization address, not a
/// security boundary.
class StageKeyHasher {
 public:
  void add_bytes(const void* data, std::size_t size) noexcept;
  void add(std::uint64_t v) noexcept;
  void add(std::int64_t v) noexcept { add(static_cast<std::uint64_t>(v)); }
  void add(bool v) noexcept { add(static_cast<std::uint64_t>(v ? 1 : 2)); }
  /// Doubles hash by bit pattern; NaNs collapse to one sentinel so every
  /// gap encoding keys identically.
  void add(double v) noexcept;
  void add(std::string_view s) noexcept;
  void add(const std::vector<bool>& mask) noexcept;
  void add(const std::vector<int>& v) noexcept;

  [[nodiscard]] std::uint64_t value() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

/// Structural fingerprint of a trace: grid, channel ids, and all sample
/// bits. O(rows x channels) but pure streaming arithmetic — microseconds
/// against the milliseconds-to-seconds stages it guards. Takes a view and
/// hashes the *viewed* content, so a zero-copy subset keys identically to
/// the materialized trace it is equivalent to (a MultiTrace converts
/// implicitly and keys exactly as before).
[[nodiscard]] std::uint64_t trace_fingerprint(
    const timeseries::TraceView& trace);

/// Memory budget for a StageCache. `bytes == 0` (the default) means
/// unlimited — the historical grow-only behavior, right for one-shot CLI
/// runs and sweeps whose working set is bounded by construction.
struct CacheBudget {
  std::size_t bytes = 0;
};

/// --- sized_artifact: per-entry byte accounting ---------------------------
///
/// Estimated resident bytes of a cached artifact, used by the budgeted
/// cache's LRU accounting. Customize for a type by providing an
/// ADL-visible `std::size_t cache_footprint(const T&)` in T's namespace
/// (the library does so for Matrix, MultiTrace, SimilarityGraph,
/// SpectralAnalysis, and ClusteringResult). Without one, std::vector
/// payloads are recursed generically and anything else is accounted as
/// sizeof(T). Estimates need not be exact — they must only be
/// deterministic and proportional, so eviction order and budget
/// enforcement are reproducible.
namespace size_detail {
template <typename T>
inline constexpr bool is_std_vector = false;
template <typename T, typename A>
inline constexpr bool is_std_vector<std::vector<T, A>> = true;
}  // namespace size_detail

template <typename T>
struct sized_artifact {
  [[nodiscard]] static std::size_t bytes(const T& v) {
    if constexpr (requires { cache_footprint(v); }) {
      return static_cast<std::size_t>(cache_footprint(v));
    } else if constexpr (size_detail::is_std_vector<T>) {
      using U = typename T::value_type;
      std::size_t total = sizeof(T) + v.capacity() * sizeof(U);
      if constexpr (!std::is_trivially_copyable_v<U>) {
        // Non-trivial elements own further heap payloads; their in-buffer
        // header bytes are already counted in the capacity term.
        for (const auto& e : v) total += sized_artifact<U>::bytes(e) - sizeof(U);
      }
      return total;
    } else {
      return sizeof(T);
    }
  }
};

/// Hit/miss counters for one stage (or the cache-wide totals). Backed by
/// the cache's own obs::MetricsRegistry (`stage_cache.hit.<stage>` /
/// `stage_cache.miss.<stage>` counters); stats() and totals() are thin
/// adapters over it. When a run recorder is installed (obs::RecorderScope)
/// the same counters are mirrored there, so --metrics-out JSON carries
/// them without any caller-side plumbing.
struct StageStats {
  std::size_t hits = 0;
  std::size_t misses = 0;  ///< == number of times the stage was computed
};

/// Thread-safe content-keyed memo table for pipeline stage artifacts,
/// optionally bounded by a byte budget with LRU eviction.
///
/// Values are type-erased internally; get_or_build<T> stores and returns
/// shared_ptr<const T>. A key must always be used with the same T (keys
/// fold in a per-stage tag, so distinct stages never collide).
class StageCache {
 public:
  StageCache() = default;
  explicit StageCache(CacheBudget budget) : budget_(budget) {}
  StageCache(const StageCache&) = delete;
  StageCache& operator=(const StageCache&) = delete;

  /// Return the artifact for (stage, key). On first touch `build` runs
  /// once; concurrent first-touchers either wait for it or (inside a
  /// parallel region) race a duplicate build whose loser is discarded, so
  /// every caller receives the same stored artifact.
  template <typename T, typename BuildFn>
  std::shared_ptr<const T> get_or_build(std::string_view stage,
                                        std::uint64_t key, BuildFn&& build) {
    auto erased = get_or_build_erased(
        stage, tag_key(stage, key), [&]() -> ErasedArtifact {
          auto value = std::make_shared<const T>(build());
          const std::size_t bytes = sized_artifact<T>::bytes(*value);
          return ErasedArtifact{std::move(value), bytes};
        });
    return std::static_pointer_cast<const T>(std::move(erased));
  }

  /// Counters for one stage name ({0,0} for a never-seen stage).
  [[nodiscard]] StageStats stats(std::string_view stage) const;
  /// Counters summed over all stages.
  [[nodiscard]] StageStats totals() const;
  /// Number of cached artifacts.
  [[nodiscard]] std::size_t size() const;
  /// Byte-accounted size of every completed artifact currently resident.
  [[nodiscard]] std::size_t resident_bytes() const;
  /// The configured budget (0 = unlimited).
  [[nodiscard]] std::size_t budget_bytes() const noexcept {
    return budget_.bytes;
  }
  /// Entries evicted over the cache's lifetime (monotonic; clear() does
  /// not count as eviction).
  [[nodiscard]] std::uint64_t eviction_count() const;
  /// Bytes reclaimed by eviction over the cache's lifetime (monotonic).
  [[nodiscard]] std::uint64_t evicted_bytes() const;
  /// Drop every completed artifact and reset the visible hit/miss
  /// counters. Entries with a builder in flight are generation-tagged
  /// rather than erased: the running builder's result is handed to its
  /// caller but never republished, and its waiters rebuild against the
  /// post-clear table. The backing registry stays monotonic (counters
  /// never decrease, matching what a run recorder mirrors);
  /// stats()/totals() report deltas since the last clear().
  void clear();

 private:
  /// A type-erased artifact plus its sized_artifact byte estimate.
  struct ErasedArtifact {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
  };

  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    bool building = false;  ///< a builder is running for this key
    /// generation_ at claim time; a clear() during the build bumps the
    /// cache generation so the publish detects staleness.
    std::uint64_t generation = 0;
    std::string stage;  ///< stage name, for eviction counters
    /// Position in lru_ (valid iff in_lru). Only completed, non-building
    /// entries are LRU-linked — eviction can never remove an in-flight
    /// build.
    std::list<std::uint64_t>::iterator lru;
    bool in_lru = false;
  };

  /// Deferred counter mirror: (name, delta) pairs recorded while holding
  /// mutex_ and flushed into registry_ / the current obs recorder after
  /// it is released, so the cache lock never nests recorder locks.
  using PendingEvents = std::vector<std::pair<std::string, std::uint64_t>>;

  /// Fold the stage name into the key so two stages with equal content
  /// keys address different slots.
  [[nodiscard]] static std::uint64_t tag_key(std::string_view stage,
                                             std::uint64_t key) noexcept;

  std::shared_ptr<const void> get_or_build_erased(
      std::string_view stage, std::uint64_t tagged_key,
      const std::function<ErasedArtifact()>& build);

  /// Record a hit/miss into registry_ and mirror it to the current run
  /// recorder. Called with mutex_ NOT held.
  void count_event(std::string_view stage, bool hit);
  /// Flush deferred eviction/gauge events. Called with mutex_ NOT held.
  void flush_events(const PendingEvents& events);

  // --- locked helpers (caller holds mutex_) ------------------------------
  void touch_locked(Entry& entry);
  void insert_lru_locked(Entry& entry, std::uint64_t key);
  void publish_locked(Entry& entry, std::uint64_t key, std::string_view stage,
                      ErasedArtifact&& built);
  /// Evict LRU-tail entries until resident_bytes_ fits the budget,
  /// appending one eviction counter event per entry to `events`.
  void evict_over_budget_locked(PendingEvents& events);

  mutable std::mutex mutex_;
  std::condition_variable build_done_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  /// Completed entries, most recently used first.
  std::list<std::uint64_t> lru_;
  CacheBudget budget_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t evicted_bytes_ = 0;
  /// Bumped by clear(); in-flight builds claimed under an older
  /// generation publish to their caller only.
  std::uint64_t generation_ = 0;
  /// Hit/miss/eviction counters; see StageStats for the naming scheme.
  obs::MetricsRegistry registry_;
  /// Counter values captured at the last clear(); stats()/totals()
  /// subtract these so clear() resets the visible numbers without making
  /// the registry's counters non-monotonic.
  std::unordered_map<std::string, std::uint64_t> baseline_;
};

}  // namespace auditherm::core
