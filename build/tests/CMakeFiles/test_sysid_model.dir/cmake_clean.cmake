file(REMOVE_RECURSE
  "CMakeFiles/test_sysid_model.dir/test_sysid_model.cpp.o"
  "CMakeFiles/test_sysid_model.dir/test_sysid_model.cpp.o.d"
  "test_sysid_model"
  "test_sysid_model.pdb"
  "test_sysid_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysid_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
