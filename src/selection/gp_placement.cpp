#include "auditherm/selection/gp_placement.hpp"
#include <algorithm>

#include <limits>
#include <stdexcept>

#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/timeseries/trace_stats.hpp"

namespace auditherm::selection {

namespace {

/// Conditional variance sigma^2(y | S) = K_yy - K_yS K_SS^{-1} K_Sy.
double conditional_variance(const linalg::Matrix& k, std::size_t y,
                            const std::vector<std::size_t>& s) {
  if (s.empty()) return k(y, y);
  linalg::Matrix kss(s.size(), s.size());
  linalg::Vector ksy(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    ksy[i] = k(s[i], y);
    for (std::size_t j = 0; j < s.size(); ++j) kss(i, j) = k(s[i], s[j]);
  }
  const linalg::CholeskyDecomposition chol(kss);
  const linalg::Vector alpha = chol.solve(ksy);
  double quad = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) quad += ksy[i] * alpha[i];
  return k(y, y) - quad;
}

}  // namespace

std::vector<timeseries::ChannelId> gp_mutual_information_selection(
    const timeseries::TraceView& training,
    const std::vector<timeseries::ChannelId>& candidates, std::size_t count,
    const GpPlacementOptions& options) {
  if (count == 0 || count > candidates.size()) {
    throw std::invalid_argument(
        "gp_mutual_information_selection: count outside [1, #candidates]");
  }
  // Estimate the GP covariance on rows where every candidate is valid:
  // a complete-row estimate is positive semidefinite by construction,
  // which pairwise-complete estimates are not.
  auto sub = training.select_channels(candidates);
  const auto complete = timeseries::rows_with_all_valid(sub);
  std::size_t n_complete = 0;
  for (bool b : complete) n_complete += b ? 1 : 0;
  if (n_complete > candidates.size() + 1) {
    sub = sub.filter_rows(complete);
  }
  linalg::Matrix k = timeseries::covariance_matrix(sub);
  double max_diag = 0.0;
  for (std::size_t i = 0; i < k.rows(); ++i) {
    max_diag = std::max(max_diag, k(i, i));
  }
  const double jitter = options.jitter * std::max(max_diag, 1.0);
  for (std::size_t i = 0; i < k.rows(); ++i) k(i, i) += jitter;

  const std::size_t n = candidates.size();
  std::vector<bool> selected(n, false);
  std::vector<std::size_t> a;  // selected index set

  for (std::size_t step = 0; step < count; ++step) {
    double best_score = -std::numeric_limits<double>::infinity();
    std::size_t best_y = n;
    for (std::size_t y = 0; y < n; ++y) {
      if (selected[y]) continue;
      std::vector<std::size_t> rest;  // V \ A \ {y}
      rest.reserve(n - a.size() - 1);
      for (std::size_t j = 0; j < n; ++j) {
        if (j != y && !selected[j]) rest.push_back(j);
      }
      const double numer = conditional_variance(k, y, a);
      const double denom =
          rest.empty() ? 1.0 : conditional_variance(k, y, rest);
      const double score = numer / std::max(denom, 1e-12);
      if (score > best_score) {
        best_score = score;
        best_y = y;
      }
    }
    selected[best_y] = true;
    a.push_back(best_y);
  }

  std::vector<timeseries::ChannelId> out;
  out.reserve(count);
  for (std::size_t idx : a) out.push_back(candidates[idx]);
  return out;
}

}  // namespace auditherm::selection
