// Property tests for the CSR sparse-matrix layer: dense->CSR->dense
// round-trips must be bitwise, SpMV must match the dense matvec to 1e-12
// over ragged / empty-row / duplicate-pattern shapes, raw-array
// construction must reject every invariant violation, and the row-parallel
// SpMV must be bitwise identical at 1, 2, 4, and 8 threads.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "auditherm/core/parallel.hpp"
#include "auditherm/linalg/matrix.hpp"
#include "auditherm/linalg/sparse.hpp"

namespace core = auditherm::core;
namespace linalg = auditherm::linalg;
using linalg::CsrMatrix;
using linalg::Matrix;
using linalg::Vector;

namespace {

/// Random matrix with roughly `density` nonzeros; rows in `empty_rows`
/// are left all-zero to exercise the zero-length row_ptr spans.
Matrix random_sparse(std::size_t rows, std::size_t cols, double density,
                     std::uint64_t seed,
                     const std::vector<std::size_t>& empty_rows = {}) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::normal_distribution<double> value(0.0, 2.0);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    bool skip = false;
    for (const std::size_t e : empty_rows) skip = skip || e == i;
    if (skip) continue;
    for (std::size_t j = 0; j < cols; ++j) {
      if (unit(rng) < density) m(i, j) = value(rng);
    }
  }
  return m;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Vector v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Round-trip and shape properties.
// ---------------------------------------------------------------------------

TEST(CsrMatrix, RoundTripIsBitwise) {
  const struct {
    std::size_t rows, cols;
    double density;
  } shapes[] = {{1, 1, 1.0},  {5, 3, 0.4},  {3, 5, 0.4},   {17, 17, 0.1},
                {40, 7, 0.3}, {7, 40, 0.3}, {64, 64, 0.05}, {10, 10, 0.0},
                {1, 50, 0.5}, {50, 1, 0.5}};
  std::uint64_t seed = 100;
  for (const auto& s : shapes) {
    const auto dense = random_sparse(s.rows, s.cols, s.density, seed++);
    const auto csr = CsrMatrix::from_dense(dense);
    EXPECT_EQ(csr.rows(), s.rows);
    EXPECT_EQ(csr.cols(), s.cols);
    // Bitwise: operator== compares the raw double storage.
    EXPECT_EQ(csr.to_dense(), dense)
        << s.rows << "x" << s.cols << " density " << s.density;
    // nnz matches a direct count of the dense nonzeros.
    std::size_t nonzeros = 0;
    for (std::size_t i = 0; i < s.rows; ++i)
      for (std::size_t j = 0; j < s.cols; ++j)
        if (dense(i, j) != 0.0) ++nonzeros;
    EXPECT_EQ(csr.nnz(), nonzeros);
  }
}

TEST(CsrMatrix, EmptyRowsRoundTrip) {
  const auto dense = random_sparse(12, 9, 0.5, 7, {0, 3, 4, 11});
  const auto csr = CsrMatrix::from_dense(dense);
  EXPECT_EQ(csr.to_dense(), dense);
  // The empty rows occupy zero-length spans.
  EXPECT_EQ(csr.row_ptr()[1] - csr.row_ptr()[0], 0u);
  EXPECT_EQ(csr.row_ptr()[4] - csr.row_ptr()[3], 0u);
  EXPECT_EQ(csr.row_ptr()[12] - csr.row_ptr()[11], 0u);
}

TEST(CsrMatrix, DropToleranceFilters) {
  Matrix a(2, 3);
  a(0, 0) = 0.5;
  a(0, 2) = 1e-14;
  a(1, 1) = -2.0;
  const auto kept = CsrMatrix::from_dense(a);
  EXPECT_EQ(kept.nnz(), 3u);
  const auto filtered = CsrMatrix::from_dense(a, 1e-12);
  EXPECT_EQ(filtered.nnz(), 2u);
  EXPECT_EQ(filtered.to_dense()(0, 2), 0.0);
  EXPECT_EQ(filtered.to_dense()(0, 0), 0.5);
}

TEST(CsrMatrix, DefaultIsEmpty) {
  const CsrMatrix empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.nnz(), 0u);
  EXPECT_EQ(empty.to_dense(), Matrix());
}

// ---------------------------------------------------------------------------
// Raw-array construction: invariants enforced, duplicates allowed.
// ---------------------------------------------------------------------------

TEST(CsrMatrix, RawConstructionValidates) {
  // Valid: 2x3, entries (0,1)=2 and (1,0)=-1, (1,2)=4.
  const CsrMatrix ok(2, 3, {0, 1, 3}, {1, 0, 2}, {2.0, -1.0, 4.0});
  EXPECT_EQ(ok.nnz(), 3u);
  EXPECT_EQ(ok.to_dense()(0, 1), 2.0);
  EXPECT_EQ(ok.to_dense()(1, 2), 4.0);

  // row_ptr wrong length.
  EXPECT_THROW(CsrMatrix(2, 3, {0, 1}, {1}, {2.0}), std::invalid_argument);
  // row_ptr not starting at 0.
  EXPECT_THROW(CsrMatrix(2, 3, {1, 1, 1}, {1}, {2.0}), std::invalid_argument);
  // row_ptr end != nnz.
  EXPECT_THROW(CsrMatrix(2, 3, {0, 1, 2}, {1}, {2.0}), std::invalid_argument);
  // row_ptr decreasing.
  EXPECT_THROW(CsrMatrix(2, 3, {0, 2, 1}, {1, 2}, {2.0, 3.0}),
               std::invalid_argument);
  // col_idx / values length mismatch.
  EXPECT_THROW(CsrMatrix(2, 3, {0, 1, 2}, {1, 2}, {2.0}),
               std::invalid_argument);
  // Column out of range.
  EXPECT_THROW(CsrMatrix(2, 3, {0, 1, 1}, {3}, {2.0}), std::invalid_argument);
  // Columns decreasing within a row.
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {2, 0}, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(CsrMatrix, DuplicateColumnsActAdditively) {
  // Row 0 stores column 1 twice: triplet-style assembly.
  const CsrMatrix dup(2, 2, {0, 2, 3}, {1, 1, 0}, {1.5, 2.5, -1.0});
  EXPECT_EQ(dup.nnz(), 3u);
  const auto dense = dup.to_dense();
  EXPECT_EQ(dense(0, 1), 4.0);
  EXPECT_EQ(dense(1, 0), -1.0);

  // SpMV sees the duplicates in storage order too.
  const Vector y = dup * Vector{10.0, 100.0};
  EXPECT_EQ(y[0], 1.5 * 100.0 + 2.5 * 100.0);
  EXPECT_EQ(y[1], -10.0);
}

// ---------------------------------------------------------------------------
// SpMV vs the dense matvec.
// ---------------------------------------------------------------------------

TEST(CsrMatrix, SpmvMatchesDenseMatvec) {
  const struct {
    std::size_t rows, cols;
    double density;
  } shapes[] = {{1, 1, 1.0},   {6, 4, 0.5},   {4, 6, 0.5},  {33, 65, 0.2},
                {65, 33, 0.2}, {128, 128, 0.05}, {9, 9, 1.0}, {50, 50, 0.02}};
  std::uint64_t seed = 300;
  for (const auto& s : shapes) {
    const auto dense = random_sparse(s.rows, s.cols, s.density, seed++);
    const auto csr = CsrMatrix::from_dense(dense);
    const auto x = random_vector(s.cols, seed++);
    const Vector expected = dense * x;
    const Vector got = csr * x;
    ASSERT_EQ(got.size(), expected.size());
    double scale = 1.0;
    for (const double v : expected) scale = std::max(scale, std::abs(v));
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], expected[i], 1e-12 * scale)
          << s.rows << "x" << s.cols << " row " << i;
    }
  }
}

TEST(CsrMatrix, SpmvEmptyRowsGiveExactZero) {
  const auto dense = random_sparse(10, 8, 0.6, 17, {2, 7});
  const auto csr = CsrMatrix::from_dense(dense);
  const Vector y = csr * random_vector(8, 18);
  EXPECT_EQ(y[2], 0.0);
  EXPECT_EQ(y[7], 0.0);
}

TEST(CsrMatrix, SpmvValidatesLength) {
  const auto csr = CsrMatrix::from_dense(random_sparse(4, 5, 0.5, 9));
  EXPECT_THROW((void)csr.multiply(Vector(4, 1.0)), std::invalid_argument);
  EXPECT_NO_THROW((void)csr.multiply(Vector(5, 1.0)));
}

// ---------------------------------------------------------------------------
// Thread-count bitwise determinism.
// ---------------------------------------------------------------------------

TEST(CsrMatrix, SpmvBitwiseStableAcrossThreads) {
  // Large enough that the row-parallel kernel actually splits work.
  const auto dense = random_sparse(600, 600, 0.02, 42);
  const auto csr = CsrMatrix::from_dense(dense);
  const auto x = random_vector(600, 43);
  Vector serial;
  {
    core::ThreadCountScope scope(1);
    serial = csr * x;
  }
  for (std::size_t threads : {2u, 4u, 8u}) {
    core::ThreadCountScope scope(threads);
    const Vector y = csr * x;
    EXPECT_EQ(y, serial) << "threads=" << threads;
  }
}

TEST(CsrMatrix, FromDenseBitwiseStableAcrossThreads) {
  // Conversion is serial by construction, but pin it anyway: the CSR
  // arrays feeding every downstream stage key must not depend on the
  // thread count.
  const auto dense = random_sparse(200, 150, 0.1, 77);
  CsrMatrix serial;
  {
    core::ThreadCountScope scope(1);
    serial = CsrMatrix::from_dense(dense);
  }
  for (std::size_t threads : {2u, 4u, 8u}) {
    core::ThreadCountScope scope(threads);
    const auto csr = CsrMatrix::from_dense(dense);
    EXPECT_EQ(csr.row_ptr(), serial.row_ptr()) << "threads=" << threads;
    EXPECT_EQ(csr.col_idx(), serial.col_idx()) << "threads=" << threads;
    EXPECT_EQ(csr.values(), serial.values()) << "threads=" << threads;
  }
}
