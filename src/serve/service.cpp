#include "auditherm/serve/service.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "auditherm/core/cli.hpp"
#include "auditherm/hvac/schedule.hpp"
#include "auditherm/obs/trace_span.hpp"
#include "auditherm/sim/dataset.hpp"
#include "auditherm/timeseries/csv_io.hpp"

namespace auditherm::serve {

namespace {

/// printf-style accumulation into a string. The report uses the exact
/// format strings the one-shot CLI used to printf to stdout — same
/// formats, same snprintf engine, hence the same bytes.
class Report {
 public:
  [[gnu::format(printf, 2, 3)]] void append(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    char stack[512];
    std::va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(stack, sizeof(stack), fmt, args);
    va_end(args);
    if (n < 0) {
      va_end(copy);
      return;
    }
    if (static_cast<std::size_t>(n) < sizeof(stack)) {
      text_.append(stack, static_cast<std::size_t>(n));
    } else {
      std::string big(static_cast<std::size_t>(n) + 1, '\0');
      std::vsnprintf(big.data(), big.size(), fmt, copy);
      text_.append(big.data(), static_cast<std::size_t>(n));
    }
    va_end(copy);
  }

  [[nodiscard]] std::string take() { return std::move(text_); }

 private:
  std::string text_;
};

long integer_field(const json::Value& v, const std::string& key) {
  if (!v.is_number() || v.number != std::floor(v.number)) {
    throw std::invalid_argument("analyze request: '" + key +
                                "' must be an integer");
  }
  return static_cast<long>(v.number);
}

std::string string_field(const json::Value& v, const std::string& key) {
  if (!v.is_string()) {
    throw std::invalid_argument("analyze request: '" + key +
                                "' must be a string");
  }
  return v.string;
}

/// Decode the nested "inputs" object. Errors carry the full key path
/// (inputs.<key>) so a client sees exactly which field is wrong.
void decode_inputs(const json::Value& v, AnalyzeRequest& request) {
  if (!v.is_object()) {
    throw std::invalid_argument(
        "analyze request: 'inputs' must be an object");
  }
  for (const auto& [key, value] : v.object) {
    if (key == "occupancy") {
      if (!value.is_string()) {
        throw std::invalid_argument(
            "analyze request: inputs.occupancy: must be a string");
      }
      if (value.string != "truth" && value.string != "estimated" &&
          value.string != "schedule") {
        throw std::invalid_argument(
            "analyze request: inputs.occupancy: unknown source '" +
            value.string + "'");
      }
      request.occupancy = value.string;
    } else if (key == "round") {
      if (!value.is_bool()) {
        throw std::invalid_argument(
            "analyze request: inputs.round: must be a boolean");
      }
      request.occupancy_round = value.boolean;
    } else if (key == "clamp_max") {
      if (!value.is_number()) {
        throw std::invalid_argument(
            "analyze request: inputs.clamp_max: must be a number");
      }
      request.occupancy_clamp = value.number;
    } else {
      throw std::invalid_argument("analyze request: unknown key 'inputs." +
                                  key + "'");
    }
  }
}

}  // namespace

AnalyzeRequest request_from_json(const json::Value& body) {
  if (!body.is_object()) {
    throw std::invalid_argument("analyze request: body must be a JSON object");
  }
  AnalyzeRequest request;
  for (const auto& [key, value] : body.object) {
    if (key == "data") {
      request.data = string_field(value, key);
    } else if (key == "metric") {
      request.metric = string_field(value, key);
    } else if (key == "clusters") {
      request.clusters = integer_field(value, key);
    } else if (key == "order") {
      request.order = integer_field(value, key);
    } else if (key == "per_cluster") {
      request.per_cluster = integer_field(value, key);
    } else if (key == "sweep") {
      request.sweep = integer_field(value, key);
    } else if (key == "eigen") {
      request.eigen = string_field(value, key);
    } else if (key == "graph") {
      request.graph = string_field(value, key);
    } else if (key == "knn") {
      request.knn = integer_field(value, key);
    } else if (key == "stream") {
      request.stream = integer_field(value, key);
    } else if (key == "inputs") {
      decode_inputs(value, request);
    } else {
      throw std::invalid_argument("analyze request: unknown key '" + key +
                                  "'");
    }
  }
  if (request.data.empty()) {
    throw std::invalid_argument("analyze request: 'data' is required");
  }
  return request;
}

const char* strategy_name(core::SelectionStrategy strategy) {
  switch (strategy) {
    case core::SelectionStrategy::kStratifiedNearMean: return "near-mean";
    case core::SelectionStrategy::kStratifiedRandom: return "stratified-random";
    case core::SelectionStrategy::kSimpleRandom: return "simple-random";
    case core::SelectionStrategy::kThermostats: return "thermostats";
    case core::SelectionStrategy::kGaussianProcess: return "gaussian-process";
  }
  return "?";
}

ChannelSets classify_channels(const timeseries::MultiTrace& trace) {
  ChannelSets sets;
  std::vector<timeseries::ChannelId> flows;
  for (auto id : trace.channels()) {
    if (id == 40 || id == 41) {
      sets.thermostats.push_back(id);
    } else if (id < 100 || id >= 200) {
      sets.sensors.push_back(id);
    } else if (id >= sim::DatasetChannels::kVavBase &&
               id < sim::DatasetChannels::kOccupancy) {
      flows.push_back(id);
    }
  }
  sets.inputs = flows;
  for (auto id : {sim::DatasetChannels::kOccupancy,
                  sim::DatasetChannels::kLighting,
                  sim::DatasetChannels::kAmbient}) {
    if (trace.channel_index(id)) sets.inputs.push_back(id);
  }
  if (sets.sensors.size() < 2 || sets.inputs.size() < 2) {
    throw std::runtime_error(
        "analyze: trace lacks sensor (<100) or input (>=101) channels");
  }
  return sets;
}

sysid::InputPlan input_plan_for(const AnalyzeRequest& request,
                                const ChannelSets& sets) {
  if (!request.occupancy.empty() && request.occupancy != "truth" &&
      request.occupancy != "estimated" && request.occupancy != "schedule") {
    throw core::cli::UsageError("analyze: unknown --occupancy value '" +
                                request.occupancy + "'");
  }
  sysid::InputPlan plan;
  plan.slots.reserve(sets.inputs.size());
  bool replaced = false;
  for (auto id : sets.inputs) {
    if (id == sim::DatasetChannels::kOccupancy &&
        request.occupancy == "estimated") {
      replaced = true;
      sysid::Co2Channels co2;
      co2.vav_flows.clear();
      for (auto flow : sets.inputs) {
        if (flow >= sim::DatasetChannels::kVavBase &&
            flow < sim::DatasetChannels::kOccupancy) {
          co2.vav_flows.push_back(flow);
        }
      }
      auto slot = sysid::InputSlot::co2_estimated(std::move(co2));
      slot.round_to_integer = request.occupancy_round;
      slot.clamp_max = request.occupancy_clamp;
      plan.slots.push_back(std::move(slot));
    } else if (id == sim::DatasetChannels::kOccupancy &&
               request.occupancy == "schedule") {
      // Two-level prior scaled to a nominal full house; identification
      // absorbs the scale, the schedule carries the timing.
      replaced = true;
      plan.slots.push_back(sysid::InputSlot::schedule_prior(
          hvac::Schedule{}, 100.0, 0.0));
    } else {
      plan.slots.push_back(sysid::InputSlot::ground_truth(id));
    }
  }
  if (!replaced && !request.occupancy.empty() && request.occupancy != "truth") {
    throw std::runtime_error(
        "analyze: trace has no occupancy channel to replace with --occupancy " +
        request.occupancy);
  }
  return plan;
}

AnalysisService::AnalysisService(ServiceConfig config)
    : config_(config), cache_(config.cache_budget) {}

std::pair<std::shared_ptr<const timeseries::MultiTrace>, std::uint64_t>
AnalysisService::load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("analyze: could not read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  core::StageKeyHasher h;
  h.add(std::string_view(bytes));
  const std::uint64_t raw_hash = h.value();

  const auto parse = [&] {
    std::istringstream stream(bytes);
    return timeseries::read_csv(stream);
  };
  if (!config_.cache_enabled) {
    return {std::make_shared<const timeseries::MultiTrace>(parse()),
            raw_hash};
  }
  return {cache_.get_or_build<timeseries::MultiTrace>("trace_load", raw_hash,
                                                      parse),
          raw_hash};
}

core::PipelineConfig AnalysisService::make_config(
    const AnalyzeRequest& request) {
  namespace cli = core::cli;
  core::PipelineConfig config;
  if (!request.metric.empty()) {
    // Matches the historical CLI decode: anything but "euclidean" selects
    // the (default) correlation metric.
    config.similarity.metric = request.metric == "euclidean"
                                   ? clustering::SimilarityMetric::kEuclidean
                                   : clustering::SimilarityMetric::kCorrelation;
  }
  config.spectral.cluster_count = static_cast<std::size_t>(request.clusters);
  if (!request.eigen.empty()) {
    if (request.eigen == "jacobi") {
      config.spectral.eigen_method = linalg::EigenMethod::kJacobi;
    } else if (request.eigen == "tridiagonal") {
      config.spectral.eigen_method = linalg::EigenMethod::kTridiagonal;
    } else if (request.eigen == "lanczos") {
      config.spectral.eigen_method = linalg::EigenMethod::kLanczos;
    } else if (request.eigen == "auto") {
      config.spectral.eigen_method = linalg::EigenMethod::kAuto;
    } else {
      throw cli::UsageError("analyze: unknown --eigen value '" +
                            request.eigen + "'");
    }
  }
  if (!request.graph.empty()) {
    if (request.graph == "epsilon") {
      config.similarity.sparsification =
          clustering::GraphSparsification::kEpsilon;
    } else if (request.graph == "knn") {
      config.similarity.sparsification = clustering::GraphSparsification::kKnn;
    } else {
      throw cli::UsageError("analyze: unknown --graph value '" +
                            request.graph + "'");
    }
  }
  if (request.knn > 0) {
    config.similarity.knn_k = static_cast<std::size_t>(request.knn);
  }
  config.order = request.order == 1 ? sysid::ModelOrder::kFirst
                                    : sysid::ModelOrder::kSecond;
  config.sensors_per_cluster = static_cast<std::size_t>(request.per_cluster);
  return config;
}

std::uint64_t AnalysisService::prefix_key_for(std::uint64_t raw_hash,
                                              const AnalyzeRequest& request) {
  // Fold exactly the request fields prepare() consumes: trace bytes plus
  // the Step-1 options. Order, per_cluster, and sweep select/fit only —
  // requests differing in them still share one prepared context.
  const core::PipelineConfig config = make_config(request);
  core::StageKeyHasher h;
  h.add(raw_hash);
  h.add(static_cast<std::uint64_t>(config.similarity.metric));
  h.add(static_cast<std::uint64_t>(config.similarity.sparsification));
  h.add(static_cast<std::uint64_t>(config.similarity.knn_k));
  h.add(static_cast<std::uint64_t>(config.spectral.cluster_count));
  h.add(static_cast<std::uint64_t>(config.spectral.eigen_method));
  // Input plan: "" and "truth" hash identically (both the ground-truth
  // path); estimated/schedule split off their own prepared contexts so a
  // truth joiner can never receive plan-derived artifacts.
  const std::uint64_t source = request.occupancy == "estimated" ? 1
                               : request.occupancy == "schedule" ? 2
                                                                 : 0;
  h.add(source);
  if (source != 0) {
    h.add(request.occupancy_round);
    h.add(request.occupancy_clamp);
  }
  return h.value();
}

std::uint64_t AnalysisService::prefix_key(const AnalyzeRequest& request) {
  return prefix_key_for(load_trace(request.data).second, request);
}

std::shared_ptr<const AnalysisService::PreparedContext>
AnalysisService::prepare_context(
    const AnalyzeRequest& request,
    std::shared_ptr<const timeseries::MultiTrace> trace,
    std::uint64_t raw_hash) {
  const std::uint64_t key = prefix_key_for(raw_hash, request);
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(batch_mutex_);
    for (;;) {
      BatchSlot& slot = batches_[key];
      if (auto live = slot.ctx.lock()) {
        lock.unlock();
        obs::add_counter("serve.batch.join");
        return live;
      }
      if (!slot.building) {
        slot.building = true;
        leader = true;
        break;
      }
      batch_cv_.wait(lock);
    }
    // Opportunistic pruning: slots are a dozen bytes, but a daemon that
    // sees many distinct traces should not grow the map forever.
    if (batches_.size() > 64) {
      for (auto it = batches_.begin(); it != batches_.end();) {
        if (!it->second.building && it->second.ctx.expired() &&
            it->first != key) {
          it = batches_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  auto ctx = std::make_shared<PreparedContext>();
  try {
    ctx->trace = std::move(trace);
    ctx->raw_hash = raw_hash;
    ctx->sets = classify_channels(*ctx->trace);
    auto required = ctx->sets.sensors;
    required.insert(required.end(), ctx->sets.thermostats.begin(),
                    ctx->sets.thermostats.end());
    required.insert(required.end(), ctx->sets.inputs.begin(),
                    ctx->sets.inputs.end());
    const hvac::Schedule schedule;
    ctx->split = core::split_dataset(*ctx->trace, required, schedule,
                                     hvac::Mode::kOccupied);
    const core::ThermalModelingPipeline pipeline(make_config(request));
    // A non-truth occupancy source rides in as an input plan; the
    // ground-truth default passes none, keeping that path bit for bit.
    const bool planned =
        request.occupancy == "estimated" || request.occupancy == "schedule";
    sysid::InputPlan plan;
    if (planned) plan = input_plan_for(request, ctx->sets);
    ctx->artifacts = pipeline.prepare(
        *ctx->trace, schedule, ctx->split, ctx->sets.sensors,
        ctx->sets.inputs, config_.cache_enabled ? &cache_ : nullptr,
        planned ? &plan : nullptr);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(batch_mutex_);
      batches_[key].building = false;
    }
    batch_cv_.notify_all();
    throw;
  }

  {
    const std::lock_guard<std::mutex> lock(batch_mutex_);
    BatchSlot& slot = batches_[key];
    slot.building = false;
    slot.ctx = ctx;
  }
  batch_cv_.notify_all();
  if (leader) obs::add_counter("serve.batch.lead");
  return ctx;
}

std::string AnalysisService::analyze(const AnalyzeRequest& request) {
  obs::add_counter("serve.request");
  if (!request.occupancy.empty() && request.occupancy != "truth" &&
      request.occupancy != "estimated" && request.occupancy != "schedule") {
    throw core::cli::UsageError("analyze: unknown --occupancy value '" +
                                request.occupancy + "'");
  }
  Report report;
  report.append("loading %s...\n", request.data.c_str());
  auto [trace, raw_hash] = load_trace(request.data);
  const auto ctx = prepare_context(request, std::move(trace), raw_hash);
  const auto& sets = ctx->sets;
  report.append("channels: %zu sensors, %zu thermostats, %zu inputs; %zu "
                "samples at %lld-minute steps\n",
                sets.sensors.size(), sets.thermostats.size(),
                sets.inputs.size(), ctx->trace->size(),
                static_cast<long long>(ctx->trace->grid().step()));
  report.append("usable days: %zu (train %zu / validate %zu)\n",
                ctx->split.usable_days.size(), ctx->split.train_days.size(),
                ctx->split.validation_days.size());
  if (request.occupancy == "estimated") {
    report.append(
        "occupancy input: estimated from CO2 mass balance "
        "(calibrated on the training split)\n");
  } else if (request.occupancy == "schedule") {
    report.append("occupancy input: two-level schedule prior\n");
  }

  const core::PipelineConfig config = make_config(request);
  const core::ThermalModelingPipeline pipeline(config);
  const hvac::Schedule schedule;
  core::RunOptions run_options;
  run_options.thermostat_ids = sets.thermostats;
  run_options.artifacts = &ctx->artifacts;
  if (config_.cache_enabled) run_options.cache = &cache_;
  const auto result =
      pipeline.run(*ctx->trace, schedule, ctx->split, sets.sensors,
                   sets.inputs, run_options);

  report.append("\nclusters (%zu):\n", result.clustering.cluster_count);
  const auto clusters = result.clustering.clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    report.append("  cluster %zu:", c + 1);
    for (auto id : clusters[c]) report.append(" %d", id);
    report.append("   -> keep:");
    for (auto id : result.selection.per_cluster[c]) report.append(" %d", id);
    report.append("\n");
  }
  report.append("\nreduced %s-order model over %zu sensors:\n",
                config.order == sysid::ModelOrder::kFirst ? "first" : "second",
                result.reduced_model.state_count());
  report.append("  spectral radius: %.4f\n",
                result.reduced_model.spectral_radius_bound());
  report.append("  validation pooled RMS (own sensors): %.3f degC\n",
                result.reduced_eval.pooled_rms);
  report.append("  cluster-mean 99th-pct error: %.3f degC\n",
                result.cluster_mean_errors.percentile(99.0));

  if (request.stream != 0) {
    if (request.stream < -1) {
      throw core::cli::UsageError(
          "analyze: --stream expects a window length in rows, 0 (off), or "
          "-1 (growing window)");
    }
    core::StreamingRunConfig stream_config;
    stream_config.order = config.order;
    stream_config.streaming.estimation = config.estimation;
    stream_config.streaming.window_rows =
        request.stream > 0 ? static_cast<std::size_t>(request.stream) : 0;
    // Stream the reduced model's own channels over the full trace (the
    // plan-augmented view when an input plan is in play — estimated
    // inputs are pushed row-at-a-time like any other column): the online
    // counterpart of the batch Step-3 fit above.
    const timeseries::TraceView stream_view =
        ctx->artifacts.inputs != nullptr
            ? ctx->artifacts.inputs->augment(*ctx->trace)
            : timeseries::TraceView(*ctx->trace);
    const auto streamed = core::run_streaming_identification(
        stream_view, result.reduced_model.state_channels(),
        result.reduced_model.input_channels(), stream_config);
    if (request.stream > 0) {
      report.append("\nstreaming identification (window %ld rows):\n",
                    request.stream);
    } else {
      report.append("\nstreaming identification (growing window):\n");
    }
    report.append(
        "  rows %zu, window transitions %zu, qr updates %zu, "
        "downdates %zu, re-anchors %zu\n",
        streamed.stats.rows_pushed, streamed.window_transitions,
        streamed.stats.transitions, streamed.stats.downdates,
        streamed.stats.reanchors);
    if (streamed.has_model) {
      report.append("  final-window spectral radius: %.4f, AIC %.1f\n",
                    streamed.model.spectral_radius_bound(), streamed.aic);
    } else {
      report.append("  final window below the minimum transition count\n");
    }
    report.append("  drift events: %zu", streamed.drift_events.size());
    for (const auto& event : streamed.drift_events) {
      report.append("  [row %zu, %+.0f sigma]", event.row,
                    event.direction * event.statistic);
    }
    report.append("\n");
  }

  if (request.sweep > 0) {
    std::vector<core::SweepCase> cases;
    for (long s = 1; s <= request.sweep; ++s) {
      const auto seed = static_cast<std::uint64_t>(s);
      cases.push_back({core::SelectionStrategy::kStratifiedNearMean, seed});
      cases.push_back({core::SelectionStrategy::kStratifiedRandom, seed});
      cases.push_back({core::SelectionStrategy::kSimpleRandom, seed});
    }
    if (!sets.thermostats.empty()) {
      cases.push_back({core::SelectionStrategy::kThermostats, 1});
    }
    const auto sweep = core::run_strategy_sweep(
        config, cases, *ctx->trace, schedule, ctx->split, sets.sensors,
        sets.inputs, run_options);
    report.append("\nstrategy sweep (%zu cases, %ld seeds):\n", cases.size(),
                  request.sweep);
    for (std::size_t i = 0; i < cases.size(); ++i) {
      report.append("  %-22s seed %-3llu  pooled RMS %.3f  p99 %.3f\n",
                    strategy_name(cases[i].strategy),
                    static_cast<unsigned long long>(cases[i].seed),
                    sweep[i].reduced_eval.pooled_rms,
                    sweep[i].cluster_mean_errors.percentile(99.0));
    }
  }
  return report.take();
}

}  // namespace auditherm::serve
