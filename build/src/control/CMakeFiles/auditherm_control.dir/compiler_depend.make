# Empty compiler generated dependencies file for auditherm_control.
# This may be replaced when dependencies are built.
