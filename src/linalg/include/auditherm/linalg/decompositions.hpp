#pragma once

/// \file decompositions.hpp
/// Matrix factorizations: Householder QR, Cholesky, partial-pivot LU, and a
/// Jacobi eigensolver for symmetric matrices.
///
/// These are the direct solvers behind the paper's convex least-squares
/// identification problem (eq. 4) and the spectral-clustering Laplacian
/// eigendecomposition (Section V).

#include <cstddef>

#include "auditherm/linalg/matrix.hpp"

namespace auditherm::linalg {

/// Householder QR factorization A = Q R of an m x n matrix with m >= n.
///
/// Stores the Householder reflectors compactly; Q is never formed unless
/// requested. The main consumer is least-squares solving.
class QrDecomposition {
 public:
  /// Factorize `a` (m x n, m >= n). Throws std::invalid_argument otherwise.
  explicit QrDecomposition(const Matrix& a);

  /// Minimum-residual solution x of A x = b (b has m entries).
  /// Throws std::domain_error if A is numerically rank-deficient.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Column-wise least-squares solve for multiple right-hand sides.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// The n x n upper-triangular factor R.
  [[nodiscard]] Matrix r() const;

  /// The m x n thin orthonormal factor Q.
  [[nodiscard]] Matrix thin_q() const;

  /// True when some |R_ii| is below `tol * max_j |R_jj|`.
  [[nodiscard]] bool rank_deficient(double tol = 1e-12) const noexcept;

 private:
  void apply_reflectors(Vector& b) const;  // b := Q^T b (length m)

  std::size_t m_ = 0;
  std::size_t n_ = 0;
  Matrix qr_;     // packed reflectors below diagonal, R on/above diagonal
  Vector rdiag_;  // diagonal of R
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
class CholeskyDecomposition {
 public:
  /// Factorize `a`; throws std::domain_error when `a` is not (numerically)
  /// positive definite, std::invalid_argument when not square.
  explicit CholeskyDecomposition(const Matrix& a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve A X = B column-wise.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Lower-triangular factor L.
  [[nodiscard]] const Matrix& l() const noexcept { return l_; }

  /// log(det A) via 2 * sum(log L_ii); useful for GP marginal likelihoods.
  [[nodiscard]] double log_determinant() const noexcept;

 private:
  Matrix l_;
};

/// Partial-pivoting LU factorization P A = L U for square systems.
class LuDecomposition {
 public:
  /// Factorize square `a`; throws std::invalid_argument when not square,
  /// std::domain_error when singular to working precision.
  explicit LuDecomposition(const Matrix& a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve A X = B column-wise.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// Determinant of A (sign-corrected for row swaps).
  [[nodiscard]] double determinant() const noexcept;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int pivot_sign_ = 1;
};

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Robust and simple; perfectly adequate for the <=100-dimensional
/// Laplacians and state matrices this library works with.
struct SymmetricEigen {
  Vector eigenvalues;   ///< ascending order
  Matrix eigenvectors;  ///< column j pairs with eigenvalues[j]; orthonormal
};

/// Compute all eigenpairs of symmetric `a`.
///
/// `a` is symmetrized as (A + A^T)/2 first, so tiny asymmetries from
/// accumulated roundoff are tolerated. Throws std::invalid_argument when
/// `a` is not square. Converges or throws std::domain_error after
/// `max_sweeps` Jacobi sweeps (default is generous).
[[nodiscard]] SymmetricEigen eigen_symmetric(const Matrix& a,
                                             std::size_t max_sweeps = 100);

}  // namespace auditherm::linalg
