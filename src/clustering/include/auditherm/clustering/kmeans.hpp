#pragma once

/// \file kmeans.hpp
/// k-means with k-means++ seeding on the rows of a matrix. Used as the
/// final grouping step of spectral clustering (on the Laplacian
/// eigenvector embedding), and usable standalone.

#include <cstdint>
#include <vector>

#include "auditherm/linalg/matrix.hpp"

namespace auditherm::clustering {

/// k-means configuration.
struct KMeansOptions {
  std::size_t max_iterations = 100;
  std::size_t restarts = 10;  ///< independent k-means++ seedings; best kept
  std::uint64_t seed = 1;
};

/// k-means result.
struct KMeansResult {
  std::vector<std::size_t> labels;  ///< cluster index per row, in [0, k)
  linalg::Matrix centroids;         ///< k x dims
  double inertia = 0.0;             ///< sum of squared distances to centroid
  std::size_t iterations = 0;       ///< iterations of the best restart
};

/// Cluster the rows of `points` into k groups.
///
/// Guarantees every cluster is non-empty (empty clusters are reseeded from
/// the farthest point). Throws std::invalid_argument when k == 0 or
/// k > #rows or points is empty.
[[nodiscard]] KMeansResult kmeans(const linalg::Matrix& points, std::size_t k,
                                  const KMeansOptions& options = {});

}  // namespace auditherm::clustering
