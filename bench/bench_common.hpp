#pragma once

/// \file bench_common.hpp
/// Shared setup for the reproduction benches: the standard 98-day dataset
/// (the paper's Jan 31 - May 8 trace), its train/validation split, and
/// small printing helpers. Every bench regenerating a paper table or
/// figure starts from make_standard_dataset() so results are comparable
/// across benches.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "auditherm/auditherm.hpp"

namespace bench {

/// Environment-driven observability for bench mains, mirroring the CLI's
/// --metrics-out / --trace flags:
///   AUDITHERM_METRICS_OUT=FILE  write the run's metrics + spans as JSON
///   AUDITHERM_TRACE=1           print the span tree + counters to stderr
/// With neither set, no recorder is installed and the bench runs exactly
/// as before (instrumentation sites cost one relaxed load each).
/// Declare one at the top of main(); outputs are written on destruction.
class ObsSession {
 public:
  ObsSession() : recorder_(make_recorder()), scope_(recorder_.get()) {}
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() {
    if (recorder_ == nullptr) return;
    if (trace_enabled()) {
      auditherm::obs::write_summary(stderr, *recorder_);
    }
    const char* out = std::getenv("AUDITHERM_METRICS_OUT");
    if (out != nullptr && *out != '\0' &&
        !auditherm::obs::write_json_file(out, *recorder_)) {
      std::fprintf(stderr, "warning: could not write %s\n", out);
    }
  }

  [[nodiscard]] auditherm::obs::Recorder* recorder() const noexcept {
    return recorder_.get();
  }

 private:
  static bool trace_enabled() {
    const char* t = std::getenv("AUDITHERM_TRACE");
    return t != nullptr && *t != '\0' && std::strcmp(t, "0") != 0;
  }

  static std::unique_ptr<auditherm::obs::Recorder> make_recorder() {
    const char* out = std::getenv("AUDITHERM_METRICS_OUT");
    if (trace_enabled() || (out != nullptr && *out != '\0')) {
      return std::make_unique<auditherm::obs::Recorder>();
    }
    return nullptr;
  }

  std::unique_ptr<auditherm::obs::Recorder> recorder_;
  auditherm::obs::RecorderScope scope_;
};

/// The standard evaluation dataset: 98 days with ~34 failure days, as in
/// the paper (98 collected, 64 usable).
inline auditherm::sim::AuditoriumDataset make_standard_dataset() {
  auditherm::sim::DatasetConfig config;
  config.days = 98;
  config.failure_days = 34;
  return auditherm::sim::generate_dataset(config);
}

/// Channels that must be valid for a row to count toward usability.
inline std::vector<auditherm::timeseries::ChannelId> required_channels(
    const auditherm::sim::AuditoriumDataset& dataset) {
  auto req = dataset.sensor_ids();
  const auto inputs = dataset.input_ids();
  req.insert(req.end(), inputs.begin(), inputs.end());
  return req;
}

/// The paper's half/half chronological split over usable days.
inline auditherm::core::DataSplit standard_split(
    const auditherm::sim::AuditoriumDataset& dataset,
    auditherm::hvac::Mode mode = auditherm::hvac::Mode::kOccupied) {
  return auditherm::core::split_dataset(dataset.trace,
                                        required_channels(dataset),
                                        dataset.schedule, mode);
}

/// Evaluation windows on the given day-mask: rows in `mode` with valid
/// inputs, segmented.
inline std::vector<auditherm::timeseries::Segment> evaluation_windows(
    const auditherm::sim::AuditoriumDataset& dataset,
    const std::vector<bool>& day_mask, auditherm::hvac::Mode mode) {
  using namespace auditherm;
  auto mask = core::and_masks(
      day_mask, dataset.schedule.mode_mask(dataset.trace.grid(), mode));
  mask = core::and_masks(mask, timeseries::rows_with_all_valid(
                                   dataset.trace, dataset.input_ids()));
  return timeseries::find_segments(mask, 2);
}

/// Step-1 artifacts (training view, similarity graph, spectrum,
/// clustering, windows, cluster means) shared through `cache`: benches
/// that sweep cluster counts or strategies reuse the expensive stages —
/// notably the eigendecomposition — instead of rebuilding them per point.
inline auditherm::core::StageArtifacts prepare_stages(
    const auditherm::sim::AuditoriumDataset& dataset,
    const auditherm::core::DataSplit& split,
    auditherm::core::StageCache& cache, std::size_t cluster_count = 0) {
  auditherm::core::PipelineConfig config;
  config.spectral.cluster_count = cluster_count;
  const auditherm::core::ThermalModelingPipeline pipeline(config);
  return pipeline.prepare(dataset.trace, dataset.schedule, split,
                          dataset.wireless_ids(), dataset.input_ids(),
                          &cache);
}

inline void print_cache_stats(const auditherm::core::StageCache& cache) {
  const auto totals = cache.totals();
  std::printf("stage cache: %zu hits / %zu misses (%zu artifacts)\n",
              totals.hits, totals.misses, cache.size());
}

/// Minimal ordered JSON-object writer for the per-PR BENCH_*.json
/// artifacts: add() entries in output order, then write_file(). Values are
/// emitted verbatim for numbers/raw fragments and quoted for strings;
/// keys are plain identifiers so no escaping is needed.
class JsonObject {
 public:
  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    entries_.emplace_back(key, buf);
  }
  void add(const std::string& key, long long value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, std::size_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, bool value) {
    entries_.emplace_back(key, value ? "true" : "false");
  }
  void add(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + value + "\"");
  }
  /// Pre-rendered JSON (arrays, nested objects) inserted verbatim.
  void add_raw(const std::string& key, const std::string& raw) {
    entries_.emplace_back(key, raw);
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out += "  \"" + entries_[i].first + "\": " + entries_[i].second;
      out += i + 1 < entries_.size() ? ",\n" : "\n";
    }
    out += "}\n";
    return out;
  }

  [[nodiscard]] bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = str();
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

inline void print_header(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void print_row(const std::string& label, double paper, double ours) {
  std::printf("%-34s paper %6.2f   measured %6.3f\n", label.c_str(), paper,
              ours);
}

}  // namespace bench
