#include "auditherm/sysid/model.hpp"

#include <cmath>
#include <stdexcept>

#include "auditherm/linalg/vector_ops.hpp"

namespace auditherm::sysid {

ThermalModel::ThermalModel(ModelOrder order, linalg::Matrix a,
                           linalg::Matrix a2, linalg::Matrix b,
                           std::vector<timeseries::ChannelId> state_channels,
                           std::vector<timeseries::ChannelId> input_channels)
    : order_(order),
      a_(std::move(a)),
      a2_(std::move(a2)),
      b_(std::move(b)),
      state_channels_(std::move(state_channels)),
      input_channels_(std::move(input_channels)) {
  const std::size_t p = state_channels_.size();
  const std::size_t q = input_channels_.size();
  if (p == 0) throw std::invalid_argument("ThermalModel: no state channels");
  if (a_.rows() != p || a_.cols() != p) {
    throw std::invalid_argument("ThermalModel: A must be p x p");
  }
  if (order_ == ModelOrder::kSecond) {
    if (a2_.rows() != p || a2_.cols() != p) {
      throw std::invalid_argument("ThermalModel: A2 must be p x p");
    }
  } else if (!a2_.empty()) {
    throw std::invalid_argument("ThermalModel: A2 given for first-order model");
  }
  if (b_.rows() != p || b_.cols() != q) {
    throw std::invalid_argument("ThermalModel: B must be p x q");
  }
}

linalg::Vector ThermalModel::predict_next(const linalg::Vector& temps,
                                          const linalg::Vector& delta,
                                          const linalg::Vector& inputs) const {
  if (temps.size() != state_count() || inputs.size() != input_count()) {
    throw std::invalid_argument("ThermalModel::predict_next: size mismatch");
  }
  linalg::Vector next = a_ * temps;
  if (order_ == ModelOrder::kSecond) {
    if (delta.size() != state_count()) {
      throw std::invalid_argument("ThermalModel::predict_next: delta size");
    }
    linalg::axpy(1.0, a2_ * delta, next);
  }
  linalg::axpy(1.0, b_ * inputs, next);
  return next;
}

linalg::Matrix ThermalModel::simulate(const linalg::Vector& initial,
                                      const linalg::Vector& initial_delta,
                                      const linalg::Matrix& inputs) const {
  if (initial.size() != state_count()) {
    throw std::invalid_argument("ThermalModel::simulate: initial size");
  }
  if (inputs.cols() != input_count()) {
    throw std::invalid_argument("ThermalModel::simulate: input columns");
  }
  if (order_ == ModelOrder::kSecond &&
      initial_delta.size() != state_count()) {
    throw std::invalid_argument("ThermalModel::simulate: initial delta size");
  }

  linalg::Matrix predictions(inputs.rows(), state_count());
  linalg::Vector temps = initial;
  linalg::Vector delta = order_ == ModelOrder::kSecond
                             ? initial_delta
                             : linalg::Vector(state_count(), 0.0);
  for (std::size_t k = 0; k < inputs.rows(); ++k) {
    const linalg::Vector next =
        predict_next(temps, delta, inputs.row_vector(k));
    predictions.set_row(k, next);
    delta = linalg::subtract(next, temps);
    temps = next;
  }
  return predictions;
}

double ThermalModel::spectral_radius_bound() const {
  // Power-method growth-rate estimate on the (augmented) transition matrix.
  // Good enough to flag unstable identified dynamics in tests and benches.
  const std::size_t p = state_count();
  const std::size_t n = order_ == ModelOrder::kSecond ? 2 * p : p;
  linalg::Matrix m(n, n);
  m.set_block(0, 0, a_);
  if (order_ == ModelOrder::kSecond) {
    // Augmented form: [T(k+1); dT(k+1)] = [[A1, A2]; [A1 - I, A2]] [T; dT].
    m.set_block(0, p, a2_);
    linalg::Matrix a1_minus_i = a_;
    for (std::size_t i = 0; i < p; ++i) a1_minus_i(i, i) -= 1.0;
    m.set_block(p, 0, a1_minus_i);
    m.set_block(p, p, a2_);
  }
  linalg::Vector x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  double rate = 0.0;
  constexpr int kIters = 200;
  for (int it = 0; it < kIters; ++it) {
    linalg::Vector y = m * x;
    const double ny = linalg::norm2(y);
    if (ny == 0.0) return 0.0;
    rate = ny;
    for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / ny;
  }
  return rate;
}

}  // namespace auditherm::sysid
