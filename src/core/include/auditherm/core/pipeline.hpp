#pragma once

/// \file pipeline.hpp
/// The paper's three-step modeling method (Section VII):
///   1. cluster the dense sensor network from training data,
///   2. select representative sensor(s) per cluster,
///   3. identify a simplified dynamic model over the selected sensors,
/// plus the evaluation of the reduced model against measured cluster means
/// (Fig. 11).

#include <cstdint>
#include <vector>

#include "auditherm/clustering/spectral.hpp"
#include "auditherm/core/parallel.hpp"
#include "auditherm/core/split.hpp"
#include "auditherm/selection/evaluation.hpp"
#include "auditherm/selection/gp_placement.hpp"
#include "auditherm/selection/strategies.hpp"
#include "auditherm/sysid/estimator.hpp"
#include "auditherm/sysid/evaluation.hpp"

namespace auditherm::core {

/// Which representative-selection strategy step 2 uses.
enum class SelectionStrategy {
  kStratifiedNearMean,  ///< SMS — the paper's recommendation
  kStratifiedRandom,    ///< SRS
  kSimpleRandom,        ///< RS baseline
  kThermostats,         ///< the HVAC's own thermostats
  kGaussianProcess,     ///< Krause et al. MI placement
};

/// Pipeline configuration.
struct PipelineConfig {
  clustering::SimilarityOptions similarity;  ///< correlation metric default
  clustering::SpectralOptions spectral;      ///< eigengap-chosen k default
  SelectionStrategy strategy = SelectionStrategy::kStratifiedNearMean;
  std::size_t sensors_per_cluster = 1;
  std::uint64_t selection_seed = 7;          ///< SRS / RS draws
  sysid::ModelOrder order = sysid::ModelOrder::kSecond;
  sysid::EstimationOptions estimation;
  sysid::EvaluationOptions evaluation;
  hvac::Mode mode = hvac::Mode::kOccupied;
  /// Threads for the pipeline's parallel kernels; 0 inherits the global
  /// setting (AUDITHERM_THREADS, else hardware concurrency). Results are
  /// bitwise identical at any value — see parallel.hpp.
  std::size_t threads = 0;
};

/// Everything the pipeline produces.
struct PipelineResult {
  clustering::ClusteringResult clustering;
  selection::Selection selection;
  sysid::ThermalModel reduced_model;
  /// Reduced-model prediction errors vs the selected sensors' own readings.
  sysid::PredictionEvaluation reduced_eval;
  /// Reduced-model predictions vs measured cluster means (Fig. 11 metric).
  selection::ClusterMeanErrors cluster_mean_errors;
};

/// The three-step pipeline.
class ThermalModelingPipeline {
 public:
  /// Throws std::invalid_argument when sensors_per_cluster == 0.
  explicit ThermalModelingPipeline(PipelineConfig config);

  [[nodiscard]] const PipelineConfig& config() const noexcept {
    return config_;
  }

  /// Run on one trace with a prepared split.
  ///
  /// `sensor_ids` are the dense-network temperature channels, `input_ids`
  /// the [h; o; l; w] block, `thermostat_ids` the HVAC thermostats (used
  /// only by the kThermostats strategy; may be empty otherwise).
  [[nodiscard]] PipelineResult run(
      const timeseries::MultiTrace& trace, const hvac::Schedule& schedule,
      const DataSplit& split,
      const std::vector<timeseries::ChannelId>& sensor_ids,
      const std::vector<timeseries::ChannelId>& input_ids,
      const std::vector<timeseries::ChannelId>& thermostat_ids = {}) const;

 private:
  PipelineConfig config_;
};

/// One case of a strategy sweep: a selection strategy plus the seed its
/// random draws use (ignored by the deterministic strategies).
struct SweepCase {
  SelectionStrategy strategy = SelectionStrategy::kStratifiedNearMean;
  std::uint64_t seed = 7;
};

/// Run the pipeline once per case (the per-strategy × per-seed evaluation
/// sweeps behind Tables I-II and Figs 8-11), parallelized over cases with
/// the deterministic runtime: results arrive in case order and each case
/// equals a standalone run() with that strategy/seed. `base` supplies
/// every other configuration field, including `threads`.
[[nodiscard]] std::vector<PipelineResult> run_strategy_sweep(
    const PipelineConfig& base, const std::vector<SweepCase>& cases,
    const timeseries::MultiTrace& trace, const hvac::Schedule& schedule,
    const DataSplit& split,
    const std::vector<timeseries::ChannelId>& sensor_ids,
    const std::vector<timeseries::ChannelId>& input_ids,
    const std::vector<timeseries::ChannelId>& thermostat_ids = {});

/// Evaluate a reduced model's cluster-mean predictions (Fig. 11 metric):
/// simulate the model over each window, average the predicted selected
/// sensors per cluster, and compare against the measured all-sensor
/// cluster mean wherever it exists.
[[nodiscard]] selection::ClusterMeanErrors evaluate_reduced_model_cluster_mean(
    const sysid::ThermalModel& model, const timeseries::MultiTrace& trace,
    const selection::ClusterSets& clusters,
    const selection::Selection& selection,
    const std::vector<timeseries::Segment>& windows,
    const sysid::EvaluationOptions& options);

}  // namespace auditherm::core
