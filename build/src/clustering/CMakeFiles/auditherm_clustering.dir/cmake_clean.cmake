file(REMOVE_RECURSE
  "CMakeFiles/auditherm_clustering.dir/baselines.cpp.o"
  "CMakeFiles/auditherm_clustering.dir/baselines.cpp.o.d"
  "CMakeFiles/auditherm_clustering.dir/kmeans.cpp.o"
  "CMakeFiles/auditherm_clustering.dir/kmeans.cpp.o.d"
  "CMakeFiles/auditherm_clustering.dir/similarity.cpp.o"
  "CMakeFiles/auditherm_clustering.dir/similarity.cpp.o.d"
  "CMakeFiles/auditherm_clustering.dir/spectral.cpp.o"
  "CMakeFiles/auditherm_clustering.dir/spectral.cpp.o.d"
  "libauditherm_clustering.a"
  "libauditherm_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auditherm_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
