#include "auditherm/core/stage_cache.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "auditherm/core/parallel.hpp"
#include "auditherm/obs/trace_span.hpp"

namespace auditherm::core {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// All NaN payloads key identically: a gap is a gap.
constexpr std::uint64_t kNanSentinel = 0x7ff8dead00000000ull;

constexpr std::string_view kHitPrefix = "stage_cache.hit.";
constexpr std::string_view kMissPrefix = "stage_cache.miss.";

std::string event_name(std::string_view prefix, std::string_view stage) {
  std::string name;
  name.reserve(prefix.size() + stage.size());
  name.append(prefix);
  name.append(stage);
  return name;
}

}  // namespace

void StageKeyHasher::add_bytes(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = state_;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  state_ = h;
}

void StageKeyHasher::add(std::uint64_t v) noexcept {
  add_bytes(&v, sizeof(v));
}

void StageKeyHasher::add(double v) noexcept {
  const std::uint64_t bits =
      std::isnan(v) ? kNanSentinel : std::bit_cast<std::uint64_t>(v);
  add(bits);
}

void StageKeyHasher::add(std::string_view s) noexcept {
  add(static_cast<std::uint64_t>(s.size()));
  add_bytes(s.data(), s.size());
}

void StageKeyHasher::add(const std::vector<bool>& mask) noexcept {
  add(static_cast<std::uint64_t>(mask.size()));
  std::uint64_t word = 0;
  std::size_t filled = 0;
  for (bool b : mask) {
    word = (word << 1) | (b ? 1u : 0u);
    if (++filled == 64) {
      add(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) add(word);
}

void StageKeyHasher::add(const std::vector<int>& v) noexcept {
  add(static_cast<std::uint64_t>(v.size()));
  for (int x : v) add(static_cast<std::uint64_t>(static_cast<std::int64_t>(x)));
}

std::uint64_t trace_fingerprint(const timeseries::TraceView& trace) {
  StageKeyHasher h;
  h.add(trace.grid().start());
  h.add(trace.grid().step());
  h.add(static_cast<std::uint64_t>(trace.size()));
  h.add(trace.channels());
  for (std::size_t k = 0; k < trace.size(); ++k) {
    for (std::size_t c = 0; c < trace.channel_count(); ++c) {
      h.add(trace.value(k, c));
    }
  }
  return h.value();
}

std::uint64_t StageCache::tag_key(std::string_view stage,
                                  std::uint64_t key) noexcept {
  StageKeyHasher h;
  h.add(stage);
  h.add(key);
  return h.value();
}

std::shared_ptr<const void> StageCache::get_or_build_erased(
    std::string_view stage, std::uint64_t tagged_key,
    const std::function<std::shared_ptr<const void>()>& build) {
  bool claimed = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      Entry& entry = entries_[tagged_key];
      if (entry.value) {
        count_event(stage, /*hit=*/true);
        return entry.value;
      }
      if (!entry.building) {
        entry.building = true;
        claimed = true;
        break;
      }
      // Someone else is building this key. Parking inside a parallel
      // region would stall the pool the builder may itself be waiting
      // for, so there we race a duplicate build instead (first publish
      // wins); otherwise wait for the builder to publish.
      if (detail::in_parallel_region()) break;
      build_done_.wait(lock);
    }
  }

  // The builder runs with no cache lock held: it may fan out over the
  // thread pool, and holding a lock here would order the cache against
  // the pool's internals (lock-order inversion).
  std::shared_ptr<const void> value;
  try {
    value = build();
  } catch (...) {
    if (claimed) {
      const std::lock_guard<std::mutex> lock(mutex_);
      entries_[tagged_key].building = false;
      build_done_.notify_all();
    }
    throw;
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[tagged_key];
  if (!entry.value) {
    entry.value = std::move(value);
    count_event(stage, /*hit=*/false);
  } else {
    // Lost a duplicate-build race; keep the published artifact so every
    // caller aliases the same object.
    count_event(stage, /*hit=*/true);
  }
  if (claimed) {
    entry.building = false;
    build_done_.notify_all();
  }
  return entry.value;
}

void StageCache::count_event(std::string_view stage, bool hit) {
  const std::string name =
      event_name(hit ? kHitPrefix : kMissPrefix, stage);
  registry_.add_counter(name);
  // Mirror into the current run recorder (if one is installed) so
  // --metrics-out JSON carries cache behavior without caller plumbing.
  obs::add_counter(name);
}

StageStats StageCache::stats(std::string_view stage) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  StageStats s;
  const std::string hit_name = event_name(kHitPrefix, stage);
  const std::string miss_name = event_name(kMissPrefix, stage);
  const auto since_baseline = [&](const std::string& name) -> std::size_t {
    const std::uint64_t now = registry_.counter(name);
    const auto it = baseline_.find(name);
    return static_cast<std::size_t>(
        now - (it == baseline_.end() ? 0 : it->second));
  };
  s.hits = since_baseline(hit_name);
  s.misses = since_baseline(miss_name);
  return s;
}

StageStats StageCache::totals() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  StageStats total;
  for (const auto& [name, value] : registry_.snapshot().counters) {
    std::uint64_t base = 0;
    if (const auto it = baseline_.find(name); it != baseline_.end()) {
      base = it->second;
    }
    const std::size_t delta = static_cast<std::size_t>(value - base);
    if (name.starts_with(kHitPrefix)) {
      total.hits += delta;
    } else if (name.starts_with(kMissPrefix)) {
      total.misses += delta;
    }
  }
  return total;
}

std::size_t StageCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.value) ++n;
  }
  return n;
}

void StageCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  // Reset the visible counters by re-baselining, keeping the registry's
  // counters (and the mirrored run-recorder copies) monotonic.
  for (const auto& [name, value] : registry_.snapshot().counters) {
    baseline_[name] = value;
  }
}

}  // namespace auditherm::core
