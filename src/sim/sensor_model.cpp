#include "auditherm/sim/sensor_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace auditherm::sim {

SensorChannel::SensorChannel(const SensorNoiseConfig& config)
    : config_(config),
      last_report_(std::numeric_limits<double>::quiet_NaN()) {
  if (config.noise_std_c < 0.0 || config.quantum_c < 0.0 ||
      config.report_threshold_c < 0.0) {
    throw std::invalid_argument("SensorChannel: negative noise parameters");
  }
}

double SensorChannel::observe(double true_temp_c, std::mt19937_64& rng) {
  std::normal_distribution<double> noise(0.0, config_.noise_std_c);
  double measured = true_temp_c + noise(rng);
  if (config_.quantum_c > 0.0) {
    measured = std::round(measured / config_.quantum_c) * config_.quantum_c;
  }
  // Strictly-greater comparison with an epsilon so a move of exactly one
  // quantum (== threshold) holds regardless of floating-point rounding.
  if (std::isnan(last_report_) ||
      std::abs(measured - last_report_) >
          config_.report_threshold_c + 1e-9) {
    last_report_ = measured;
  }
  return last_report_;
}

void SensorChannel::reset() noexcept {
  last_report_ = std::numeric_limits<double>::quiet_NaN();
}

}  // namespace auditherm::sim
