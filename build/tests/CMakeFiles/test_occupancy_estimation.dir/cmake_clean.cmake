file(REMOVE_RECURSE
  "CMakeFiles/test_occupancy_estimation.dir/test_occupancy_estimation.cpp.o"
  "CMakeFiles/test_occupancy_estimation.dir/test_occupancy_estimation.cpp.o.d"
  "test_occupancy_estimation"
  "test_occupancy_estimation.pdb"
  "test_occupancy_estimation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_occupancy_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
