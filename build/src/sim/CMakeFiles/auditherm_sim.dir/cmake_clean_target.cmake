file(REMOVE_RECURSE
  "libauditherm_sim.a"
)
