#pragma once

/// \file multi_trace.hpp
/// Multi-channel time series with explicit gaps.
///
/// A MultiTrace holds p channels (sensors, VAVs, scalar inputs) sampled on
/// a shared TimeGrid; missing samples are NaN, mirroring the dropouts the
/// paper's wireless network and backend server produced. All downstream
/// machinery (piecewise system identification, clustering, selection)
/// consumes this type.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "auditherm/linalg/matrix.hpp"
#include "auditherm/timeseries/time_grid.hpp"

namespace auditherm::timeseries {

/// Identifier of a channel (the paper's sensor IDs: 1..39, 40/41 for the
/// HVAC thermostats; we reuse the same numbering).
using ChannelId = int;

/// Multi-channel uniformly sampled trace with NaN gaps.
///
/// Invariant: values() is size() x channel_count(); channel ids are unique.
class MultiTrace {
 public:
  MultiTrace() = default;

  /// Create an all-gap trace for `channels` on `grid`.
  /// Throws std::invalid_argument on duplicate channel ids.
  MultiTrace(TimeGrid grid, std::vector<ChannelId> channels);

  [[nodiscard]] const TimeGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] std::size_t size() const noexcept { return grid_.size(); }
  [[nodiscard]] std::size_t channel_count() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] const std::vector<ChannelId>& channels() const noexcept {
    return channels_;
  }

  /// Column index of a channel id; std::nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> channel_index(
      ChannelId id) const noexcept;

  /// Column index of a channel id; throws std::invalid_argument when absent.
  [[nodiscard]] std::size_t require_channel(ChannelId id) const;

  /// Sample of channel column `c` at row `k` (NaN when missing, unchecked).
  [[nodiscard]] double value(std::size_t k, std::size_t c) const noexcept {
    return values_(k, c);
  }

  /// True when the sample is present (not NaN).
  [[nodiscard]] bool valid(std::size_t k, std::size_t c) const noexcept;

  /// Set the sample of channel column `c` at row `k`.
  void set(std::size_t k, std::size_t c, double v) noexcept { values_(k, c) = v; }

  /// Mark the sample missing.
  void clear(std::size_t k, std::size_t c) noexcept;

  /// Full data matrix (rows = samples, cols = channels, NaN = gap).
  [[nodiscard]] const linalg::Matrix& values() const noexcept { return values_; }
  [[nodiscard]] linalg::Matrix& values() noexcept { return values_; }

  /// Copy of one channel as a (possibly NaN-bearing) vector.
  [[nodiscard]] linalg::Vector channel_series(ChannelId id) const;

  /// New trace restricted to the given channels (order preserved as given).
  /// Throws std::invalid_argument when a channel is absent.
  ///
  /// This and the row-subset siblings below MATERIALIZE: they deep-copy
  /// the selected samples (counted in the `timeseries.bytes_copied`
  /// counter). The read path should prefer the zero-copy TraceView
  /// equivalents (trace_view.hpp); these remain as the escape hatch for
  /// results that must outlive the source trace.
  [[nodiscard]] MultiTrace select_channels(
      const std::vector<ChannelId>& ids) const;

  /// New trace restricted to sample rows [first, last).
  /// Throws std::out_of_range when the range exceeds the trace.
  [[nodiscard]] MultiTrace slice_rows(std::size_t first, std::size_t last) const;

  /// New trace keeping only rows where `keep[k]` is true. The resulting
  /// grid is *reindexed* (rows become contiguous); use together with
  /// segmentation helpers to avoid fabricating transitions across removed
  /// rows. Throws std::invalid_argument when keep.size() != size().
  [[nodiscard]] MultiTrace filter_rows(const std::vector<bool>& keep) const;

  /// Fraction of present (non-NaN) samples over all channels and rows.
  [[nodiscard]] double coverage() const noexcept;

 private:
  TimeGrid grid_;
  std::vector<ChannelId> channels_;
  linalg::Matrix values_;
};

/// ADL hook for the stage cache's byte accounting (core/stage_cache.hpp):
/// header, channel-id storage, and the sample matrix payload.
[[nodiscard]] inline std::size_t cache_footprint(const MultiTrace& t) noexcept {
  return sizeof(MultiTrace) + t.channels().capacity() * sizeof(ChannelId) +
         t.values().data().capacity() * sizeof(double);
}

}  // namespace auditherm::timeseries

// The zero-copy view over a MultiTrace, its implicit conversion, and the
// rows_with_all_valid / row_mean free functions (which now take views)
// ride along with this header so every existing includer keeps compiling.
#include "auditherm/timeseries/trace_view.hpp"  // IWYU pragma: export
