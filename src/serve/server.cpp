#include "auditherm/serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "auditherm/core/cli.hpp"
#include "auditherm/obs/export.hpp"
#include "auditherm/serve/scenario_codec.hpp"

namespace auditherm::serve {

namespace {

/// One request per connection, so caps can be generous but finite: a
/// request is a small JSON object, never a trace upload.
constexpr std::size_t kMaxHeaderBytes = 16 * 1024;
constexpr std::size_t kMaxBodyBytes = 1024 * 1024;

std::string status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
  }
  return "Error";
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    status_text(status) + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Write all of `data`, tolerating short writes; false on error.
bool write_fully(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool parse_http_request(const std::string& raw, HttpRequest& out) {
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  const std::size_t line_end = raw.find("\r\n");
  const std::string request_line = raw.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  if (request_line.compare(sp2 + 1, 7, "HTTP/1.") != 0) return false;
  out.method = request_line.substr(0, sp1);
  out.path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  out.body = raw.substr(header_end + 4);
  return !out.method.empty() && !out.path.empty();
}

Server::Server(ServerConfig config, AnalysisService& service,
               const obs::Recorder* recorder)
    : config_(config), service_(service), recorder_(recorder) {}

Server::~Server() {
  request_stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  for (const int fd : pending_) ::close(fd);
}

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" +
                             std::to_string(config_.port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw std::runtime_error("serve: listen() failed: " +
                             std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

void Server::run() {
  if (listen_fd_ < 0) throw std::logic_error("serve: run() before start()");
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < std::max<std::size_t>(config_.workers, 1);
       ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }

  // Poll with a short tick so request_stop() (from a signal handler or
  // POST /shutdown) is honored promptly without self-pipe machinery.
  while (!stopping()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }

  // Drain: let workers finish queued connections, then release them.
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void Server::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stopping() || !pending_.empty(); });
      if (pending_.empty()) {
        if (stopping()) return;
        continue;
      }
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
  }
}

void Server::handle_connection(int fd) {
  // Read until the headers land, then until Content-Length is satisfied.
  std::string raw;
  std::size_t need_total = std::string::npos;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
    if (need_total == std::string::npos) {
      const std::size_t header_end = raw.find("\r\n\r\n");
      if (header_end == std::string::npos) {
        if (raw.size() > kMaxHeaderBytes) {
          write_fully(fd, http_response(413, "text/plain",
                                        "error: headers too large\n"));
          ::close(fd);
          return;
        }
        continue;
      }
      std::size_t content_length = 0;
      // Case-insensitive scan for the Content-Length header.
      for (std::size_t pos = raw.find("\r\n") + 2; pos < header_end;) {
        const std::size_t eol = raw.find("\r\n", pos);
        const std::string line = raw.substr(pos, eol - pos);
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos) {
          std::string key = line.substr(0, colon);
          for (char& c : key) c = static_cast<char>(std::tolower(c));
          if (key == "content-length") {
            content_length = std::strtoull(line.c_str() + colon + 1,
                                           nullptr, 10);
          }
        }
        pos = eol + 2;
      }
      if (content_length > kMaxBodyBytes) {
        write_fully(fd, http_response(413, "text/plain",
                                      "error: body too large\n"));
        ::close(fd);
        return;
      }
      need_total = header_end + 4 + content_length;
    }
    if (raw.size() >= need_total) break;
  }
  if (need_total == std::string::npos || raw.size() < need_total) {
    ::close(fd);  // peer went away mid-request
    return;
  }
  raw.resize(need_total);

  HttpRequest request;
  std::string response;
  if (!parse_http_request(raw, request)) {
    response = http_response(400, "text/plain", "error: malformed request\n");
  } else {
    response = respond(request);
  }
  write_fully(fd, response);
  ::close(fd);
}

std::string Server::respond(const HttpRequest& request) {
  obs::TraceSpan span("serve.request");
  if (request.path == "/healthz") {
    if (request.method != "GET") {
      return http_response(405, "text/plain", "error: use GET\n");
    }
    return http_response(200, "text/plain", "ok\n");
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") {
      return http_response(405, "text/plain", "error: use GET\n");
    }
    static const obs::Recorder empty;
    return http_response(200, "application/json",
                         obs::to_json(recorder_ ? *recorder_ : empty));
  }
  if (request.path == "/shutdown") {
    if (request.method != "POST") {
      return http_response(405, "text/plain", "error: use POST\n");
    }
    request_stop();
    return http_response(200, "text/plain", "shutting down\n");
  }
  if (request.path == "/simulate") {
    if (request.method != "POST") {
      return http_response(405, "text/plain", "error: use POST\n");
    }
    try {
      const auto body = json::parse(request.body);
      const SimulateRequest simulate_request =
          simulate_request_from_json(body);
      sim::FleetOptions options;
      options.out_dir = simulate_request.out_dir;
      const auto outcomes = sim::run_fleet(simulate_request.specs, options);
      return http_response(200, "application/json",
                           sim::fleet_manifest_json(outcomes));
    } catch (const json::ParseError& e) {
      return http_response(400, "text/plain",
                           std::string("error: ") + e.what() + "\n");
    } catch (const std::invalid_argument& e) {
      return http_response(400, "text/plain",
                           std::string("error: ") + e.what() + "\n");
    } catch (const std::exception& e) {
      return http_response(500, "text/plain",
                           std::string("error: ") + e.what() + "\n");
    }
  }
  if (request.path == "/analyze") {
    if (request.method != "POST") {
      return http_response(405, "text/plain", "error: use POST\n");
    }
    try {
      const auto body = json::parse(request.body);
      const AnalyzeRequest analyze_request = request_from_json(body);
      return http_response(200, "text/plain",
                           service_.analyze(analyze_request));
    } catch (const json::ParseError& e) {
      return http_response(400, "text/plain",
                           std::string("error: ") + e.what() + "\n");
    } catch (const std::invalid_argument& e) {
      return http_response(400, "text/plain",
                           std::string("error: ") + e.what() + "\n");
    } catch (const core::cli::UsageError& e) {
      return http_response(400, "text/plain",
                           std::string("error: ") + e.what() + "\n");
    } catch (const std::exception& e) {
      return http_response(500, "text/plain",
                           std::string("error: ") + e.what() + "\n");
    }
  }
  return http_response(404, "text/plain", "error: no such endpoint\n");
}

}  // namespace auditherm::serve
