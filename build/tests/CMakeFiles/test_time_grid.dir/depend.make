# Empty dependencies file for test_time_grid.
# This may be replaced when dependencies are built.
