#pragma once

/// \file matrix.hpp
/// Dense row-major matrix of doubles with value semantics.
///
/// This is the numeric workhorse for the whole library: system
/// identification assembles regressor matrices here, spectral clustering
/// builds Laplacians here, and the simulator integrates its state with the
/// vector helpers in vector_ops.hpp.

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace auditherm::linalg {

/// Column vector represented as a flat array of doubles.
using Vector = std::vector<double>;

/// Dense row-major matrix with value semantics.
///
/// Invariants: `data().size() == rows() * cols()`; both dimensions may be
/// zero (an empty matrix). Element access is bounds-checked in `at()` and
/// unchecked in `operator()`.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, all elements set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested initializer list; all rows must have equal length.
  /// Throws std::invalid_argument on ragged input.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// k x k identity matrix.
  [[nodiscard]] static Matrix identity(std::size_t k);

  /// Diagonal matrix from a vector.
  [[nodiscard]] static Matrix diagonal(const Vector& d);

  /// Matrix with a single column equal to `v`.
  [[nodiscard]] static Matrix column(const Vector& v);

  /// Matrix with a single row equal to `v`.
  [[nodiscard]] static Matrix row(const Vector& v);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Unchecked element access.
  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Bounds-checked element access; throws std::out_of_range.
  [[nodiscard]] double& at(std::size_t i, std::size_t j);
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  /// Raw row-major storage.
  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }
  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }

  /// Copy of row i as a Vector. Throws std::out_of_range.
  [[nodiscard]] Vector row_vector(std::size_t i) const;

  /// Copy of column j as a Vector. Throws std::out_of_range.
  [[nodiscard]] Vector col_vector(std::size_t j) const;

  /// Overwrite row i with `v` (must match cols()).
  void set_row(std::size_t i, const Vector& v);

  /// Overwrite column j with `v` (must match rows()).
  void set_col(std::size_t j, const Vector& v);

  /// Transposed copy.
  [[nodiscard]] Matrix transposed() const;

  /// Submatrix copy: rows [r0, r0+nr), cols [c0, c0+nc).
  /// Throws std::out_of_range if the block exceeds the matrix.
  [[nodiscard]] Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
                             std::size_t nc) const;

  /// Write `b` into this matrix starting at (r0, c0).
  /// Throws std::out_of_range if the block does not fit.
  void set_block(std::size_t r0, std::size_t c0, const Matrix& b);

  /// Frobenius norm sqrt(sum of squares).
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Largest absolute element (0 for empty matrices).
  [[nodiscard]] double max_abs() const noexcept;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;

  friend bool operator==(const Matrix& a, const Matrix& b) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] Matrix operator+(Matrix a, const Matrix& b);
[[nodiscard]] Matrix operator-(Matrix a, const Matrix& b);
[[nodiscard]] Matrix operator*(Matrix a, double s);
[[nodiscard]] Matrix operator*(double s, Matrix a);

/// Matrix product; throws std::invalid_argument on dimension mismatch.
[[nodiscard]] Matrix operator*(const Matrix& a, const Matrix& b);

/// Matrix-vector product; throws std::invalid_argument on mismatch.
[[nodiscard]] Vector operator*(const Matrix& a, const Vector& x);

/// a^T * b without forming the transpose.
[[nodiscard]] Matrix gram(const Matrix& a, const Matrix& b);

/// a * b^T without forming the transpose.
[[nodiscard]] Matrix outer_product(const Matrix& a, const Matrix& b);

/// True when every |a_ij - b_ij| <= tol and shapes match.
[[nodiscard]] bool approx_equal(const Matrix& a, const Matrix& b, double tol);

/// Stream a matrix in a compact human-readable grid (for diagnostics).
std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// ADL hook for the stage cache's byte accounting (core/stage_cache.hpp):
/// object header plus the heap storage behind data().
[[nodiscard]] inline std::size_t cache_footprint(const Matrix& m) noexcept {
  return sizeof(Matrix) + m.data().capacity() * sizeof(double);
}

}  // namespace auditherm::linalg
