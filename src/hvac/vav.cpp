#include "auditherm/hvac/vav.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace auditherm::hvac {

VavBox::VavBox(const VavConfig& config) : config_(config) {
  if (config.min_flow_m3_s < 0.0 ||
      config.min_flow_m3_s > config.max_flow_m3_s ||
      config.max_flow_m3_s <= 0.0 || config.actuator_tau_s <= 0.0) {
    throw std::invalid_argument("VavBox: inconsistent config");
  }
  flow_ = config.min_flow_m3_s;
  command_ = config.min_flow_m3_s;
}

void VavBox::command_flow(double flow_m3_s) noexcept {
  command_ = std::clamp(flow_m3_s, config_.min_flow_m3_s, config_.max_flow_m3_s);
}

VavOutput VavBox::step(double dt_s) {
  if (dt_s <= 0.0) throw std::invalid_argument("VavBox::step: dt must be > 0");
  // Exact discretization of the first-order lag flow' = (cmd - flow) / tau.
  const double alpha = 1.0 - std::exp(-dt_s / config_.actuator_tau_s);
  flow_ += alpha * (command_ - flow_);
  return {flow_, config_.supply_temp_c};
}

double VavBox::thermal_power_w(double room_temp_c) const noexcept {
  return kAirVolumetricHeatCapacity * flow_ *
         (config_.supply_temp_c - room_temp_c);
}

void VavBox::reset() noexcept {
  flow_ = config_.min_flow_m3_s;
  command_ = config_.min_flow_m3_s;
}

}  // namespace auditherm::hvac
