// Extension experiment E3 (beyond the paper's evaluation): camera-free
// occupancy from the HVAC's own CO2 sensor.
//
// The paper counts occupants by manually inspecting webcam photos and
// names automation as future work. The BMS already records CO2 and the
// VAV airflows; calibrating a mass-balance inversion on a few labeled
// weeks replaces the camera for the rest of the deployment. Baselines:
// predict zero, and predict the training-set time-of-day mean profile.

#include <cmath>

#include "bench_common.hpp"

using namespace auditherm;

namespace {

/// Time-of-day mean occupancy profile from the training rows.
linalg::Vector profile_baseline(const timeseries::MultiTrace& training,
                                const timeseries::MultiTrace& validation) {
  const auto occ_col =
      training.require_channel(sim::DatasetChannels::kOccupancy);
  std::vector<double> sum(48, 0.0);
  std::vector<std::size_t> count(48, 0);
  for (std::size_t k = 0; k < training.size(); ++k) {
    if (!training.valid(k, occ_col)) continue;
    const auto slot = static_cast<std::size_t>(
        timeseries::minute_of_day(training.grid()[k]) / 30);
    sum[slot] += training.value(k, occ_col);
    ++count[slot];
  }
  linalg::Vector estimate(validation.size(), 0.0);
  for (std::size_t k = 0; k < validation.size(); ++k) {
    const auto slot = static_cast<std::size_t>(
        timeseries::minute_of_day(validation.grid()[k]) / 30);
    if (count[slot] > 0) {
      estimate[k] = sum[slot] / static_cast<double>(count[slot]);
    }
  }
  return estimate;
}

}  // namespace

int main() {
  const bench::ObsSession obs_session;
  bench::print_header("Extension E3: occupancy estimation from CO2");
  const auto dataset = bench::make_standard_dataset();
  const std::vector<timeseries::ChannelId> required{
      sim::DatasetChannels::kCo2, sim::DatasetChannels::kOccupancy};
  const auto split = core::split_dataset(dataset.trace, required,
                                         dataset.schedule,
                                         hvac::Mode::kOccupied);
  const auto training = dataset.trace.filter_rows(split.train_mask);
  const auto validation = dataset.trace.filter_rows(split.validation_mask);

  sysid::Co2OccupancyEstimator estimator;
  estimator.calibrate(training);
  std::printf("calibrated on %zu train days: V/g %.0f s, outdoor %.0f ppm\n",
              split.train_days.size(), estimator.volume_over_generation(),
              estimator.outdoor_ppm());

  const auto estimate = estimator.estimate(validation);
  const double co2_mae = sysid::occupancy_mae(
      validation, sim::DatasetChannels::kOccupancy, estimate);
  const double zero_mae = sysid::occupancy_mae(
      validation, sim::DatasetChannels::kOccupancy,
      linalg::Vector(validation.size(), 0.0));
  const double profile_mae = sysid::occupancy_mae(
      validation, sim::DatasetChannels::kOccupancy,
      profile_baseline(training, validation));

  std::printf("\nheld-out mean absolute error (persons, capacity 90):\n");
  std::printf("  always-empty baseline:    %.2f\n", zero_mae);
  std::printf("  time-of-day profile:      %.2f\n", profile_mae);
  std::printf("  CO2 mass balance:         %.2f\n", co2_mae);

  // How well do the big moments register? Check detection of >= 40-person
  // events at 30-minute resolution.
  const auto occ_col =
      validation.require_channel(sim::DatasetChannels::kOccupancy);
  std::size_t events = 0, detected = 0;
  for (std::size_t k = 0; k < validation.size(); ++k) {
    if (std::isnan(estimate[k]) || !validation.valid(k, occ_col)) continue;
    if (validation.value(k, occ_col) >= 40.0) {
      ++events;
      if (estimate[k] >= 20.0) ++detected;
    }
  }
  std::printf("\nbig-event detection (>=40 people, estimate >=20): %zu/%zu "
              "(%.0f%%)\n",
              detected, events,
              events ? 100.0 * static_cast<double>(detected) /
                           static_cast<double>(events)
                     : 0.0);
  std::printf("\nshape checks: CO2 beats always-empty: %s | CO2 beats the "
              "schedule profile: %s | detects most big events: %s\n",
              co2_mae < zero_mae ? "yes" : "NO",
              co2_mae < profile_mae ? "yes" : "NO",
              (events > 0 && detected * 10 >= events * 8) ? "yes" : "NO");
  return 0;
}
