#include "auditherm/hvac/schedule.hpp"

#include <stdexcept>

namespace auditherm::hvac {

Schedule::Schedule(timeseries::Minutes on_minute,
                   timeseries::Minutes off_minute)
    : on_(on_minute), off_(off_minute) {
  if (on_minute < 0 || on_minute >= timeseries::kMinutesPerDay ||
      off_minute < 0 || off_minute >= timeseries::kMinutesPerDay ||
      on_minute >= off_minute) {
    throw std::invalid_argument("Schedule: need 0 <= on < off < 1440");
  }
}

Mode Schedule::mode_at(timeseries::Minutes t) const noexcept {
  const auto m = timeseries::minute_of_day(t);
  return (m >= on_ && m < off_) ? Mode::kOccupied : Mode::kUnoccupied;
}

std::vector<bool> Schedule::mode_mask(const timeseries::TimeGrid& grid,
                                      Mode mode) const {
  std::vector<bool> mask(grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    mask[k] = mode_at(grid[k]) == mode;
  }
  return mask;
}

}  // namespace auditherm::hvac
