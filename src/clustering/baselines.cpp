#include "auditherm/clustering/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace auditherm::clustering {

ClusteringResult kmeans_trace_cluster(
    const timeseries::TraceView& trace,
    const std::vector<timeseries::ChannelId>& channels, std::size_t k,
    const KMeansOptions& options) {
  if (channels.empty()) {
    throw std::invalid_argument("kmeans_trace_cluster: no channels");
  }
  if (k == 0 || k > channels.size()) {
    throw std::invalid_argument("kmeans_trace_cluster: bad k");
  }
  const auto sub = trace.select_channels(channels);
  const std::size_t p = channels.size();
  const std::size_t n = sub.size();

  // Feature matrix: one row per sensor; gaps imputed with the channel
  // mean so they carry no signal.
  linalg::Matrix features(p, n);
  for (std::size_t c = 0; c < p; ++c) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t kk = 0; kk < n; ++kk) {
      if (sub.valid(kk, c)) {
        sum += sub.value(kk, c);
        ++count;
      }
    }
    const double mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
    for (std::size_t kk = 0; kk < n; ++kk) {
      features(c, kk) = sub.valid(kk, c) ? sub.value(kk, c) : mean;
    }
  }

  const auto km = kmeans(features, k, options);
  ClusteringResult result;
  result.channels = channels;
  result.labels = km.labels;
  result.cluster_count = k;
  return result;
}

ClusteringResult single_linkage_cluster(const SimilarityGraph& graph,
                                        std::size_t k) {
  const std::size_t n = graph.channels.size();
  if (k == 0 || k > n) {
    throw std::invalid_argument("single_linkage_cluster: bad k");
  }

  // Union-find over vertices; merge along edges in decreasing weight.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  struct Edge {
    double weight;
    std::size_t a, b;
  };
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (graph.weights(i, j) > 0.0) {
        edges.push_back({graph.weights(i, j), i, j});
      }
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.weight > b.weight; });

  std::size_t clusters = n;
  for (const auto& edge : edges) {
    if (clusters <= k) break;
    const auto ra = find(edge.a);
    const auto rb = find(edge.b);
    if (ra != rb) {
      parent[ra] = rb;
      --clusters;
    }
  }
  // A disconnected graph can stall above k; that is a faithful property of
  // single linkage, so we simply return the components we have.

  // Compact the labels.
  std::vector<std::size_t> roots;
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = find(i);
    std::size_t label = roots.size();
    for (std::size_t x = 0; x < roots.size(); ++x) {
      if (roots[x] == r) {
        label = x;
        break;
      }
    }
    if (label == roots.size()) roots.push_back(r);
    labels[i] = label;
  }

  ClusteringResult result;
  result.channels = graph.channels;
  result.labels = std::move(labels);
  result.cluster_count = roots.size();
  return result;
}

}  // namespace auditherm::clustering
