// Integration tests for the three-step pipeline on simulated datasets.

#include "auditherm/core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "auditherm/sim/dataset.hpp"

namespace core = auditherm::core;
namespace sim = auditherm::sim;
namespace hvac = auditherm::hvac;
namespace selection = auditherm::selection;

namespace {

/// One shared small dataset for all pipeline tests (generation costs a
/// few hundred ms).
const sim::AuditoriumDataset& dataset() {
  static const sim::AuditoriumDataset ds = [] {
    sim::DatasetConfig config;
    config.days = 56;
    config.failure_days = 10;
    return sim::generate_dataset(config);
  }();
  return ds;
}

core::DataSplit make_split() {
  const auto& ds = dataset();
  auto required = ds.sensor_ids();
  const auto inputs = ds.input_ids();
  required.insert(required.end(), inputs.begin(), inputs.end());
  return core::split_dataset(ds.trace, required, ds.schedule,
                             hvac::Mode::kOccupied);
}

core::PipelineResult run_with(core::SelectionStrategy strategy,
                              std::size_t per_cluster = 1) {
  const auto& ds = dataset();
  core::PipelineConfig config;
  config.strategy = strategy;
  config.sensors_per_cluster = per_cluster;
  const core::ThermalModelingPipeline pipeline(config);
  return pipeline.run(ds.trace, ds.schedule, make_split(), ds.wireless_ids(),
                      ds.input_ids(), ds.thermostat_ids());
}

}  // namespace

TEST(Pipeline, SmsEndToEnd) {
  const auto result = run_with(core::SelectionStrategy::kStratifiedNearMean);

  // Clustering covers every wireless sensor exactly once.
  EXPECT_GE(result.clustering.cluster_count, 2u);
  std::size_t covered = 0;
  for (const auto& cluster : result.clustering.clusters()) {
    covered += cluster.size();
    EXPECT_FALSE(cluster.empty());
  }
  EXPECT_EQ(covered, dataset().wireless_ids().size());

  // Selection stays within each cluster.
  const auto clusters = result.clustering.clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    ASSERT_EQ(result.selection.per_cluster[c].size(), 1u);
    EXPECT_NE(std::find(clusters[c].begin(), clusters[c].end(),
                        result.selection.per_cluster[c][0]),
              clusters[c].end());
  }

  // Reduced model states are exactly the selected sensors.
  EXPECT_EQ(result.reduced_model.state_channels(),
            result.selection.flattened());

  // Errors exist and are finite, modest magnitudes.
  EXPECT_GT(result.reduced_eval.window_count, 3u);
  EXPECT_TRUE(std::isfinite(result.reduced_eval.pooled_rms));
  const double p99 = result.cluster_mean_errors.percentile(99.0);
  EXPECT_GT(p99, 0.0);
  EXPECT_LT(p99, 5.0);
}

TEST(Pipeline, RecoversFrontBackClusters) {
  // With correlation similarity and the eigengap rule, the dataset
  // reproduces the paper's two-zone split: front sensors
  // {3,6,7,8,13,14,17,23,28,33,38} vs the rest. On this shortened 56-day
  // dataset a couple of boundary sensors may flip, so we require strong
  // (not perfect) agreement; the full-length benches recover it exactly.
  const auto result = run_with(core::SelectionStrategy::kStratifiedNearMean);
  ASSERT_EQ(result.clustering.cluster_count, 2u);
  const std::vector<int> front{3, 6, 7, 8, 13, 14, 17, 23, 28, 33, 38};
  const auto front_label = result.clustering.cluster_of(3);
  std::size_t agree = 0;
  for (int id : dataset().wireless_ids()) {
    const bool expect_front =
        std::find(front.begin(), front.end(), id) != front.end();
    const bool is_front = result.clustering.cluster_of(id) == front_label;
    agree += (expect_front == is_front) ? 1 : 0;
  }
  EXPECT_GE(agree, 21u) << "only " << agree << "/25 sensors on the expected "
                        << "side of the front/back split";
}

TEST(Pipeline, AllStrategiesRun) {
  for (auto strategy : {core::SelectionStrategy::kStratifiedNearMean,
                        core::SelectionStrategy::kStratifiedRandom,
                        core::SelectionStrategy::kSimpleRandom,
                        core::SelectionStrategy::kThermostats,
                        core::SelectionStrategy::kGaussianProcess}) {
    const auto result = run_with(strategy);
    EXPECT_EQ(result.selection.per_cluster.size(),
              result.clustering.cluster_count);
    EXPECT_NO_THROW((void)result.cluster_mean_errors.percentile(99.0));
  }
}

TEST(Pipeline, ThermostatStrategyUsesThermostats) {
  const auto result = run_with(core::SelectionStrategy::kThermostats);
  for (const auto& chosen : result.selection.per_cluster) {
    for (int id : chosen) {
      EXPECT_TRUE(id == 40 || id == 41);
    }
  }
}

TEST(Pipeline, MultipleSensorsPerCluster) {
  const auto result =
      run_with(core::SelectionStrategy::kStratifiedNearMean, 2);
  for (const auto& chosen : result.selection.per_cluster) {
    EXPECT_GE(chosen.size(), 1u);
    EXPECT_LE(chosen.size(), 2u);
  }
  EXPECT_GE(result.reduced_model.state_count(), result.selection.per_cluster.size());
}

TEST(Pipeline, DeterministicForSameConfig) {
  const auto a = run_with(core::SelectionStrategy::kStratifiedNearMean);
  const auto b = run_with(core::SelectionStrategy::kStratifiedNearMean);
  EXPECT_EQ(a.clustering.labels, b.clustering.labels);
  EXPECT_EQ(a.selection.flattened(), b.selection.flattened());
  EXPECT_DOUBLE_EQ(a.cluster_mean_errors.percentile(99.0),
                   b.cluster_mean_errors.percentile(99.0));
}

TEST(Pipeline, ConfigValidation) {
  core::PipelineConfig bad;
  bad.sensors_per_cluster = 0;
  EXPECT_THROW(core::ThermalModelingPipeline{bad}, std::invalid_argument);
}
