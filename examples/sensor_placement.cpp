// Sensor placement study: how many sensors does the auditorium actually
// need, and where should they sit?
//
// Walks the paper's Section V-VI workflow as a facility-engineering tool:
// simulate a dense pilot deployment, cluster it, compare selection
// strategies, and print a deployment recommendation (which sensors to
// keep for long-term operation).

#include <cstdio>

#include "auditherm/auditherm.hpp"

using namespace auditherm;

int main() {
  // --- Pilot deployment: a full season with the dense network. ----------
  sim::DatasetConfig config;
  config.days = 70;
  config.failure_days = 12;
  const auto dataset = sim::generate_dataset(config);

  auto required = dataset.sensor_ids();
  const auto inputs = dataset.input_ids();
  required.insert(required.end(), inputs.begin(), inputs.end());
  const auto split = core::split_dataset(dataset.trace, required,
                                         dataset.schedule,
                                         hvac::Mode::kOccupied);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto training = dataset.trace.filter_rows(
      core::and_masks(split.train_mask, mode_mask));
  const auto validation = dataset.trace.filter_rows(
      core::and_masks(split.validation_mask, mode_mask));

  // --- Step 1: how many thermal zones does the room have? ---------------
  const auto graph = clustering::build_similarity_graph(
      training, dataset.wireless_ids(), {});
  const auto analysis = clustering::analyze_spectrum(graph.weights);
  const auto result = clustering::spectral_cluster(graph);
  std::printf("thermal zones found: %zu (largest log-eigengap)\n",
              result.cluster_count);
  const auto clusters = result.clusters();
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    double mean_depth = 0.0;
    for (auto id : clusters[c]) {
      mean_depth += dataset.plan.site(id).position.y;
    }
    mean_depth /= static_cast<double>(clusters[c].size());
    std::printf("  zone %zu: %zu sensors, mean depth %.1f m (%s of room)\n",
                c + 1, clusters[c].size(), mean_depth,
                mean_depth < 6.0 ? "front" : "back");
  }

  // --- Step 2: compare the selection strategies on validation data. -----
  const auto p99 = [&](const selection::Selection& sel) {
    return selection::evaluate_cluster_mean_prediction(validation, clusters,
                                                       sel)
        .percentile(99.0);
  };
  const auto sms = selection::stratified_near_mean(training, clusters);
  std::printf("\nstrategy comparison (99th-pct cluster-mean error):\n");
  std::printf("  SMS (near-mean):    %.3f degC\n", p99(sms));
  std::printf("  SRS (random/zone):  %.3f degC\n",
              p99(selection::stratified_random(clusters, 1)));
  std::printf("  thermostats only:   %.3f degC\n",
              p99(selection::thermostat_baseline(dataset.thermostat_ids(),
                                                 clusters.size())));
  const auto gp = selection::gp_mutual_information_selection(
      training, dataset.wireless_ids(), clusters.size());
  std::printf("  GP placement:       %.3f degC\n",
              p99(selection::assign_to_clusters(training, clusters, gp)));

  // --- Step 3: the deployment recommendation. ---------------------------
  std::printf("\nrecommended long-term deployment (SMS):\n");
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (auto id : sms.per_cluster[c]) {
      const auto& site = dataset.plan.site(id);
      std::printf("  keep sensor %2d at (%.1f, %.1f) m  [zone %zu]\n", id,
                  site.position.x, site.position.y, c + 1);
    }
  }
  std::printf("the other %zu sensors can be removed after the pilot.\n",
              dataset.wireless_ids().size() -
                  sms.flattened().size());

  // How much accuracy does each extra sensor per zone buy?
  std::printf("\naccuracy vs sensors kept per zone (SMS):\n");
  for (std::size_t n = 1; n <= 4; ++n) {
    const auto sel = selection::stratified_near_mean(training, clusters, n);
    std::printf("  %zu per zone (%zu total): %.3f degC\n", n,
                sel.flattened().size(), p99(sel));
  }
  return 0;
}
