#include "auditherm/timeseries/trace_stats.hpp"

#include <cmath>
#include <limits>

#include "auditherm/core/parallel.hpp"

namespace auditherm::timeseries {

namespace {

/// Accumulate shared-valid samples of channel columns a and b.
struct PairAccumulator {
  std::size_t n = 0;
  double sum_a = 0.0, sum_b = 0.0;
  double sum_aa = 0.0, sum_bb = 0.0, sum_ab = 0.0;
  double sum_d2 = 0.0;
  double max_abs_diff = 0.0;

  void add(double a, double b) noexcept {
    ++n;
    sum_a += a;
    sum_b += b;
    sum_aa += a * a;
    sum_bb += b * b;
    sum_ab += a * b;
    const double d = a - b;
    sum_d2 += d * d;
    max_abs_diff = std::max(max_abs_diff, std::abs(d));
  }

  [[nodiscard]] double correlation() const noexcept {
    if (n < 2) return 0.0;
    const double nn = static_cast<double>(n);
    const double cov = sum_ab - sum_a * sum_b / nn;
    const double va = sum_aa - sum_a * sum_a / nn;
    const double vb = sum_bb - sum_b * sum_b / nn;
    if (va <= 0.0 || vb <= 0.0) return 0.0;
    return cov / std::sqrt(va * vb);
  }

  [[nodiscard]] double covariance() const noexcept {
    if (n < 2) return 0.0;
    const double nn = static_cast<double>(n);
    return (sum_ab - sum_a * sum_b / nn) / (nn - 1.0);
  }

  [[nodiscard]] double rms_distance() const noexcept {
    if (n == 0) return std::numeric_limits<double>::infinity();
    return std::sqrt(sum_d2 / static_cast<double>(n));
  }
};

PairAccumulator accumulate_pair(const TraceView& trace, std::size_t ca,
                                std::size_t cb) {
  PairAccumulator acc;
  for (std::size_t k = 0; k < trace.size(); ++k) {
    if (trace.valid(k, ca) && trace.valid(k, cb)) {
      acc.add(trace.value(k, ca), trace.value(k, cb));
    }
  }
  return acc;
}

/// Grain for the pairwise matrices: each index i scans the whole trace for
/// every j > i, so even one row is heavy enough to be its own chunk once
/// the trace has a few hundred samples. Each (i, j) entry is computed
/// independently by exactly one thread, so the matrices are bitwise
/// deterministic at any thread count.
std::size_t pair_row_grain(const TraceView& trace) {
  return core::grain_for_cost(trace.size() * 4);
}

}  // namespace

linalg::Matrix correlation_matrix(const TraceView& trace) {
  const std::size_t p = trace.channel_count();
  linalg::Matrix r(p, p);
  core::parallel_for(0, p, pair_row_grain(trace), [&](std::size_t i) {
    r(i, i) = 1.0;
    for (std::size_t j = i + 1; j < p; ++j) {
      const double c = accumulate_pair(trace, i, j).correlation();
      r(i, j) = c;
      r(j, i) = c;
    }
  });
  return r;
}

linalg::Matrix covariance_matrix(const TraceView& trace) {
  const std::size_t p = trace.channel_count();
  linalg::Matrix c(p, p);
  core::parallel_for(0, p, pair_row_grain(trace), [&](std::size_t i) {
    for (std::size_t j = i; j < p; ++j) {
      const double v = accumulate_pair(trace, i, j).covariance();
      c(i, j) = v;
      c(j, i) = v;
    }
  });
  return c;
}

linalg::Matrix rms_distance_matrix(const TraceView& trace) {
  const std::size_t p = trace.channel_count();
  linalg::Matrix d(p, p);
  core::parallel_for(0, p, pair_row_grain(trace), [&](std::size_t i) {
    for (std::size_t j = i + 1; j < p; ++j) {
      const double v = accumulate_pair(trace, i, j).rms_distance();
      d(i, j) = v;
      d(j, i) = v;
    }
  });
  return d;
}

linalg::Vector channel_means(const TraceView& trace) {
  const std::size_t p = trace.channel_count();
  linalg::Vector means(p, std::numeric_limits<double>::quiet_NaN());
  core::parallel_for(0, p, pair_row_grain(trace), [&](std::size_t c) {
    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t k = 0; k < trace.size(); ++k) {
      if (trace.valid(k, c)) {
        s += trace.value(k, c);
        ++n;
      }
    }
    if (n > 0) means[c] = s / static_cast<double>(n);
  });
  return means;
}

double max_abs_difference(const TraceView& trace, ChannelId a, ChannelId b) {
  const std::size_t ca = trace.require_channel(a);
  const std::size_t cb = trace.require_channel(b);
  const auto acc = accumulate_pair(trace, ca, cb);
  if (acc.n == 0) return std::numeric_limits<double>::quiet_NaN();
  return acc.max_abs_diff;
}

linalg::Vector pairwise_max_differences(const TraceView& trace,
                                        const std::vector<ChannelId>& ids) {
  linalg::Vector out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      const double d = max_abs_difference(trace, ids[i], ids[j]);
      if (!std::isnan(d)) out.push_back(d);
    }
  }
  return out;
}

}  // namespace auditherm::timeseries
