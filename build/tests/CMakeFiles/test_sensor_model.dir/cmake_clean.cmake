file(REMOVE_RECURSE
  "CMakeFiles/test_sensor_model.dir/test_sensor_model.cpp.o"
  "CMakeFiles/test_sensor_model.dir/test_sensor_model.cpp.o.d"
  "test_sensor_model"
  "test_sensor_model.pdb"
  "test_sensor_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensor_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
