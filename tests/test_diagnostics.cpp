// Tests for model-fit diagnostics (residuals, R^2, AIC/BIC order choice).

#include "auditherm/sysid/diagnostics.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace sysid = auditherm::sysid;
namespace ts = auditherm::timeseries;
namespace linalg = auditherm::linalg;
using linalg::Matrix;

namespace {

/// First-order scalar system trace with optional measurement noise.
ts::MultiTrace first_order_trace(std::size_t n, double noise_std,
                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> input(0.0, 1.0);
  std::normal_distribution<double> noise(0.0, noise_std);
  ts::MultiTrace trace(ts::TimeGrid(0, 30, n), {1, 101});
  double x = 20.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double u = input(rng);
    trace.set(k, 0, x + (noise_std > 0.0 ? noise(rng) : 0.0));
    trace.set(k, 1, u);
    x = 0.85 * x + 0.5 * u;
  }
  return trace;
}

/// Genuinely second-order scalar system trace.
ts::MultiTrace second_order_trace(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> input(0.0, 1.0);
  ts::MultiTrace trace(ts::TimeGrid(0, 30, n), {1, 101});
  double prev = 20.0, curr = 20.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double u = input(rng);
    trace.set(k, 0, curr);
    trace.set(k, 1, u);
    const double next = 0.9 * curr - 0.35 * (curr - prev) + 0.5 * u;
    prev = curr;
    curr = next;
  }
  return trace;
}

}  // namespace

TEST(Diagnostics, PerfectModelHasZeroResiduals) {
  const auto trace = first_order_trace(200, 0.0, 1);
  sysid::ThermalModel model(sysid::ModelOrder::kFirst, Matrix{{0.85}}, {},
                            Matrix{{0.5}}, {1}, {101});
  const auto diag = sysid::diagnose_fit(model, trace);
  EXPECT_EQ(diag.transitions, 199u);
  EXPECT_NEAR(diag.residual_std[0], 0.0, 1e-5);  // variance floor
  EXPECT_GT(diag.r_squared_vs_persistence[0], 0.999);
}

TEST(Diagnostics, WrongModelHasPositiveResiduals) {
  const auto trace = first_order_trace(200, 0.0, 2);
  sysid::ThermalModel wrong(sysid::ModelOrder::kFirst, Matrix{{0.5}}, {},
                            Matrix{{0.1}}, {1}, {101});
  const auto diag = sysid::diagnose_fit(wrong, trace);
  EXPECT_GT(diag.residual_std[0], 0.5);
}

TEST(Diagnostics, RespectsRowFilterAndGaps) {
  auto trace = first_order_trace(100, 0.0, 3);
  trace.clear(50, 0);
  sysid::ThermalModel model(sysid::ModelOrder::kFirst, Matrix{{0.85}}, {},
                            Matrix{{0.5}}, {1}, {101});
  const auto diag = sysid::diagnose_fit(model, trace);
  EXPECT_EQ(diag.transitions, 49u + 48u);
  std::vector<bool> first_half(100, false);
  for (std::size_t k = 0; k < 40; ++k) first_half[k] = true;
  const auto filtered = sysid::diagnose_fit(model, trace, first_half);
  EXPECT_EQ(filtered.transitions, 39u);
}

TEST(Diagnostics, ThrowsWithoutTransitions) {
  ts::MultiTrace empty(ts::TimeGrid(0, 30, 5), {1, 101});
  sysid::ThermalModel model(sysid::ModelOrder::kFirst, Matrix{{0.85}}, {},
                            Matrix{{0.5}}, {1}, {101});
  EXPECT_THROW((void)sysid::diagnose_fit(model, empty), std::runtime_error);
}

TEST(Diagnostics, AicPrefersSecondOrderOnSecondOrderData) {
  const auto trace = second_order_trace(400, 4);
  const auto cmp = sysid::compare_orders({1}, {101}, trace);
  EXPECT_TRUE(cmp.second_order_preferred());
  EXPECT_LT(cmp.second.residual_std[0], cmp.first.residual_std[0]);
  // Same transitions scored for both orders.
  EXPECT_EQ(cmp.first.transitions, cmp.second.transitions);
}

TEST(Diagnostics, BicPenalizesUselessSecondOrder) {
  // On genuinely FIRST-order data with noise, the extra A2 parameters buy
  // nothing; BIC must not strongly prefer the second-order model.
  const auto trace = first_order_trace(500, 0.05, 5);
  const auto cmp = sysid::compare_orders({1}, {101}, trace);
  EXPECT_LT(cmp.first.bic, cmp.second.bic + 10.0);
}

TEST(Diagnostics, ParameterCounts) {
  const auto trace = second_order_trace(100, 6);
  const auto cmp = sysid::compare_orders({1}, {101}, trace);
  EXPECT_EQ(cmp.first.parameters, 2u);   // a + b
  EXPECT_EQ(cmp.second.parameters, 3u);  // a1 + a2 + b
}
