#pragma once

/// \file kalman.hpp
/// Kalman filtering on identified thermal models.
///
/// The paper removes most sensors after the pilot; a Kalman filter on the
/// dense identified model turns the few kept sensors back into a full
/// spatial picture ("virtual sensing"): predict all temperatures with the
/// model, then correct with whatever measurements exist. This is the
/// natural state estimator for the control extension and for monitoring
/// the de-instrumented room.

#include <vector>

#include "auditherm/linalg/matrix.hpp"
#include "auditherm/sysid/model.hpp"

namespace auditherm::sysid {

/// Noise assumptions for the filter.
struct KalmanOptions {
  /// Process-noise variance added per temperature state per step
  /// (degC^2): model error + unmodeled disturbances.
  double process_noise = 0.02;
  /// Measurement-noise variance of a wireless sensor reading (degC^2);
  /// the testbed's noise+quantization is ~0.15 degC std.
  double measurement_noise = 0.0225;
  /// Initial state variance (degC^2) around the reset temperatures.
  double initial_variance = 1.0;
};

/// Time-varying Kalman filter over a ThermalModel.
///
/// The internal state is the model's temperature vector, augmented with
/// the delta block for second-order models. Measurements are direct
/// observations of a subset of the temperature states.
class KalmanFilter {
 public:
  /// Throws std::invalid_argument on non-positive noise variances.
  KalmanFilter(ThermalModel model, KalmanOptions options = {});

  [[nodiscard]] const ThermalModel& model() const noexcept { return model_; }

  /// Re-initialize the estimate at the given temperatures (deltas zero)
  /// with the configured initial variance. Throws std::invalid_argument
  /// on size mismatch.
  void reset(const linalg::Vector& initial_temps);

  /// Time update: propagate the estimate through the model with inputs u.
  /// Throws std::invalid_argument on input size mismatch or before
  /// reset().
  void predict(const linalg::Vector& inputs);

  /// Measurement update: `measured_states` are indices into the model's
  /// state vector; `measurements` the corresponding readings. Throws
  /// std::invalid_argument on size mismatch or out-of-range indices.
  void update(const std::vector<std::size_t>& measured_states,
              const linalg::Vector& measurements);

  /// Current temperature estimates (model state order).
  [[nodiscard]] linalg::Vector temperatures() const;

  /// Current estimate variance of each temperature state.
  [[nodiscard]] linalg::Vector temperature_variances() const;

  [[nodiscard]] bool initialized() const noexcept { return initialized_; }

 private:
  [[nodiscard]] std::size_t augmented_size() const noexcept;

  ThermalModel model_;
  KalmanOptions options_;
  linalg::Vector state_;       ///< [T] or [T; dT]
  linalg::Matrix covariance_;  ///< P over the augmented state
  linalg::Matrix transition_;  ///< augmented A
  linalg::Matrix input_map_;   ///< augmented B
  bool initialized_ = false;
};

}  // namespace auditherm::sysid
