#include "auditherm/control/closed_loop.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

#include "auditherm/hvac/vav.hpp"

namespace auditherm::control {

namespace {

using timeseries::kMinutesPerDay;
using timeseries::Minutes;

}  // namespace

ClosedLoopMetrics run_closed_loop(const ClosedLoopConfig& config,
                                  HvacController& controller,
                                  double setpoint_c) {
  if (config.days == 0) {
    throw std::invalid_argument("run_closed_loop: days == 0");
  }
  if (config.step <= 0 || std::fmod(config.control_dt_s, 60.0) != 0.0 ||
      (config.step * 60) % static_cast<Minutes>(config.control_dt_s) != 0) {
    throw std::invalid_argument("run_closed_loop: inconsistent steps");
  }
  if (config.comfort_zones.empty()) {
    throw std::invalid_argument("run_closed_loop: no comfort zones");
  }

  const auto plan = sim::FloorPlan::brauer_auditorium();
  sim::WeatherModel weather(config.weather, config.days);
  sim::OccupancySchedule occupancy(config.occupancy, config.days);
  sim::ZonalPlant plant(plan, config.plant);
  std::vector<hvac::VavBox> vavs(plan.vav_count(),
                                 hvac::VavBox(hvac::VavConfig{}));

  // Sensor index resolution for the controller and the comfort zones.
  const auto controller_ids = controller.sensor_ids();
  std::vector<std::size_t> controller_nodes;
  const auto all_ids = plan.sensor_ids();
  const auto node_of = [&](timeseries::ChannelId id) {
    for (std::size_t i = 0; i < all_ids.size(); ++i) {
      if (all_ids[i] == id) return i;
    }
    throw std::invalid_argument("run_closed_loop: controller reads unknown "
                                "sensor " + std::to_string(id));
  };
  for (auto id : controller_ids) controller_nodes.push_back(node_of(id));
  std::vector<std::vector<std::size_t>> zone_nodes;
  for (const auto& zone : config.comfort_zones) {
    zone_nodes.emplace_back();
    for (auto id : zone) zone_nodes.back().push_back(node_of(id));
    if (zone_nodes.back().empty()) {
      throw std::invalid_argument("run_closed_loop: empty comfort zone");
    }
  }

  std::mt19937_64 rng(config.seed);
  std::normal_distribution<double> unit_normal(0.0, 1.0);
  std::vector<double> turbulence(plant.node_count(), 0.0);
  const double turb_tau_s = config.turbulence_tau_min * 60.0;

  controller.reset();
  ClosedLoopMetrics metrics;
  double sum_abs_dev = 0.0;
  std::size_t violations = 0;

  const auto control_minutes =
      static_cast<Minutes>(config.control_dt_s / 60.0);
  const Minutes total = static_cast<Minutes>(config.days) * kMinutesPerDay;
  HvacCommand command;  // default trickle until the first decision

  // One warm-up day.
  for (Minutes t = -kMinutesPerDay; t < total; t += control_minutes) {
    // Decision instants: every config.step minutes.
    if (timeseries::minute_of_day(t) % config.step == 0) {
      ControlContext context;
      context.time = t;
      context.step_minutes = static_cast<double>(config.step);
      context.sensor_temps_c.reserve(controller_nodes.size());
      for (auto node : controller_nodes) {
        context.sensor_temps_c.push_back(plant.air_temps()[node]);
      }
      // Perfect forecast of the exogenous inputs over the next 8 steps.
      constexpr std::size_t kForecastSteps = 8;
      context.exogenous_forecast = linalg::Matrix(kForecastSteps, 3);
      for (std::size_t f = 0; f < kForecastSteps; ++f) {
        const auto tf = t + static_cast<Minutes>(f + 1) * config.step;
        context.exogenous_forecast(f, 0) = occupancy.occupants_at(tf);
        context.exogenous_forecast(f, 1) = occupancy.lighting_at(tf);
        context.exogenous_forecast(f, 2) = weather.temperature_at(tf);
      }
      command = controller.decide(context);
    }

    // Advance turbulence (activity-scaled as in the dataset generator).
    if (config.turbulence_std_w > 0.0) {
      const double decay = std::exp(-config.control_dt_s / turb_tau_s);
      const double std_now =
          config.turbulence_std_w *
          (config.schedule.occupied_at(t) ? 1.0
                                          : config.turbulence_night_factor);
      const double kick = std_now * std::sqrt(1.0 - decay * decay);
      for (double& x : turbulence) x = decay * x + kick * unit_normal(rng);
    }

    // Drive the dampers toward the command and step the plant.
    for (auto& box : vavs) box.command_flow(command.flow_per_vav_m3_s);
    sim::PlantInputs u;
    u.vav_flows_m3_s.reserve(vavs.size());
    for (auto& box : vavs) {
      u.vav_flows_m3_s.push_back(box.step(config.control_dt_s).flow_m3_s);
    }
    u.supply_temp_c = command.supply_temp_c;
    u.occupants = occupancy.occupants_at(t);
    u.lighting = occupancy.lighting_at(t);
    u.ambient_c = weather.temperature_at(t);
    if (config.turbulence_std_w > 0.0) u.extra_node_heat_w = turbulence;

    // Energy accounting before stepping (inputs held over the step).
    if (t >= 0) {
      const double dt_h = config.control_dt_s / 3600.0;
      metrics.coil_energy_kwh +=
          std::abs(plant.hvac_power_w(u)) / 1000.0 * dt_h;
      double total_flow = 0.0;
      for (double f : u.vav_flows_m3_s) total_flow += f;
      // Fan laws: power ~ flow^3; calibrated to ~1.5 kW at full 2.4 m^3/s.
      metrics.fan_energy_kwh +=
          1.5 * std::pow(total_flow / 2.4, 3.0) * dt_h;
    }

    plant.step(u, config.control_dt_s);

    // Comfort scoring at decision resolution, occupied with audience.
    if (t >= 0 && timeseries::minute_of_day(t) % config.step == 0 &&
        config.schedule.occupied_at(t) &&
        u.occupants >= config.min_occupants) {
      for (const auto& nodes : zone_nodes) {
        double zone_temp = 0.0;
        for (auto node : nodes) zone_temp += plant.air_temps()[node];
        zone_temp /= static_cast<double>(nodes.size());

        hvac::ComfortInputs in = config.comfort_model;
        in.air_temp_c = zone_temp;
        in.mean_radiant_temp_c = zone_temp;
        const auto comfort = hvac::predicted_mean_vote(in);
        if (!hvac::within_comfort_band(comfort)) ++violations;
        sum_abs_dev += std::abs(zone_temp - setpoint_c);
        ++metrics.scored_samples;
      }
    }
  }

  if (metrics.scored_samples > 0) {
    metrics.comfort_violation_fraction =
        static_cast<double>(violations) /
        static_cast<double>(metrics.scored_samples);
    metrics.mean_abs_deviation_c =
        sum_abs_dev / static_cast<double>(metrics.scored_samples);
  }
  return metrics;
}

}  // namespace auditherm::control
