#include "auditherm/core/split.hpp"

#include <algorithm>
#include <stdexcept>

namespace auditherm::core {

double day_mode_coverage(const timeseries::MultiTrace& trace,
                         const std::vector<timeseries::ChannelId>& required,
                         const hvac::Schedule& schedule, hvac::Mode mode,
                         std::size_t day) {
  const auto valid = timeseries::rows_with_all_valid(trace, required);
  std::size_t mode_rows = 0;
  std::size_t valid_rows = 0;
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const auto t = trace.grid()[k];
    if (static_cast<std::size_t>(timeseries::day_of(t)) != day) continue;
    if (schedule.mode_at(t) != mode) continue;
    ++mode_rows;
    if (valid[k]) ++valid_rows;
  }
  if (mode_rows == 0) return 0.0;
  return static_cast<double>(valid_rows) / static_cast<double>(mode_rows);
}

DataSplit split_dataset(const timeseries::MultiTrace& trace,
                        const std::vector<timeseries::ChannelId>& required,
                        const hvac::Schedule& schedule, hvac::Mode mode,
                        double min_coverage, double train_fraction) {
  if (min_coverage < 0.0 || min_coverage > 1.0) {
    throw std::invalid_argument("split_dataset: min_coverage outside [0, 1]");
  }
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("split_dataset: train_fraction outside (0, 1)");
  }
  if (trace.size() == 0) {
    throw std::invalid_argument("split_dataset: empty trace");
  }

  // Precompute validity once; day_mode_coverage would rescan per day.
  const auto valid = timeseries::rows_with_all_valid(trace, required);
  const auto last_day = static_cast<std::size_t>(
      timeseries::day_of(trace.grid()[trace.size() - 1]));

  std::vector<std::size_t> mode_rows(last_day + 1, 0);
  std::vector<std::size_t> valid_rows(last_day + 1, 0);
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const auto t = trace.grid()[k];
    if (schedule.mode_at(t) != mode) continue;
    const auto d = static_cast<std::size_t>(timeseries::day_of(t));
    ++mode_rows[d];
    if (valid[k]) ++valid_rows[d];
  }

  DataSplit split;
  for (std::size_t d = 0; d <= last_day; ++d) {
    if (mode_rows[d] == 0) continue;
    const double coverage = static_cast<double>(valid_rows[d]) /
                            static_cast<double>(mode_rows[d]);
    if (coverage >= min_coverage) split.usable_days.push_back(d);
  }

  const auto n_train = static_cast<std::size_t>(
      static_cast<double>(split.usable_days.size()) * train_fraction);
  split.train_days.assign(split.usable_days.begin(),
                          split.usable_days.begin() +
                              static_cast<std::ptrdiff_t>(n_train));
  split.validation_days.assign(split.usable_days.begin() +
                                   static_cast<std::ptrdiff_t>(n_train),
                               split.usable_days.end());
  split.train_mask = day_mask(trace.grid(), split.train_days);
  split.validation_mask = day_mask(trace.grid(), split.validation_days);
  return split;
}

std::vector<bool> and_masks(const std::vector<bool>& a,
                            const std::vector<bool>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("and_masks: size mismatch");
  }
  std::vector<bool> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] && b[i];
  return out;
}

std::vector<bool> day_mask(const timeseries::TimeGrid& grid,
                           const std::vector<std::size_t>& days) {
  std::vector<bool> mask(grid.size(), false);
  for (std::size_t k = 0; k < grid.size(); ++k) {
    const auto d = static_cast<std::size_t>(timeseries::day_of(grid[k]));
    mask[k] = std::find(days.begin(), days.end(), d) != days.end();
  }
  return mask;
}

}  // namespace auditherm::core
