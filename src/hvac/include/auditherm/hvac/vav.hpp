#pragma once

/// \file vav.hpp
/// Variable Air Volume (VAV) box model.
///
/// The auditorium has four VAVs feeding two front air outlets. A VAV box
/// tracks a commanded airflow with a first-order actuator lag and supplies
/// air at a configurable discharge temperature. The per-VAV airflow time
/// series is the h(k) input of the paper's models (eq. 1).

#include <cstddef>

namespace auditherm::hvac {

/// Static configuration of one VAV box.
struct VavConfig {
  double min_flow_m3_s = 0.05;    ///< off-mode trickle ventilation
  double max_flow_m3_s = 0.60;    ///< damper fully open
  double supply_temp_c = 13.0;    ///< discharge (cooling) air temperature
  double actuator_tau_s = 120.0;  ///< first-order damper response time
};

/// Instantaneous VAV output.
struct VavOutput {
  double flow_m3_s = 0.0;
  double supply_temp_c = 0.0;
};

/// One VAV box with first-order damper dynamics.
///
/// Invariant: flow stays within [min_flow, max_flow]; commands outside the
/// range are clamped (real dampers saturate; callers should not have to
/// pre-clamp).
class VavBox {
 public:
  /// Throws std::invalid_argument when the config is inconsistent
  /// (min > max, non-positive tau or max flow).
  explicit VavBox(const VavConfig& config);

  [[nodiscard]] const VavConfig& config() const noexcept { return config_; }

  /// Current airflow (m^3/s).
  [[nodiscard]] double flow() const noexcept { return flow_; }

  /// Set the commanded airflow (clamped to the configured range).
  void command_flow(double flow_m3_s) noexcept;

  /// Advance the damper by dt seconds toward the command; returns output.
  /// Throws std::invalid_argument when dt <= 0.
  VavOutput step(double dt_s);

  /// Heat delivered to the room this step (W), negative when cooling:
  /// rho * cp * flow * (supply - room).
  [[nodiscard]] double thermal_power_w(double room_temp_c) const noexcept;

  /// Reset the damper to the off-mode minimum instantly.
  void reset() noexcept;

 private:
  VavConfig config_;
  double flow_ = 0.0;
  double command_ = 0.0;
};

/// Density * specific heat of air (J/(m^3 K)) used for VAV heat transport.
inline constexpr double kAirVolumetricHeatCapacity = 1.2 * 1005.0;

}  // namespace auditherm::hvac
