#pragma once

/// \file variance_placement.hpp
/// Maximum-variance greedy sensor selection — the simplest of the
/// statistical placement criteria the paper's related work surveys
/// (entropy-style designs pick the most uncertain locations). Serves as a
/// second statistical baseline next to the GP mutual-information method:
/// variance placement chases the noisiest sensors, which is exactly why
/// cluster-aware selection beats it on representing zone means.

#include <cstddef>
#include <vector>

#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::selection {

/// Choose `count` sensors by descending training variance, skipping
/// sensors whose correlation with an already-chosen sensor exceeds
/// `redundancy_cap` (a crude entropy-style diversity guard; 1.0 disables
/// it). Throws std::invalid_argument when count is outside
/// [1, #candidates].
[[nodiscard]] std::vector<timeseries::ChannelId> max_variance_selection(
    const timeseries::TraceView& training,
    const std::vector<timeseries::ChannelId>& candidates, std::size_t count,
    double redundancy_cap = 0.97);

}  // namespace auditherm::selection
