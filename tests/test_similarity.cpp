// Tests for similarity-graph construction.

#include "auditherm/clustering/similarity.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace clustering = auditherm::clustering;
namespace ts = auditherm::timeseries;
using ts::MultiTrace;
using ts::TimeGrid;

namespace {

/// Channels: 1 and 2 nearly identical; 3 far away; 4 anti-correlated
/// with 1.
MultiTrace make_trace() {
  MultiTrace trace(TimeGrid(0, 30, 50), {1, 2, 3, 4});
  for (std::size_t k = 0; k < 50; ++k) {
    const double x = std::sin(0.3 * static_cast<double>(k));
    trace.set(k, 0, 20.0 + x);
    trace.set(k, 1, 20.05 + x);
    trace.set(k, 2, 25.0 + 0.5 * std::cos(0.7 * static_cast<double>(k)));
    trace.set(k, 3, 20.0 - x);
  }
  return trace;
}

}  // namespace

TEST(Similarity, EuclideanWeightsReflectDistance) {
  const auto trace = make_trace();
  clustering::SimilarityOptions options;
  options.metric = clustering::SimilarityMetric::kEuclidean;
  const auto graph =
      clustering::build_similarity_graph(trace, {1, 2, 3, 4}, options);
  ASSERT_EQ(graph.weights.rows(), 4u);
  // Closest pair (1,2) must get the highest weight; (1,3) is far.
  EXPECT_GT(graph.weights(0, 1), graph.weights(0, 2));
  EXPECT_GT(graph.weights(0, 1), 0.9);
  EXPECT_GT(graph.sigma_used, 0.0);
}

TEST(Similarity, WeightsSymmetricZeroDiagonalBounded) {
  const auto trace = make_trace();
  for (auto metric : {clustering::SimilarityMetric::kEuclidean,
                      clustering::SimilarityMetric::kCorrelation}) {
    clustering::SimilarityOptions options;
    options.metric = metric;
    const auto graph =
        clustering::build_similarity_graph(trace, {1, 2, 3, 4}, options);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(graph.weights(i, i), 0.0);
      for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_DOUBLE_EQ(graph.weights(i, j), graph.weights(j, i));
        EXPECT_GE(graph.weights(i, j), 0.0);
        EXPECT_LE(graph.weights(i, j), 1.0);
      }
    }
  }
}

TEST(Similarity, CorrelationMetricValues) {
  const auto trace = make_trace();
  const auto graph = clustering::build_similarity_graph(trace, {1, 2, 4});
  // 1-2 perfectly correlated; 1-4 anti-correlated -> clipped to 0.
  EXPECT_NEAR(graph.weights(0, 1), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(graph.weights(0, 2), 0.0);
}

TEST(Similarity, ExplicitSigmaRespected) {
  const auto trace = make_trace();
  clustering::SimilarityOptions options;
  options.metric = clustering::SimilarityMetric::kEuclidean;
  options.sigma = 0.01;  // tiny bandwidth: distant pairs go to ~0
  const auto graph =
      clustering::build_similarity_graph(trace, {1, 3}, options);
  EXPECT_DOUBLE_EQ(graph.sigma_used, 0.01);
  EXPECT_LT(graph.weights(0, 1), 1e-6);
}

TEST(Similarity, ThresholdSparsifies) {
  const auto trace = make_trace();
  clustering::SimilarityOptions options;
  options.threshold = 0.99;
  const auto graph =
      clustering::build_similarity_graph(trace, {1, 2, 3}, options);
  // Only the near-identical pair survives.
  EXPECT_GT(graph.weights(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(graph.weights(0, 2), 0.0);
}

TEST(Similarity, GapsUsePairwiseCompleteRows) {
  auto trace = make_trace();
  for (std::size_t k = 0; k < 10; ++k) trace.clear(k, 0);
  const auto graph = clustering::build_similarity_graph(trace, {1, 2});
  EXPECT_NEAR(graph.weights(0, 1), 1.0, 1e-9);
}

TEST(Similarity, KnnSparsificationKeepsStrongestEdges) {
  const auto trace = make_trace();
  clustering::SimilarityOptions options;
  options.sparsification = clustering::GraphSparsification::kKnn;
  options.knn_k = 1;
  const auto graph =
      clustering::build_similarity_graph(trace, {1, 2, 3, 4}, options);
  // Each vertex keeps its single strongest edge; 1-2 are near-identical so
  // they pick each other, and the union symmetrizes everything kept.
  EXPECT_GT(graph.weights(0, 1), 0.9);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(graph.weights(i, j), graph.weights(j, i));
    }
  }
  // With k = 1 on 4 vertices, at most 4 undirected edges survive.
  EXPECT_LE(graph.edge_count, 4u);
  EXPECT_GE(graph.edge_count, 2u);
}

TEST(Similarity, KnnFullDegreeKeepsEverything) {
  const auto trace = make_trace();
  clustering::SimilarityOptions dense_options;
  dense_options.threshold_quantile = 0.0;  // no epsilon sparsification
  const auto dense =
      clustering::build_similarity_graph(trace, {1, 2, 3, 4}, dense_options);
  clustering::SimilarityOptions knn_options;
  knn_options.sparsification = clustering::GraphSparsification::kKnn;
  knn_options.knn_k = 3;  // every neighbor of every vertex
  const auto knn =
      clustering::build_similarity_graph(trace, {1, 2, 3, 4}, knn_options);
  // k >= n-1 keeps every positive edge, bitwise.
  EXPECT_EQ(knn.weights, dense.weights);
}

TEST(Similarity, ConnectivityDiagnostics) {
  const auto trace = make_trace();
  // Default epsilon graph on the 4-channel trace: diagnostics are filled.
  const auto graph = clustering::build_similarity_graph(trace, {1, 2, 3, 4});
  std::size_t positive = 0;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = i + 1; j < 4; ++j)
      if (graph.weights(i, j) > 0.0) ++positive;
  EXPECT_EQ(graph.edge_count, positive);
  EXPECT_GE(graph.component_count, 1u);
  EXPECT_LE(graph.component_count, 4u);

  // A graph that k-NN provably splits: channels {1,2} co-move, {3} is on
  // its own (4 anti-correlates with 1, clipping its weights to ~0).
  clustering::SimilarityOptions knn_options;
  knn_options.sparsification = clustering::GraphSparsification::kKnn;
  knn_options.knn_k = 1;
  const auto split =
      clustering::build_similarity_graph(trace, {1, 2, 4}, knn_options);
  // 1-2 strongly linked; 4's weights are all clipped to zero, so it ends
  // up isolated — k-NN never invents edges for weightless vertices.
  EXPECT_EQ(split.edge_count, 1u);
  EXPECT_EQ(split.component_count, 2u);
}

TEST(Similarity, Validation) {
  const auto trace = make_trace();
  EXPECT_THROW((void)clustering::build_similarity_graph(trace, {1}),
               std::invalid_argument);
  EXPECT_THROW((void)clustering::build_similarity_graph(trace, {1, 99}),
               std::invalid_argument);
}

TEST(Similarity, DisjointChannelsThrow) {
  MultiTrace trace(TimeGrid(0, 30, 4), {1, 2});
  trace.set(0, 0, 1.0);
  trace.set(1, 0, 2.0);
  trace.set(2, 1, 3.0);
  trace.set(3, 1, 4.0);  // channels never share a row
  clustering::SimilarityOptions options;
  options.metric = clustering::SimilarityMetric::kEuclidean;
  EXPECT_THROW((void)clustering::build_similarity_graph(trace, {1, 2},
                                                        options),
               std::runtime_error);
}
