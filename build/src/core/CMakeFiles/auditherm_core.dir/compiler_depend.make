# Empty compiler generated dependencies file for auditherm_core.
# This may be replaced when dependencies are built.
