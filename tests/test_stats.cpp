// Tests for the scalar statistics kernels.

#include "auditherm/linalg/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

namespace linalg = auditherm::linalg;
using linalg::Vector;

TEST(Stats, MeanAndVariance) {
  const Vector x{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(linalg::mean(x), 2.5);
  EXPECT_NEAR(linalg::variance(x), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(linalg::stddev(x), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, EmptyInputsThrow) {
  EXPECT_THROW((void)linalg::mean({}), std::invalid_argument);
  EXPECT_THROW((void)linalg::rms({}), std::invalid_argument);
  EXPECT_THROW((void)linalg::variance({1.0}), std::invalid_argument);
  EXPECT_THROW((void)linalg::percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW((void)linalg::empirical_cdf({}), std::invalid_argument);
}

TEST(Stats, Rms) {
  EXPECT_DOUBLE_EQ(linalg::rms({3.0, 4.0, 0.0, 0.0}), 2.5);
  EXPECT_DOUBLE_EQ(linalg::rms({-2.0}), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const Vector x{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(linalg::percentile(x, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(linalg::percentile(x, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(linalg::percentile(x, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(linalg::percentile(x, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(linalg::percentile(x, 90.0), 46.0);  // MATLAB prctile
}

TEST(Stats, PercentileUnsortedInputAndSingle) {
  EXPECT_DOUBLE_EQ(linalg::percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(linalg::percentile({7.0}, 13.0), 7.0);
}

TEST(Stats, PercentileRangeChecked) {
  EXPECT_THROW((void)linalg::percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW((void)linalg::percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Stats, CorrelationPerfectAndInverse) {
  const Vector x{1.0, 2.0, 3.0, 4.0};
  const Vector y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(linalg::pearson_correlation(x, y), 1.0, 1e-12);
  const Vector z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(linalg::pearson_correlation(x, z), -1.0, 1e-12);
}

TEST(Stats, CorrelationOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(
      linalg::pearson_correlation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(Stats, CorrelationInvariantToAffineTransform) {
  std::mt19937_64 rng(3);
  std::normal_distribution<double> d(0.0, 1.0);
  Vector x(50), y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x[i] = d(rng);
    y[i] = 0.7 * x[i] + 0.3 * d(rng);
  }
  const double base = linalg::pearson_correlation(x, y);
  Vector x2 = x;
  for (double& v : x2) v = 5.0 * v + 100.0;
  EXPECT_NEAR(linalg::pearson_correlation(x2, y), base, 1e-12);
}

TEST(Stats, CorrelationErrors) {
  EXPECT_THROW((void)linalg::pearson_correlation({1.0, 2.0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)linalg::covariance({1.0}, {1.0}), std::invalid_argument);
}

TEST(Stats, CovarianceKnownValue) {
  EXPECT_NEAR(linalg::covariance({1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}), 2.0,
              1e-12);
}

TEST(Stats, EmpiricalCdfIsMonotoneAndComplete) {
  const auto cdf = linalg::empirical_cdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 3.0);
  EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].probability, cdf[i].probability);
  }
}

TEST(Stats, CdfAtEvaluates) {
  const auto cdf = linalg::empirical_cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(linalg::cdf_at(cdf, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(linalg::cdf_at(cdf, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(linalg::cdf_at(cdf, 10.0), 1.0);
}

/// Percentile of the empirical CDF and percentile() must agree at the
/// sampled probabilities.
class PercentileProperty : public ::testing::TestWithParam<double> {};

TEST_P(PercentileProperty, ConsistentWithCdf) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> d(0.0, 10.0);
  Vector x(101);
  for (double& v : x) v = d(rng);
  const double p = GetParam();
  const double q = linalg::percentile(x, p);
  const auto cdf = linalg::empirical_cdf(x);
  // The CDF evaluated at the percentile must bracket p/100.
  EXPECT_GE(linalg::cdf_at(cdf, q) + 1e-9, p / 100.0 - 0.01);
}

INSTANTIATE_TEST_SUITE_P(Probes, PercentileProperty,
                         ::testing::Values(1.0, 10.0, 25.0, 50.0, 75.0, 90.0,
                                           95.0, 99.0));
