// Tests for the serve layer: the strict JSON request parser, HTTP request
// framing, request decoding, channel classification, the transport-
// independent AnalysisService (repeat- and concurrency-identical
// reports), and a socket-level end-to-end pass over every endpoint.

#include "auditherm/serve/server.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cmath>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "auditherm/serve/json.hpp"
#include "auditherm/serve/scenario_codec.hpp"
#include "auditherm/serve/service.hpp"
#include "auditherm/sim/dataset.hpp"
#include "auditherm/sim/scenario.hpp"
#include "auditherm/timeseries/csv_io.hpp"

namespace core = auditherm::core;
namespace serve = auditherm::serve;
namespace json = auditherm::serve::json;
namespace sim = auditherm::sim;
namespace timeseries = auditherm::timeseries;

namespace {

// --- JSON parser ----------------------------------------------------------

TEST(ServeJson, ParsesScalarsAndStructure) {
  const auto v = json::parse(
      R"({"s": "hi", "n": -2.5e1, "t": true, "f": false, "z": null,)"
      R"( "a": [1, 2, 3], "o": {"k": 7}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.find("s"), nullptr);
  EXPECT_EQ(v.find("s")->string, "hi");
  EXPECT_DOUBLE_EQ(v.find("n")->number, -25.0);
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_FALSE(v.find("f")->boolean);
  EXPECT_TRUE(v.find("z")->is_null());
  ASSERT_TRUE(v.find("a")->is_array());
  EXPECT_EQ(v.find("a")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("o")->find("k")->number, 7.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ServeJson, DecodesEscapesIncludingUnicode) {
  const auto v = json::parse(R"({"k": "a\"b\\c\n\tAé"})");
  EXPECT_EQ(v.find("k")->string, "a\"b\\c\n\tA\xc3\xa9");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  const auto emoji = json::parse(R"("😀")");
  EXPECT_EQ(emoji.string, "\xf0\x9f\x98\x80");
}

TEST(ServeJson, RejectsMalformedDocuments) {
  EXPECT_THROW((void)json::parse(""), json::ParseError);
  EXPECT_THROW((void)json::parse("{"), json::ParseError);
  EXPECT_THROW((void)json::parse(R"({"a": 1,})"), json::ParseError);
  EXPECT_THROW((void)json::parse("[1 2]"), json::ParseError);
  EXPECT_THROW((void)json::parse("tru"), json::ParseError);
  EXPECT_THROW((void)json::parse(R"("unterminated)"), json::ParseError);
  EXPECT_THROW((void)json::parse("{} trailing"), json::ParseError);
  EXPECT_THROW((void)json::parse("01"), json::ParseError);
}

TEST(ServeJson, EscapeRoundTripsThroughParse) {
  const std::string nasty = "line\nquote\" back\\slash \x01 tab\t";
  const auto parsed = json::parse("\"" + json::escape(nasty) + "\"");
  EXPECT_EQ(parsed.string, nasty);
}

// --- HTTP framing ---------------------------------------------------------

TEST(ServeHttp, ParsesRequestLineAndBody) {
  serve::HttpRequest req;
  ASSERT_TRUE(serve::parse_http_request(
      "POST /analyze HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody", req));
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.path, "/analyze");
  EXPECT_EQ(req.body, "body");

  ASSERT_TRUE(serve::parse_http_request("GET /healthz HTTP/1.0\r\n\r\n", req));
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/healthz");
  EXPECT_TRUE(req.body.empty());
}

TEST(ServeHttp, RejectsMalformedRequests) {
  serve::HttpRequest req;
  EXPECT_FALSE(serve::parse_http_request("", req));
  EXPECT_FALSE(serve::parse_http_request("GET /healthz HTTP/1.1\r\n", req));
  EXPECT_FALSE(serve::parse_http_request("GARBAGE\r\n\r\n", req));
  EXPECT_FALSE(serve::parse_http_request("GET /x SMTP/1.0\r\n\r\n", req));
}

// --- Request decoding -----------------------------------------------------

TEST(ServeRequest, DecodesFullBodyAndDefaults) {
  const auto full = serve::request_from_json(json::parse(
      R"({"data": "t.csv", "metric": "euclidean", "clusters": 3,)"
      R"( "order": 1, "per_cluster": 2, "sweep": 4, "eigen": "jacobi",)"
      R"( "graph": "knn", "knn": 6})"));
  EXPECT_EQ(full.data, "t.csv");
  EXPECT_EQ(full.metric, "euclidean");
  EXPECT_EQ(full.clusters, 3);
  EXPECT_EQ(full.order, 1);
  EXPECT_EQ(full.per_cluster, 2);
  EXPECT_EQ(full.sweep, 4);
  EXPECT_EQ(full.eigen, "jacobi");
  EXPECT_EQ(full.graph, "knn");
  EXPECT_EQ(full.knn, 6);

  const auto minimal =
      serve::request_from_json(json::parse(R"({"data": "t.csv"})"));
  EXPECT_EQ(minimal.data, "t.csv");
  EXPECT_EQ(minimal.clusters, 0);
  EXPECT_EQ(minimal.order, 2);
  EXPECT_EQ(minimal.per_cluster, 1);
  EXPECT_EQ(minimal.sweep, 0);
  EXPECT_TRUE(minimal.metric.empty());
}

TEST(ServeRequest, RejectsUnknownKeysAndWrongTypes) {
  EXPECT_THROW((void)serve::request_from_json(json::parse("{}")),
               std::invalid_argument);  // data required
  EXPECT_THROW((void)serve::request_from_json(json::parse("[1]")),
               std::invalid_argument);  // not an object
  EXPECT_THROW((void)serve::request_from_json(
                   json::parse(R"({"data": "t.csv", "clsuters": 3})")),
               std::invalid_argument);  // typo'd key must not be ignored
  EXPECT_THROW((void)serve::request_from_json(
                   json::parse(R"({"data": "t.csv", "clusters": "3"})")),
               std::invalid_argument);  // wrong type
  EXPECT_THROW((void)serve::request_from_json(
                   json::parse(R"({"data": "t.csv", "clusters": 2.5})")),
               std::invalid_argument);  // non-integer count
}

// --- Channel classification ----------------------------------------------

TEST(ServeChannels, ExtendedRangeIdsAreSensorsAndReservedBandIsNot) {
  const timeseries::TimeGrid grid(0, 30, 8);
  const timeseries::MultiTrace trace(
      grid, {5, 40, 41, 99, 150, 199, 200, 750,
             sim::DatasetChannels::kVavBase,
             sim::DatasetChannels::kOccupancy,
             sim::DatasetChannels::kLighting});
  const auto sets = serve::classify_channels(trace);
  EXPECT_EQ(sets.sensors,
            (std::vector<timeseries::ChannelId>{5, 99, 200, 750}));
  EXPECT_EQ(sets.thermostats, (std::vector<timeseries::ChannelId>{40, 41}));
  EXPECT_EQ(sets.inputs,
            (std::vector<timeseries::ChannelId>{
                sim::DatasetChannels::kVavBase,
                sim::DatasetChannels::kOccupancy,
                sim::DatasetChannels::kLighting}));
}

TEST(ServeChannels, ThrowsWithoutEnoughSensorsOrInputs) {
  const timeseries::TimeGrid grid(0, 30, 8);
  EXPECT_THROW(
      (void)serve::classify_channels(timeseries::MultiTrace(grid, {1, 2})),
      std::runtime_error);  // no inputs
  EXPECT_THROW((void)serve::classify_channels(timeseries::MultiTrace(
                   grid, {1, sim::DatasetChannels::kOccupancy,
                          sim::DatasetChannels::kLighting})),
               std::runtime_error);  // one sensor
}

// --- AnalysisService ------------------------------------------------------

/// Shared small trace CSV on disk (simulation costs a few hundred ms).
const std::string& trace_csv_path() {
  static const std::string path = [] {
    sim::DatasetConfig config;
    config.days = 14;
    config.failure_days = 2;
    const auto dataset = sim::generate_dataset(config);
    const std::string p = testing::TempDir() + "test_serve_trace.csv";
    timeseries::write_csv_file(p, dataset.trace);
    return p;
  }();
  return path;
}

serve::AnalyzeRequest small_request() {
  serve::AnalyzeRequest request;
  request.data = trace_csv_path();
  request.clusters = 2;
  return request;
}

TEST(ServeService, RepeatRequestsAreByteIdenticalAndHitTheCache) {
  serve::AnalysisService service;
  const auto first = service.analyze(small_request());
  EXPECT_NE(first.find("reduced second-order model"), std::string::npos);
  const auto misses_after_first = service.cache().totals().misses;
  const auto second = service.analyze(small_request());
  EXPECT_EQ(first, second);
  // Every stage (and the trace load) came from the cache the second time.
  EXPECT_EQ(service.cache().totals().misses, misses_after_first);
  EXPECT_GT(service.cache().totals().hits, 0u);
}

TEST(ServeService, CacheOnAndOffProduceIdenticalReports) {
  serve::ServiceConfig no_cache;
  no_cache.cache_enabled = false;
  serve::AnalysisService cached;
  serve::AnalysisService uncached(no_cache);
  EXPECT_EQ(cached.analyze(small_request()),
            uncached.analyze(small_request()));
  EXPECT_EQ(uncached.cache().size(), 0u);
}

TEST(ServeService, ConcurrentRequestsBatchAndMatch) {
  // Request threads (outside any parallel region) racing the same
  // request must coalesce onto one prepared context and produce
  // byte-identical reports.
  constexpr int kThreads = 4;
  serve::AnalysisService service;
  std::vector<std::string> reports(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { reports[t] = service.analyze(small_request()); });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(reports[t], reports[0]) << "thread " << t;
  }
  EXPECT_EQ(reports[0], service.analyze(small_request()));
}

TEST(ServeService, SweepRequestSharesThePreparedStages) {
  serve::AnalysisService service;
  auto request = small_request();
  (void)service.analyze(request);  // warm Step-1
  const auto misses_before = service.cache().totals().misses;
  request.sweep = 2;
  const auto report = service.analyze(request);
  EXPECT_NE(report.find("strategy sweep"), std::string::npos);
  // The sweep re-used every prepared Step-1 stage: no new stage builds
  // besides the per-seed Step-2/3 work, which is uncached by design.
  EXPECT_EQ(service.cache().totals().misses, misses_before);
}

TEST(ServeService, InvalidOptionValuesThrow) {
  serve::AnalysisService service;
  auto bad_eigen = small_request();
  bad_eigen.eigen = "cholesky";
  EXPECT_THROW((void)service.analyze(bad_eigen), std::exception);
  auto bad_path = small_request();
  bad_path.data = "/nonexistent/nope.csv";
  EXPECT_THROW((void)service.analyze(bad_path), std::runtime_error);
}

// --- Socket-level end-to-end ----------------------------------------------

/// Minimal HTTP client: one request, reads to connection close.
std::string http_exchange(std::uint16_t port, const std::string& method,
                          const std::string& path, const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << std::strerror(errno);
  std::string request = method + " " + path + " HTTP/1.1\r\n" +
                        "Host: 127.0.0.1\r\nContent-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body;
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string response_body(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

TEST(ServeServer, EndToEndOverLoopbackSockets) {
  serve::AnalysisService service;
  auditherm::obs::Recorder recorder;
  const auditherm::obs::RecorderScope scope(&recorder);
  serve::ServerConfig config;
  config.port = 0;  // ephemeral
  config.workers = 2;
  serve::Server server(config, service, &recorder);
  server.start();
  ASSERT_GT(server.port(), 0);
  std::thread runner([&] { server.run(); });

  const auto health = http_exchange(server.port(), "GET", "/healthz", "");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(response_body(health), "ok\n");

  // A daemon analysis must match the in-process service call bytewise.
  const std::string body =
      R"({"data": ")" + json::escape(trace_csv_path()) +
      R"(", "clusters": 2})";
  const auto analyzed =
      http_exchange(server.port(), "POST", "/analyze", body);
  EXPECT_NE(analyzed.find("HTTP/1.1 200"), std::string::npos);
  serve::AnalysisService reference;
  EXPECT_EQ(response_body(analyzed), reference.analyze(small_request()));

  const auto bad =
      http_exchange(server.port(), "POST", "/analyze", "{not json");
  EXPECT_NE(bad.find("HTTP/1.1 400"), std::string::npos);
  const auto missing = http_exchange(server.port(), "GET", "/nope", "");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
  const auto wrong_method =
      http_exchange(server.port(), "POST", "/healthz", "");
  EXPECT_NE(wrong_method.find("HTTP/1.1 405"), std::string::npos);

  const auto metrics = http_exchange(server.port(), "GET", "/metrics", "");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find("application/json"), std::string::npos);
  EXPECT_NE(response_body(metrics).find("auditherm.metrics"),
            std::string::npos);

  const auto shutdown =
      http_exchange(server.port(), "POST", "/shutdown", "");
  EXPECT_NE(shutdown.find("HTTP/1.1 200"), std::string::npos);
  runner.join();  // run() drains and exits after /shutdown
  EXPECT_TRUE(server.stopping());
}

TEST(ServeServer, SimulateEndpointReturnsTheFleetManifest) {
  serve::AnalysisService service;
  serve::ServerConfig config;
  config.port = 0;
  config.workers = 2;
  serve::Server server(config, service, nullptr);
  server.start();
  std::thread runner([&] { server.run(); });

  const std::string body = R"({"base_seed": 5, "scenarios": [
    {"name": "e2e-a", "days": 2, "failure_days": 0},
    {"name": "e2e-b", "days": 2, "failure_days": 1,
     "building": "grid", "sensors": 12}
  ]})";
  const auto ok = http_exchange(server.port(), "POST", "/simulate", body);
  EXPECT_NE(ok.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(ok.find("application/json"), std::string::npos);
  const auto manifest = json::parse(response_body(ok));
  EXPECT_EQ(manifest.find("schema")->string, "auditherm.fleet-manifest");
  EXPECT_EQ(manifest.find("buildings")->number, 2.0);
  const auto& scenarios = manifest.find("scenarios")->array;
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].find("name")->string, "e2e-a");

  // The daemon's manifest must match an in-process run of the same
  // decoded request — one code path from spec to fingerprint.
  const auto request = serve::simulate_request_from_json(json::parse(body));
  const auto outcomes = sim::run_fleet(request.specs);
  char expected[24];
  std::snprintf(expected, sizeof(expected), "0x%016llx",
                static_cast<unsigned long long>(outcomes[0].trace_fingerprint));
  EXPECT_EQ(scenarios[0].find("trace_fingerprint")->string, expected);

  const auto bad =
      http_exchange(server.port(), "POST", "/simulate", R"({"dayz": 1})");
  EXPECT_NE(bad.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(response_body(bad).find("dayz"), std::string::npos);
  const auto unparsable =
      http_exchange(server.port(), "POST", "/simulate", "{nope");
  EXPECT_NE(unparsable.find("HTTP/1.1 400"), std::string::npos);
  const auto wrong_method =
      http_exchange(server.port(), "GET", "/simulate", "");
  EXPECT_NE(wrong_method.find("HTTP/1.1 405"), std::string::npos);

  const auto shutdown =
      http_exchange(server.port(), "POST", "/shutdown", "");
  EXPECT_NE(shutdown.find("HTTP/1.1 200"), std::string::npos);
  runner.join();
}


// --- Input plans over the wire --------------------------------------------

TEST(ServeRequest, DecodesTheInputsObject) {
  const auto request = serve::request_from_json(json::parse(
      R"({"data": "t.csv", "inputs": {"occupancy": "estimated",)"
      R"( "round": true, "clamp_max": 120}})"));
  EXPECT_EQ(request.occupancy, "estimated");
  EXPECT_TRUE(request.occupancy_round);
  EXPECT_EQ(request.occupancy_clamp, 120.0);

  // Defaults when the object is absent: the ground-truth path.
  const auto plain =
      serve::request_from_json(json::parse(R"({"data": "t.csv"})"));
  EXPECT_TRUE(plain.occupancy.empty());
  EXPECT_FALSE(plain.occupancy_round);
  EXPECT_TRUE(std::isnan(plain.occupancy_clamp));
}

/// The decode error for `body` names the full key path `path`.
void expect_key_path_error(const std::string& body, const std::string& path) {
  try {
    (void)serve::request_from_json(json::parse(body));
    FAIL() << "expected std::invalid_argument for " << body;
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos)
        << "message '" << error.what() << "' lacks key path '" << path << "'";
  }
}

TEST(ServeRequest, InputsErrorsCarryTheFullKeyPath) {
  expect_key_path_error(R"({"data": "t.csv", "inputs": 3})", "'inputs'");
  expect_key_path_error(
      R"({"data": "t.csv", "inputs": {"occupancy": 1}})", "inputs.occupancy");
  expect_key_path_error(
      R"({"data": "t.csv", "inputs": {"occupancy": "psychic"}})",
      "inputs.occupancy");
  expect_key_path_error(
      R"({"data": "t.csv", "inputs": {"round": "yes"}})", "inputs.round");
  expect_key_path_error(
      R"({"data": "t.csv", "inputs": {"clamp_max": "120"}})",
      "inputs.clamp_max");
  expect_key_path_error(
      R"({"data": "t.csv", "inputs": {"clammp_max": 120}})",
      "inputs.clammp_max");  // typo'd key must not be ignored
}

serve::AnalyzeRequest estimated_request() {
  auto request = small_request();
  request.occupancy = "estimated";
  return request;
}

TEST(ServeService, OccupancySourcesNeverAliasInTheCache) {
  serve::AnalysisService service;
  (void)service.analyze(small_request());  // warm the ground-truth stages
  const auto misses_truth = service.cache().totals().misses;

  // The estimated plan folds its fingerprint into every stage key, so the
  // warmed ground-truth artifacts must NOT satisfy it...
  const auto estimated = service.analyze(estimated_request());
  EXPECT_NE(estimated.find("occupancy input: estimated from CO2 mass balance"),
            std::string::npos);
  EXPECT_GT(service.cache().totals().misses, misses_truth);

  // ...while repeating either source is pure cache hits, byte-identical.
  const auto misses_both = service.cache().totals().misses;
  EXPECT_EQ(service.analyze(estimated_request()), estimated);
  EXPECT_EQ(service.analyze(small_request()),
            service.analyze(small_request()));
  EXPECT_EQ(service.cache().totals().misses, misses_both);

  // Clamp/round options key separately from the plain estimate too.
  auto clamped = estimated_request();
  clamped.occupancy_round = true;
  (void)service.analyze(clamped);
  EXPECT_GT(service.cache().totals().misses, misses_both);
}

TEST(ServeService, UnknownOccupancySourceThrows) {
  serve::AnalysisService service;
  auto bad = small_request();
  bad.occupancy = "psychic";
  EXPECT_THROW((void)service.analyze(bad), std::exception);
}

TEST(ServeServer, EstimatedOccupancyMatchesTheInProcessServiceBytewise) {
  serve::AnalysisService service;
  serve::ServerConfig config;
  config.port = 0;
  config.workers = 2;
  serve::Server server(config, service, nullptr);
  server.start();
  ASSERT_GT(server.port(), 0);
  std::thread runner([&] { server.run(); });

  const std::string body =
      R"({"data": ")" + json::escape(trace_csv_path()) +
      R"(", "clusters": 2, "inputs": {"occupancy": "estimated"}})";
  const auto analyzed =
      http_exchange(server.port(), "POST", "/analyze", body);
  EXPECT_NE(analyzed.find("HTTP/1.1 200"), std::string::npos);

  // One code path from request to text: the daemon report equals the
  // in-process call bytewise, and both name the estimated source.
  serve::AnalysisService reference;
  const auto expected = reference.analyze(estimated_request());
  EXPECT_EQ(response_body(analyzed), expected);
  EXPECT_NE(expected.find("occupancy input: estimated from CO2 mass balance"),
            std::string::npos);

  const auto bad = http_exchange(
      server.port(), "POST", "/analyze",
      R"({"data": "t.csv", "inputs": {"occupancy": "psychic"}})");
  EXPECT_NE(bad.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(response_body(bad).find("inputs.occupancy"), std::string::npos);

  const auto shutdown =
      http_exchange(server.port(), "POST", "/shutdown", "");
  EXPECT_NE(shutdown.find("HTTP/1.1 200"), std::string::npos);
  runner.join();
}


}  // namespace
