// Tests for the model-based HVAC control extension: controller decisions
// and closed-loop behavior against the zonal plant.

#include "auditherm/control/controllers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "auditherm/control/closed_loop.hpp"
#include "auditherm/core/pipeline.hpp"
#include "auditherm/sim/dataset.hpp"

namespace control = auditherm::control;
namespace hvac = auditherm::hvac;
namespace sim = auditherm::sim;
namespace sysid = auditherm::sysid;
namespace linalg = auditherm::linalg;
using linalg::Matrix;
using linalg::Vector;

namespace {

constexpr auto kNoon = 12 * 60;
constexpr auto kMidnight = 0;

/// A hand-built stable model over two sensors with the extended input
/// layout [f1..f4, supply, occupants, lighting, ambient]: supply air
/// drives temperature toward the supply temperature at a rate scaled by
/// flow, plus occupant heat.
sysid::ThermalModel toy_model() {
  const double a = 0.90;
  Matrix A{{a, 0.0}, {0.0, a}};
  Matrix B(2, 8);
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t v = 0; v < 4; ++v) B(s, v) = 0.0;  // flow alone: 0
    B(s, 4) = 0.10;   // supply temperature pull (crude but directional)
    B(s, 5) = 0.004;  // occupant heat
    B(s, 6) = 0.05;   // lighting
    B(s, 7) = 0.0;    // ambient (sealed)
  }
  return sysid::ThermalModel(sysid::ModelOrder::kFirst, A, {}, B, {1, 27},
                             {101, 102, 103, 104, 113, 110, 111, 112});
}

control::ControlContext context_at(auditherm::timeseries::Minutes t,
                                   Vector temps, double occupants = 0.0) {
  control::ControlContext ctx;
  ctx.time = t;
  ctx.sensor_temps_c = std::move(temps);
  ctx.exogenous_forecast = Matrix(8, 3);
  for (std::size_t k = 0; k < 8; ++k) {
    ctx.exogenous_forecast(k, 0) = occupants;
    ctx.exogenous_forecast(k, 1) = occupants > 0 ? 1.0 : 0.0;
    ctx.exogenous_forecast(k, 2) = 10.0;
  }
  return ctx;
}

}  // namespace

// ---------------------------------------------------------------------------
// RuleBasedController
// ---------------------------------------------------------------------------

TEST(RuleBased, TracksThermostatProgram) {
  control::RuleBasedController controller(hvac::ThermostatConfig{},
                                          hvac::Schedule{}, {40, 41});
  EXPECT_EQ(controller.sensor_ids(), (std::vector<int>{40, 41}));

  // Warm room at noon: cooling supply, flow above the base.
  auto cmd = controller.decide(context_at(kNoon, {24.0, 24.0}));
  EXPECT_DOUBLE_EQ(cmd.supply_temp_c,
                   hvac::ThermostatConfig{}.cooling_supply_c);
  EXPECT_GT(cmd.flow_per_vav_m3_s,
            hvac::ThermostatConfig{}.base_flow_m3_s - 1e-9);

  // Midnight: trickle.
  controller.reset();
  cmd = controller.decide(context_at(kMidnight, {24.0, 24.0}));
  EXPECT_NEAR(cmd.flow_per_vav_m3_s, hvac::VavConfig{}.min_flow_m3_s, 1e-6);
}

TEST(RuleBased, RequiresThermostats) {
  EXPECT_THROW(control::RuleBasedController(hvac::ThermostatConfig{},
                                            hvac::Schedule{}, {}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ModelPredictiveController
// ---------------------------------------------------------------------------

TEST(Mpc, ValidatesConstruction) {
  EXPECT_THROW(
      control::ModelPredictiveController(toy_model(), 0, hvac::Schedule{}),
      std::invalid_argument);
  // Wrong input layout (paper inputs, no supply channel).
  Matrix A = Matrix::identity(1) * 0.9;
  Matrix B(1, 7);
  sysid::ThermalModel bad(sysid::ModelOrder::kFirst, A, {}, B, {1},
                          {101, 102, 103, 104, 110, 111, 112});
  EXPECT_THROW(
      control::ModelPredictiveController(bad, 4, hvac::Schedule{}),
      std::invalid_argument);
  control::MpcOptions empty;
  empty.flow_levels.clear();
  EXPECT_THROW(control::ModelPredictiveController(toy_model(), 4,
                                                  hvac::Schedule{}, empty),
               std::invalid_argument);
}

TEST(Mpc, CoolsAHotRoom) {
  control::ModelPredictiveController mpc(toy_model(), 4, hvac::Schedule{});
  const auto cmd = mpc.decide(context_at(kNoon, {26.0, 26.0}, 80.0));
  EXPECT_DOUBLE_EQ(cmd.supply_temp_c, 13.0);
  EXPECT_TRUE(std::isfinite(mpc.last_plan_cost()));
}

TEST(Mpc, HeatsAColdRoomAtVentilationFloor) {
  control::ModelPredictiveController mpc(toy_model(), 4, hvac::Schedule{});
  const auto cmd = mpc.decide(context_at(kNoon, {15.0, 15.0}, 0.0));
  EXPECT_DOUBLE_EQ(cmd.supply_temp_c, 28.0);
  EXPECT_DOUBLE_EQ(cmd.flow_per_vav_m3_s, 0.05);  // reheat at min airflow
}

TEST(Mpc, IdlesAtNight) {
  control::ModelPredictiveController mpc(toy_model(), 4, hvac::Schedule{});
  const auto cmd = mpc.decide(context_at(kMidnight, {26.0, 26.0}));
  EXPECT_DOUBLE_EQ(cmd.flow_per_vav_m3_s, 0.05);
  EXPECT_DOUBLE_EQ(cmd.supply_temp_c, 18.0);
}

TEST(Mpc, ValidatesContext) {
  control::ModelPredictiveController mpc(toy_model(), 4, hvac::Schedule{});
  auto ctx = context_at(kNoon, {21.0});  // wrong sensor count
  EXPECT_THROW((void)mpc.decide(ctx), std::invalid_argument);
  ctx = context_at(kNoon, {21.0, 21.0});
  ctx.exogenous_forecast = Matrix(0, 3);
  EXPECT_THROW((void)mpc.decide(ctx), std::invalid_argument);
}

TEST(Mpc, EnergyWeightThrottlesFlow) {
  // With a mildly warm room, a heavy energy price must pick less flow
  // than a free-energy objective.
  control::MpcOptions cheap;
  cheap.objective.energy_weight = 0.0;
  control::MpcOptions pricey;
  pricey.objective.energy_weight = 50.0;
  control::ModelPredictiveController mpc_cheap(toy_model(), 4,
                                               hvac::Schedule{}, cheap);
  control::ModelPredictiveController mpc_pricey(toy_model(), 4,
                                                hvac::Schedule{}, pricey);
  const auto ctx = context_at(kNoon, {22.4, 22.4}, 40.0);
  const auto cmd_cheap = mpc_cheap.decide(ctx);
  auto ctx2 = ctx;
  const auto cmd_pricey = mpc_pricey.decide(ctx2);
  EXPECT_LE(cmd_pricey.flow_per_vav_m3_s, cmd_cheap.flow_per_vav_m3_s);
}

// ---------------------------------------------------------------------------
// Closed loop
// ---------------------------------------------------------------------------

namespace {

control::ClosedLoopConfig small_loop() {
  control::ClosedLoopConfig config;
  config.days = 5;
  config.comfort_zones = {{3, 13, 23}, {26, 27, 32}};
  return config;
}

}  // namespace

TEST(ClosedLoop, RuleBaselineProducesSaneMetrics) {
  auto config = small_loop();
  control::RuleBasedController controller(hvac::ThermostatConfig{},
                                          config.schedule, {40, 41});
  const auto metrics = control::run_closed_loop(config, controller);
  EXPECT_GT(metrics.scored_samples, 10u);
  EXPECT_GE(metrics.comfort_violation_fraction, 0.0);
  EXPECT_LE(metrics.comfort_violation_fraction, 1.0);
  EXPECT_GT(metrics.coil_energy_kwh, 0.0);
  EXPECT_GT(metrics.fan_energy_kwh, 0.0);
  EXPECT_LT(metrics.mean_abs_deviation_c, 5.0);
}

TEST(ClosedLoop, DeterministicForSameSeed) {
  auto config = small_loop();
  control::RuleBasedController a(hvac::ThermostatConfig{}, config.schedule,
                                 {40, 41});
  control::RuleBasedController b(hvac::ThermostatConfig{}, config.schedule,
                                 {40, 41});
  const auto ma = control::run_closed_loop(config, a);
  const auto mb = control::run_closed_loop(config, b);
  EXPECT_DOUBLE_EQ(ma.coil_energy_kwh, mb.coil_energy_kwh);
  EXPECT_DOUBLE_EQ(ma.mean_abs_deviation_c, mb.mean_abs_deviation_c);
}

TEST(ClosedLoop, Validation) {
  auto config = small_loop();
  control::RuleBasedController controller(hvac::ThermostatConfig{},
                                          config.schedule, {40, 41});
  auto bad = config;
  bad.days = 0;
  EXPECT_THROW((void)control::run_closed_loop(bad, controller),
               std::invalid_argument);
  bad = config;
  bad.comfort_zones.clear();
  EXPECT_THROW((void)control::run_closed_loop(bad, controller),
               std::invalid_argument);
  bad = config;
  bad.comfort_zones = {{999}};
  EXPECT_THROW((void)control::run_closed_loop(bad, controller),
               std::invalid_argument);
}

TEST(ClosedLoop, MpcOnIdentifiedModelRuns) {
  // End-to-end: identify a reduced model from a dataset, then control the
  // plant with it.
  sim::DatasetConfig data_config;
  data_config.days = 42;
  data_config.failure_days = 6;
  const auto dataset = sim::generate_dataset(data_config);

  sysid::ModelEstimator estimator({3, 27}, dataset.extended_input_ids(),
                                  sysid::ModelOrder::kSecond);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);
  const auto model = estimator.fit(dataset.trace, mode_mask);

  control::ModelPredictiveController mpc(model, dataset.plan.vav_count(),
                                         dataset.schedule);
  auto config = small_loop();
  const auto metrics = control::run_closed_loop(config, mpc);
  EXPECT_GT(metrics.scored_samples, 10u);
  EXPECT_LT(metrics.mean_abs_deviation_c, 4.0);
  EXPECT_TRUE(std::isfinite(metrics.total_energy_kwh()));
}

// --- Fleet-scored control ---------------------------------------------------

#include "auditherm/control/fleet_control.hpp"

TEST(FleetControl, LoopSeedFollowsTheEntitySeedContract) {
  // The PR-8 contract: building `index` of a fleet based at `base_seed`
  // scores under derive_entity_seed(base_seed, index), with the weather
  // and occupancy sub-seeds one derivation deeper. Pinning the derivation
  // keeps fleet-scored control runs reproducible per building.
  sim::ScenarioSpec spec;
  spec.name = "pin";
  for (const std::uint64_t base : {77ull, 12345ull}) {
    for (const std::size_t index : {std::size_t{0}, std::size_t{3}}) {
      const auto loop = control::fleet_loop_config(spec, base, index);
      EXPECT_EQ(loop.seed, sim::derive_entity_seed(base, index));
      EXPECT_EQ(loop.weather.seed, sim::derive_entity_seed(loop.seed, 1));
      EXPECT_EQ(loop.occupancy.seed, sim::derive_entity_seed(loop.seed, 2));
    }
  }
  // Distinct buildings never share a seed.
  EXPECT_NE(control::fleet_loop_config(spec, 77, 0).seed,
            control::fleet_loop_config(spec, 77, 1).seed);
}

TEST(FleetControl, LoopConfigComposesFromTheScenario) {
  sim::ScenarioSpec spec;
  spec.name = "winter";
  spec.season = sim::Season::kWinter;
  const auto loop = control::fleet_loop_config(spec, 77, 0, 5);
  const auto config = sim::scenario_config(spec);
  EXPECT_EQ(loop.days, 5u);
  EXPECT_EQ(loop.step, config.sample_step);
  EXPECT_EQ(loop.control_dt_s, config.control_dt_s);
  EXPECT_EQ(loop.weather.end_mean_c, config.weather.end_mean_c);
  // Sub-seeds are re-derived, not copied from the identification config.
  EXPECT_NE(loop.weather.seed, config.weather.seed);
  EXPECT_NE(loop.occupancy.seed, config.occupancy.seed);
}

TEST(FleetControl, InputPlanSwapsOnlyTheOccupancySlot) {
  sim::DatasetConfig config;
  config.days = 2;
  config.failure_days = 0;
  const auto dataset = sim::generate_dataset(config);
  const auto ids = dataset.extended_input_ids();

  const auto truth = control::fleet_input_plan(
      dataset, control::OccupancySource::kGroundTruth);
  EXPECT_TRUE(truth.pure_ground_truth());
  EXPECT_EQ(truth.channel_ids(), ids);

  const auto estimated = control::fleet_input_plan(
      dataset, control::OccupancySource::kCo2Estimated);
  ASSERT_EQ(estimated.slots.size(), ids.size());
  for (std::size_t s = 0; s < ids.size(); ++s) {
    if (ids[s] == sim::DatasetChannels::kOccupancy) {
      EXPECT_EQ(estimated.slots[s].source, sysid::InputSource::kCo2Estimated);
      EXPECT_EQ(estimated.slots[s].co2.vav_flows, dataset.vav_ids());
    } else {
      EXPECT_EQ(estimated.slots[s].source, sysid::InputSource::kGroundTruth);
      EXPECT_EQ(estimated.slots[s].channel, ids[s]);
    }
  }

  const auto prior = control::fleet_input_plan(
      dataset, control::OccupancySource::kSchedulePrior);
  const auto occ_slot = std::find_if(
      prior.slots.begin(), prior.slots.end(), [](const auto& slot) {
        return slot.source == sysid::InputSource::kSchedulePrior;
      });
  ASSERT_NE(occ_slot, prior.slots.end());
  EXPECT_GT(occ_slot->occupied_level, occ_slot->unoccupied_level);
}

TEST(FleetControl, RejectsNonPaperHallSpecs) {
  sim::ScenarioSpec spec;
  spec.name = "tower";
  spec.building = sim::BuildingKind::kGrid;
  try {
    (void)control::score_fleet_control({spec});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("tower"), std::string::npos);
  }
}

TEST(FleetControl, ScoringIsReproducibleAndGroundTruthHasZeroMae) {
  // Small spec + ground-truth occupancy keeps this fast; the estimated
  // path is exercised end-to-end by bench_occupancy_loop.
  sim::ScenarioSpec spec;
  spec.name = "small";
  spec.days = 12;
  spec.failure_days = 0;
  control::FleetControlOptions options;
  options.days = 2;
  options.occupancy = control::OccupancySource::kGroundTruth;

  const auto first = control::score_fleet_control({spec}, options);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].loop_seed, sim::derive_entity_seed(options.base_seed, 0));
  EXPECT_EQ(first[0].occupancy_mae, 0.0);
  EXPECT_GE(first[0].zones, 2u);
  EXPECT_GT(first[0].thermostat.scored_samples, 0u);
  EXPECT_GT(first[0].mpc.scored_samples, 0u);
  EXPECT_TRUE(std::isfinite(first[0].mpc.total_energy_kwh()));

  const auto second = control::score_fleet_control({spec}, options);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].mpc.mean_abs_deviation_c,
            second[0].mpc.mean_abs_deviation_c);
  EXPECT_EQ(first[0].mpc.total_energy_kwh(), second[0].mpc.total_energy_kwh());
  EXPECT_EQ(first[0].thermostat.comfort_violation_fraction,
            second[0].thermostat.comfort_violation_fraction);
}
