
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sysid/diagnostics.cpp" "src/sysid/CMakeFiles/auditherm_sysid.dir/diagnostics.cpp.o" "gcc" "src/sysid/CMakeFiles/auditherm_sysid.dir/diagnostics.cpp.o.d"
  "/root/repo/src/sysid/estimator.cpp" "src/sysid/CMakeFiles/auditherm_sysid.dir/estimator.cpp.o" "gcc" "src/sysid/CMakeFiles/auditherm_sysid.dir/estimator.cpp.o.d"
  "/root/repo/src/sysid/evaluation.cpp" "src/sysid/CMakeFiles/auditherm_sysid.dir/evaluation.cpp.o" "gcc" "src/sysid/CMakeFiles/auditherm_sysid.dir/evaluation.cpp.o.d"
  "/root/repo/src/sysid/kalman.cpp" "src/sysid/CMakeFiles/auditherm_sysid.dir/kalman.cpp.o" "gcc" "src/sysid/CMakeFiles/auditherm_sysid.dir/kalman.cpp.o.d"
  "/root/repo/src/sysid/model.cpp" "src/sysid/CMakeFiles/auditherm_sysid.dir/model.cpp.o" "gcc" "src/sysid/CMakeFiles/auditherm_sysid.dir/model.cpp.o.d"
  "/root/repo/src/sysid/occupancy_estimation.cpp" "src/sysid/CMakeFiles/auditherm_sysid.dir/occupancy_estimation.cpp.o" "gcc" "src/sysid/CMakeFiles/auditherm_sysid.dir/occupancy_estimation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/auditherm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/hvac/CMakeFiles/auditherm_hvac.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/auditherm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
