# Empty dependencies file for comfort_monitor.
# This may be replaced when dependencies are built.
