#pragma once

/// \file service.hpp
/// The transport-independent analysis service behind `auditherm serve`
/// and the one-shot `auditherm analyze` subcommand.
///
/// Both front-ends decode their inputs into one AnalyzeRequest and render
/// the result through the same report builder, which is what makes a
/// daemon response byte-identical to the one-shot CLI's stdout for the
/// same inputs — there is exactly one code path from request to text.
///
/// Request batching (DESIGN.md §"Serving"): concurrent requests that
/// share a *stage-key prefix* — same trace bytes and same Step-1-relevant
/// options (metric, graph, eigen, clusters, knn), regardless of order /
/// per-cluster / sweep — coalesce onto one prepared Step-1 context the
/// way run_strategy_sweep fans its cases out over one prepare() call. The
/// first request in leads and prepares through the shared StageCache;
/// joiners block until the context publishes, then run Steps 2-3 against
/// it. The context is held by weak_ptr, so a batch lives exactly as long
/// as some request is using it; the underlying artifacts stay in the
/// budgeted StageCache and re-prepare as pure cache hits later.

#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "auditherm/core/pipeline.hpp"
#include "auditherm/core/stage_cache.hpp"
#include "auditherm/serve/json.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::serve {

/// One analysis request — a field per `auditherm analyze` flag, with the
/// same defaults, so CLI args and JSON bodies decode into the same shape.
struct AnalyzeRequest {
  std::string data;     ///< trace CSV path (required)
  std::string metric;   ///< "correlation" (default) | "euclidean"
  long clusters = 0;    ///< 0 = eigengap choice
  long order = 2;       ///< model order, 1 | 2
  long per_cluster = 1; ///< representatives per cluster
  long sweep = 0;       ///< seeds for the strategy sweep (0 = none)
  std::string eigen;    ///< "" = auto | jacobi | tridiagonal | lanczos
  std::string graph;    ///< "" = epsilon | knn
  long knn = 0;         ///< neighbors for --graph knn (0 = default)
  /// Sliding-window length in rows for the streaming-identification
  /// section (`analyze --stream`); 0 = off, -1 = growing window.
  long stream = 0;
  /// Occupancy input source (`--occupancy` / JSON "inputs" object):
  /// "" or "truth" = the ground-truth channel, "estimated" = CO2
  /// mass-balance estimate calibrated on the training split, "schedule" =
  /// two-level HVAC-schedule prior.
  std::string occupancy;
  /// Round the estimated occupancy to whole occupants (inputs.round).
  bool occupancy_round = false;
  /// Upper clamp on the estimate (inputs.clamp_max; NaN = none).
  double occupancy_clamp = std::numeric_limits<double>::quiet_NaN();
};

/// Decode a JSON object body ({"data": "...", "clusters": 3, ...}) into a
/// request. Unknown keys and wrongly typed values throw
/// std::invalid_argument — a typo'd option silently falling back to a
/// default would return a *valid-looking but wrong* report.
[[nodiscard]] AnalyzeRequest request_from_json(const json::Value& body);

/// Partition a loaded trace's channels by the library conventions:
/// ids 40/41 are the HVAC thermostats, other ids < 100 are wireless
/// temperature sensors, 101..109 VAV flows, 110/111/112 the
/// occupancy/lighting/ambient inputs. Ids >= 200 are *extended-range*
/// temperature sensors — synthetic campus-scale buildings outgrow the
/// two-digit id space of the paper's auditorium; 100..199 stays reserved.
struct ChannelSets {
  std::vector<timeseries::ChannelId> sensors;
  std::vector<timeseries::ChannelId> thermostats;
  std::vector<timeseries::ChannelId> inputs;  ///< [flows..., occ, light, amb]
};

/// Classify `trace`'s channels; throws std::runtime_error when fewer than
/// 2 sensors or 2 inputs are present (the pipeline needs both).
[[nodiscard]] ChannelSets classify_channels(
    const timeseries::MultiTrace& trace);

/// Build the identification input plan a request asks for over the
/// classified inputs: every slot ground truth except the occupancy
/// channel, which follows request.occupancy ("estimated" swaps in a CO2
/// mass-balance slot fed by the trace's VAV flows, "schedule" a two-level
/// schedule prior). Throws core::cli::UsageError for unknown occupancy
/// values; "" / "truth" return a pure ground-truth plan.
[[nodiscard]] sysid::InputPlan input_plan_for(const AnalyzeRequest& request,
                                              const ChannelSets& sets);

/// Human-readable strategy name used in sweep tables.
[[nodiscard]] const char* strategy_name(core::SelectionStrategy strategy);

/// Service configuration.
struct ServiceConfig {
  /// Byte budget for the shared stage cache (0 = unlimited). The daemon
  /// front-end sets this from --cache-budget-mb.
  core::CacheBudget cache_budget;
  /// When false the stage cache is bypassed entirely (the CLI's
  /// --cache off); results are bitwise identical either way.
  bool cache_enabled = true;
};

/// Stateful analysis engine: owns the shared StageCache and turns
/// AnalyzeRequests into report strings. Thread-safe — serve's worker
/// threads call analyze() concurrently; the one-shot CLI constructs a
/// short-lived instance and calls it once.
class AnalysisService {
 public:
  explicit AnalysisService(ServiceConfig config = {});
  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  /// Run one analysis and return the report text (the one-shot CLI's
  /// exact stdout). Throws cli-level std::invalid_argument for bad option
  /// values and std::runtime_error for data problems.
  [[nodiscard]] std::string analyze(const AnalyzeRequest& request);

  /// The stage-key-prefix identity of a request: requests with equal keys
  /// share every Step-1 artifact and batch onto one prepared context.
  /// Loads (and caches) the trace to fingerprint its bytes.
  [[nodiscard]] std::uint64_t prefix_key(const AnalyzeRequest& request);

  [[nodiscard]] const core::StageCache& cache() const noexcept {
    return cache_;
  }
  [[nodiscard]] core::StageCache& cache() noexcept { return cache_; }

 private:
  /// Everything Step-2/3 of a request needs from the shared Step-1 work.
  struct PreparedContext {
    std::shared_ptr<const timeseries::MultiTrace> trace;
    std::uint64_t raw_hash = 0;  ///< FNV-1a of the CSV bytes
    ChannelSets sets;
    core::DataSplit split;
    core::StageArtifacts artifacts;
  };

  /// In-flight/live batch bookkeeping per prefix key (guarded by
  /// batch_mutex_). Mirrors the StageCache entry protocol: one leader
  /// builds, joiners wait on batch_cv_; ctx is weak so a finished batch
  /// releases its pin on the artifacts.
  struct BatchSlot {
    bool building = false;
    std::weak_ptr<const PreparedContext> ctx;
  };

  /// Load a trace CSV, memoized in the stage cache under the raw byte
  /// hash (stage "trace_load") so repeated requests against the same file
  /// skip the parse. Returns the trace and its byte hash.
  [[nodiscard]] std::pair<std::shared_ptr<const timeseries::MultiTrace>,
                          std::uint64_t>
  load_trace(const std::string& path);

  /// Translate request options into a pipeline configuration (validates
  /// eigen/graph values; throws std::invalid_argument on unknown ones).
  [[nodiscard]] static core::PipelineConfig make_config(
      const AnalyzeRequest& request);

  [[nodiscard]] static std::uint64_t prefix_key_for(
      std::uint64_t raw_hash, const AnalyzeRequest& request);

  /// Fetch or build the shared Step-1 context for a request (the batch
  /// entry point).
  [[nodiscard]] std::shared_ptr<const PreparedContext> prepare_context(
      const AnalyzeRequest& request,
      std::shared_ptr<const timeseries::MultiTrace> trace,
      std::uint64_t raw_hash);

  ServiceConfig config_;
  core::StageCache cache_;

  std::mutex batch_mutex_;
  std::condition_variable batch_cv_;
  std::unordered_map<std::uint64_t, BatchSlot> batches_;
};

}  // namespace auditherm::serve
