// Table II: 99th-percentile cluster-mean prediction error for the sensor
// selection methods, with 2 correlation-based clusters and 1 sensor per
// cluster.
//
// Paper values (degC): SMS 0.38, SRS 0.73, RS 1.07, Thermostats 1.89,
// GP 1.53. Expected shape: SMS < SRS < RS < GP/Thermostats — clustering-
// aware selection beats cluster-blind baselines, and the thermostats
// (both in the cool front zone) are worst.

#include "bench_common.hpp"
#include "auditherm/core/parallel.hpp"

using namespace auditherm;

namespace {

/// Average the 99th-percentile error over several seeds for the random
/// strategies so one lucky draw doesn't misrank them. Seeds fan out over
/// the thread pool; the ordered reduction keeps the sum (and so the mean)
/// bitwise identical to the serial ascending-seed loop.
template <typename MakeSelection>
double mean_p99(const timeseries::MultiTrace& validation,
                const selection::ClusterSets& clusters,
                MakeSelection&& make, int seeds) {
  const double total = core::parallel_reduce(
      std::size_t{0}, static_cast<std::size_t>(seeds), 1, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double part = 0.0;
        for (std::size_t s = lo; s < hi; ++s) {
          const auto sel = make(static_cast<std::uint64_t>(s + 1));
          part += selection::evaluate_cluster_mean_prediction(validation,
                                                              clusters, sel)
                      .percentile(99.0);
        }
        return part;
      },
      [](double acc, double part) { return acc + part; });
  return total / seeds;
}

}  // namespace

int main() {
  const bench::ObsSession obs_session;
  bench::print_header(
      "Table II: 99th-percentile cluster-mean error, 2 clusters (degC)");
  const auto dataset = bench::make_standard_dataset();
  const auto split = bench::standard_split(dataset);
  const auto mode_mask = dataset.schedule.mode_mask(dataset.trace.grid(),
                                                    hvac::Mode::kOccupied);

  const auto validation = dataset.trace.filter_rows(
      core::and_masks(split.validation_mask, mode_mask));

  // Correlation-based clustering (Section V decides it groups sensors more
  // consistently); the eigengap picks k = 2 on this building. The training
  // view / similarity graph / clustering come from the shared stage cache.
  core::StageCache cache;
  const auto art = bench::prepare_stages(dataset, split, cache);
  const timeseries::TraceView& training = art.training;
  const auto& clusters = *art.clusters;
  std::printf("clusters found by eigengap: %zu\n", clusters.size());

  const auto eval = [&](const selection::Selection& sel) {
    return selection::evaluate_cluster_mean_prediction(validation, clusters,
                                                       sel)
        .percentile(99.0);
  };

  const double sms = eval(selection::stratified_near_mean(training, clusters));
  const double srs = mean_p99(
      validation, clusters,
      [&](std::uint64_t seed) {
        return selection::stratified_random(clusters, seed);
      },
      25);
  const double rs = mean_p99(
      validation, clusters,
      [&](std::uint64_t seed) {
        return selection::simple_random(training, clusters, seed);
      },
      25);
  const double thermostats = eval(selection::thermostat_baseline(
      dataset.thermostat_ids(), clusters.size()));
  const auto gp_chosen = selection::gp_mutual_information_selection(
      training, dataset.wireless_ids(), clusters.size());
  std::printf("GP chose sensors:");
  for (auto id : gp_chosen) std::printf(" %d", id);
  std::printf("\n");
  const double gp = eval(
      selection::assign_to_clusters(training, clusters, gp_chosen));

  bench::print_row("SMS (stratified near-mean)", 0.38, sms);
  bench::print_row("SRS (stratified random)", 0.73, srs);
  bench::print_row("RS (simple random)", 1.07, rs);
  bench::print_row("Thermostats", 1.89, thermostats);
  bench::print_row("GP (mutual information)", 1.53, gp);

  std::printf("\nshape checks: SMS<SRS: %s | SRS<RS: %s | RS<thermostats: %s "
              "| SMS best overall: %s\n",
              sms < srs ? "yes" : "NO", srs < rs ? "yes" : "NO",
              rs < thermostats ? "yes" : "NO",
              (sms < srs && sms < rs && sms < thermostats && sms < gp)
                  ? "yes"
                  : "NO");
  return 0;
}
