#include "auditherm/sysid/evaluation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "auditherm/core/parallel.hpp"
#include "auditherm/linalg/stats.hpp"

namespace auditherm::sysid {

namespace {

using timeseries::Segment;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::size_t history_rows(ModelOrder order) {
  return order == ModelOrder::kSecond ? 2 : 1;
}

}  // namespace

double PredictionEvaluation::channel_rms_percentile(double p) const {
  linalg::Vector finite;
  for (double v : channel_rms) {
    if (!std::isnan(v)) finite.push_back(v);
  }
  if (finite.empty()) {
    throw std::runtime_error(
        "channel_rms_percentile: no channels with samples");
  }
  return linalg::percentile(std::move(finite), p);
}

linalg::Vector PredictionEvaluation::channel_abs_percentile(double p) const {
  linalg::Vector out(channels.size(), kNaN);
  for (std::size_t c = 0; c < channels.size(); ++c) {
    if (!channel_abs_errors[c].empty()) {
      out[c] = linalg::percentile(channel_abs_errors[c], p);
    }
  }
  return out;
}

std::vector<Segment> mode_windows(
    const timeseries::TraceView& trace, const hvac::Schedule& schedule,
    hvac::Mode mode, const std::vector<timeseries::ChannelId>& required,
    std::size_t min_length) {
  auto mask = schedule.mode_mask(trace.grid(), mode);
  if (!required.empty()) {
    const auto valid = timeseries::rows_with_all_valid(trace, required);
    for (std::size_t k = 0; k < mask.size(); ++k) {
      mask[k] = mask[k] && valid[k];
    }
  }
  return timeseries::find_segments(mask, min_length);
}

std::optional<WindowPrediction> predict_window(
    const ThermalModel& model, const timeseries::TraceView& trace,
    const Segment& window, const EvaluationOptions& options) {
  const std::size_t p = model.state_count();
  const std::size_t q = model.input_count();
  const std::size_t h = history_rows(model.order());

  std::vector<std::size_t> state_cols(p);
  for (std::size_t i = 0; i < p; ++i) {
    state_cols[i] = trace.require_channel(model.state_channels()[i]);
  }
  std::vector<std::size_t> input_cols(q);
  for (std::size_t i = 0; i < q; ++i) {
    input_cols[i] = trace.require_channel(model.input_channels()[i]);
  }

  // Find the first start row where the state history is fully observed.
  const std::size_t scan_end =
      std::min(window.last, window.first + options.max_start_scan + 1);
  std::optional<std::size_t> start;  // row of T(0) history end
  for (std::size_t s = window.first; s + h <= scan_end; ++s) {
    bool ok = true;
    for (std::size_t r = s; r < s + h && ok; ++r) {
      for (std::size_t c : state_cols) {
        if (!trace.valid(r, c)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      start = s + h - 1;
      break;
    }
  }
  if (!start) return std::nullopt;

  const std::size_t k0 = *start;  // row holding the initial state
  if (k0 + 1 >= window.last) return std::nullopt;
  const std::size_t steps =
      std::min(options.horizon_samples, window.last - k0 - 1);
  if (steps < options.min_steps) return std::nullopt;

  linalg::Vector initial(p);
  linalg::Vector initial_delta(p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    initial[i] = trace.value(k0, state_cols[i]);
    if (h == 2) {
      initial_delta[i] = initial[i] - trace.value(k0 - 1, state_cols[i]);
    }
  }

  // Inputs for rows k0 .. k0+steps-1 drive predictions for k0+1 .. k0+steps.
  linalg::Matrix inputs(steps, q);
  for (std::size_t k = 0; k < steps; ++k) {
    for (std::size_t i = 0; i < q; ++i) {
      const double v = trace.value(k0 + k, input_cols[i]);
      if (std::isnan(v)) return std::nullopt;  // windows should be input-valid
      inputs(k, i) = v;
    }
  }

  WindowPrediction wp;
  wp.first_row = k0 + 1;
  wp.predicted = model.simulate(initial, initial_delta, inputs);
  return wp;
}

PredictionEvaluation evaluate_prediction(
    const ThermalModel& model, const timeseries::TraceView& trace,
    const std::vector<Segment>& windows, const EvaluationOptions& options) {
  const std::size_t p = model.state_count();
  std::vector<std::size_t> state_cols(p);
  for (std::size_t i = 0; i < p; ++i) {
    state_cols[i] = trace.require_channel(model.state_channels()[i]);
  }

  PredictionEvaluation ev;
  ev.channels = model.state_channels();
  ev.channel_abs_errors.resize(p);

  // Per-window statistics, computed independently (open-loop simulation of
  // each window is the dominant cost) and then folded in window order so
  // every accumulated sum sees the same addition sequence at any thread
  // count.
  struct WindowStats {
    bool used = false;
    linalg::Vector sq;
    std::vector<std::size_t> n;
    std::vector<linalg::Vector> abs_errors;  ///< per channel, row order
    double total_sq = 0.0;
    std::size_t total_n = 0;
  };
  std::vector<WindowStats> per_window(windows.size());
  core::parallel_for(0, windows.size(), 1, [&](std::size_t w) {
    const auto wp = predict_window(model, trace, windows[w], options);
    if (!wp) return;
    WindowStats& ws = per_window[w];
    ws.used = true;
    ws.sq.assign(p, 0.0);
    ws.n.assign(p, 0);
    ws.abs_errors.resize(p);
    for (std::size_t k = 0; k < wp->predicted.rows(); ++k) {
      const std::size_t row = wp->first_row + k;
      for (std::size_t c = 0; c < p; ++c) {
        if (!trace.valid(row, state_cols[c])) continue;
        const double err =
            wp->predicted(k, c) - trace.value(row, state_cols[c]);
        ws.sq[c] += err * err;
        ++ws.n[c];
        ws.abs_errors[c].push_back(std::abs(err));
        ws.total_sq += err * err;
        ++ws.total_n;
      }
    }
  });

  std::vector<linalg::Vector> window_rms_rows;
  linalg::Vector pooled_sq(p, 0.0);
  std::vector<std::size_t> pooled_n(p, 0);
  double total_sq = 0.0;
  std::size_t total_n = 0;

  for (auto& ws : per_window) {
    if (!ws.used) continue;
    linalg::Vector rms_row(p, kNaN);
    for (std::size_t c = 0; c < p; ++c) {
      if (ws.n[c] > 0) {
        rms_row[c] = std::sqrt(ws.sq[c] / static_cast<double>(ws.n[c]));
        pooled_sq[c] += ws.sq[c];
        pooled_n[c] += ws.n[c];
      }
      ev.channel_abs_errors[c].insert(ev.channel_abs_errors[c].end(),
                                      ws.abs_errors[c].begin(),
                                      ws.abs_errors[c].end());
    }
    total_sq += ws.total_sq;
    total_n += ws.total_n;
    window_rms_rows.push_back(std::move(rms_row));
    ++ev.window_count;
  }

  ev.window_channel_rms = linalg::Matrix(window_rms_rows.size(), p);
  for (std::size_t w = 0; w < window_rms_rows.size(); ++w) {
    ev.window_channel_rms.set_row(w, window_rms_rows[w]);
  }
  ev.channel_rms.assign(p, kNaN);
  for (std::size_t c = 0; c < p; ++c) {
    if (pooled_n[c] > 0) {
      ev.channel_rms[c] =
          std::sqrt(pooled_sq[c] / static_cast<double>(pooled_n[c]));
    }
  }
  ev.pooled_rms =
      total_n > 0 ? std::sqrt(total_sq / static_cast<double>(total_n)) : kNaN;
  return ev;
}

}  // namespace auditherm::sysid
