// Property tests for the fast eigensolver path: the tridiagonal full and
// partial solvers must reproduce the Jacobi reference across >= 50 random
// seeds spanning four matrix families (random SPD, near-diagonal,
// clustered spectra, rank-deficient graph Laplacians), with eigenvalues
// matched to 1e-10 relative and eigenvectors compared respecting the
// shared sign convention. The cache-blocked dense kernels are checked
// bitwise against naive serial references on ragged shapes, and the new
// paths must be bitwise thread-count invariant.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "auditherm/clustering/spectral.hpp"
#include "auditherm/core/parallel.hpp"
#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/linalg/matrix.hpp"
#include "auditherm/linalg/vector_ops.hpp"

namespace core = auditherm::core;
namespace linalg = auditherm::linalg;
namespace clustering = auditherm::clustering;
using linalg::Matrix;
using linalg::Vector;

namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = dist(rng);
  return m;
}

Matrix random_spd(std::size_t n, std::uint64_t seed) {
  const auto a = random_matrix(n + 2, n, seed);
  auto spd = linalg::gram(a, a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.25;
  return spd;
}

/// Strongly diagonal-dominant symmetric matrix: eigenvalues nearly the
/// diagonal, off-diagonal coupling ~1e-3.
Matrix near_diagonal(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> diag(1.0, 10.0);
  std::normal_distribution<double> off(0.0, 1e-3);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = diag(rng);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = off(rng);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

/// Q D Q^T with a clustered spectrum: few distinct eigenvalues, each
/// repeated, exercising the degenerate-subspace handling.
Matrix clustered_spectrum(std::size_t n, std::uint64_t seed) {
  const linalg::QrDecomposition qr(random_matrix(n, n, seed));
  const auto q = qr.thin_q();
  Vector d(n);
  for (std::size_t i = 0; i < n; ++i)
    d[i] = 1.0 + static_cast<double>(i / 3);  // triples of equal eigenvalues
  Matrix qd = q;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) qd(i, j) *= d[j];
  auto a = linalg::outer_product(qd, q);  // Q D Q^T
  // Symmetrize exactly: outer_product is only symmetric to rounding.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double s = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = s;
      a(j, i) = s;
    }
  return a;
}

/// Unnormalized Laplacian of a random graph with 2-3 disconnected blocks:
/// rank-deficient with a repeated zero eigenvalue per extra component.
Matrix rank_deficient_laplacian(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const std::size_t blocks = 2 + seed % 2;
  Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (i % blocks != j % blocks) continue;  // cross-block: no edge
      const double v = 0.1 + unit(rng);
      w(i, j) = v;
      w(j, i) = v;
    }
  }
  return clustering::laplacian(w);
}

double spectrum_scale(const Vector& eigenvalues) {
  double scale = 1.0;
  for (const double v : eigenvalues) scale = std::max(scale, std::abs(v));
  return scale;
}

/// Shared eigenpair validation: `got` must carry `m` leading pairs agreeing
/// with the Jacobi reference `ref` on the symmetric matrix `a`.
/// Eigenvalues to 1e-10 relative; eigenvectors orthonormal, sign-pinned,
/// residual-small, and — when the eigenvalue is isolated — elementwise
/// equal to the reference (both solvers pin signs, so no flip slack).
void expect_matches_reference(const Matrix& a, const linalg::SymmetricEigen& ref,
                              const linalg::SymmetricEigen& got, std::size_t m,
                              const std::string& context) {
  ASSERT_GE(got.eigenvalues.size(), m) << context;
  ASSERT_EQ(got.eigenvectors.cols(), got.eigenvalues.size()) << context;
  ASSERT_EQ(got.eigenvectors.rows(), a.rows()) << context;
  const std::size_t n = a.rows();
  const double scale = spectrum_scale(ref.eigenvalues);

  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_NEAR(got.eigenvalues[j], ref.eigenvalues[j], 1e-10 * scale)
        << context << " eigenvalue " << j;
  }

  // Orthonormality of the computed columns.
  for (std::size_t j = 0; j < m; ++j) {
    const Vector vj = got.eigenvectors.col_vector(j);
    EXPECT_NEAR(linalg::norm2(vj), 1.0, 1e-8) << context << " column " << j;
    for (std::size_t l = j + 1; l < m; ++l) {
      EXPECT_NEAR(linalg::dot(vj, got.eigenvectors.col_vector(l)), 0.0, 1e-7)
          << context << " columns " << j << "," << l;
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    const Vector v = got.eigenvectors.col_vector(j);

    // Residual: ||A v - lambda v|| small relative to the spectrum.
    const Vector av = a * v;
    const Vector lv = linalg::scale(got.eigenvalues[j], v);
    EXPECT_NEAR(linalg::norm2(linalg::subtract(av, lv)), 0.0, 1e-7 * scale)
        << context << " residual " << j;

    // Sign convention: the largest-|component| entry is positive.
    std::size_t arg = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (std::abs(v[i]) > std::abs(v[arg])) arg = i;
    EXPECT_GE(v[arg], 0.0) << context << " sign pin " << j;

    // Isolated eigenvalues (gap to both neighbors) must reproduce the
    // reference direction. The comparison is up to sign: when a vector's
    // two largest |components| are an exact +/- tie (e.g. a two-node
    // Laplacian component), the pin resolves by last-ulp magnitudes and
    // can legitimately differ between solvers; the convention itself is
    // asserted per-vector above.
    const double gap_tol = 1e-6 * scale;
    const bool isolated =
        (j == 0 || ref.eigenvalues[j] - ref.eigenvalues[j - 1] > gap_tol) &&
        (j + 1 >= ref.eigenvalues.size() ||
         ref.eigenvalues[j + 1] - ref.eigenvalues[j] > gap_tol);
    if (isolated) {
      const Vector r = ref.eigenvectors.col_vector(j);
      const double d = linalg::dot(v, r);
      EXPECT_GT(std::abs(d), 1.0 - 1e-8)
          << context << " isolated direction " << j;
      const double sign = d < 0.0 ? -1.0 : 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(v[i], sign * r[i], 1e-6)
            << context << " vector " << j << " entry " << i;
      }
    }
  }
}

Matrix family_matrix(std::size_t family, std::size_t n, std::uint64_t seed) {
  switch (family) {
    case 0: return random_spd(n, seed);
    case 1: return near_diagonal(n, seed);
    case 2: return clustered_spectrum(n, seed);
    default: return rank_deficient_laplacian(n, seed);
  }
}

const char* family_name(std::size_t family) {
  switch (family) {
    case 0: return "spd";
    case 1: return "near_diagonal";
    case 2: return "clustered";
    default: return "laplacian";
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Tridiagonal full spectrum vs Jacobi: 50+ seeds over four families.
// ---------------------------------------------------------------------------

TEST(EigenSolvers, TridiagonalMatchesJacobiAcrossSeedsAndFamilies) {
  const std::size_t sizes[] = {5, 8, 13, 21, 30};
  for (std::uint64_t seed = 0; seed < 56; ++seed) {
    const std::size_t family = seed % 4;
    const std::size_t n = sizes[seed % 5];
    const auto a = family_matrix(family, n, 1000 + seed);
    const auto ref = linalg::eigen_symmetric(a);
    const auto got = linalg::eigen_symmetric_tridiagonal(a);
    const std::string context = std::string(family_name(family)) + " n=" +
                                std::to_string(n) + " seed=" +
                                std::to_string(seed);
    expect_matches_reference(a, ref, got, n, context);
  }
}

TEST(EigenSolvers, PartialMatchesJacobiLeadingPairs) {
  const std::size_t sizes[] = {6, 9, 14, 22, 31};
  for (std::uint64_t seed = 0; seed < 56; ++seed) {
    const std::size_t family = seed % 4;
    const std::size_t n = sizes[seed % 5];
    const std::size_t m = 2 + seed % 5;  // 2..6 smallest pairs
    const auto a = family_matrix(family, n, 2000 + seed);
    const auto ref = linalg::eigen_symmetric(a);
    const auto got = linalg::eigen_symmetric_smallest(a, m);
    ASSERT_EQ(got.eigenvalues.size(), std::min(m, n));
    const std::string context = std::string("partial ") + family_name(family) +
                                " n=" + std::to_string(n) + " m=" +
                                std::to_string(m) + " seed=" +
                                std::to_string(seed);
    expect_matches_reference(a, ref, got, std::min(m, n), context);
  }
}

TEST(EigenSolvers, PartialValidation) {
  const auto a = random_spd(5, 3);
  EXPECT_THROW((void)linalg::eigen_symmetric_smallest(Matrix(2, 3), 1),
               std::invalid_argument);
  EXPECT_THROW((void)linalg::eigen_symmetric_smallest(a, 0),
               std::invalid_argument);
  // m > n is a caller sizing bug: rejected, not silently clamped.
  EXPECT_THROW((void)linalg::eigen_symmetric_smallest(a, 12),
               std::invalid_argument);
  // Exactly-full request agrees with the dedicated full solver.
  const auto all = linalg::eigen_symmetric_smallest(a, 5);
  ASSERT_EQ(all.eigenvalues.size(), 5u);
  const auto full = linalg::eigen_symmetric_tridiagonal(a);
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(all.eigenvalues[j], full.eigenvalues[j], 1e-10);
  }
}

TEST(EigenSolvers, TrivialSizes) {
  EXPECT_TRUE(linalg::eigen_symmetric_tridiagonal(Matrix()).eigenvalues.empty());
  const auto one = linalg::eigen_symmetric_tridiagonal(Matrix{{4.0}});
  ASSERT_EQ(one.eigenvalues.size(), 1u);
  EXPECT_DOUBLE_EQ(one.eigenvalues[0], 4.0);
  EXPECT_DOUBLE_EQ(one.eigenvectors(0, 0), 1.0);
  const auto small = linalg::eigen_symmetric_smallest(Matrix{{4.0}}, 1);
  EXPECT_DOUBLE_EQ(small.eigenvalues[0], 4.0);
}

TEST(EigenSolvers, ResolveEigenMethod) {
  using linalg::EigenMethod;
  EXPECT_EQ(linalg::resolve_eigen_method(EigenMethod::kJacobi, 1000),
            EigenMethod::kJacobi);
  EXPECT_EQ(linalg::resolve_eigen_method(EigenMethod::kTridiagonal, 4),
            EigenMethod::kTridiagonal);
  EXPECT_EQ(linalg::resolve_eigen_method(EigenMethod::kAuto,
                                         linalg::kEigenAutoThreshold - 1),
            EigenMethod::kJacobi);
  EXPECT_EQ(linalg::resolve_eigen_method(EigenMethod::kAuto,
                                         linalg::kEigenAutoThreshold),
            EigenMethod::kTridiagonal);
  EXPECT_EQ(linalg::resolve_eigen_method(EigenMethod::kAuto,
                                         linalg::kEigenSparseThreshold - 1),
            EigenMethod::kTridiagonal);
  EXPECT_EQ(linalg::resolve_eigen_method(EigenMethod::kAuto,
                                         linalg::kEigenSparseThreshold),
            EigenMethod::kLanczos);
  EXPECT_EQ(linalg::resolve_eigen_method(EigenMethod::kLanczos, 4),
            EigenMethod::kLanczos);
}

// ---------------------------------------------------------------------------
// Thread-count invariance of the new solvers (bitwise).
// ---------------------------------------------------------------------------

TEST(EigenSolvers, TridiagonalBitwiseStableAcrossThreads) {
  const auto g = random_matrix(300, 48, 77);
  const auto s = linalg::gram(g, g);
  linalg::SymmetricEigen serial;
  {
    core::ThreadCountScope scope(1);
    serial = linalg::eigen_symmetric_tridiagonal(s);
  }
  for (std::size_t threads : {2u, 4u, 8u}) {
    core::ThreadCountScope scope(threads);
    const auto eig = linalg::eigen_symmetric_tridiagonal(s);
    EXPECT_EQ(eig.eigenvalues, serial.eigenvalues) << "threads=" << threads;
    EXPECT_EQ(eig.eigenvectors, serial.eigenvectors) << "threads=" << threads;
  }
}

TEST(EigenSolvers, PartialBitwiseStableAcrossThreads) {
  const auto l = rank_deficient_laplacian(48, 5);
  linalg::SymmetricEigen serial;
  {
    core::ThreadCountScope scope(1);
    serial = linalg::eigen_symmetric_smallest(l, 6);
  }
  for (std::size_t threads : {2u, 4u, 8u}) {
    core::ThreadCountScope scope(threads);
    const auto eig = linalg::eigen_symmetric_smallest(l, 6);
    EXPECT_EQ(eig.eigenvalues, serial.eigenvalues) << "threads=" << threads;
    EXPECT_EQ(eig.eigenvectors, serial.eigenvectors) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Cache-blocked dense kernels vs naive serial references on ragged shapes.
// The blocked loops keep each element's ascending-k summation order, so
// equality is bitwise, at every thread count.
// ---------------------------------------------------------------------------

namespace {

Matrix naive_multiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j)
      for (std::size_t k = 0; k < a.cols(); ++k)
        if (a(i, k) != 0.0) c(i, j) += a(i, k) * b(k, j);
  return c;
}

Matrix naive_gram(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.cols(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j)
      for (std::size_t k = 0; k < a.rows(); ++k)
        if (a(k, i) != 0.0) c(i, j) += a(k, i) * b(k, j);
  return c;
}

Matrix naive_outer(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.rows(); ++j)
      for (std::size_t k = 0; k < a.cols(); ++k)
        c(i, j) += a(i, k) * b(j, k);
  return c;
}

Vector naive_matvec(const Matrix& a, const Vector& x) {
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

}  // namespace

TEST(BlockedKernels, RaggedShapesMatchNaiveBitwise) {
  // Shapes straddling the 64-wide block boundary: exact multiples, one
  // less/more, tiny edges, single rows/columns.
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 1, 1},    {3, 65, 2},   {64, 64, 64}, {65, 63, 67},
                {127, 129, 64}, {1, 64, 130}, {64, 1, 64},  {130, 5, 33},
                {66, 128, 1}};
  std::uint64_t seed = 500;
  for (const auto& s : shapes) {
    const auto a = random_matrix(s.m, s.k, seed++);
    const auto b = random_matrix(s.k, s.n, seed++);
    const auto expected = naive_multiply(a, b);
    const auto gram_a = random_matrix(s.k, s.m, seed++);
    const auto gram_expected = naive_gram(gram_a, b);
    const auto outer_b = random_matrix(s.n, s.k, seed++);
    const auto outer_expected = naive_outer(a, outer_b);
    const auto x = random_matrix(s.k, 1, seed++).col_vector(0);
    const auto matvec_expected = naive_matvec(a, x);
    for (std::size_t threads : {1u, 3u, 8u}) {
      core::ThreadCountScope scope(threads);
      EXPECT_EQ(a * b, expected)
          << "multiply " << s.m << "x" << s.k << "x" << s.n
          << " threads=" << threads;
      EXPECT_EQ(linalg::gram(gram_a, b), gram_expected)
          << "gram " << s.m << "x" << s.k << "x" << s.n
          << " threads=" << threads;
      EXPECT_EQ(linalg::outer_product(a, outer_b), outer_expected)
          << "outer " << s.m << "x" << s.k << "x" << s.n
          << " threads=" << threads;
      EXPECT_EQ(a * x, matvec_expected)
          << "matvec " << s.m << "x" << s.k << " threads=" << threads;
    }
    // Transpose round-trips exactly through the tiled kernel.
    EXPECT_EQ(a.transposed().transposed(), a);
    const auto at = a.transposed();
    for (std::size_t i = 0; i < s.m; ++i)
      for (std::size_t j = 0; j < s.k; ++j) ASSERT_EQ(at(j, i), a(i, j));
  }
}
