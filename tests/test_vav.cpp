// Tests for the VAV box model.

#include "auditherm/hvac/vav.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace hvac = auditherm::hvac;

TEST(Vav, StartsAtMinimumFlow) {
  hvac::VavBox box{hvac::VavConfig{}};
  EXPECT_DOUBLE_EQ(box.flow(), box.config().min_flow_m3_s);
}

TEST(Vav, CommandsAreClamped) {
  hvac::VavBox box{hvac::VavConfig{}};
  box.command_flow(99.0);
  for (int i = 0; i < 1000; ++i) box.step(60.0);
  EXPECT_NEAR(box.flow(), box.config().max_flow_m3_s, 1e-9);
  box.command_flow(-5.0);
  for (int i = 0; i < 1000; ++i) box.step(60.0);
  EXPECT_NEAR(box.flow(), box.config().min_flow_m3_s, 1e-9);
}

TEST(Vav, FirstOrderLagConvergence) {
  hvac::VavConfig config;
  config.actuator_tau_s = 100.0;
  hvac::VavBox box{config};
  box.command_flow(0.5);
  // After exactly one time constant, ~63.2% of the step is closed.
  const double start = box.flow();
  box.step(100.0);
  const double expected = start + (0.5 - start) * (1.0 - std::exp(-1.0));
  EXPECT_NEAR(box.flow(), expected, 1e-12);
}

TEST(Vav, StepReturnsOutput) {
  hvac::VavBox box{hvac::VavConfig{}};
  const auto out = box.step(30.0);
  EXPECT_DOUBLE_EQ(out.flow_m3_s, box.flow());
  EXPECT_DOUBLE_EQ(out.supply_temp_c, box.config().supply_temp_c);
}

TEST(Vav, ThermalPowerSign) {
  hvac::VavBox box{hvac::VavConfig{}};  // supply 13 degC
  EXPECT_LT(box.thermal_power_w(21.0), 0.0);  // cooling a warm room
  EXPECT_GT(box.thermal_power_w(5.0), 0.0);   // warming a cold room
  EXPECT_DOUBLE_EQ(box.thermal_power_w(box.config().supply_temp_c), 0.0);
}

TEST(Vav, ThermalPowerMagnitude) {
  hvac::VavConfig config;
  config.min_flow_m3_s = 1.0;
  config.max_flow_m3_s = 2.0;
  config.supply_temp_c = 13.0;
  hvac::VavBox box{config};
  // 1 m^3/s * 1206 J/(m^3 K) * (13 - 21) K = -9648 W.
  EXPECT_NEAR(box.thermal_power_w(21.0), -9648.0, 1.0);
}

TEST(Vav, ResetRestoresMinimum) {
  hvac::VavBox box{hvac::VavConfig{}};
  box.command_flow(0.5);
  for (int i = 0; i < 100; ++i) box.step(60.0);
  box.reset();
  EXPECT_DOUBLE_EQ(box.flow(), box.config().min_flow_m3_s);
  box.step(600.0);
  EXPECT_DOUBLE_EQ(box.flow(), box.config().min_flow_m3_s);
}

TEST(Vav, ConfigValidation) {
  hvac::VavConfig bad;
  bad.min_flow_m3_s = 1.0;
  bad.max_flow_m3_s = 0.5;
  EXPECT_THROW(hvac::VavBox{bad}, std::invalid_argument);
  bad = {};
  bad.actuator_tau_s = 0.0;
  EXPECT_THROW(hvac::VavBox{bad}, std::invalid_argument);
  bad = {};
  bad.min_flow_m3_s = -0.1;
  EXPECT_THROW(hvac::VavBox{bad}, std::invalid_argument);
}

TEST(Vav, StepValidatesDt) {
  hvac::VavBox box{hvac::VavConfig{}};
  EXPECT_THROW(box.step(0.0), std::invalid_argument);
  EXPECT_THROW(box.step(-1.0), std::invalid_argument);
}
