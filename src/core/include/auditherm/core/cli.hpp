#pragma once

/// \file cli.hpp
/// Shared declarative command-line option parsing for the auditherm
/// tools. Each subcommand declares its flags once as an OptionSet; the
/// parser then enforces the rules every subcommand should share:
///   * flags are `--name value` (or bare `--name` for booleans),
///   * a duplicated flag is an error, not a silent last-one-wins,
///   * an unknown flag is an error that carries the subcommand's usage,
///   * required flags are checked after parsing.
///
/// The observability flags every subcommand accepts (--threads,
/// --cache, --metrics-out, --trace) are provided by common_options() so
/// tools cannot drift apart in spelling or semantics.

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace auditherm::core::cli {

/// Parse failure; `what()` is the user-facing message (the tool appends
/// the subcommand usage text).
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Declarative description of one `--flag`.
struct OptionSpec {
  std::string name;        ///< without the leading "--"
  bool takes_value = true; ///< false = boolean presence flag
  bool required = false;
  std::string value_name;  ///< usage placeholder, e.g. "FILE" or "N"
  std::string help;        ///< one-line description for usage text
};

/// Result of a successful parse: flag name -> value ("" for booleans).
class ParsedOptions {
 public:
  /// True when the flag appeared on the command line.
  [[nodiscard]] bool has(std::string_view name) const;
  /// The flag's value, or nullopt when absent.
  [[nodiscard]] std::optional<std::string> get(std::string_view name) const;
  /// The flag's value; throws UsageError when absent (used for flags
  /// whose requiredness depends on other flags).
  [[nodiscard]] std::string require(std::string_view name) const;
  /// Integer value with a fallback; throws UsageError on a non-integer.
  [[nodiscard]] long get_long(std::string_view name, long fallback) const;
  /// Floating-point value with a fallback; throws UsageError on a
  /// non-number.
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const;

 private:
  friend class OptionSet;
  std::unordered_map<std::string, std::string> values_;
};

/// A subcommand's full flag vocabulary.
class OptionSet {
 public:
  /// Throws std::invalid_argument when two specs share a name.
  OptionSet(std::string command, std::vector<OptionSpec> specs);

  /// Parse argv[first..argc); throws UsageError on an unknown flag, a
  /// duplicated flag, a value-taking flag with no value, or a missing
  /// required flag.
  [[nodiscard]] ParsedOptions parse(int argc, const char* const* argv,
                                    int first) const;

  /// Multi-line usage text: synopsis plus one line per flag.
  [[nodiscard]] std::string usage() const;

  [[nodiscard]] const std::string& command() const noexcept {
    return command_;
  }

 private:
  [[nodiscard]] const OptionSpec* find(std::string_view name) const;

  std::string command_;
  std::vector<OptionSpec> specs_;
};

/// The flags shared by every auditherm subcommand:
///   --threads N        worker threads (0 = auto); results identical at
///                      any value
///   --cache on|off     stage cache for repeated pipeline stages
///   --metrics-out FILE write run metrics + spans as JSON
///   --trace            print the span tree and counters to stderr
[[nodiscard]] std::vector<OptionSpec> common_options();

/// Decoded values of the common_options() flags.
struct CommonOptions {
  std::size_t threads = 0;   ///< 0 = inherit global/default
  bool cache = true;
  std::string metrics_out;   ///< empty = no JSON export
  bool trace = false;
  /// True when any observability output was requested (a recorder should
  /// be installed for the run).
  [[nodiscard]] bool observability_enabled() const noexcept {
    return trace || !metrics_out.empty();
  }
};

/// Decode the common flags; throws UsageError on a bad value (e.g.
/// `--cache maybe`).
[[nodiscard]] CommonOptions parse_common(const ParsedOptions& options);

}  // namespace auditherm::core::cli
