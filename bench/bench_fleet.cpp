// Fleet-scale scenario generation bench: simulates a 6-building mixed
// fleet through sim::run_fleet, reports per-building wall time and fleet
// throughput (control steps / second), checks thread scaling at 1/2/4/8
// workers with a bitwise fingerprint cross-check, and verifies that a
// fleet-of-1 paper-hall spec reproduces generate_dataset() byte for byte.
// Writes BENCH_fleet.json.
//
// On the 1-CPU CI container thread "scaling" is honestly ~1.0x; the
// bitwise checks are the point there — the wall-time columns become
// meaningful on multi-core hosts.

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

#include "auditherm/serve/json.hpp"
#include "auditherm/serve/scenario_codec.hpp"

namespace core = auditherm::core;
namespace serve = auditherm::serve;
namespace sim = auditherm::sim;
namespace timeseries = auditherm::timeseries;

namespace {

/// The bench fleet, in the same JSON shape `simulate --fleet` takes, so
/// this file doubles as a worked example. 14 days per building keeps the
/// bench under a minute while still exercising failure days and dropout.
constexpr const char kFleetJson[] = R"({
  "base_seed": 2014,
  "scenarios": [
    {"name": "paper-hall",   "days": 14, "failure_days": 5},
    {"name": "winter-hall",  "days": 14, "failure_days": 5,
     "season": "winter", "occupancy": "busy"},
    {"name": "summer-grid",  "days": 14, "failure_days": 3,
     "building": "grid", "sensors": 96, "season": "summer"},
    {"name": "eco-grid",     "days": 14, "failure_days": 3,
     "building": "grid", "sensors": 64, "hvac": "eco",
     "occupancy": "quiet"},
    {"name": "campus-2x48",  "days": 14, "failure_days": 4,
     "building": "campus", "halls": 2, "sensors_per_hall": 48,
     "season": "shoulder"},
    {"name": "fixed-supply", "days": 14, "failure_days": 5,
     "hvac": "fixed-supply", "dropout": 0.08}
  ]
})";

std::string csv_bytes(const timeseries::MultiTrace& trace) {
  std::ostringstream os;
  timeseries::write_csv(os, trace);
  return std::move(os).str();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  const bench::ObsSession obs;
  bench::print_header(
      "Fleet scenario generation: 6 buildings behind one ScenarioSpec API");

  const serve::SimulateRequest request =
      serve::simulate_request_from_json(serve::json::parse(kFleetJson));

  // --- Reference run (thread pool default) ------------------------------
  const auto start = std::chrono::steady_clock::now();
  const auto outcomes = sim::run_fleet(request.specs);
  const double fleet_seconds = seconds_since(start);

  std::size_t total_steps = 0;
  std::size_t total_samples = 0;
  std::printf("%-14s %8s %9s %9s %10s  %s\n", "building", "sensors",
              "samples", "steps", "wall s", "trace fingerprint");
  for (const auto& outcome : outcomes) {
    total_steps += outcome.control_steps;
    total_samples += outcome.samples * outcome.channels;
    std::printf("%-14s %8zu %9zu %9zu %10.3f  0x%016llx\n",
                outcome.spec.name.c_str(), outcome.sensor_count,
                outcome.samples, outcome.control_steps, outcome.wall_seconds,
                static_cast<unsigned long long>(outcome.trace_fingerprint));
  }
  const double throughput = static_cast<double>(total_steps) / fleet_seconds;
  std::printf("fleet: %zu buildings, %zu control steps in %.3f s "
              "(%.0f steps/s)\n",
              outcomes.size(), total_steps, fleet_seconds, throughput);

  // --- Thread scaling with bitwise cross-check --------------------------
  bool bitwise_identical = true;
  std::string scaling_json = "[";
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::ThreadCountScope scope(threads);
    const auto t0 = std::chrono::steady_clock::now();
    const auto repeat = sim::run_fleet(request.specs);
    const double seconds = seconds_since(t0);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (repeat[i].trace_fingerprint != outcomes[i].trace_fingerprint ||
          repeat[i].truth_fingerprint != outcomes[i].truth_fingerprint) {
        bitwise_identical = false;
        std::printf("!! fingerprint mismatch at %zu threads (%s)\n", threads,
                    repeat[i].spec.name.c_str());
      }
    }
    std::printf("threads %zu: %.3f s (%.0f steps/s)\n", threads, seconds,
                static_cast<double>(total_steps) / seconds);
    char entry[96];
    std::snprintf(entry, sizeof(entry),
                  "%s{\"threads\": %zu, \"seconds\": %.6f}",
                  scaling_json.size() > 1 ? ", " : "", threads, seconds);
    scaling_json += entry;
  }
  scaling_json += "]";
  std::printf("bitwise identical across thread counts: %s\n",
              bitwise_identical ? "yes" : "NO");

  // --- Fleet-of-1 vs generate_dataset -----------------------------------
  sim::ScenarioSpec solo;
  solo.name = "solo";
  solo.days = 14;
  solo.failure_days = 5;
  const auto fleet_of_1 = sim::run_fleet({solo});
  sim::DatasetConfig config;
  config.days = solo.days;
  config.failure_days = solo.failure_days;
  const auto reference = sim::generate_dataset(config);
  const bool fleet_of_1_matches =
      csv_bytes(fleet_of_1[0].dataset->trace) == csv_bytes(reference.trace) &&
      csv_bytes(fleet_of_1[0].dataset->truth) == csv_bytes(reference.truth);
  std::printf("fleet-of-1 matches generate_dataset bitwise: %s\n",
              fleet_of_1_matches ? "yes" : "NO");

  bench::JsonObject json;
  json.add("bench", std::string("fleet"));
  json.add("buildings", outcomes.size());
  json.add("total_control_steps", total_steps);
  json.add("total_trace_cells", total_samples);
  json.add("fleet_seconds", fleet_seconds);
  json.add("steps_per_second", throughput);
  std::string per_building = "[";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    char entry[160];
    std::snprintf(entry, sizeof(entry),
                  "%s{\"name\": \"%s\", \"wall_seconds\": %.6f, "
                  "\"control_steps\": %zu}",
                  i > 0 ? ", " : "", outcomes[i].spec.name.c_str(),
                  outcomes[i].wall_seconds, outcomes[i].control_steps);
    per_building += entry;
  }
  per_building += "]";
  json.add_raw("per_building", per_building);
  json.add_raw("thread_scaling", scaling_json);
  json.add("bitwise_identical_across_threads", bitwise_identical);
  json.add("fleet_of_1_matches_generate_dataset", fleet_of_1_matches);
  if (!json.write_file("BENCH_fleet.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_fleet.json\n");
    return 1;
  }
  std::printf("wrote BENCH_fleet.json\n");
  return bitwise_identical && fleet_of_1_matches ? 0 : 1;
}
