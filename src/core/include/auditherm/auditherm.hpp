#pragma once

/// \file auditherm.hpp
/// Umbrella header: the full public API of the auditherm library.
///
/// auditherm reproduces "Thermal Modeling for a HVAC Controlled Real-life
/// Auditorium" (ICDCS 2014): data-driven thermal modeling for large open
/// spaces by combining spectral clustering of a dense sensor network with
/// linear system identification, plus the simulated auditorium testbed
/// used to generate datasets.

// Numerics.
#include "auditherm/linalg/decompositions.hpp"
#include "auditherm/linalg/least_squares.hpp"
#include "auditherm/linalg/matrix.hpp"
#include "auditherm/linalg/sparse.hpp"
#include "auditherm/linalg/stats.hpp"
#include "auditherm/linalg/vector_ops.hpp"

// Gapped multi-channel traces.
#include "auditherm/timeseries/csv_io.hpp"
#include "auditherm/timeseries/multi_trace.hpp"
#include "auditherm/timeseries/resample.hpp"
#include "auditherm/timeseries/segmentation.hpp"
#include "auditherm/timeseries/time_grid.hpp"
#include "auditherm/timeseries/trace_stats.hpp"

// HVAC plant pieces and comfort.
#include "auditherm/hvac/comfort.hpp"
#include "auditherm/hvac/schedule.hpp"
#include "auditherm/hvac/thermostat.hpp"
#include "auditherm/hvac/vav.hpp"

// The simulated auditorium testbed and fleet scenario generation.
#include "auditherm/sim/dataset.hpp"
#include "auditherm/sim/floorplan.hpp"
#include "auditherm/sim/occupancy.hpp"
#include "auditherm/sim/plant.hpp"
#include "auditherm/sim/scenario.hpp"
#include "auditherm/sim/sensor_model.hpp"
#include "auditherm/sim/weather.hpp"

// System identification (eq. 1-4).
#include "auditherm/sysid/diagnostics.hpp"
#include "auditherm/sysid/estimator.hpp"
#include "auditherm/sysid/evaluation.hpp"
#include "auditherm/sysid/input_plan.hpp"
#include "auditherm/sysid/kalman.hpp"
#include "auditherm/sysid/occupancy_estimation.hpp"
#include "auditherm/sysid/model.hpp"

// Spectral sensor clustering (Section V).
#include "auditherm/clustering/baselines.hpp"
#include "auditherm/clustering/kmeans.hpp"
#include "auditherm/clustering/similarity.hpp"
#include "auditherm/clustering/spectral.hpp"

// Representative-sensor selection (Section VI).
#include "auditherm/selection/evaluation.hpp"
#include "auditherm/selection/gp_placement.hpp"
#include "auditherm/selection/strategies.hpp"
#include "auditherm/selection/variance_placement.hpp"

// Model-based HVAC control (the paper's motivating application).
#include "auditherm/control/closed_loop.hpp"
#include "auditherm/control/controllers.hpp"
#include "auditherm/control/fleet_control.hpp"

// Observability: metrics registry, tracing spans, exporters.
#include "auditherm/obs/export.hpp"
#include "auditherm/obs/metrics.hpp"
#include "auditherm/obs/trace_span.hpp"

// The end-to-end three-step pipeline.
#include "auditherm/core/cli.hpp"
#include "auditherm/core/pipeline.hpp"
#include "auditherm/core/split.hpp"
