#pragma once

/// \file csv_io.hpp
/// CSV persistence for MultiTrace: one row per sample (`time_minutes`
/// column first, then one column per channel id), empty cells for gaps.
/// This is the interchange format for exporting simulated datasets and for
/// loading a real building trace into the pipeline.

#include <iosfwd>
#include <string>

#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::timeseries {

/// Write the trace as CSV to a stream. Values are written with
/// max_digits10 precision so doubles round-trip exactly, and the grid
/// step is persisted as a leading "# step_minutes=N" comment so
/// single-row traces keep their step.
void write_csv(std::ostream& os, const MultiTrace& trace);

/// Write the trace to a file; throws std::runtime_error on I/O failure.
void write_csv_file(const std::string& path, const MultiTrace& trace);

/// Parse a trace from CSV. `#` comment lines are skipped; a
/// "# step_minutes=N" comment fixes the grid step, otherwise it is
/// inferred from the first two rows (a single-row file without the
/// comment gets step 1). CRLF line endings are accepted. Throws
/// std::runtime_error on malformed input (bad header, ragged rows,
/// non-uniform or contradicting time steps, unparsable numbers — each
/// reported with its line/column).
[[nodiscard]] MultiTrace read_csv(std::istream& is);

/// Read a trace from a file; throws std::runtime_error on I/O failure.
[[nodiscard]] MultiTrace read_csv_file(const std::string& path);

}  // namespace auditherm::timeseries
