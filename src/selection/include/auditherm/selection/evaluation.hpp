#pragma once

/// \file evaluation.hpp
/// Cluster-mean prediction error (Section VI.B, Table II, Figs. 9-10).
///
/// A selection is judged by how well the mean of its chosen sensors tracks
/// the true cluster mean (mean over *all* sensors of the cluster) on
/// validation data; the paper reports the 99th percentile of the absolute
/// error pooled over clusters.

#include <vector>

#include "auditherm/selection/strategies.hpp"
#include "auditherm/timeseries/multi_trace.hpp"

namespace auditherm::selection {

/// Absolute cluster-mean prediction errors.
struct ClusterMeanErrors {
  /// Per cluster: |selected-mean - cluster-mean| samples over valid rows.
  std::vector<linalg::Vector> per_cluster_abs;

  /// All clusters pooled.
  [[nodiscard]] linalg::Vector pooled() const;

  /// Percentile of the pooled absolute error (the paper uses 99).
  /// Throws std::runtime_error when no samples exist.
  [[nodiscard]] double percentile(double p) const;

  /// RMS of the pooled absolute error.
  [[nodiscard]] double rms() const;
};

/// Evaluate a selection on validation data.
///
/// For each cluster c, the prediction at row k is the mean of the selected
/// sensors' readings and the target is the mean over all of cluster c's
/// sensors; rows where either side has no valid reading are skipped.
/// Throws std::invalid_argument when the selection's cluster count does
/// not match `clusters`.
[[nodiscard]] ClusterMeanErrors evaluate_cluster_mean_prediction(
    const timeseries::TraceView& validation, const ClusterSets& clusters,
    const Selection& selection);

}  // namespace auditherm::selection
